//! The telemetry fabric end to end: span identity mirrors the fork tree,
//! the flight recorder's bounded ring keeps the newest events and counts
//! what it dropped, per-span wait attribution reconciles *exactly* with
//! the runtime's own `SimReport` accounting (the hooks are handed the
//! same virtual timestamps), and the Chrome-trace export is
//! byte-identical across reruns — at one CPU and at four.

use std::sync::Arc;

use eveth::core::syscall::{span, sys_fork, sys_nbio, sys_sleep};
use eveth::core::telemetry::{SpanState, Telemetry};
use eveth::core::time::MILLIS;
use eveth::simos::cost::CostModel;
use eveth::simos::{SimClock, SimConfig, SimRuntime};
use eveth::ThreadM;
use eveth_bench::workloads::{kv_trace_run, KvRunParams, KvTraceArtifacts};

fn sim_with_telemetry(tel: &Arc<Telemetry>) -> SimRuntime {
    let sim = SimRuntime::new(
        SimClock::new(),
        SimConfig {
            cost: CostModel::monadic(),
            slice: 256,
            cpus: 1,
            ..SimConfig::default()
        },
    );
    assert!(sim.set_telemetry(Arc::clone(tel)));
    assert!(
        !sim.set_telemetry(Arc::clone(tel)),
        "second attach loses (first wins)"
    );
    sim
}

/// A binary fork tree of depth `d`: every node sleeps briefly (so spans
/// have distinct timestamps) and forks two children.
fn fork_tree(d: u32) -> ThreadM<()> {
    eveth::do_m! {
        sys_sleep(MILLIS);
        if d == 0 {
            ThreadM::pure(())
        } else {
            eveth::do_m! {
                sys_fork(fork_tree(d - 1));
                sys_fork(fork_tree(d - 1));
                ThreadM::pure(())
            }
        }
    }
}

#[test]
fn span_tree_mirrors_fork_tree_exactly() {
    let tel = Telemetry::new();
    let sim = sim_with_telemetry(&tel);
    let root = sim.spawn(span("root", fork_tree(2)));
    sim.run();

    let spans = tel.spans();
    // Depth-2 binary tree: 1 + 2 + 4 = 7 threads, nothing else ran.
    assert_eq!(spans.len(), 7);
    let root_span = tel.span(root.0).expect("root tracked");
    assert_eq!(root_span.parent, None);
    assert_eq!(root_span.name.as_deref(), Some("root"));

    // Every node except the root has a parent; each interior node has
    // exactly two children — the span table IS the fork tree.
    let children_of = |tid: u64| {
        spans
            .iter()
            .filter(|s| s.parent == Some(tid))
            .map(|s| s.tid)
            .collect::<Vec<_>>()
    };
    let l1 = children_of(root.0);
    assert_eq!(l1.len(), 2, "root forked two children");
    for &c in &l1 {
        assert_eq!(children_of(c).len(), 2, "child {c} forked two");
    }
    let l2: Vec<u64> = l1.iter().flat_map(|&c| children_of(c)).collect();
    for &g in &l2 {
        assert_eq!(children_of(g).len(), 0, "leaf {g} forked none");
    }

    // Everything ran to completion and the lifecycle counters agree with
    // the runtime's own report.
    assert!(spans.iter().all(|s| matches!(
        s.state,
        SpanState::Exited {
            uncaught: false,
            ..
        }
    )));
    let report = sim.report();
    assert_eq!(report.stats.spawned, 7);
    assert_eq!(
        tel.registry()
            .counter_value("eveth_runtime_threads_spawned", &[]),
        Some(7)
    );
    assert_eq!(
        tel.registry()
            .counter_value("eveth_runtime_threads_exited", &[]),
        Some(7)
    );
    // Each span slept once: every parked nanosecond is timer wait.
    assert_eq!(tel.wait_totals(), (0, 0, report.timer_wait_ns));
}

#[test]
fn flight_recorder_overwrite_keeps_newest_and_counts_drops() {
    // One shard of four slots, then a workload that records far more
    // events than that: the snapshot must be exactly the four
    // highest-sequence events, and `dropped` must account for the rest.
    let tel = Telemetry::with_recorder(1, 4);
    let sim = sim_with_telemetry(&tel);
    sim.spawn(fork_tree(2));
    sim.run();

    let rec = tel.recorder();
    let total = rec.recorded();
    assert!(total > 4, "workload recorded {total} events");
    assert_eq!(rec.dropped(), total - 4);
    let snap = rec.snapshot();
    assert_eq!(snap.len(), 4);
    assert!(
        snap.iter().all(|e| e.seq >= total - 4),
        "ring keeps the newest events"
    );
    assert_eq!(rec.last(2).len(), 2);
}

fn trace_params(cpus: usize, seed: u64) -> KvRunParams {
    KvRunParams {
        cost: CostModel::monadic(),
        cpus,
        slice: 64,
        app_tcp: false,
        loopback: true,
        shards: 2,
        stm: false,
        clients: 4,
        batches_per_conn: 2,
        pipeline_depth: 4,
        set_percent: 30,
        keys: 32,
        value_bytes: 64,
        preload: false,
        seed,
    }
}

/// One line of the text exposition, e.g.
/// `eveth_kv_shard_hits_total{shard="0"} 12`.
fn metric_line(body: &str, name_and_labels: &str) -> Option<u64> {
    body.lines()
        .find(|l| {
            l.starts_with(name_and_labels) && l.as_bytes().get(name_and_labels.len()) == Some(&b' ')
        })
        .and_then(|l| l[name_and_labels.len() + 1..].trim().parse().ok())
}

#[test]
fn span_wait_sums_reconcile_exactly_with_the_report() {
    let art = kv_trace_run(&trace_params(1, 11));
    let report = &art.report;

    // The runtime's own invariant first.
    assert_eq!(report.io_wait_ns + report.lock_wait_ns, report.park_wait_ns);

    // The hub's global counters were fed the very same (now, ready_at)
    // pairs the report's accounting used — equality is exact, not
    // approximate.
    assert_eq!(
        art.telemetry.wait_totals(),
        (report.io_wait_ns, report.lock_wait_ns, report.timer_wait_ns)
    );

    // And they decompose per span: summing the attribution over every
    // tracked thread reproduces the totals to the nanosecond.
    let spans = art.telemetry.spans();
    let sum_io: u64 = spans.iter().map(|s| s.io_wait_ns).sum();
    let sum_lock: u64 = spans.iter().map(|s| s.lock_wait_ns).sum();
    let sum_timer: u64 = spans.iter().map(|s| s.timer_wait_ns).sum();
    assert_eq!(sum_io, report.io_wait_ns);
    assert_eq!(sum_lock, report.lock_wait_ns);
    assert_eq!(sum_timer, report.timer_wait_ns);

    // The registry exposes the same cells.
    let reg = art.telemetry.registry();
    assert_eq!(
        reg.counter_value("eveth_runtime_io_wait_ns", &[]),
        Some(report.io_wait_ns)
    );
    assert_eq!(
        reg.counter_value("eveth_runtime_lock_wait_ns", &[]),
        Some(report.lock_wait_ns)
    );
    assert_eq!(
        reg.counter_value("eveth_runtime_threads_spawned", &[]),
        Some(report.stats.spawned)
    );
}

#[test]
fn debug_service_metrics_reconcile_with_kv_shard_stats() {
    let p = trace_params(1, 11);
    let art = kv_trace_run(&p);
    let body = &art.metrics_body;

    // The wire body was rendered after the load drained, so the KV-side
    // counters it reports are final — they must equal the live handles.
    let reg = art.telemetry.registry();
    for name in [
        "eveth_kv_connections_total",
        "eveth_kv_commands_total",
        "eveth_kv_bytes_in_total",
    ] {
        let live = reg.counter_value(name, &[]).expect("registered");
        assert_eq!(metric_line(body, name), Some(live), "{name} reconciles");
        assert!(live > 0, "{name} saw traffic");
    }
    for shard in 0..p.shards {
        for kind in ["hits", "misses", "sets"] {
            let probe = format!("eveth_kv_shard_{kind}_total{{shard=\"{shard}\"}}");
            let labels_shard = shard.to_string();
            let live = reg
                .counter_value(
                    &format!("eveth_kv_shard_{kind}_total"),
                    &[("shard", labels_shard.as_str())],
                )
                .expect("shard counter registered");
            assert_eq!(metric_line(body, &probe), Some(live), "{probe} reconciles");
        }
    }

    // Session wait rollup: the kv sessions all exited before the fetch,
    // so the body carries their final I/O-wait attribution.
    let io_roll = metric_line(
        body,
        "eveth_server_session_io_wait_ns_total{service=\"kv\"}",
    )
    .expect("rollup exposed");
    assert!(io_roll > 0, "kv sessions parked on I/O");
    // The bounded-send path ran with a generous deadline: present, zero.
    assert_eq!(
        metric_line(body, "eveth_server_send_timeouts_total{service=\"kv\"}"),
        Some(0)
    );
    // STM counters are registered (zero under the mutex backend).
    assert_eq!(
        metric_line(body, "eveth_stm_retries_total{store=\"kv\"}"),
        Some(0)
    );

    // The live span table went over the wire too.
    assert!(art.threads_body.contains("name=kv"));
    assert!(art.threads_body.contains("state="));
}

#[test]
fn chrome_export_is_byte_identical_across_reruns_at_1_and_4_cpus() {
    for cpus in [1usize, 4] {
        let a: KvTraceArtifacts = kv_trace_run(&trace_params(cpus, 7));
        let b: KvTraceArtifacts = kv_trace_run(&trace_params(cpus, 7));
        assert_eq!(
            a.chrome_json, b.chrome_json,
            "chrome export differs across reruns at cpus={cpus}"
        );
        assert_eq!(
            a.metrics_body, b.metrics_body,
            "metrics body differs across reruns at cpus={cpus}"
        );
        assert!(a.chrome_json.starts_with("{\"traceEvents\":["));
        assert!(a.chrome_json.trim_end().ends_with('}'));
        assert!(
            a.chrome_json.contains("\"ph\":\"X\""),
            "wait slices present"
        );
        assert!(
            a.chrome_json.contains("\"name\":\"kv\""),
            "session spans named"
        );
    }
    // Different seeds must actually change the trace.
    let a = kv_trace_run(&trace_params(1, 7));
    let b = kv_trace_run(&trace_params(1, 8));
    assert_ne!(a.chrome_json, b.chrome_json);
}

#[test]
fn buffer_pool_metrics_expose_on_opt_in() {
    let tel = Telemetry::new();
    // Off by default: the sources are process-global, so hubs that diff
    // byte-exact artifacts across reruns must not inherit them.
    assert!(
        !tel.registry().expose().contains("eveth_buf_"),
        "buffer-pool metrics must be opt-in"
    );
    tel.register_buffer_pool_metrics();

    // Drive the fabric so the counters are demonstrably live.
    let mut b = bytes::BufferPool::global().acquire();
    b.extend_from_slice(b"counted payload");
    drop(b.freeze());

    let body = tel.registry().expose();
    assert!(body.contains("# TYPE eveth_buf_bytes_copied_total counter"));
    assert!(body.contains("# TYPE eveth_buf_pool_free_slabs gauge"));
    assert!(body.contains("eveth_buf_slabs_total"));
    assert!(body.contains("eveth_buf_buffers_allocated_total"));
    let copied = tel
        .registry()
        .counter_value("eveth_buf_bytes_copied_total", &[])
        .expect("registered");
    assert!(copied >= 15, "the staged payload was counted, got {copied}");
}

#[test]
fn annotation_is_uncharged_and_local_to_its_thread() {
    // Two identical runs, one with span names attached everywhere, one
    // without: virtual time and the report must not move — the recorder
    // stays off the report path.
    let run = |annotate: bool| {
        let tel = Telemetry::new();
        let sim = sim_with_telemetry(&tel);
        let body = eveth::do_m! {
            sys_sleep(MILLIS);
            sys_nbio(|| ())
        };
        sim.spawn(if annotate { span("worker", body) } else { body });
        sim.run();
        sim.report()
    };
    let named = run(true);
    let plain = run(false);
    assert_eq!(
        named.now, plain.now,
        "annotation must not move virtual time"
    );
    assert_eq!(named.timer_wait_ns, plain.timer_wait_ns);
}
