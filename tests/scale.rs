//! The C1M scale scenarios behind `fig_scale` (`eveth_bench::figscale`),
//! asserted at test scale:
//!
//! * determinism — a churn cell produces identical results across reruns
//!   at every CPU count (the property that makes `BENCH_scale.json`
//!   byte-identical across processes, which CI diffs);
//! * thundering herd — with every client on one key, the store's lock
//!   wait concentrates on the single hot shard;
//! * slowloris — the idle deadline reaps exactly the slow readers, never
//!   live traffic;
//! * churn hygiene — after a connect/disconnect storm the shutdown
//!   broadcast holds zero physical waiter registrations beyond the
//!   acceptor's and no monadic thread outlives the drain (the
//!   leak/accumulation regression class this PR fixes).

use eveth_bench::workloads::{
    churn_run, kv_server_run, resident_run, slowloris_run, ChurnParams, KvRunParams,
    ResidentParams, ScaleRunResult, SlowlorisParams,
};
use eveth_core::time::MILLIS;
use eveth_simos::cost::CostModel;

/// Everything in a [`ScaleRunResult`] that must be a pure function of
/// (params, seed): the memory columns are excluded because in-process
/// reruns share one allocator whose live/peak state is path-dependent
/// (fresh-process reruns of the binary ARE byte-identical, and CI
/// verifies that with `cmp`).
fn fingerprint(r: &ScaleRunResult) -> (u64, u64, u64, u64, u64, u64, u64, usize, i64) {
    (
        r.elapsed,
        r.ops,
        r.p50_ns,
        r.p99_ns,
        r.io_wait_ns,
        r.lock_wait_ns,
        r.accepted,
        r.shutdown_physical_waiters,
        r.live_threads_after,
    )
}

#[test]
fn churn_cell_is_deterministic_across_reruns_at_every_cpu_count() {
    for cpus in [1, 4] {
        let p = ChurnParams {
            cpus,
            connections: 1_000,
            concurrent: 64,
            payload: 64,
        };
        let a = churn_run(&p);
        let b = churn_run(&p);
        assert_eq!(
            fingerprint(&a),
            fingerprint(&b),
            "churn cell must be deterministic at cpus={cpus}"
        );
        assert_eq!(a.ops, 1_000);
    }
}

#[test]
fn resident_cell_is_deterministic_across_reruns() {
    let p = ResidentParams {
        cpus: 4,
        connections: 256,
        payload: 64,
    };
    let a = resident_run(&p);
    let b = resident_run(&p);
    assert_eq!(fingerprint(&a), fingerprint(&b));
    assert_eq!(a.shutdown_physical_waiters, 256, "all sessions live");
    assert_eq!(a.live_threads_after, 0);
}

#[test]
fn thundering_herd_concentrates_lock_wait_on_the_hot_shard() {
    // The fig_scale herd cell at test scale: one key, eight shards —
    // every client hammers the same gate while seven shards idle.
    let r = kv_server_run(&KvRunParams {
        cost: CostModel::monadic(),
        cpus: 4,
        slice: 8,
        app_tcp: false,
        loopback: true,
        shards: 8,
        stm: false,
        clients: 32,
        batches_per_conn: 8,
        pipeline_depth: 8,
        set_percent: 10,
        keys: 1,
        value_bytes: 100,
        preload: false,
        seed: 42,
    });
    assert_eq!(r.responses, 32 * 8 * 8);
    assert!(
        r.store_lock_wait_ns > 0,
        "a single-key herd over 32 clients must contend"
    );
    assert!(
        r.hot_shard_lock_wait_ns * 10 >= r.store_lock_wait_ns * 9,
        "hot shard must hold >= 90% of store lock wait ({} of {})",
        r.hot_shard_lock_wait_ns,
        r.store_lock_wait_ns
    );
}

#[test]
fn slowloris_readers_are_reaped_exactly_and_leave_nothing_behind() {
    let r = slowloris_run(&SlowlorisParams {
        cpus: 4,
        slow: 48,
        busy: 16,
        cycles: 16,
        payload: 64,
        idle_timeout: 10 * MILLIS,
    });
    assert_eq!(r.idle_reaped, 48, "exactly the slow readers are reaped");
    assert_eq!(r.ops, 16 * 16, "live traffic is untouched");
    assert_eq!(r.accepted, 48 + 16);
    assert_eq!(r.shutdown_physical_waiters, 0);
    assert_eq!(r.live_threads_after, 0);
}

#[test]
fn churn_storm_leaves_no_waiter_residue_or_leaked_threads() {
    let r = churn_run(&ChurnParams {
        cpus: 4,
        connections: 10_000,
        concurrent: 256,
        payload: 64,
    });
    assert_eq!(r.ops, 10_000);
    assert_eq!(r.accepted, 10_000);
    assert_eq!(
        r.shutdown_physical_waiters, 0,
        "10k ended sessions must all have withdrawn from the shutdown broadcast"
    );
    assert_eq!(r.live_threads_after, 0, "no thread outlives the drain");
    assert_eq!(r.idle_reaped, 0, "no idle deadline configured");
}
