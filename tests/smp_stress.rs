//! SMP stress: many monadic threads across several OS workers, hammering
//! every synchronization primitive at once (paper §4.4: "multiple monadic
//! threads make progress simultaneously").

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use eveth::core::runtime::Runtime;
use eveth::core::sync::{Chan, MVar, Mutex, SyncChan};
use eveth::core::syscall::*;
use eveth::stm::{atomically_m, TVar};
use eveth::{do_m, for_each_m, loop_m, Loop, ThreadM};

#[test]
fn hundred_thousand_threads_complete() {
    let rt = Runtime::builder().workers(4).build();
    const N: u64 = 100_000;
    let counter = Arc::new(AtomicU64::new(0));
    for _ in 0..N {
        let c = Arc::clone(&counter);
        rt.spawn(do_m! {
            sys_yield();
            sys_nbio(move || { c.fetch_add(1, Ordering::Relaxed); })
        });
    }
    let watch = Arc::clone(&counter);
    rt.block_on(loop_m((), move |()| {
        let watch = Arc::clone(&watch);
        do_m! {
            sys_sleep(eveth::core::time::MILLIS);
            let v <- sys_nbio(move || watch.load(Ordering::Relaxed));
            ThreadM::pure(if v == N { Loop::Break(()) } else { Loop::Continue(()) })
        }
    }));
    assert_eq!(counter.load(Ordering::Relaxed), N);
    assert!(rt.stats().spawned >= N);
    rt.shutdown();
}

#[test]
fn mixed_primitive_stress() {
    let rt = Runtime::builder().workers(4).build();
    const WORKERS: u64 = 32;
    const ROUNDS: u64 = 50;

    let mutex = Mutex::new();
    let guarded = Arc::new(AtomicU64::new(0));
    let chan: Chan<u64> = Chan::new();
    let bounded: SyncChan<u64> = SyncChan::new(4);
    let mv: MVar<u64> = MVar::new_empty();
    let tv: TVar<u64> = TVar::new(0);
    let done = Arc::new(AtomicU64::new(0));

    // Producers: push through every primitive.
    for w in 0..WORKERS {
        let mutex = mutex.clone();
        let guarded = Arc::clone(&guarded);
        let chan = chan.clone();
        let bounded = bounded.clone();
        let tv = tv.clone();
        let done = Arc::clone(&done);
        rt.spawn(do_m! {
            for_each_m(0..ROUNDS, move |i| {
                let mutex = mutex.clone();
                let guarded = Arc::clone(&guarded);
                let chan = chan.clone();
                let bounded = bounded.clone();
                let tv = tv.clone();
                do_m! {
                    mutex.with(sys_nbio(move || { guarded.fetch_add(1, Ordering::Relaxed); }));
                    chan.write(w * ROUNDS + i);
                    bounded.write(i);
                    atomically_m(move |t| {
                        let v = t.read(&tv)?;
                        t.write(&tv, v + 1);
                        Ok(())
                    })
                }
            });
            sys_nbio(move || { done.fetch_add(1, Ordering::Relaxed); })
        });
    }
    // Consumers for the channels.
    let chan_seen = Arc::new(AtomicU64::new(0));
    let bounded_seen = Arc::new(AtomicU64::new(0));
    for _ in 0..4 {
        let chan = chan.clone();
        let seen = Arc::clone(&chan_seen);
        rt.spawn(eveth::forever_m(move || {
            let seen = Arc::clone(&seen);
            chan.read().bind(move |_| {
                sys_nbio(move || {
                    seen.fetch_add(1, Ordering::Relaxed);
                })
            })
        }));
        let bounded = bounded.clone();
        let seen = Arc::clone(&bounded_seen);
        rt.spawn(eveth::forever_m(move || {
            let seen = Arc::clone(&seen);
            bounded.read().bind(move |_| {
                sys_nbio(move || {
                    seen.fetch_add(1, Ordering::Relaxed);
                })
            })
        }));
    }
    // MVar ping to make sure it is exercised under contention too.
    let mv2 = mv.clone();
    rt.spawn(for_each_m(0..100u64, move |i| mv2.put(i)));
    let mv3 = mv.clone();
    rt.spawn(for_each_m(0..100u64, move |_| mv3.take().map(|_| ())));

    // Wait for all producers and both channel counters.
    let total = WORKERS * ROUNDS;
    let watch = move || {
        let done = Arc::clone(&done);
        let chan_seen = Arc::clone(&chan_seen);
        let bounded_seen = Arc::clone(&bounded_seen);
        move || {
            done.load(Ordering::Relaxed) == WORKERS
                && chan_seen.load(Ordering::Relaxed) == total
                && bounded_seen.load(Ordering::Relaxed) == total
        }
    }();
    rt.block_on(loop_m((), move |()| {
        let watch = watch.clone();
        do_m! {
            sys_sleep(eveth::core::time::MILLIS);
            let ok <- sys_nbio(watch);
            ThreadM::pure(if ok { Loop::Break(()) } else { Loop::Continue(()) })
        }
    }));

    assert_eq!(guarded.load(Ordering::Relaxed), total);
    assert_eq!(tv.read_now(), total);
    assert!(rt.uncaught_exceptions().is_empty());
    rt.shutdown();
}

#[test]
fn work_is_actually_parallel() {
    // Wall-clock-free SMP overlap assertion: count concurrently-OPEN
    // critical sections. Each section lives entirely inside one
    // `sys_nbio` step, and a worker interprets a step to completion
    // before it can pick up any other task — so observing two sections
    // open at the same instant proves two `worker_main` OS threads were
    // executing monadic code simultaneously (true hardware parallelism,
    // or OS preemption interleaving on a single-CPU container). Either
    // way the runtime demonstrably does not serialize its workers behind
    // a global lock, and no wall-clock threshold is involved, so this
    // bites on 1-CPU CI machines instead of self-skipping.
    let rt = Runtime::builder().workers(4).slice(8).build();
    let in_flight = Arc::new(AtomicU64::new(0));
    let peak = Arc::new(AtomicU64::new(0));

    const TASKS: u64 = 8;
    const ROUNDS: u64 = 8;
    const MAX_WAVES: usize = 16;

    for wave in 0..MAX_WAVES {
        if peak.load(Ordering::SeqCst) >= 2 {
            break;
        }
        let done: Chan<()> = Chan::new();
        for t in 0..TASKS {
            let in_flight = Arc::clone(&in_flight);
            let peak = Arc::clone(&peak);
            let done = done.clone();
            rt.spawn(do_m! {
                for_each_m(0..ROUNDS, move |round| {
                    let in_flight = Arc::clone(&in_flight);
                    let peak = Arc::clone(&peak);
                    do_m! {
                        sys_nbio(move || {
                            let open = in_flight.fetch_add(1, Ordering::SeqCst) + 1;
                            peak.fetch_max(open, Ordering::SeqCst);
                            // Spin long enough (~ms-scale) that, on one
                            // CPU, the OS preempts a worker mid-section
                            // and lets another worker open its own.
                            let mut acc: u64 = t ^ round;
                            for i in 0..2_000_000u64 {
                                acc = acc.wrapping_add(i ^ (acc << 1));
                            }
                            std::hint::black_box(acc);
                            in_flight.fetch_sub(1, Ordering::SeqCst);
                        });
                        sys_yield()
                    }
                });
                done.write(())
            });
        }
        rt.block_on(for_each_m(0..TASKS, {
            let done = done.clone();
            move |_| done.read().map(|_| ())
        }));
        if wave + 1 == MAX_WAVES && peak.load(Ordering::SeqCst) < 2 {
            eprintln!("exhausted {MAX_WAVES} waves without observing overlap");
        }
    }

    assert_eq!(in_flight.load(Ordering::SeqCst), 0, "sections all closed");
    assert!(
        peak.load(Ordering::SeqCst) >= 2,
        "no two critical sections were ever open at once across {} waves — \
         workers are serialized (peak = {})",
        MAX_WAVES,
        peak.load(Ordering::SeqCst)
    );
    rt.shutdown();
}
