//! The paper's Figure 13 (`send_file`) pattern: exceptions raised deep in
//! an I/O pipeline run cleanup handlers and propagate outward — across
//! AIO, blocking I/O, and lock boundaries.

use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Arc;

use bytes::Bytes;
use eveth::core::aio::{AioCompletion, AioFile, IoError};
use eveth::core::runtime::Runtime;
use eveth::core::sync::Mutex;
use eveth::core::syscall::*;
use eveth::{do_m, ThreadM};

/// A file whose reads fail after `good_reads` successes — fault injection
/// for the copy loop.
struct FlakyFile {
    reads: AtomicU32,
    good_reads: u32,
}

impl AioFile for FlakyFile {
    fn len(&self) -> u64 {
        1 << 20
    }
    fn submit_read(&self, _offset: u64, len: usize, done: AioCompletion) {
        let n = self.reads.fetch_add(1, Ordering::SeqCst);
        if n < self.good_reads {
            done.complete(Ok(Bytes::from(vec![7u8; len])));
        } else {
            done.complete(Err(IoError::Other("injected disk failure".into())));
        }
    }
    fn submit_write(&self, _offset: u64, _data: Bytes, done: AioCompletion) {
        done.complete(Err(IoError::Unsupported));
    }
}

/// The paper's send_file: open, copy with a handler that closes the file
/// and rethrows (Figure 13).
fn send_file(file: Arc<dyn AioFile>, sent: Arc<AtomicU32>, closed: Arc<AtomicU32>) -> ThreadM<()> {
    let close_count = Arc::clone(&closed);
    do_m! {
        // "file_open" through the blocking-I/O pool, as the paper does.
        let fd <- sys_blio(move || file);
        sys_finally(
            copy_data(fd, sent),
            move || {
                let c = Arc::clone(&close_count);
                sys_nbio(move || { c.fetch_add(1, Ordering::SeqCst); })
            },
        )
    }
}

fn copy_data(fd: Arc<dyn AioFile>, sent: Arc<AtomicU32>) -> ThreadM<()> {
    eveth::loop_m(0u64, move |offset| {
        let sent = Arc::clone(&sent);
        sys_aio_read(&fd, offset, 4096).bind(move |res| match res {
            Ok(data) if data.is_empty() => ThreadM::pure(eveth::Loop::Break(())),
            Ok(data) => {
                sent.fetch_add(data.len() as u32, Ordering::SeqCst);
                ThreadM::pure(eveth::Loop::Continue(offset + data.len() as u64))
            }
            Err(e) => sys_throw(eveth::core::Exception::with_payload("read failed", e)),
        })
    })
}

#[test]
fn cleanup_runs_and_exception_propagates() {
    let rt = Runtime::builder().workers(2).build();
    let file = Arc::new(FlakyFile {
        reads: AtomicU32::new(0),
        good_reads: 3,
    });
    let sent = Arc::new(AtomicU32::new(0));
    let closed = Arc::new(AtomicU32::new(0));
    let err = rt
        .block_on_result(send_file(
            file as Arc<dyn AioFile>,
            Arc::clone(&sent),
            Arc::clone(&closed),
        ))
        .expect_err("the injected failure must escape send_file");
    assert_eq!(err.message(), "read failed");
    assert_eq!(
        err.payload_ref::<IoError>(),
        Some(&IoError::Other("injected disk failure".into()))
    );
    assert_eq!(sent.load(Ordering::SeqCst), 3 * 4096, "three good reads");
    assert_eq!(closed.load(Ordering::SeqCst), 1, "file closed exactly once");
    rt.shutdown();
}

#[test]
fn cleanup_runs_on_success_too() {
    let rt = Runtime::builder().workers(1).build();
    let file = Arc::new(FlakyFile {
        reads: AtomicU32::new(0),
        good_reads: u32::MAX,
    });
    // A short file: make reads return empty after the real length by
    // bounding the copy to 2 reads worth via a small wrapper.
    struct Short(Arc<FlakyFile>);
    impl AioFile for Short {
        fn len(&self) -> u64 {
            8192
        }
        fn submit_read(&self, offset: u64, len: usize, done: AioCompletion) {
            if offset >= 8192 {
                done.complete(Ok(Bytes::new()));
            } else {
                self.0.submit_read(offset, len, done);
            }
        }
        fn submit_write(&self, o: u64, d: Bytes, done: AioCompletion) {
            self.0.submit_write(o, d, done);
        }
    }
    let sent = Arc::new(AtomicU32::new(0));
    let closed = Arc::new(AtomicU32::new(0));
    rt.block_on(send_file(
        Arc::new(Short(file)),
        Arc::clone(&sent),
        Arc::clone(&closed),
    ));
    assert_eq!(sent.load(Ordering::SeqCst), 8192);
    assert_eq!(closed.load(Ordering::SeqCst), 1);
    rt.shutdown();
}

#[test]
fn mutex_with_releases_across_io_failure() {
    let rt = Runtime::builder().workers(2).build();
    let m = Mutex::new();
    let file = Arc::new(FlakyFile {
        reads: AtomicU32::new(0),
        good_reads: 0,
    });
    let body = {
        let file: Arc<dyn AioFile> = file;
        do_m! {
            let res <- sys_aio_read(&file, 0, 128);
            match res {
                Ok(_) => ThreadM::pure(()),
                Err(e) => sys_throw(eveth::core::Exception::with_payload("io", e)),
            }
        }
    };
    let err = rt.block_on_result(m.with(body)).expect_err("must throw");
    assert_eq!(err.message(), "io");
    assert!(!m.is_locked(), "lock released by the exception path");
    rt.shutdown();
}
