//! `eveth-check` end to end: schedule exploration + the happens-before
//! checker over the deterministic sim.
//!
//! The load-bearing claims:
//!
//! * schedule 0 of every exploration is the golden Fifo schedule — the
//!   one every other test runs — and it stays green;
//! * PCT schedules are *distinct* (different fingerprints) yet every one
//!   is replayable: rerunning `(index, policy)` reproduces the digest
//!   byte for byte, including on a failing schedule;
//! * a planted ABBA mutex deadlock that the Fifo schedule never hits is
//!   caught by exploration with a two-node waits-for cycle naming both
//!   telemetry spans, and the lock-ordered fix is clean;
//! * a hand-built lost wakeup — a wake consumed by a cancelled `choose`
//!   loser on a baton-less channel clone — is flagged with the starved
//!   thread and the availability evidence, and the pass-the-baton fix is
//!   clean;
//! * unsynchronized writes to a declared [`Shared`] cell race; the same
//!   writes under a monadic `Mutex` are ordered by the release→acquire
//!   edge and pass;
//! * the existing suites — `Chan`/`MVar`/`Signal`/`choose`, STM, the
//!   service framework, the KV server and the cluster router — all pass
//!   the checker under exploration (zero false positives).
//!
//! Schedule counts scale with `EVETH_CHECK_SCHEDULES` (CI smoke) and
//! `EVETH_FULL=1` (deep sweep); on an unexpected red each harness writes
//! the `(seed, config)` replay artifact to `target/check-failures.json`.

use std::collections::VecDeque;
use std::sync::{Arc, Mutex as StdMutex};

use bytes::Bytes;
use eveth::core::check;
use eveth::core::engine::WaitKind;
use eveth::core::event::{branch_waiter, choose, sync, Branch, Event, Registration, Signal};
use eveth::core::net::{recv_exact, recv_to_end, send_all, Conn, Endpoint, HostId, NetStack};
use eveth::core::reactor::WaitQ;
use eveth::core::service::{Server, ServerConfig, Service, Step};
use eveth::core::sync::{Chan, MVar, Mutex};
use eveth::core::syscall::{sys_annotate, sys_nbio, sys_sleep};
use eveth::core::time::MILLIS;
use eveth::kv::loadgen::{client_thread, KvLoadConfig, KvLoadStats};
use eveth::kv::server::{KvConfig, KvServer};
use eveth::kv::store::StoreConfig;
use eveth::simos::SimRuntime;
use eveth::stm::{atomically_m, TVar};
use eveth::{do_m, for_each_m, loop_m, Loop, ThreadM};
use eveth_check::{schedule_count, Exploration, Explorer, Shared, Violation};

// ---------------------------------------------------------------------------
// Helpers.
// ---------------------------------------------------------------------------

/// Asserts every schedule passed; on an unexpected red, writes the
/// `(seed, config)` replay artifact to `target/check-failures.json` first.
fn assert_clean(name: &str, explorer: &Explorer, ex: &Exploration) {
    if let Some(json) = ex.failure_json(explorer.seed, &explorer.config) {
        std::fs::create_dir_all("target").ok();
        std::fs::write("target/check-failures.json", &json).ok();
        panic!(
            "{name}: {} of {} schedules failed \
             (replay artifact at target/check-failures.json):\n{json}",
            ex.failures().len(),
            ex.runs.len(),
        );
    }
}

/// Monadic spin: sleeps virtual time until `ready()` holds. Used to
/// sequence the lost-wakeup repro identically under every policy.
fn wait_until(ready: impl Fn() -> bool + Send + Sync + 'static) -> ThreadM<()> {
    let ready = Arc::new(ready);
    loop_m((), move |()| {
        let ready = Arc::clone(&ready);
        sys_nbio(move || ready()).bind(|ok| {
            if ok {
                ThreadM::pure(Loop::Break(()))
            } else {
                sys_sleep(MILLIS).map(Loop::Continue)
            }
        })
    })
}

// ---------------------------------------------------------------------------
// Exploration mechanics: golden schedule 0, distinct PCT schedules,
// byte-identical replay.
// ---------------------------------------------------------------------------

/// `Chan`/`MVar`/`Signal`/`choose` workload: two producers, two
/// consumers racing both channels against a stop broadcast, a tally
/// MVar churned per item. Fully drains — leak report must be clean.
fn primitives_program(sim: &SimRuntime) -> Result<(), String> {
    let a: Chan<u64> = Chan::new();
    let b: Chan<u64> = Chan::new();
    let sink: Chan<u64> = Chan::new();
    let tally: MVar<u64> = MVar::new(0);
    let stop = Signal::new();

    for (ch, base) in [(a.clone(), 100u64), (b.clone(), 200u64)] {
        sim.spawn(do_m! {
            sys_annotate(format!("producer-{base}"));
            for_each_m(0..4u64, move |n| ch.write(base + n))
        });
    }
    for c in 0..2u64 {
        let (a, b, stop, sink) = (a.clone(), b.clone(), stop.clone(), sink.clone());
        sim.spawn(do_m! {
            sys_annotate(format!("consumer-{c}"));
            loop_m((), move |()| {
                let sink = sink.clone();
                sync(choose(vec![
                    a.read_evt().wrap(Some),
                    b.read_evt().wrap(Some),
                    stop.wait_evt().wrap(|()| None),
                ]))
                .bind(move |got| match got {
                    Some(v) => sink.write(v).map(|()| Loop::Continue(())),
                    None => ThreadM::pure(Loop::Break(())),
                })
            })
        });
    }

    let tally2 = tally.clone();
    let total = sim
        .block_on(do_m! {
            sys_annotate("collector");
            for_each_m(0..8u64, move |_| {
                let tally = tally.clone();
                do_m! {
                    sink.read();
                    let n <- tally.take();
                    tally.put(n + 1)
                }
            });
            sys_nbio(move || stop.fire());
            tally2.take()
        })
        .map_err(|e| format!("collector failed: {e:?}"))?;
    if total != 8 {
        return Err(format!("expected 8 items through the sinks, got {total}"));
    }
    Ok(())
}

#[test]
fn exploration_keeps_schedule_zero_golden_and_replays_byte_identically() {
    let explorer = Explorer::new(schedule_count(8, 48), 0xC0FFEE);
    let ex = explorer.explore(primitives_program);
    assert_clean("primitives", &explorer, &ex);

    // Schedule 0 is the golden Fifo schedule.
    assert_eq!(
        ex.runs[0].policy,
        eveth::simos::desrt::SchedulePolicy::Fifo,
        "schedule 0 must be the Fifo golden schedule"
    );

    // The seed family actually explores: most PCT fingerprints differ.
    let n = ex.runs.len();
    assert!(
        ex.distinct_schedules() > n / 2,
        "expected more than {}/{} distinct schedules, got {}",
        n / 2,
        n,
        ex.distinct_schedules()
    );

    // The whole suite drains: nothing parked, registered or armed.
    for r in &ex.runs {
        assert!(
            r.report.leak.is_clean(),
            "schedule {} leaked: {:?}",
            r.index,
            r.report.leak
        );
    }

    // Replay: the same (index, policy) reproduces the digest byte for
    // byte — fingerprint, findings and final SimReport included.
    let pick = &ex.runs[n.min(3) - 1];
    let again = explorer.run_one(pick.index, pick.policy.clone(), &primitives_program);
    assert_eq!(
        pick.digest(),
        again.digest(),
        "replaying schedule {} must be byte-identical",
        pick.index
    );
}

// ---------------------------------------------------------------------------
// Planted ABBA deadlock: invisible to Fifo, caught by exploration.
// ---------------------------------------------------------------------------

/// Two monadic threads and two mutexes. `t1` takes A, hands `t2` a
/// token, then takes B; `t2` takes the locks in the *opposite* order
/// once woken (`fixed = false`) or the same order (`fixed = true`).
/// Under Fifo the handoff serializes the critical sections; a PCT
/// schedule that prioritizes `t2` interleaves them into a cycle.
fn abba_program(fixed: bool) -> impl Fn(&SimRuntime) -> Result<(), String> {
    move |sim| {
        let a = Mutex::new();
        let b = Mutex::new();
        let token: Chan<()> = Chan::new();
        {
            let (a, b, token) = (a.clone(), b.clone(), token.clone());
            sim.spawn(do_m! {
                sys_annotate("abba-t1");
                a.lock();
                token.write(());
                b.lock();
                b.unlock();
                a.unlock()
            });
        }
        {
            let (first, second) = if fixed {
                (a.clone(), b.clone())
            } else {
                (b.clone(), a.clone())
            };
            sim.spawn(do_m! {
                sys_annotate("abba-t2");
                token.read();
                first.lock();
                second.lock();
                second.unlock();
                first.unlock()
            });
        }
        Ok(())
    }
}

#[test]
fn abba_deadlock_is_caught_by_exploration_and_lock_ordering_fixes_it() {
    let explorer = Explorer::new(16, 0xABBA);
    let broken = abba_program(false);
    let ex = explorer.explore(&broken);

    // The golden schedule never hits it: the bug is schedule-dependent.
    assert!(
        ex.runs[0].report.passed(),
        "Fifo must stay green on the ABBA program: {:?}",
        ex.runs[0].report.violations
    );

    // Some explored schedule does, with the expected two-node cycle.
    let caught: Vec<_> = ex
        .runs
        .iter()
        .filter(|r| {
            r.report
                .violations
                .iter()
                .any(|v| matches!(v, Violation::Deadlock { .. }))
        })
        .collect();
    assert!(
        !caught.is_empty(),
        "exploration must catch the ABBA deadlock in {} schedules",
        ex.runs.len()
    );
    let bad = caught[0];
    let cycle = bad
        .report
        .violations
        .iter()
        .find_map(|v| match v {
            Violation::Deadlock { cycle } => Some(cycle),
            _ => None,
        })
        .unwrap();
    assert_eq!(cycle.len(), 2, "ABBA is a two-node cycle: {cycle:?}");
    let spans: Vec<_> = cycle.iter().filter_map(|n| n.span.clone()).collect();
    assert!(
        spans.contains(&"abba-t1".to_string()) && spans.contains(&"abba-t2".to_string()),
        "cycle must name both telemetry spans: {spans:?}"
    );
    for node in cycle {
        assert!(
            node.res.starts_with("Mutex#"),
            "waits-for edges are over the mutexes: {node:?}"
        );
    }
    // The deadlocked threads are also reported as leaked.
    assert_eq!(
        bad.report.leak.live_threads.len(),
        2,
        "{:?}",
        bad.report.leak
    );

    // A failing schedule replays byte-identically from (index, policy).
    let again = explorer.run_one(bad.index, bad.policy.clone(), &broken);
    assert_eq!(
        bad.digest(),
        again.digest(),
        "failing schedule {} must replay byte-identically",
        bad.index
    );

    // Consistent lock ordering: clean on every schedule, nothing leaks.
    let fixed = abba_program(true);
    let ex_fixed = explorer.explore(&fixed);
    assert_clean("abba-fixed", &explorer, &ex_fixed);
    for r in &ex_fixed.runs {
        assert!(
            r.report.leak.is_clean(),
            "fixed ABBA leaked: {:?}",
            r.report.leak
        );
    }
}

// ---------------------------------------------------------------------------
// Hand-built lost wakeup: a wake consumed by a cancelled choose loser.
// ---------------------------------------------------------------------------

/// A deliberately broken unbounded channel: identical to [`Chan`] except
/// that with `fixed = false` its registration has **no baton** — a wake
/// consumed by a `choose` loser that commits elsewhere is dropped
/// instead of handed to the next waiter. With `fixed = true` the baton
/// is restored and the channel is lossless again.
#[derive(Clone)]
struct BrokenChan {
    st: Arc<StdMutex<BrokenSt>>,
    fixed: bool,
}

struct BrokenSt {
    queue: VecDeque<u32>,
    takers: WaitQ,
    rid: u64,
}

impl BrokenSt {
    fn op(&self, kind: check::OpKind) {
        check::op(
            self.rid,
            check::ResKind::Chan,
            kind,
            [self.queue.len() as u64, 0],
        );
    }
}

impl BrokenChan {
    fn new(fixed: bool) -> Self {
        BrokenChan {
            st: Arc::new(StdMutex::new(BrokenSt {
                queue: VecDeque::new(),
                takers: WaitQ::new(),
                rid: check::new_rid(),
            })),
            fixed,
        }
    }

    fn takers(&self) -> usize {
        self.st.lock().unwrap().takers.len()
    }

    fn push(&self, v: u32) {
        let mut st = self.st.lock().unwrap();
        st.queue.push_back(v);
        st.op(check::OpKind::Publish);
        let _scope = check::wake_scope(st.rid);
        st.takers.wake_one();
    }

    fn read_evt(&self) -> Event<u32> {
        let poll_st = Arc::clone(&self.st);
        let reg_st = Arc::clone(&self.st);
        let fixed = self.fixed;
        Event::from_fn(move |_t0, out| {
            out.push(Branch::new(
                WaitKind::Lock,
                move |_now| {
                    let mut st = poll_st.lock().unwrap();
                    let v = st.queue.pop_front();
                    if v.is_some() {
                        st.op(check::OpKind::Consume);
                    }
                    v
                },
                move |u| {
                    let waiter = branch_waiter(u, WaitKind::Lock);
                    let mut st = reg_st.lock().unwrap();
                    if !st.queue.is_empty() {
                        let rid = st.rid;
                        drop(st);
                        let _scope = check::wake_scope(rid);
                        waiter.wake();
                        return Registration::none();
                    }
                    st.op(check::OpKind::BlockTake);
                    let slot = st.takers.push(waiter);
                    drop(st);
                    if fixed {
                        let baton_st = Arc::clone(&reg_st);
                        Registration::new(
                            move || slot.take().is_some(),
                            move || {
                                let mut st = baton_st.lock().unwrap();
                                if !st.queue.is_empty() {
                                    st.op(check::OpKind::Baton);
                                    let _scope = check::wake_scope(st.rid);
                                    st.takers.wake_one();
                                }
                            },
                        )
                    } else {
                        // The planted bug: a consumed wake is never
                        // passed on when this branch loses the choose.
                        Registration::with_take(move || slot.take().is_some())
                    }
                },
            ));
        })
    }
}

/// The repro, sequenced identically under every policy: a chooser parks
/// on `{signal, broken.read}`, a second reader parks behind it, then a
/// producer enqueues one item *and* fires the signal in one step. The
/// chooser's wake is consumed, the signal branch wins, and without the
/// baton the queued item never reaches the second reader.
fn lost_wakeup_program(fixed: bool) -> impl Fn(&SimRuntime) -> Result<(), String> {
    move |sim| {
        let broken = BrokenChan::new(fixed);
        let sig = Signal::new();
        {
            let (b, s) = (broken.clone(), sig.clone());
            sim.spawn(do_m! {
                sys_annotate("chooser");
                let _won <- sync(choose(vec![
                    s.wait_evt().wrap(|()| None),
                    b.read_evt().wrap(Some),
                ]));
                ThreadM::pure(())
            });
        }
        {
            let b = broken.clone();
            let gate = broken.clone();
            sim.spawn(do_m! {
                sys_annotate("starved");
                wait_until(move || gate.takers() >= 1);
                let _v <- sync(b.read_evt());
                ThreadM::pure(())
            });
        }
        {
            let (b, s) = (broken.clone(), sig.clone());
            let gate = broken.clone();
            sim.spawn(do_m! {
                sys_annotate("producer");
                wait_until(move || gate.takers() >= 2);
                sys_nbio(move || {
                    b.push(1);
                    s.fire();
                })
            });
        }
        Ok(())
    }
}

#[test]
fn lost_wakeup_from_cancelled_choose_loser_is_caught_and_baton_fixes_it() {
    let explorer = Explorer::new(schedule_count(4, 16), 0x105E);
    let broken = lost_wakeup_program(false);
    let ex = explorer.explore(&broken);

    // The starvation is schedule-independent (the repro self-sequences),
    // so every schedule must flag it — including Fifo.
    for r in &ex.runs {
        let lost = r.report.violations.iter().find_map(|v| match v {
            Violation::LostWakeup {
                span,
                res,
                side,
                reg_avail,
                final_avail,
                ..
            } => Some((span.clone(), res.clone(), *side, *reg_avail, *final_avail)),
            _ => None,
        });
        let (span, res, side, reg_avail, final_avail) = lost.unwrap_or_else(|| {
            panic!(
                "schedule {} must flag the lost wakeup: {:?}",
                r.index, r.report.violations
            )
        });
        assert_eq!(span.as_deref(), Some("starved"), "starved thread named");
        assert!(res.starts_with("Chan#"), "resource is the channel: {res}");
        assert_eq!(side, 0, "taker side");
        assert_eq!(
            (reg_avail, final_avail),
            (0, 1),
            "empty at registration, one item owed"
        );
        // The starved thread is still live at quiescence.
        assert!(!r.report.leak.is_clean(), "{:?}", r.report.leak);
    }

    // Restore the baton: clean on every schedule, everything drains.
    let fixed = lost_wakeup_program(true);
    let ex_fixed = explorer.explore(&fixed);
    assert_clean("lost-wakeup-fixed", &explorer, &ex_fixed);
    for r in &ex_fixed.runs {
        assert!(
            r.report.leak.is_clean(),
            "baton fix leaked: {:?}",
            r.report.leak
        );
    }
}

// ---------------------------------------------------------------------------
// Happens-before races on Shared cells.
// ---------------------------------------------------------------------------

/// Two spawned threads increment one [`Shared`] counter. Unsynchronized
/// (`guarded = false`) the writes are unordered by happens-before on
/// *every* schedule; under the monadic mutex the release→acquire edge
/// orders them.
fn race_program(guarded: bool) -> impl Fn(&SimRuntime) -> Result<(), String> {
    move |sim| {
        let counter: Shared<u64> = Shared::new("counter", 0);
        let m = Mutex::new();
        for i in 0..2u64 {
            let counter = counter.clone();
            let m = m.clone();
            let bump = move || {
                counter.update(|v| *v += 1);
            };
            sim.spawn(do_m! {
                sys_annotate(format!("writer-{i}"));
                if guarded { m.with_nbio(bump) } else { sys_nbio(bump) }
            });
        }
        Ok(())
    }
}

#[test]
fn unsynchronized_shared_writes_race_and_the_mutex_guard_is_clean() {
    let explorer = Explorer::new(schedule_count(4, 16), 0x7ACE);
    let ex = explorer.explore(race_program(false));
    for r in &ex.runs {
        let race = r.report.violations.iter().find_map(|v| match v {
            Violation::Race {
                cell,
                first,
                second,
            } => Some((cell.clone(), first.clone(), second.clone())),
            _ => None,
        });
        let (cell, first, second) = race.unwrap_or_else(|| {
            panic!(
                "schedule {} must flag the race: {:?}",
                r.index, r.report.violations
            )
        });
        assert_eq!(cell, "counter");
        assert!(first.2 && second.2, "both accesses are writes");
    }

    let ex_guarded = explorer.explore(race_program(true));
    assert_clean("race-guarded", &explorer, &ex_guarded);
}

// ---------------------------------------------------------------------------
// STM under exploration.
// ---------------------------------------------------------------------------

/// Three transactional incrementers plus a `retry`-based auditor that
/// parks until the counter reaches 12 — commit order and the retry
/// wakeups both flow through the checker.
fn stm_program(sim: &SimRuntime) -> Result<(), String> {
    let tv: TVar<u64> = TVar::new(0);
    for w in 0..3u64 {
        let tv = tv.clone();
        sim.spawn(do_m! {
            sys_annotate(format!("stm-{w}"));
            for_each_m(0..4u64, move |_| {
                let tv = tv.clone();
                atomically_m(move |t| {
                    let v = t.read(&tv)?;
                    t.write(&tv, v + 1);
                    Ok(())
                })
            })
        });
    }
    let audit = tv.clone();
    let total = sim
        .block_on(do_m! {
            sys_annotate("stm-auditor");
            atomically_m(move |t| {
                let v = t.read(&audit)?;
                if v < 12 {
                    return t.retry();
                }
                Ok(v)
            })
        })
        .map_err(|e| format!("auditor failed: {e:?}"))?;
    if total != 12 {
        return Err(format!("expected 12 commits, saw {total}"));
    }
    Ok(())
}

#[test]
fn stm_commits_and_retry_wakeups_pass_under_exploration() {
    let explorer = Explorer::new(schedule_count(6, 32), 0x57A7);
    let ex = explorer.explore(stm_program);
    assert_clean("stm", &explorer, &ex);
}

// ---------------------------------------------------------------------------
// The service framework, KV server and cluster router suites.
// ---------------------------------------------------------------------------

use eveth::simos::sockets::{FabricParams, SocketFabric};

struct Echo;

impl Service for Echo {
    type Session = ();

    fn open(&self, _conn: &Arc<dyn Conn>) {}

    fn on_chunk(&self, conn: Arc<dyn Conn>, _session: (), chunk: Bytes) -> ThreadM<Step<()>> {
        send_all(&conn, chunk).map(|sent| match sent {
            Ok(()) => Step::Continue(()),
            Err(_) => Step::Close,
        })
    }
}

/// Connect, echo one chunk, shut down, wait for the drain barrier.
fn echo_program(sim: &SimRuntime) -> Result<(), String> {
    let fabric = SocketFabric::new(sim.clock(), FabricParams::default());
    let server = Server::new(
        fabric.stack(HostId(1)),
        Echo,
        ServerConfig {
            port: 7,
            ..Default::default()
        },
    );
    sim.spawn(server.run());
    let stack = fabric.stack(HostId(2));
    let srv = Arc::clone(&server);
    let echoed = sim
        .block_on(do_m! {
            sys_annotate("echo-client");
            let conn <- stack.connect(Endpoint::new(HostId(1), 7));
            let conn = conn.unwrap();
            let sent <- send_all(&conn, Bytes::from_static(b"ping"));
            let _ = sent.unwrap();
            let back <- recv_exact(&conn, 4);
            sys_nbio(move || srv.shutdown());
            let eof <- conn.recv(16);
            let _ = assert!(eof.unwrap().is_empty(), "session closed by shutdown");
            sync(server.drained_signal().wait_evt());
            ThreadM::pure(back.unwrap())
        })
        .map_err(|e| format!("echo client failed: {e:?}"))?;
    if &echoed[..] != b"ping" {
        return Err(format!("echo mismatch: {echoed:?}"));
    }
    Ok(())
}

#[test]
fn echo_service_drains_clean_under_exploration() {
    let explorer = Explorer::new(schedule_count(4, 16), 0xEC40);
    let ex = explorer.explore(echo_program);
    assert_clean("echo-service", &explorer, &ex);
}

/// The KV server under pipelined load from two client threads, then a
/// graceful shutdown once both report done.
fn kv_program(sim: &SimRuntime) -> Result<(), String> {
    let fabric = SocketFabric::new(sim.clock(), FabricParams::default());
    let server = KvServer::new(
        fabric.stack(HostId(1)),
        KvConfig {
            port: 11211,
            store: StoreConfig {
                shards: 2,
                ..Default::default()
            },
            ..Default::default()
        },
    );
    sim.spawn(server.run());
    let stats = Arc::new(KvLoadStats::default());
    let cfg = Arc::new(KvLoadConfig {
        server: Endpoint::new(HostId(1), 11211),
        batches_per_conn: 2,
        pipeline_depth: 2,
        keys: 8,
        zipf_s: 0.9,
        set_percent: 50,
        value_bytes: 16,
        ttl_secs: 0,
        seed: 7,
    });
    let done: Chan<()> = Chan::new();
    for id in 0..2u64 {
        let d = done.clone();
        let body = client_thread(
            fabric.stack(HostId(2 + id as u32)) as Arc<dyn NetStack>,
            Arc::clone(&cfg),
            Arc::clone(&stats),
            id,
        );
        sim.spawn(do_m! {
            body;
            d.write(())
        });
    }
    let srv = Arc::clone(&server);
    sim.block_on(do_m! {
        sys_annotate("kv-coordinator");
        done.read();
        done.read();
        sys_nbio(move || srv.shutdown());
        sync(server.drained_signal().wait_evt())
    })
    .map_err(|e| format!("kv coordinator failed: {e:?}"))?;
    if stats.responses() == 0 {
        return Err("kv load produced no responses".into());
    }
    Ok(())
}

#[test]
fn kv_server_load_passes_under_exploration() {
    let explorer = Explorer::new(schedule_count(3, 12), 0x4B4B);
    let ex = explorer.explore(kv_program);
    assert_clean("kv-server", &explorer, &ex);
}

/// Two KV backends behind the PR 9 router; a pipelined
/// `set`/`get`/`quit` script through the router, then router drain.
fn cluster_program(sim: &SimRuntime) -> Result<(), String> {
    use eveth::cluster::{Router, RouterConfig};

    let fabric = SocketFabric::new(sim.clock(), FabricParams::default());
    let mut backends = Vec::new();
    for h in 1..=2u32 {
        let backend = KvServer::new(
            fabric.stack(HostId(h)),
            KvConfig {
                port: 11211,
                ..Default::default()
            },
        );
        sim.spawn(backend.run());
        backends.push(backend);
    }
    let router = Router::new(
        fabric.stack(HostId(10)),
        RouterConfig {
            port: 11311,
            backends: (1..=2).map(|h| Endpoint::new(HostId(h), 11211)).collect(),
            ..Default::default()
        },
    );
    sim.spawn(router.run());

    let stack = fabric.stack(HostId(20));
    let r2 = Arc::clone(&router);
    let reply = sim
        .block_on(do_m! {
            sys_annotate("cluster-client");
            let conn <- stack.connect(Endpoint::new(HostId(10), 11311));
            let conn = conn.unwrap();
            let sent <- send_all(&conn, Bytes::from_static(b"set k0 0 0 2\r\nhi\r\n"));
            let _ = sent.unwrap();
            let stored <- recv_exact(&conn, 8);
            let sent <- send_all(&conn, Bytes::from_static(b"get k0\r\n"));
            let _ = sent.unwrap();
            let value <- recv_exact(&conn, 23);
            let sent <- send_all(&conn, Bytes::from_static(b"quit\r\n"));
            let _ = sent.unwrap();
            let tail <- recv_to_end(&conn, 4096);
            // Shut everything down so the sim can quiesce: the router
            // drains its sessions and each backend's shutdown broadcast
            // also stops its TTL janitor loop.
            sys_nbio(move || {
                r2.shutdown();
                for b in &backends {
                    b.shutdown();
                }
            });
            sync(router.drained_signal().wait_evt());
            let mut reply = stored.unwrap().to_vec();
            let _ = reply.extend_from_slice(&value.unwrap());
            let _ = reply.extend_from_slice(&tail.unwrap());
            ThreadM::pure(reply)
        })
        .map_err(|e| format!("cluster client failed: {e:?}"))?;
    let text = String::from_utf8_lossy(&reply);
    if !(text.contains("STORED") && text.contains("VALUE k0") && text.contains("hi")) {
        return Err(format!("unexpected routed replies: {text:?}"));
    }
    Ok(())
}

#[test]
fn cluster_router_script_passes_under_exploration() {
    let explorer = Explorer::new(schedule_count(3, 12), 0xC125);
    let ex = explorer.explore(cluster_program);
    assert_clean("cluster-router", &explorer, &ex);
}
