//! Integration: the cluster layer — consistent-hash router, hot-key
//! replication, failover — over both socket stacks and under injected
//! faults.
//!
//! The load-bearing claims:
//!
//! * transparency: a 3-node cluster behind the router serves the *same
//!   reply bytes* as a single node, on the kernel-socket model, the
//!   app-level TCP stack, and through a 1%-lossy link;
//! * durability: with R=2 replication, crashing one replica mid-run
//!   loses zero acknowledged writes;
//! * elasticity: swapping ring membership mid-run keeps the cluster
//!   serving (remapped keys miss, nothing errors);
//! * bounded failure: a partitioned backend turns into `SERVER_ERROR`
//!   after the backend timeout instead of a hung client, and service
//!   resumes once the partition heals.

use std::sync::Arc;

use bytes::Bytes;
use eveth::cluster::{HashRing, Router, RouterConfig};
use eveth::core::net::{
    recv_to_end, send_all, Conn, Endpoint, HostId, Listener, NetError, NetStack,
};
use eveth::core::time::MILLIS;
use eveth::glue;
use eveth::kv::protocol::ReplyParser;
use eveth::kv::server::{KvConfig, KvServer};
use eveth::simos::net::{LinkParams, SimNet};
use eveth::simos::sockets::{FabricParams, SocketFabric};
use eveth::simos::SimRuntime;
use eveth::tcp::tcb::TcpConfig;
use eveth::{do_m, loop_m, Loop, ThreadM};

const KV_PORT: u16 = 11211;
const ROUTER_PORT: u16 = 11311;

fn backend(h: u32) -> Endpoint {
    Endpoint::new(HostId(h), KV_PORT)
}

/// Spawns one KV node per host on its stack.
fn spawn_backends(sim: &SimRuntime, stacks: Vec<Arc<dyn NetStack>>) {
    for stack in stacks {
        let server = KvServer::new(
            stack,
            KvConfig {
                port: KV_PORT,
                ..Default::default()
            },
        );
        sim.spawn(server.run());
    }
}

/// Sends `wire` and receives until `expected` command-closing replies
/// have been parsed; appends the raw bytes to `acc`.
fn pipelined(conn: Arc<dyn Conn>, wire: Bytes, expected: usize, acc: Vec<u8>) -> ThreadM<Vec<u8>> {
    let conn_read = Arc::clone(&conn);
    send_all(&conn, wire).bind(move |sent| {
        sent.unwrap();
        loop_m(
            (ReplyParser::new(), acc, 0usize),
            move |(mut parser, mut acc, mut closed)| {
                let conn = Arc::clone(&conn_read);
                conn.recv(64 * 1024).map(move |chunk| {
                    let chunk = chunk.expect("recv ok");
                    assert!(!chunk.is_empty(), "peer hung up mid-reply");
                    acc.extend_from_slice(&chunk);
                    let mut fed = parser.feed_bytes(chunk);
                    while let Some(r) = fed.expect("well-formed reply stream") {
                        if r.closes_command() {
                            closed += 1;
                        }
                        fed = parser.try_next();
                    }
                    if closed >= expected {
                        Loop::Break(acc)
                    } else {
                        Loop::Continue((parser, acc, closed))
                    }
                })
            },
        )
    })
}

/// A deterministic 67-command script: 64 single-key commands plus
/// `version` and two multi-key gets (the router splits those per
/// shard and stitches the VALUE runs back in key order, so the bytes
/// still match a single node). The transparency contract excludes only
/// `gets` cas uniques: version stamps are per-node sequence numbers,
/// so a cluster's differ from a single node's even for identical data.
fn cluster_script() -> Vec<(Bytes, usize)> {
    let mut cmds = vec![Bytes::from_static(b"set ctr 0 0 1\r\n0\r\n")];
    for i in 0..63usize {
        let k = i % 8;
        let cmd = match i % 7 {
            0 => {
                let len = (i % 24) + 1;
                let mut v = format!("set k{k} 0 0 {len}\r\n").into_bytes();
                v.extend(std::iter::repeat_n(b'a' + (i % 26) as u8, len));
                v.extend_from_slice(b"\r\n");
                Bytes::from(v)
            }
            1 => Bytes::from(format!("get k{k}\r\n")),
            2 => Bytes::from(format!("touch k{k} 0\r\n")),
            3 => Bytes::from(format!("append k{k} 0 0 2\r\nxy\r\n")),
            4 => Bytes::from_static(b"incr ctr 7\r\n"),
            5 => Bytes::from(format!("get k{}\r\n", (i + 3) % 8)),
            _ => Bytes::from(format!("delete k{}\r\n", (i + 1) % 8)),
        };
        cmds.push(cmd);
    }
    // Keyless single-line command: must pass through the router without
    // wedging the frame (VERSION closes its command).
    cmds.push(Bytes::from_static(b"version\r\n"));
    // Multi-key gets spanning every shard, including a miss in the
    // middle: one END closes the whole command on both sides.
    cmds.push(Bytes::from_static(b"get k0 k1 k2 k3 k4 k5 k6 k7\r\n"));
    cmds.push(Bytes::from_static(b"get k2 nosuchkey k5\r\n"));
    cmds.into_iter().map(|c| (c, 1)).collect()
}

/// Runs the script in lockstep against `target` and returns the raw
/// reply byte stream, including the drain after `quit`.
fn session_reply_bytes(
    sim: &SimRuntime,
    client_stack: Arc<dyn NetStack>,
    target: Endpoint,
    wires: Vec<(Bytes, usize)>,
) -> Vec<u8> {
    let wires = Arc::new(wires);
    sim.block_on(do_m! {
        let conn <- client_stack.connect(target);
        let conn = conn.unwrap();
        loop_m((0usize, Vec::<u8>::new()), move |(idx, acc)| {
            if idx == wires.len() {
                let conn = Arc::clone(&conn);
                return send_all(&conn, Bytes::from_static(b"quit\r\n")).bind(move |sent| {
                    sent.unwrap();
                    recv_to_end(&conn, 64 * 1024).map(move |tail| {
                        let mut acc = acc;
                        acc.extend_from_slice(&tail.unwrap());
                        Loop::Break(acc)
                    })
                });
            }
            let (wire, expected) = wires[idx].clone();
            pipelined(Arc::clone(&conn), wire, expected, acc)
                .map(move |acc| Loop::Continue((idx + 1, acc)))
        })
    })
    .expect("session ran")
}

/// Script bytes against a single KV node, no router.
fn single_node_bytes(
    sim: &SimRuntime,
    server_stack: Arc<dyn NetStack>,
    client_stack: Arc<dyn NetStack>,
    wires: Vec<(Bytes, usize)>,
) -> Vec<u8> {
    spawn_backends(sim, vec![server_stack]);
    session_reply_bytes(sim, client_stack, backend(1), wires)
}

/// Script bytes against a 3-node cluster behind the router.
fn routed_bytes(
    sim: &SimRuntime,
    backend_stacks: Vec<Arc<dyn NetStack>>,
    router_stack: Arc<dyn NetStack>,
    client_stack: Arc<dyn NetStack>,
    wires: Vec<(Bytes, usize)>,
) -> Vec<u8> {
    let n = backend_stacks.len() as u32;
    spawn_backends(sim, backend_stacks);
    let router = Router::new(
        router_stack,
        RouterConfig {
            port: ROUTER_PORT,
            backends: (1..=n).map(backend).collect(),
            ..Default::default()
        },
    );
    sim.spawn(router.run());
    session_reply_bytes(
        sim,
        client_stack,
        Endpoint::new(HostId(10), ROUTER_PORT),
        wires,
    )
}

#[test]
fn routed_replies_are_byte_identical_to_a_single_node() {
    let script = cluster_script();

    // Kernel-socket model.
    let single_fabric = {
        let sim = SimRuntime::new_default();
        let fabric = SocketFabric::new(sim.clock(), FabricParams::default());
        single_node_bytes(
            &sim,
            fabric.stack(HostId(1)),
            fabric.stack(HostId(20)),
            script.clone(),
        )
    };
    let routed_fabric = {
        let sim = SimRuntime::new_default();
        let fabric = SocketFabric::new(sim.clock(), FabricParams::default());
        routed_bytes(
            &sim,
            (1..=3)
                .map(|h| fabric.stack(HostId(h)) as Arc<dyn NetStack>)
                .collect(),
            fabric.stack(HostId(10)),
            fabric.stack(HostId(20)),
            script.clone(),
        )
    };
    assert_eq!(
        single_fabric, routed_fabric,
        "kernel sockets: routing must be invisible in the reply bytes"
    );

    // App-level TCP on the simulated packet network, clean and lossy.
    let tcp_run = |loss: f64, seed: u64, routed: bool| {
        let sim = SimRuntime::new_default();
        let params = if loss > 0.0 {
            LinkParams::ethernet_100mbps().with_loss(loss)
        } else {
            LinkParams::ethernet_100mbps()
        };
        let net = SimNet::new(sim.clock(), params, seed);
        let stack = |h: u32| -> Arc<dyn NetStack> {
            glue::tcp_host_over_simnet(sim.ctx(), &net, HostId(h), TcpConfig::default())
        };
        if routed {
            routed_bytes(
                &sim,
                (1..=3).map(stack).collect(),
                stack(10),
                stack(20),
                script.clone(),
            )
        } else {
            single_node_bytes(&sim, stack(1), stack(20), script.clone())
        }
    };
    assert_eq!(
        tcp_run(0.0, 41, false),
        tcp_run(0.0, 41, true),
        "app-level TCP: routing must be invisible in the reply bytes"
    );
    assert_eq!(
        tcp_run(0.01, 43, false),
        tcp_run(0.01, 43, true),
        "lossy link: retransmission under the router must not perturb the bytes"
    );
    // And the stream is a pure function of the commands across every
    // transport and topology.
    assert_eq!(single_fabric, tcp_run(0.0, 41, true));
    let text = String::from_utf8(single_fabric).unwrap();
    assert!(text.contains("VALUE k"), "gets hit");
    assert!(text.contains("STORED"), "sets acknowledged");
}

#[test]
fn acked_writes_survive_a_replica_crash() {
    // R=2 over two nodes: every key lives on both. Ack 40 writes, crash
    // one node, read every key back through the router — zero lost.
    const KEYS: usize = 40;
    let sim = SimRuntime::new_default();
    let fabric = SocketFabric::new(sim.clock(), FabricParams::default());
    spawn_backends(
        &sim,
        (1..=2)
            .map(|h| fabric.stack(HostId(h)) as Arc<dyn NetStack>)
            .collect(),
    );
    let router = Router::new(
        fabric.stack(HostId(10)),
        RouterConfig {
            port: ROUTER_PORT,
            backends: (1..=2).map(backend).collect(),
            replication: 2,
            ..Default::default()
        },
    );
    sim.spawn(router.run());

    let client = fabric.stack(HostId(20));
    let conn = sim
        .block_on(do_m! {
            let conn <- client.connect(Endpoint::new(HostId(10), ROUTER_PORT));
            ThreadM::pure(conn.unwrap())
        })
        .unwrap();

    // Phase 1: pipelined acked writes.
    let mut wire = Vec::new();
    for k in 0..KEYS {
        wire.extend_from_slice(format!("set hot:k{k} 0 0 6\r\nv{k:05}\r\n").as_bytes());
    }
    let acks = sim
        .block_on(pipelined(
            Arc::clone(&conn),
            Bytes::from(wire),
            KEYS,
            Vec::new(),
        ))
        .unwrap();
    assert_eq!(
        String::from_utf8(acks).unwrap(),
        "STORED\r\n".repeat(KEYS),
        "every write acknowledged by both replicas"
    );
    assert!(router.stats().replicated_writes.get() >= KEYS as u64);

    // Mid-run crash: one of the two replicas dies with its sockets.
    fabric.crash_host(HostId(2));

    // Phase 2: read every acked key back; the router fails over to the
    // survivor for keys whose primary died.
    let mut wire = Vec::new();
    for k in 0..KEYS {
        wire.extend_from_slice(format!("get hot:k{k}\r\n").as_bytes());
    }
    let got = sim
        .block_on(pipelined(
            Arc::clone(&conn),
            Bytes::from(wire),
            KEYS,
            Vec::new(),
        ))
        .unwrap();
    let text = String::from_utf8(got).unwrap();
    for k in 0..KEYS {
        assert!(
            text.contains(&format!("VALUE hot:k{k} 0 6\r\nv{k:05}\r\n")),
            "acked write hot:k{k} lost after replica crash"
        );
    }
    assert!(!text.contains("SERVER_ERROR"), "no unavailability: {text}");
    // The crash actually exercised failover (unless every primary
    // happened to be the survivor, which vnode spreading rules out).
    assert!(router.stats().backend_errors.get() >= 1);
}

#[test]
fn ring_swap_mid_run_keeps_serving() {
    // R=1, 4 nodes; write 40 keys, shrink membership to 3 mid-session:
    // keys owned by the departed node miss, everything else still hits,
    // nothing errors.
    const KEYS: usize = 40;
    let sim = SimRuntime::new_default();
    let fabric = SocketFabric::new(sim.clock(), FabricParams::default());
    spawn_backends(
        &sim,
        (1..=4)
            .map(|h| fabric.stack(HostId(h)) as Arc<dyn NetStack>)
            .collect(),
    );
    let router = Router::new(
        fabric.stack(HostId(10)),
        RouterConfig {
            port: ROUTER_PORT,
            backends: (1..=4).map(backend).collect(),
            ..Default::default()
        },
    );
    sim.spawn(router.run());

    let client = fabric.stack(HostId(20));
    let conn = sim
        .block_on(do_m! {
            let conn <- client.connect(Endpoint::new(HostId(10), ROUTER_PORT));
            ThreadM::pure(conn.unwrap())
        })
        .unwrap();

    let mut wire = Vec::new();
    for k in 0..KEYS {
        wire.extend_from_slice(format!("set k{k} 0 0 3\r\nval\r\n").as_bytes());
    }
    sim.block_on(pipelined(
        Arc::clone(&conn),
        Bytes::from(wire),
        KEYS,
        Vec::new(),
    ))
    .unwrap();

    // Rebalance: node 4 leaves the ring (it stays up — this is a
    // membership change, not a failure).
    router.set_ring((1..=3).map(backend).collect());

    let mut wire = Vec::new();
    for k in 0..KEYS {
        wire.extend_from_slice(format!("get k{k}\r\n").as_bytes());
    }
    let got = sim
        .block_on(pipelined(
            Arc::clone(&conn),
            Bytes::from(wire),
            KEYS,
            Vec::new(),
        ))
        .unwrap();
    let text = String::from_utf8(got).unwrap();
    let hits = text.matches("VALUE ").count();
    assert!(!text.contains("SERVER_ERROR"), "rebalance must not error");
    assert!(hits > 0, "keys still on surviving owners must hit");
    assert!(
        hits < KEYS,
        "keys remapped off node 4 must miss (≈1/4 of them)"
    );
    // Consistent hashing: the move fraction is about 1/N, not a reshuffle.
    let misses = KEYS - hits;
    assert!(
        misses <= KEYS / 2,
        "only the departed node's share may move (got {misses}/{KEYS})"
    );
}

#[test]
fn partitioned_backend_degrades_to_server_error_and_heals() {
    // App-level TCP over the packet network: partition the router from
    // one backend. In-flight commands to it time out into SERVER_ERROR
    // (bounded, not hung); after the partition heals the next batch
    // reconnects and serves normally.
    let sim = SimRuntime::new_default();
    let net = SimNet::new(sim.clock(), LinkParams::ethernet_100mbps(), 7);
    let stack = |h: u32| -> Arc<dyn NetStack> {
        glue::tcp_host_over_simnet(sim.ctx(), &net, HostId(h), TcpConfig::default())
    };
    spawn_backends(&sim, (1..=3).map(stack).collect());
    let router = Router::new(
        stack(10),
        RouterConfig {
            port: ROUTER_PORT,
            backends: (1..=3).map(backend).collect(),
            backend_timeout: 50 * MILLIS,
            ..Default::default()
        },
    );
    sim.spawn(router.run());

    // A key owned by node 2, computed from the same ring the router uses.
    let ring = HashRing::new((1..=3).map(backend).collect(), 64);
    let key = (0..)
        .map(|i| format!("p{i}"))
        .find(|k| ring.primary(k.as_bytes()).host == HostId(2))
        .unwrap();

    let client = stack(20);
    let conn = sim
        .block_on(do_m! {
            let conn <- client.connect(Endpoint::new(HostId(10), ROUTER_PORT));
            ThreadM::pure(conn.unwrap())
        })
        .unwrap();

    // Warm path: store and read the key through node 2.
    let wire = Bytes::from(format!("set {key} 0 0 2\r\nhi\r\nget {key}\r\n"));
    let ok = sim
        .block_on(pipelined(Arc::clone(&conn), wire, 2, Vec::new()))
        .unwrap();
    assert_eq!(
        String::from_utf8(ok).unwrap(),
        format!("STORED\r\nVALUE {key} 0 2\r\nhi\r\nEND\r\n")
    );

    // Partition router ↔ node 2 both ways.
    net.set_link_down(HostId(10), HostId(2));
    net.set_link_down(HostId(2), HostId(10));
    let degraded = sim
        .block_on(pipelined(
            Arc::clone(&conn),
            Bytes::from(format!("get {key}\r\n")),
            1,
            Vec::new(),
        ))
        .unwrap();
    assert_eq!(
        String::from_utf8(degraded).unwrap(),
        "SERVER_ERROR backend unavailable\r\n",
        "a partitioned shard is an error, not a hang"
    );

    // Heal; the router redials and the key is still there.
    net.set_link_up(HostId(10), HostId(2));
    net.set_link_up(HostId(2), HostId(10));
    let healed = sim
        .block_on(pipelined(
            Arc::clone(&conn),
            Bytes::from(format!("get {key}\r\n")),
            1,
            Vec::new(),
        ))
        .unwrap();
    assert_eq!(
        String::from_utf8(healed).unwrap(),
        format!("VALUE {key} 0 2\r\nhi\r\nEND\r\n"),
        "service resumes after the partition heals"
    );
}

#[test]
fn replicated_conditional_writes_stay_on_the_primary() {
    // R=2 over two nodes: cas stamps are per-node sequence numbers, so
    // fanning a cas to both replicas would ack the client while the
    // copies silently diverge (STORED on the primary, EXISTS on the
    // secondary). The router therefore keeps conditional writes
    // primary-only; the secondary's copy goes stale until the next
    // plain set or read-repair refreshes it.
    let sim = SimRuntime::new_default();
    let fabric = SocketFabric::new(sim.clock(), FabricParams::default());
    spawn_backends(
        &sim,
        (1..=2)
            .map(|h| fabric.stack(HostId(h)) as Arc<dyn NetStack>)
            .collect(),
    );
    let router = Router::new(
        fabric.stack(HostId(10)),
        RouterConfig {
            port: ROUTER_PORT,
            backends: (1..=2).map(backend).collect(),
            replication: 2,
            ..Default::default()
        },
    );
    sim.spawn(router.run());

    let client = fabric.stack(HostId(20));
    let conn = sim
        .block_on(do_m! {
            let conn <- client.connect(Endpoint::new(HostId(10), ROUTER_PORT));
            ThreadM::pure(conn.unwrap())
        })
        .unwrap();

    // A plain set fans out to both replicas…
    let stored = sim
        .block_on(pipelined(
            Arc::clone(&conn),
            Bytes::from_static(b"set hot:c 0 0 2\r\nv1\r\n"),
            1,
            Vec::new(),
        ))
        .unwrap();
    assert_eq!(String::from_utf8(stored).unwrap(), "STORED\r\n");
    assert_eq!(router.stats().replicated_writes.get(), 1);

    // …and a routed gets surfaces the primary's cas stamp.
    let got = sim
        .block_on(pipelined(
            Arc::clone(&conn),
            Bytes::from_static(b"gets hot:c\r\n"),
            1,
            Vec::new(),
        ))
        .unwrap();
    let text = String::from_utf8(got).unwrap();
    let stamp: u64 = text
        .lines()
        .next()
        .expect("VALUE line")
        .rsplit(' ')
        .next()
        .expect("cas stamp")
        .parse()
        .expect("numeric stamp");

    // The cas is acked without being counted as a fan-out write.
    let cased = sim
        .block_on(pipelined(
            Arc::clone(&conn),
            Bytes::from(format!("cas hot:c 0 0 2 {stamp}\r\nv2\r\n")),
            1,
            Vec::new(),
        ))
        .unwrap();
    assert_eq!(String::from_utf8(cased).unwrap(), "STORED\r\n");
    assert_eq!(
        router.stats().replicated_writes.get(),
        1,
        "cas must not fan out to replicas"
    );

    // Routed reads (primary-first failover order) see the new value…
    let read = sim
        .block_on(pipelined(
            Arc::clone(&conn),
            Bytes::from_static(b"get hot:c\r\n"),
            1,
            Vec::new(),
        ))
        .unwrap();
    assert_eq!(
        String::from_utf8(read).unwrap(),
        "VALUE hot:c 0 2\r\nv2\r\nEND\r\n"
    );

    // …while the secondary still holds the pre-cas copy, proving the
    // conditional write never reached it.
    let ring = HashRing::new((1..=2).map(backend).collect(), 64);
    let secondary = ring.replicas(b"hot:c", 2)[1];
    let direct = sim
        .block_on(do_m! {
            let conn <- client.connect(secondary);
            pipelined(conn.unwrap(), Bytes::from_static(b"get hot:c\r\n"), 1, Vec::new())
        })
        .unwrap();
    assert_eq!(
        String::from_utf8(direct).unwrap(),
        "VALUE hot:c 0 2\r\nv1\r\nEND\r\n"
    );
}

/// A transport veil that hides readiness descriptors: every call
/// delegates, but `readiness_fd` stays `None` (the trait default), so
/// the router's fan-in cannot compose its wait with a timer event and
/// must fall back to the pumped blocking recv.
struct FdLessConn(Arc<dyn Conn>);

impl Conn for FdLessConn {
    fn recv(&self, max: usize) -> ThreadM<Result<Bytes, NetError>> {
        self.0.recv(max)
    }
    fn send(&self, data: Bytes) -> ThreadM<Result<usize, NetError>> {
        self.0.send(data)
    }
    fn sendv(&self, bufs: Vec<Bytes>) -> ThreadM<Result<usize, NetError>> {
        self.0.sendv(bufs)
    }
    fn close(&self) -> ThreadM<()> {
        self.0.close()
    }
    fn peer(&self) -> Endpoint {
        self.0.peer()
    }
    fn local(&self) -> Endpoint {
        self.0.local()
    }
}

struct FdLessStack(Arc<dyn NetStack>);

impl NetStack for FdLessStack {
    fn listen(&self, port: u16) -> ThreadM<Result<Arc<dyn Listener>, NetError>> {
        self.0.listen(port)
    }
    fn connect(&self, remote: Endpoint) -> ThreadM<Result<Arc<dyn Conn>, NetError>> {
        self.0
            .connect(remote)
            .map(|got| got.map(|c| Arc::new(FdLessConn(c)) as Arc<dyn Conn>))
    }
    fn host(&self) -> HostId {
        self.0.host()
    }
}

#[test]
fn fd_less_transport_still_honors_the_backend_timeout() {
    // The router dials its backends through a stack whose connections
    // expose no readiness fd, against a black-hole backend that accepts
    // and reads but never replies. backend_timeout must still bound the
    // wait: the client gets SERVER_ERROR instead of a wedged session.
    let sim = SimRuntime::new_default();
    let fabric = SocketFabric::new(sim.clock(), FabricParams::default());

    // Black hole on host 1: accept once, discard everything, never write.
    let hole = fabric.stack(HostId(1));
    sim.spawn(do_m! {
        let listener <- hole.listen(KV_PORT);
        let listener = listener.unwrap();
        let conn <- listener.accept();
        let conn = conn.unwrap();
        loop_m((), move |()| {
            let conn = Arc::clone(&conn);
            conn.recv(4096).map(|got| match got {
                Ok(chunk) if !chunk.is_empty() => Loop::Continue(()),
                _ => Loop::Break(()),
            })
        })
    });

    let router = Router::new(
        Arc::new(FdLessStack(fabric.stack(HostId(10)))),
        RouterConfig {
            port: ROUTER_PORT,
            backends: vec![backend(1)],
            backend_timeout: 50 * MILLIS,
            ..Default::default()
        },
    );
    sim.spawn(router.run());

    // The client dials the router's *listening* side, which FdLessStack
    // delegates unwrapped — only the router→backend conns are fd-less.
    let client = fabric.stack(HostId(20));
    let got = sim
        .block_on(do_m! {
            let conn <- client.connect(Endpoint::new(HostId(10), ROUTER_PORT));
            pipelined(conn.unwrap(), Bytes::from_static(b"get k\r\n"), 1, Vec::new())
        })
        .unwrap();
    assert_eq!(
        String::from_utf8(got).unwrap(),
        "SERVER_ERROR backend unavailable\r\n",
        "a silent backend on an fd-less transport must time out, not hang"
    );
}
