//! The wait taxonomy is exact: every blocked nanosecond lands in exactly
//! one of `io_wait_ns` (readiness waits, `sys_epoll_wait`), `lock_wait_ns`
//! (synchronization parks, `sys_park`) or `timer_wait_ns` (sleeps), and
//! the I/O + lock split sums to the independently-accumulated park-wait
//! total — on a mixed network workload over a lossy link, and on a pure
//! in-memory mutex workload that must show *zero* I/O wait.

use std::sync::Arc;

use eveth::core::net::{Endpoint, HostId, NetStack};
use eveth::core::sync::Mutex;
use eveth::core::syscall::{sys_cpu, sys_nbio, sys_sleep, sys_yield};
use eveth::core::time::MILLIS;
use eveth::glue;
use eveth::kv::loadgen::{client_thread, KvLoadConfig, KvLoadStats};
use eveth::kv::server::{KvConfig, KvServer};
use eveth::kv::store::{Backend, StoreConfig};
use eveth::simos::cost::CostModel;
use eveth::simos::desrt::SimReport;
use eveth::simos::net::{LinkParams, SimNet};
use eveth::simos::{SimClock, SimConfig, SimRuntime};
use eveth::tcp::tcb::TcpConfig;
use eveth::{do_m, for_each_m, loop_m, Loop, ThreadM};

fn assert_split_is_exact(report: &SimReport) {
    assert_eq!(
        report.io_wait_ns + report.lock_wait_ns,
        report.park_wait_ns,
        "I/O wait ({}) + lock wait ({}) must equal the park-wait total ({})",
        report.io_wait_ns,
        report.lock_wait_ns,
        report.park_wait_ns
    );
    assert_eq!(
        report.io_waits + report.lock_waits,
        report.park_waits,
        "episode counts must split the same way"
    );
}

/// A mixed workload: the sharded KV service + pipelining clients over the
/// application-level TCP stack on a lossy 100 Mbps link, on 2 virtual
/// CPUs with a small slice so shard locks actually contend. Threads block
/// on socket readiness, shard mutexes, channels AND timers — the
/// taxonomy's sum invariant must still be exact.
#[test]
fn kv_over_lossy_link_splits_io_from_lock_wait() {
    const CLIENTS: u64 = 8;
    const BATCHES: usize = 8;
    const DEPTH: usize = 4;

    let sim = SimRuntime::new(
        SimClock::new(),
        SimConfig {
            cost: CostModel::monadic(),
            slice: 8,
            cpus: 2,
            ..SimConfig::default()
        },
    );
    let net = SimNet::new(
        sim.clock(),
        LinkParams::ethernet_100mbps().with_loss(0.01),
        7,
    );
    let server_stack = glue::tcp_host_over_simnet(sim.ctx(), &net, HostId(1), TcpConfig::default());
    let client_stack: Arc<dyn NetStack> =
        glue::tcp_host_over_simnet(sim.ctx(), &net, HostId(2), TcpConfig::default());

    let server = KvServer::new(
        server_stack,
        KvConfig {
            port: 11211,
            store: StoreConfig {
                shards: 2,
                backend: Backend::Mutex,
                ..Default::default()
            },
            ..Default::default()
        },
    );
    sim.spawn(server.run());

    let stats = Arc::new(KvLoadStats::default());
    let cfg = Arc::new(KvLoadConfig {
        server: Endpoint::new(HostId(1), 11211),
        batches_per_conn: BATCHES,
        pipeline_depth: DEPTH,
        keys: 64,
        zipf_s: 0.9,
        set_percent: 30,
        value_bytes: 64,
        ttl_secs: 0,
        seed: 13,
    });
    for id in 0..CLIENTS {
        sim.spawn(client_thread(
            Arc::clone(&client_stack),
            Arc::clone(&cfg),
            Arc::clone(&stats),
            id,
        ));
    }
    let watch = Arc::clone(&stats);
    sim.block_on(loop_m((), move |()| {
        let watch = Arc::clone(&watch);
        do_m! {
            sys_sleep(5 * MILLIS);
            let done <- sys_nbio(move || watch.clients_done.get());
            ThreadM::pure(if done == CLIENTS { Loop::Break(()) } else { Loop::Continue(()) })
        }
    }))
    .expect("clients finished");
    assert_eq!(stats.responses(), CLIENTS * (BATCHES * DEPTH) as u64);

    let report = sim.report();
    assert_split_is_exact(&report);
    assert!(
        report.io_wait_ns > 0,
        "a lossy-link network workload must accumulate I/O wait"
    );
    assert!(
        report.io_waits > 0 && report.lock_waits > 0,
        "both wait classes must have episodes (io {}, lock {})",
        report.io_waits,
        report.lock_waits
    );
    assert!(
        report.timer_wait_ns > 0,
        "the TCP timer loops and the watcher sleep must show as timer wait"
    );
}

/// A zero-I/O workload: threads contend on one monadic mutex and sleep,
/// never touching a socket or pipe. All blocked time must be lock (and
/// timer) wait; `io_wait_ns` must be exactly zero.
#[test]
fn pure_mutex_workload_reports_zero_io_wait() {
    let sim = SimRuntime::new(
        SimClock::new(),
        SimConfig {
            cost: CostModel::monadic(),
            slice: 16,
            cpus: 4,
            ..SimConfig::default()
        },
    );
    let gate = Mutex::new();
    for t in 0..8u64 {
        let gate = gate.clone();
        sim.spawn(for_each_m(0..10u64, move |round| {
            let gate = gate.clone();
            do_m! {
                gate.with(do_m! {
                    sys_cpu(50_000);
                    sys_yield()
                });
                sys_sleep((t + round) % 3 * 10_000)
            }
        }));
    }
    let report = sim.run();
    assert_split_is_exact(&report);
    assert_eq!(
        report.io_wait_ns, 0,
        "no socket/pipe in the workload, so no I/O wait"
    );
    assert_eq!(report.io_waits, 0);
    assert!(
        report.lock_wait_ns > 0 && report.lock_waits > 0,
        "8 threads on one mutex across 4 CPUs must contend"
    );
}
