//! Semantics of the event-native service framework
//! (`eveth_core::service`) and the event surface it rides on:
//!
//! * a custom [`Service`] hosted on the generic [`Server<S>`] serves
//!   clients, reaps idle sessions, and drains gracefully — the
//!   `drained_signal` barrier fires exactly when shutdown has been
//!   requested and the last session ends;
//! * `accept_evt` composes under `choose` and cancels cleanly: a lost
//!   accept leaves zero residual waiters in the listener backlog, and a
//!   later connection is still accepted;
//! * `send_all_within` races a write against a deadline and the shutdown
//!   broadcast over the lossy application-level TCP stack — a zero-window
//!   peer can no longer stall the sender forever;
//! * the fd-less `session_input` fallback is explicit: a `Conn` stub
//!   without a readiness descriptor still honors the idle deadline and
//!   the shutdown broadcast through a timer-only `choose`;
//! * a `Server<S>`-hosted service stays deterministic: same seed + config
//!   ⇒ byte-identical `SimReport` at every CPU count, with identical
//!   service-visible results across `cpus ∈ {1, 4}`.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use bytes::Bytes;
use eveth::core::event::{choose, never, sync, timeout_evt, Event, Signal};
use eveth::core::net::{
    queue_accept_evt, recv_exact, send_all, send_all_within, session_input, Conn, Endpoint, HostId,
    Listener, NetError, NetStack, SendInput, SessionInput,
};
use eveth::core::reactor::AcceptQueue;
use eveth::core::service::{Server, ServerConfig, Service, Step};
use eveth::core::syscall::{sys_fork, sys_nbio, sys_sleep, sys_time};
use eveth::core::time::{Nanos, MILLIS, SECS};
use eveth::glue;
use eveth::kv::loadgen::{client_thread, KvLoadConfig, KvLoadStats};
use eveth::kv::server::{KvConfig, KvServer};
use eveth::kv::store::StoreConfig;
use eveth::simos::cost::CostModel;
use eveth::simos::net::{LinkParams, SimNet};
use eveth::simos::sockets::{FabricParams, SocketFabric};
use eveth::simos::{SimClock, SimConfig, SimRuntime};
use eveth::tcp::tcb::TcpConfig;
use eveth::{do_m, ThreadM};

// ---------------------------------------------------------------------------
// A Server<S>-hosted echo service.
// ---------------------------------------------------------------------------

/// The smallest useful [`Service`]: no session state, every chunk echoed.
struct Echo {
    chunks: AtomicU64,
}

impl Service for Echo {
    type Session = ();

    fn open(&self, _conn: &Arc<dyn Conn>) {}

    fn on_chunk(&self, conn: Arc<dyn Conn>, _session: (), chunk: Bytes) -> ThreadM<Step<()>> {
        self.chunks.fetch_add(1, Ordering::Relaxed);
        send_all(&conn, chunk).map(|sent| match sent {
            Ok(()) => Step::Continue(()),
            Err(_) => Step::Close,
        })
    }
}

#[test]
fn generic_server_hosts_a_custom_service_and_drains_gracefully() {
    let sim = SimRuntime::new_default();
    let fabric = SocketFabric::new(sim.clock(), FabricParams::default());
    let server = Server::new(
        fabric.stack(HostId(1)),
        Echo {
            chunks: AtomicU64::new(0),
        },
        ServerConfig {
            port: 7,
            ..Default::default()
        },
    );
    sim.spawn(server.run());

    let stack = fabric.stack(HostId(2));
    let srv = Arc::clone(&server);
    let drained_at: Arc<AtomicU64> = Arc::new(AtomicU64::new(u64::MAX));
    {
        // An observer thread parks on the drain barrier.
        let srv = Arc::clone(&server);
        let drained_at = Arc::clone(&drained_at);
        sim.spawn(do_m! {
            sync(srv.drained_signal().wait_evt());
            let now <- sys_time();
            sys_nbio(move || drained_at.store(now, Ordering::SeqCst))
        });
    }
    let echoed = sim
        .block_on(do_m! {
            let conn <- stack.connect(Endpoint::new(HostId(1), 7));
            let conn = conn.unwrap();
            let sent <- send_all(&conn, Bytes::from_static(b"ping"));
            let _ = sent.unwrap();
            let back <- recv_exact(&conn, 4);
            // Shutdown mid-session: the parked session's choose must wake
            // on the broadcast and close the connection, after which the
            // drain barrier fires.
            sys_nbio(move || srv.shutdown());
            let eof <- conn.recv(16);
            let _ = assert!(eof.unwrap().is_empty(), "session closed by shutdown");
            ThreadM::pure(back.unwrap())
        })
        .unwrap();
    assert_eq!(&echoed[..], b"ping");

    // Let the drain observer run to completion.
    sim.run();
    assert_eq!(server.service().chunks.load(Ordering::Relaxed), 1);
    assert_eq!(server.stats().accepted.get(), 1);
    assert_eq!(server.active(), 0);
    assert!(server.drained_signal().is_fired(), "drain barrier fired");
    assert_ne!(
        drained_at.load(Ordering::SeqCst),
        u64::MAX,
        "observer saw the drain barrier"
    );

    // And the degenerate drain: a server with zero sessions still reaches
    // the barrier — the acceptor's shutdown branch closes the listener and
    // fires it directly.
    let sim = SimRuntime::new_default();
    let fabric = SocketFabric::new(sim.clock(), FabricParams::default());
    let server = Server::new(
        fabric.stack(HostId(1)),
        Echo {
            chunks: AtomicU64::new(0),
        },
        ServerConfig::default(),
    );
    sim.spawn(server.run());
    let srv = Arc::clone(&server);
    sim.block_on(do_m! {
        sys_sleep(MILLIS);
        sys_nbio(move || srv.shutdown());
        sync(server.drained_signal().wait_evt())
    })
    .unwrap();
}

// ---------------------------------------------------------------------------
// accept_evt hygiene.
// ---------------------------------------------------------------------------

#[test]
fn losing_accept_evt_leaves_zero_backlog_waiters() {
    // Core-level: the shared accept event both stacks delegate to. A
    // timeout beats an empty backlog; afterwards no waiter may remain
    // registered, and a later push is still accepted.
    let sim = SimRuntime::new_default();
    let q: Arc<AcceptQueue<u32>> = Arc::new(AcceptQueue::new());
    let ev = queue_accept_evt(Arc::clone(&q), |v| v);
    let won = sim
        .block_on(sync(choose(vec![
            ev.wrap(|r| r.ok()),
            timeout_evt(2 * MILLIS).wrap(|()| None),
        ])))
        .unwrap();
    assert_eq!(won, None, "timeout beats the empty backlog");
    assert_eq!(
        q.waiter_count(),
        0,
        "losing accept branch leaves no residual backlog waiter"
    );
    assert!(q.push(42).is_ok());
    let got = sim
        .block_on(sync(queue_accept_evt(Arc::clone(&q), |v| v)))
        .unwrap();
    assert_eq!(got.unwrap(), 42);

    // End-to-end over the kernel-socket model: an acceptor that lost its
    // first round to a timeout still accepts the connection that arrives
    // later — the cancelled registration neither leaks nor eats a wakeup.
    let sim = SimRuntime::new_default();
    let fabric = SocketFabric::new(sim.clock(), FabricParams::default());
    let server_stack = fabric.stack(HostId(1));
    let client_stack = fabric.stack(HostId(2));
    let peer = sim
        .block_on(do_m! {
            let lst <- server_stack.listen(9);
            let lst = lst.unwrap();
            let first <- sync(choose(vec![
                lst.accept_evt().wrap(Some),
                timeout_evt(MILLIS).wrap(|()| None),
            ]));
            let _ = assert!(first.is_none(), "no connection yet: timeout wins");
            sys_fork(do_m! {
                let conn <- client_stack.connect(Endpoint::new(HostId(1), 9));
                let conn = conn.unwrap();
                conn.close()
            });
            let conn <- lst.accept();
            ThreadM::pure(conn.unwrap().peer())
        })
        .unwrap();
    assert_eq!(peer.host, HostId(2));
}

// ---------------------------------------------------------------------------
// Send-side events over lossy application-level TCP.
// ---------------------------------------------------------------------------

/// A zero-window peer: accepts, then sleeps forever without reading. The
/// composed send must give up at its deadline instead of blocking forever
/// on window space; a small send against the same server still completes.
#[test]
fn send_all_within_times_out_against_zero_window_peer_over_lossy_tcp() {
    const DEADLINE: Nanos = 300 * MILLIS;
    let sim = SimRuntime::new_default();
    let net = SimNet::new(
        sim.clock(),
        LinkParams::ethernet_100mbps().with_loss(0.03),
        7,
    );
    let server = glue::tcp_host_over_simnet(sim.ctx(), &net, HostId(1), TcpConfig::default());
    let client = glue::tcp_host_over_simnet(sim.ctx(), &net, HostId(2), TcpConfig::default());

    let srv = Arc::clone(&server);
    sim.spawn(do_m! {
        let lst <- srv.listen(80);
        let lst = lst.unwrap();
        let conn <- lst.accept();
        let _hold = conn.unwrap();
        sys_sleep(3_600 * SECS)
    });

    let (outcome, sent_small, elapsed) = sim
        .block_on(do_m! {
            let conn <- client.connect(Endpoint::new(HostId(1), 80));
            let conn = conn.unwrap();
            // A small write fits the send buffer and completes promptly.
            let quick = Signal::new();
            let sent_small <- send_all_within(&conn, Bytes::from_static(b"hello"), DEADLINE, &quick);
            let t0 <- sys_time();
            // 1 MB against a 64 KB send buffer + unread peer: the window
            // fills and write readiness never returns — the deadline
            // branch must win.
            let stop = Signal::new();
            let big = Bytes::from(vec![0u8; 1_000_000]);
            let outcome <- send_all_within(&conn, big, DEADLINE, &stop);
            let t1 <- sys_time();
            ThreadM::pure((outcome, sent_small, t1 - t0))
        })
        .unwrap();
    assert!(
        matches!(sent_small, SendInput::Done(Ok(()))),
        "small send completes: {sent_small:?}"
    );
    assert!(
        matches!(outcome, SendInput::Timeout),
        "zero-window send must hit the deadline: {outcome:?}"
    );
    assert!(
        (DEADLINE..3 * DEADLINE).contains(&elapsed),
        "gave up at ≈ the deadline, not hours later: {elapsed}"
    );
}

#[test]
fn send_all_within_observes_the_shutdown_broadcast() {
    let sim = SimRuntime::new_default();
    let fabric = SocketFabric::new(sim.clock(), FabricParams::default());
    let server_stack = fabric.stack(HostId(1));
    let client_stack = fabric.stack(HostId(2));
    sim.spawn(do_m! {
        let lst <- server_stack.listen(81);
        let conn <- lst.unwrap().accept();
        let _hold = conn.unwrap(); // never reads: 64 KB window fills
        sys_sleep(3_600 * SECS)
    });
    let stop = Signal::new();
    {
        let stop = stop.clone();
        sim.spawn(do_m! {
            sys_sleep(50 * MILLIS);
            sys_nbio(move || stop.fire())
        });
    }
    let outcome = sim
        .block_on(do_m! {
            let conn <- client_stack.connect(Endpoint::new(HostId(1), 81));
            let conn = conn.unwrap();
            send_all_within(&conn, Bytes::from(vec![1u8; 1_000_000]), 0, &stop)
        })
        .unwrap();
    assert!(
        matches!(outcome, SendInput::Shutdown),
        "broadcast interrupts the stalled send: {outcome:?}"
    );
}

// ---------------------------------------------------------------------------
// The fd-less session_input fallback.
// ---------------------------------------------------------------------------

/// A transport without a readiness descriptor whose recv never completes —
/// the degenerate case the fallback pump exists for.
struct NoFdConn;

impl Conn for NoFdConn {
    fn recv(&self, _max: usize) -> ThreadM<Result<Bytes, NetError>> {
        sync(never())
    }

    fn send(&self, data: Bytes) -> ThreadM<Result<usize, NetError>> {
        ThreadM::pure(Ok(data.len()))
    }

    fn close(&self) -> ThreadM<()> {
        ThreadM::pure(())
    }

    fn peer(&self) -> Endpoint {
        Endpoint::new(HostId(99), 1)
    }

    fn local(&self) -> Endpoint {
        Endpoint::new(HostId(98), 1)
    }
}

#[test]
fn fdless_conn_still_honors_idle_timeout_via_timer_only_choose() {
    const IDLE: Nanos = 5 * MILLIS;
    let sim = SimRuntime::new_default();
    let conn: Arc<dyn Conn> = Arc::new(NoFdConn);
    assert!(conn.readiness_fd().is_none());
    assert!(conn.send_evt().is_none(), "no fd ⇒ no send event either");
    let (input, woke_at) = sim
        .block_on(do_m! {
            let input <- session_input(&conn, 1024, IDLE, &Signal::new());
            let now <- sys_time();
            ThreadM::pure((input, now))
        })
        .unwrap();
    assert!(
        matches!(input, SessionInput::IdleTimeout),
        "stub without an fd must still be idle-reaped: {input:?}"
    );
    assert!(
        (IDLE..3 * IDLE).contains(&woke_at),
        "reaped at ≈ the idle deadline: {woke_at}"
    );

    // The same fallback observes the shutdown broadcast.
    let sim = SimRuntime::new_default();
    let conn: Arc<dyn Conn> = Arc::new(NoFdConn);
    let stop = Signal::new();
    {
        let stop = stop.clone();
        sim.spawn(do_m! {
            sys_sleep(2 * MILLIS);
            sys_nbio(move || stop.fire())
        });
    }
    let input = sim
        .block_on(session_input(&conn, 1024, 60 * SECS, &stop))
        .unwrap();
    assert!(
        matches!(input, SessionInput::Shutdown),
        "broadcast beats a distant idle deadline: {input:?}"
    );
}

// ---------------------------------------------------------------------------
// Per-session pump hygiene on fd-less transports.
// ---------------------------------------------------------------------------

/// An fd-less transport whose `recv` parks until the connection is
/// closed, then completes with `Err(Closed)` — the contract
/// [`Conn::close`] documents for transports without a readiness
/// descriptor, and the hook that lets a session's receive pump exit.
struct StallConn {
    closed: Signal,
}

impl Conn for StallConn {
    fn recv(&self, _max: usize) -> ThreadM<Result<Bytes, NetError>> {
        sync(self.closed.wait_evt().wrap(|()| Err(NetError::Closed)))
    }

    fn send(&self, data: Bytes) -> ThreadM<Result<usize, NetError>> {
        ThreadM::pure(Ok(data.len()))
    }

    fn close(&self) -> ThreadM<()> {
        let closed = self.closed.clone();
        sys_nbio(move || closed.fire())
    }

    fn peer(&self) -> Endpoint {
        Endpoint::new(HostId(99), 2)
    }

    fn local(&self) -> Endpoint {
        Endpoint::new(HostId(98), 2)
    }
}

/// A listener/stack pair over a bare [`AcceptQueue`], so a `Server<S>` can
/// be fed hand-built fd-less connections.
struct StubListener {
    q: Arc<AcceptQueue<Arc<dyn Conn>>>,
}

impl Listener for StubListener {
    fn accept_evt(&self) -> Event<Result<Arc<dyn Conn>, NetError>> {
        queue_accept_evt(Arc::clone(&self.q), |c| c)
    }

    fn local(&self) -> Endpoint {
        Endpoint::new(HostId(98), 2)
    }

    fn shutdown(&self) {
        self.q.close();
    }
}

struct StubStack {
    q: Arc<AcceptQueue<Arc<dyn Conn>>>,
}

impl NetStack for StubStack {
    fn listen(&self, _port: u16) -> ThreadM<Result<Arc<dyn Listener>, NetError>> {
        let lst: Arc<dyn Listener> = Arc::new(StubListener {
            q: Arc::clone(&self.q),
        });
        ThreadM::pure(Ok(lst))
    }

    fn connect(&self, _remote: Endpoint) -> ThreadM<Result<Arc<dyn Conn>, NetError>> {
        ThreadM::pure(Err(NetError::Unreachable))
    }

    fn host(&self) -> HostId {
        HostId(98)
    }
}

/// Idle-reaping N stalled fd-less sessions must not strand their receive
/// helpers: the per-session pump observes close + stop and exits. Before
/// `SessionIo` the fallback forked a helper per *wait*, so this scenario
/// leaked one permanently-blocked thread (and its span) per reaped
/// connection — `live_threads()` would read `1 + STALLED` here.
#[test]
fn idle_reaped_fdless_sessions_leave_no_orphan_pump_threads() {
    const STALLED: usize = 32;
    const IDLE: Nanos = 5 * MILLIS;
    let sim = SimRuntime::new_default();
    let q: Arc<AcceptQueue<Arc<dyn Conn>>> = Arc::new(AcceptQueue::new());
    let server = Server::new(
        Arc::new(StubStack { q: Arc::clone(&q) }) as Arc<dyn NetStack>,
        Echo {
            chunks: AtomicU64::new(0),
        },
        ServerConfig {
            idle_timeout: IDLE,
            ..Default::default()
        },
    );
    sim.spawn(server.run());
    {
        let q = Arc::clone(&q);
        sim.spawn(sys_nbio(move || {
            for _ in 0..STALLED {
                let conn: Arc<dyn Conn> = Arc::new(StallConn {
                    closed: Signal::new(),
                });
                assert!(q.push(conn).is_ok());
            }
        }));
    }
    sim.run();
    assert_eq!(
        server.stats().idle_reaped.get(),
        STALLED as u64,
        "every stalled session was idle-reaped"
    );
    assert_eq!(server.active(), 0);
    assert_eq!(
        sim.live_threads(),
        1,
        "only the acceptor remains parked: no orphaned receive pumps"
    );

    server.shutdown();
    sim.run();
    assert!(server.drained_signal().is_fired());
    assert_eq!(sim.live_threads(), 0, "acceptor exits on shutdown");
}

// ---------------------------------------------------------------------------
// Determinism of a Server<S>-hosted service across CPU counts.
// ---------------------------------------------------------------------------

/// Runs a KV workload on the framework-hosted server and returns the
/// service-visible result plus the report fingerprint.
fn kv_workload(cpus: usize) -> (u64, u64, String) {
    let sim = SimRuntime::new(
        SimClock::new(),
        SimConfig {
            cost: CostModel::monadic(),
            slice: 32,
            cpus,
            ..SimConfig::default()
        },
    );
    let fabric = SocketFabric::new(sim.clock(), FabricParams::default());
    let server = KvServer::new(
        fabric.stack(HostId(1)),
        KvConfig {
            port: 11211,
            store: StoreConfig {
                shards: 4,
                ..Default::default()
            },
            ..Default::default()
        },
    );
    sim.spawn(server.run());
    let stats = Arc::new(KvLoadStats::default());
    let cfg = Arc::new(KvLoadConfig {
        server: Endpoint::new(HostId(1), 11211),
        batches_per_conn: 10,
        pipeline_depth: 4,
        keys: 64,
        zipf_s: 0.9,
        set_percent: 40,
        value_bytes: 48,
        ttl_secs: 0,
        seed: 11,
    });
    for id in 0..3 {
        sim.spawn(client_thread(
            fabric.stack(HostId(2 + id as u32)) as Arc<dyn NetStack>,
            Arc::clone(&cfg),
            Arc::clone(&stats),
            id,
        ));
    }
    let report = sim.run_until(Some(2 * SECS));
    (
        stats.responses(),
        server.store_snapshot().sets,
        format!("{report:?}"),
    )
}

#[test]
fn server_hosted_service_is_deterministic_across_runs_and_cpu_counts() {
    let mut results = Vec::new();
    for cpus in [1usize, 4] {
        let (resp_a, sets_a, rep_a) = kv_workload(cpus);
        let (resp_b, sets_b, rep_b) = kv_workload(cpus);
        assert_eq!(
            rep_a, rep_b,
            "SimReport must be byte-identical across runs (cpus={cpus})"
        );
        assert_eq!((resp_a, sets_a), (resp_b, sets_b), "cpus={cpus}");
        assert_eq!(resp_a, 3 * 10 * 4, "every batch answered (cpus={cpus})");
        results.push((resp_a, sets_a));
    }
    assert_eq!(
        results[0], results[1],
        "service-visible outcome identical across cpu counts"
    );
}
