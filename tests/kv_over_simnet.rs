//! Integration: the KV service + load generator over BOTH socket layers —
//! the simulated kernel sockets and the application-level TCP stack on the
//! simulated packet network — asserting the paper's one-line `NetStack`
//! swap carries to the second workload unchanged (mirror of
//! `tcp_over_simnet.rs` for HTTP→KV).

use std::sync::Arc;

use bytes::Bytes;
use eveth::core::net::{recv_to_end, send_all, Endpoint, HostId, NetStack};
use eveth::core::syscall::{sys_nbio, sys_sleep};
use eveth::core::time::MILLIS;
use eveth::glue;
use eveth::kv::loadgen::{client_thread, KvLoadConfig, KvLoadStats};
use eveth::kv::server::{KvConfig, KvServer};
use eveth::kv::store::{Backend, StoreConfig};
use eveth::simos::net::{LinkParams, SimNet};
use eveth::simos::sockets::{FabricParams, SocketFabric};
use eveth::simos::SimRuntime;
use eveth::tcp::tcb::TcpConfig;
use eveth::{do_m, loop_m, Loop, ThreadM};

const CLIENTS: u64 = 8;
const BATCHES: usize = 8;
const DEPTH: usize = 4;

/// Runs the identical server + workload over the given stacks; returns
/// (client stats, server hit/miss snapshot, virtual nanos).
fn run_workload(
    sim: &SimRuntime,
    server_stack: Arc<dyn NetStack>,
    client_stack: Arc<dyn NetStack>,
    backend: Backend,
) -> (Arc<KvLoadStats>, eveth::kv::StatsSnapshot, u64) {
    let server = KvServer::new(
        server_stack,
        KvConfig {
            port: 11211,
            store: StoreConfig {
                shards: 4,
                backend,
                ..Default::default()
            },
            ..Default::default()
        },
    );
    sim.spawn(server.run());

    let stats = Arc::new(KvLoadStats::default());
    let cfg = Arc::new(KvLoadConfig {
        server: Endpoint::new(HostId(1), 11211),
        batches_per_conn: BATCHES,
        pipeline_depth: DEPTH,
        keys: 64,
        zipf_s: 0.9,
        set_percent: 30,
        value_bytes: 64,
        ttl_secs: 0,
        seed: 99,
    });
    for id in 0..CLIENTS {
        sim.spawn(client_thread(
            Arc::clone(&client_stack),
            Arc::clone(&cfg),
            Arc::clone(&stats),
            id,
        ));
    }
    let watch = Arc::clone(&stats);
    sim.block_on(loop_m((), move |()| {
        let watch = Arc::clone(&watch);
        do_m! {
            sys_sleep(5 * MILLIS);
            let done <- sys_nbio(move || watch.clients_done.get());
            ThreadM::pure(if done == CLIENTS { Loop::Break(()) } else { Loop::Continue(()) })
        }
    }))
    .expect("clients finished");
    (stats, server.store_snapshot(), sim.now())
}

#[test]
fn kv_over_kernel_socket_model() {
    let sim = SimRuntime::new_default();
    let fabric = SocketFabric::new(sim.clock(), FabricParams::default());
    let (stats, snap, _) = run_workload(
        &sim,
        fabric.stack(HostId(1)),
        fabric.stack(HostId(2)),
        Backend::Mutex,
    );
    assert_eq!(stats.responses(), CLIENTS * (BATCHES * DEPTH) as u64);
    assert_eq!(stats.errors.get(), 0);
    assert_eq!(stats.transport_errors.get(), 0);
    assert_eq!(snap.sets, stats.stored.get());
    assert_eq!(
        snap.hits,
        stats.hits.get(),
        "client and server agree on hits"
    );
}

#[test]
fn kv_over_application_level_tcp() {
    // THE one-line change: build the stacks from the app-level TCP hosts
    // instead of the socket fabric. Everything else is byte-identical.
    let sim = SimRuntime::new_default();
    let net = SimNet::new(sim.clock(), LinkParams::ethernet_100mbps(), 17);
    let a = glue::tcp_host_over_simnet(sim.ctx(), &net, HostId(1), TcpConfig::default());
    let b = glue::tcp_host_over_simnet(sim.ctx(), &net, HostId(2), TcpConfig::default());
    let (stats, snap, now) = run_workload(&sim, a, b, Backend::Mutex);
    assert_eq!(stats.responses(), CLIENTS * (BATCHES * DEPTH) as u64);
    assert_eq!(stats.errors.get(), 0);
    assert_eq!(stats.transport_errors.get(), 0);
    assert_eq!(snap.hits, stats.hits.get());
    assert!(
        now > 0,
        "TCP handshakes and serialization take virtual time"
    );
}

#[test]
fn kv_over_lossy_application_level_tcp() {
    // The app-level stack's retransmission machinery serves the KV
    // workload through a 1% lossy link with zero client-visible errors.
    let sim = SimRuntime::new_default();
    let net = SimNet::new(
        sim.clock(),
        LinkParams::ethernet_100mbps().with_loss(0.01),
        23,
    );
    let a = glue::tcp_host_over_simnet(sim.ctx(), &net, HostId(1), TcpConfig::default());
    let b = glue::tcp_host_over_simnet(sim.ctx(), &net, HostId(2), TcpConfig::default());
    let (stats, _snap, _) = run_workload(&sim, a, b, Backend::Mutex);
    assert_eq!(stats.responses(), CLIENTS * (BATCHES * DEPTH) as u64);
    assert_eq!(stats.errors.get(), 0);
    assert_eq!(stats.transport_errors.get(), 0);
}

#[test]
fn stm_backend_behaves_identically_over_simnet() {
    let sim = SimRuntime::new_default();
    let net = SimNet::new(sim.clock(), LinkParams::ethernet_100mbps(), 31);
    let a = glue::tcp_host_over_simnet(sim.ctx(), &net, HostId(1), TcpConfig::default());
    let b = glue::tcp_host_over_simnet(sim.ctx(), &net, HostId(2), TcpConfig::default());
    let (stats, snap, _) = run_workload(&sim, a, b, Backend::Stm);
    assert_eq!(stats.responses(), CLIENTS * (BATCHES * DEPTH) as u64);
    assert_eq!(stats.errors.get(), 0);
    assert_eq!(snap.sets, stats.stored.get());
}

#[test]
fn raw_protocol_session_over_app_tcp() {
    // Drive the wire protocol by hand over the app-level stack: pipelined
    // set/get/incr/delete in one write, one coalesced reply.
    let sim = SimRuntime::new_default();
    let net = SimNet::new(sim.clock(), LinkParams::ethernet_100mbps(), 5);
    let srv_stack = glue::tcp_host_over_simnet(sim.ctx(), &net, HostId(1), TcpConfig::default());
    let cli_stack = glue::tcp_host_over_simnet(sim.ctx(), &net, HostId(2), TcpConfig::default());

    let server = KvServer::new(srv_stack, KvConfig::default());
    sim.spawn(server.run());

    let reply = sim
        .block_on(do_m! {
            let conn <- cli_stack.connect(Endpoint::new(HostId(1), 11211));
            let conn = conn.unwrap();
            let pipelined = Bytes::from_static(
                b"set a 0 0 2\r\nhi\r\nset n 0 0 1\r\n5\r\nget a\r\nincr n 10\r\ndelete a\r\nget a missing\r\nquit\r\n",
            );
            let sent <- send_all(&conn, pipelined);
            let _ = sent.unwrap();
            recv_to_end(&conn, 64 * 1024)
        })
        .unwrap()
        .unwrap();
    let text = String::from_utf8(reply.to_vec()).unwrap();
    assert_eq!(
        text,
        "STORED\r\nSTORED\r\nVALUE a 0 2\r\nhi\r\nEND\r\n15\r\nDELETED\r\nEND\r\n"
    );
}
