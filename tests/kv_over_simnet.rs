//! Integration: the KV service + load generator over BOTH socket layers —
//! the simulated kernel sockets and the application-level TCP stack on the
//! simulated packet network — asserting the paper's one-line `NetStack`
//! swap carries to the second workload unchanged (mirror of
//! `tcp_over_simnet.rs` for HTTP→KV).

use std::sync::Arc;

use bytes::Bytes;
use eveth::core::net::{recv_to_end, send_all, Endpoint, HostId, NetStack};
use eveth::core::syscall::{sys_nbio, sys_sleep};
use eveth::core::time::MILLIS;
use eveth::glue;
use eveth::kv::loadgen::{client_thread, KvLoadConfig, KvLoadStats};
use eveth::kv::protocol::{Reply, ReplyParser};
use eveth::kv::server::{KvConfig, KvServer};
use eveth::kv::store::{Backend, StoreConfig};
use eveth::simos::net::{LinkParams, SimNet};
use eveth::simos::sockets::{FabricParams, SocketFabric};
use eveth::simos::SimRuntime;
use eveth::tcp::tcb::TcpConfig;
use eveth::{do_m, loop_m, Loop, ThreadM};

const CLIENTS: u64 = 8;
const BATCHES: usize = 8;
const DEPTH: usize = 4;

/// Runs the identical server + workload over the given stacks; returns
/// (client stats, server hit/miss snapshot, virtual nanos).
fn run_workload(
    sim: &SimRuntime,
    server_stack: Arc<dyn NetStack>,
    client_stack: Arc<dyn NetStack>,
    backend: Backend,
) -> (Arc<KvLoadStats>, eveth::kv::StatsSnapshot, u64) {
    let server = KvServer::new(
        server_stack,
        KvConfig {
            port: 11211,
            store: StoreConfig {
                shards: 4,
                backend,
                ..Default::default()
            },
            ..Default::default()
        },
    );
    sim.spawn(server.run());

    let stats = Arc::new(KvLoadStats::default());
    let cfg = Arc::new(KvLoadConfig {
        server: Endpoint::new(HostId(1), 11211),
        batches_per_conn: BATCHES,
        pipeline_depth: DEPTH,
        keys: 64,
        zipf_s: 0.9,
        set_percent: 30,
        value_bytes: 64,
        ttl_secs: 0,
        seed: 99,
    });
    for id in 0..CLIENTS {
        sim.spawn(client_thread(
            Arc::clone(&client_stack),
            Arc::clone(&cfg),
            Arc::clone(&stats),
            id,
        ));
    }
    let watch = Arc::clone(&stats);
    sim.block_on(loop_m((), move |()| {
        let watch = Arc::clone(&watch);
        do_m! {
            sys_sleep(5 * MILLIS);
            let done <- sys_nbio(move || watch.clients_done.get());
            ThreadM::pure(if done == CLIENTS { Loop::Break(()) } else { Loop::Continue(()) })
        }
    }))
    .expect("clients finished");
    (stats, server.store_snapshot(), sim.now())
}

#[test]
fn kv_over_kernel_socket_model() {
    let sim = SimRuntime::new_default();
    let fabric = SocketFabric::new(sim.clock(), FabricParams::default());
    let (stats, snap, _) = run_workload(
        &sim,
        fabric.stack(HostId(1)),
        fabric.stack(HostId(2)),
        Backend::Mutex,
    );
    assert_eq!(stats.responses(), CLIENTS * (BATCHES * DEPTH) as u64);
    assert_eq!(stats.errors.get(), 0);
    assert_eq!(stats.transport_errors.get(), 0);
    assert_eq!(snap.sets, stats.stored.get());
    assert_eq!(
        snap.hits,
        stats.hits.get(),
        "client and server agree on hits"
    );
}

#[test]
fn kv_over_application_level_tcp() {
    // THE one-line change: build the stacks from the app-level TCP hosts
    // instead of the socket fabric. Everything else is byte-identical.
    let sim = SimRuntime::new_default();
    let net = SimNet::new(sim.clock(), LinkParams::ethernet_100mbps(), 17);
    let a = glue::tcp_host_over_simnet(sim.ctx(), &net, HostId(1), TcpConfig::default());
    let b = glue::tcp_host_over_simnet(sim.ctx(), &net, HostId(2), TcpConfig::default());
    let (stats, snap, now) = run_workload(&sim, a, b, Backend::Mutex);
    assert_eq!(stats.responses(), CLIENTS * (BATCHES * DEPTH) as u64);
    assert_eq!(stats.errors.get(), 0);
    assert_eq!(stats.transport_errors.get(), 0);
    assert_eq!(snap.hits, stats.hits.get());
    assert!(
        now > 0,
        "TCP handshakes and serialization take virtual time"
    );
}

#[test]
fn kv_over_lossy_application_level_tcp() {
    // The app-level stack's retransmission machinery serves the KV
    // workload through a 1% lossy link with zero client-visible errors.
    let sim = SimRuntime::new_default();
    let net = SimNet::new(
        sim.clock(),
        LinkParams::ethernet_100mbps().with_loss(0.01),
        23,
    );
    let a = glue::tcp_host_over_simnet(sim.ctx(), &net, HostId(1), TcpConfig::default());
    let b = glue::tcp_host_over_simnet(sim.ctx(), &net, HostId(2), TcpConfig::default());
    let (stats, _snap, _) = run_workload(&sim, a, b, Backend::Mutex);
    assert_eq!(stats.responses(), CLIENTS * (BATCHES * DEPTH) as u64);
    assert_eq!(stats.errors.get(), 0);
    assert_eq!(stats.transport_errors.get(), 0);
}

#[test]
fn stm_backend_behaves_identically_over_simnet() {
    let sim = SimRuntime::new_default();
    let net = SimNet::new(sim.clock(), LinkParams::ethernet_100mbps(), 31);
    let a = glue::tcp_host_over_simnet(sim.ctx(), &net, HostId(1), TcpConfig::default());
    let b = glue::tcp_host_over_simnet(sim.ctx(), &net, HostId(2), TcpConfig::default());
    let (stats, snap, _) = run_workload(&sim, a, b, Backend::Stm);
    assert_eq!(stats.responses(), CLIENTS * (BATCHES * DEPTH) as u64);
    assert_eq!(stats.errors.get(), 0);
    assert_eq!(snap.sets, stats.stored.get());
}

/// True when `r` is the reply that completes a command (a `get`'s
/// `VALUE` lines precede its closing `END`; stat/version lines precede
/// their own terminators).
fn reply_closes_command(r: &Reply) -> bool {
    !matches!(
        r,
        Reply::Value { .. } | Reply::ValueCas { .. } | Reply::Stat(..) | Reply::Version(_)
    )
}

/// A deterministic 64-command session script mixing every reply shape
/// the server can gather: sets (scratch-only replies), single- and
/// multi-key gets and gets (value segments aliasing store entries),
/// appends, counter ops, and deletes. Each element is one wire blob and
/// the number of commands it carries.
fn command_script() -> Vec<(Bytes, usize)> {
    let mut cmds = vec![Bytes::from_static(b"set ctr 0 0 1\r\n0\r\n")];
    for i in 0..63usize {
        let k = i % 8;
        let cmd = match i % 7 {
            0 => {
                let len = (i % 24) + 1;
                let mut v = format!("set k{k} 0 0 {len}\r\n").into_bytes();
                v.extend(std::iter::repeat_n(b'a' + (i % 26) as u8, len));
                v.extend_from_slice(b"\r\n");
                Bytes::from(v)
            }
            1 => Bytes::from(format!("get k{k}\r\n")),
            2 => Bytes::from(format!("gets k{k}\r\n")),
            3 => Bytes::from(format!("append k{k} 0 0 2\r\nxy\r\n")),
            4 => Bytes::from_static(b"incr ctr 7\r\n"),
            5 => Bytes::from_static(b"get k0 k1 k2 k3\r\n"),
            _ => Bytes::from(format!("delete k{}\r\n", (i + 1) % 8)),
        };
        cmds.push(cmd);
    }
    cmds.into_iter().map(|c| (c, 1)).collect()
}

/// Ships each wire blob in lockstep — waiting until its commands are
/// fully answered before sending the next — and returns the raw reply
/// byte stream, including the drain after `quit`.
fn session_reply_bytes(
    sim: &SimRuntime,
    client_stack: Arc<dyn NetStack>,
    wires: Vec<(Bytes, usize)>,
) -> Vec<u8> {
    let wires = Arc::new(wires);
    sim.block_on(do_m! {
        let conn <- client_stack.connect(Endpoint::new(HostId(1), 11211));
        let conn = conn.unwrap();
        loop_m((0usize, Vec::<u8>::new()), move |(idx, acc)| {
            if idx == wires.len() {
                let conn = Arc::clone(&conn);
                return send_all(&conn, Bytes::from_static(b"quit\r\n")).bind(move |sent| {
                    sent.unwrap();
                    recv_to_end(&conn, 64 * 1024).map(move |tail| {
                        let mut acc = acc;
                        acc.extend_from_slice(&tail.unwrap());
                        Loop::Break(acc)
                    })
                });
            }
            let (wire, expected) = wires[idx].clone();
            let conn_read = Arc::clone(&conn);
            send_all(&conn, wire).bind(move |sent| {
                sent.unwrap();
                loop_m(
                    (ReplyParser::new(), acc, 0usize),
                    move |(mut parser, mut acc, mut closed)| {
                        let conn = Arc::clone(&conn_read);
                        conn.recv(64 * 1024).map(move |chunk| {
                            let chunk = chunk.expect("recv ok");
                            assert!(!chunk.is_empty(), "server hung up mid-reply");
                            acc.extend_from_slice(&chunk);
                            let mut fed = parser.feed_bytes(chunk);
                            while let Some(r) = fed.expect("well-formed reply stream") {
                                if reply_closes_command(&r) {
                                    closed += 1;
                                }
                                fed = parser.try_next();
                            }
                            if closed >= expected {
                                Loop::Break(acc)
                            } else {
                                Loop::Continue((parser, acc, closed))
                            }
                        })
                    },
                )
                .map(move |acc| Loop::Continue((idx + 1, acc)))
            })
        })
    })
    .expect("session ran")
}

/// Runs the script against a fresh server over the given stacks and
/// returns the reply bytes.
fn run_session(
    sim: SimRuntime,
    server_stack: Arc<dyn NetStack>,
    client_stack: Arc<dyn NetStack>,
    wires: Vec<(Bytes, usize)>,
) -> Vec<u8> {
    let server = KvServer::new(server_stack, KvConfig::default());
    sim.spawn(server.run());
    session_reply_bytes(&sim, client_stack, wires)
}

#[test]
fn pipelined_batch_replies_are_byte_identical_to_per_command() {
    // The gather-write path coalesces a whole batch's replies — scratch
    // header segments plus value segments aliasing store entries — into
    // one vectored send. The bytes on the wire must be exactly what 64
    // strict request/response round trips would have produced, on both
    // socket stacks and through a lossy link.
    let script = command_script();
    assert_eq!(script.len(), 64, "a 64-deep pipelined session");
    let batch = {
        let mut wire = Vec::new();
        for (w, _) in &script {
            wire.extend_from_slice(w);
        }
        vec![(Bytes::from(wire), script.len())]
    };

    let fabric_run = |wires: Vec<(Bytes, usize)>| {
        let sim = SimRuntime::new_default();
        let fabric = SocketFabric::new(sim.clock(), FabricParams::default());
        run_session(sim, fabric.stack(HostId(1)), fabric.stack(HostId(2)), wires)
    };
    let tcp_run = |loss: f64, seed: u64, wires: Vec<(Bytes, usize)>| {
        let sim = SimRuntime::new_default();
        let params = if loss > 0.0 {
            LinkParams::ethernet_100mbps().with_loss(loss)
        } else {
            LinkParams::ethernet_100mbps()
        };
        let net = SimNet::new(sim.clock(), params, seed);
        let a = glue::tcp_host_over_simnet(sim.ctx(), &net, HostId(1), TcpConfig::default());
        let b = glue::tcp_host_over_simnet(sim.ctx(), &net, HostId(2), TcpConfig::default());
        run_session(sim, a, b, wires)
    };

    let per_fabric = fabric_run(script.clone());
    assert_eq!(
        per_fabric,
        fabric_run(batch.clone()),
        "kernel sockets: batched replies must match per-command bytes"
    );
    let per_tcp = tcp_run(0.0, 41, script.clone());
    assert_eq!(
        per_tcp,
        tcp_run(0.0, 41, batch.clone()),
        "app-level TCP: batched replies must match per-command bytes"
    );
    let per_lossy = tcp_run(0.01, 43, script);
    assert_eq!(
        per_lossy,
        tcp_run(0.01, 43, batch),
        "lossy link: retransmission must not perturb the gathered bytes"
    );
    // The reply stream is a pure function of the commands — identical
    // across every transport.
    assert_eq!(per_fabric, per_tcp);
    assert_eq!(per_fabric, per_lossy);
    // And it actually carried aliased value payloads.
    let text = String::from_utf8(per_fabric).unwrap();
    assert!(text.contains("VALUE k"), "gets hit");
    assert!(text.contains("STORED"), "sets acknowledged");
}

#[test]
fn raw_protocol_session_over_app_tcp() {
    // Drive the wire protocol by hand over the app-level stack: pipelined
    // set/get/incr/delete in one write, one coalesced reply.
    let sim = SimRuntime::new_default();
    let net = SimNet::new(sim.clock(), LinkParams::ethernet_100mbps(), 5);
    let srv_stack = glue::tcp_host_over_simnet(sim.ctx(), &net, HostId(1), TcpConfig::default());
    let cli_stack = glue::tcp_host_over_simnet(sim.ctx(), &net, HostId(2), TcpConfig::default());

    let server = KvServer::new(srv_stack, KvConfig::default());
    sim.spawn(server.run());

    let reply = sim
        .block_on(do_m! {
            let conn <- cli_stack.connect(Endpoint::new(HostId(1), 11211));
            let conn = conn.unwrap();
            let pipelined = Bytes::from_static(
                b"set a 0 0 2\r\nhi\r\nset n 0 0 1\r\n5\r\nget a\r\nincr n 10\r\ndelete a\r\nget a missing\r\nquit\r\n",
            );
            let sent <- send_all(&conn, pipelined);
            let _ = sent.unwrap();
            recv_to_end(&conn, 64 * 1024)
        })
        .unwrap()
        .unwrap();
    let text = String::from_utf8(reply.to_vec()).unwrap();
    assert_eq!(
        text,
        "STORED\r\nSTORED\r\nVALUE a 0 2\r\nhi\r\nEND\r\n15\r\nDELETED\r\nEND\r\n"
    );
}
