//! End-to-end web-server integration: byte-exact content over both socket
//! stacks, keep-alive sessions, 404s, and malformed-request handling.

use std::sync::Arc;

use bytes::Bytes;
use eveth::core::io::ramdisk::MemStore;
use eveth::core::net::{recv_exact, send_all, Conn, Endpoint, HostId, NetStack};
use eveth::core::syscall::sys_nbio;
use eveth::glue;
use eveth::http::loadgen::http_get;
use eveth::http::parser::parse_response_head;
use eveth::http::server::{ServerConfig, WebServer};
use eveth::simos::net::{LinkParams, SimNet};
use eveth::simos::sockets::{FabricParams, SocketFabric};
use eveth::simos::SimRuntime;
use eveth::tcp::tcb::TcpConfig;
use eveth::{do_m, ThreadM};

fn store_with_files() -> Arc<MemStore> {
    let files = Arc::new(MemStore::new());
    files.insert_bytes("/index.html", b"<html>hello</html>".to_vec());
    files.insert_bytes(
        "/big.bin",
        (0..50_000u32).map(|i| i as u8).collect::<Vec<u8>>(),
    );
    files
}

fn stacks(sim: &SimRuntime, use_tcp: bool) -> (Arc<dyn NetStack>, Arc<dyn NetStack>) {
    if use_tcp {
        let net = SimNet::new(sim.clock(), LinkParams::ethernet_100mbps(), 77);
        (
            glue::tcp_host_over_simnet(sim.ctx(), &net, HostId(1), TcpConfig::default()),
            glue::tcp_host_over_simnet(sim.ctx(), &net, HostId(2), TcpConfig::default()),
        )
    } else {
        let fabric = SocketFabric::new(sim.clock(), FabricParams::default());
        (fabric.stack(HostId(1)), fabric.stack(HostId(2)))
    }
}

fn fetch_body(conn: &Arc<dyn Conn>, path: &str) -> ThreadM<(u16, Bytes)> {
    let request = Bytes::from(format!("GET {path} HTTP/1.1\r\nHost: t\r\n\r\n"));
    let conn = Arc::clone(conn);
    do_m! {
        let sent <- send_all(&conn, request);
        let _ = sent.expect("request sent");
        // Read the head incrementally, then exactly the body.
        eveth::loop_m(Vec::new(), move |mut acc: Vec<u8>| {
            if let Some(head) = parse_response_head(&acc).expect("valid head") {
                let total = head.head_len + head.content_length;
                if acc.len() >= total {
                    let body = Bytes::from(acc).slice(head.head_len..total);
                    return ThreadM::pure(eveth::Loop::Break((head.status, body)));
                }
            }
            let conn = Arc::clone(&conn);
            conn.recv(16 * 1024).map(move |r| {
                let chunk = r.expect("recv");
                assert!(!chunk.is_empty(), "server closed mid-response");
                acc.extend_from_slice(&chunk);
                eveth::Loop::Continue(acc)
            })
        })
    }
}

fn end_to_end(use_tcp: bool) {
    let sim = SimRuntime::new_default();
    let (server_stack, client_stack) = stacks(&sim, use_tcp);
    let server = WebServer::new(
        server_stack,
        store_with_files(),
        ServerConfig {
            port: 80,
            cache_bytes: 1024 * 1024,
            ..Default::default()
        },
    );
    sim.spawn(server.run());

    let results = sim
        .block_on(do_m! {
            let conn <- client_stack.connect(Endpoint::new(HostId(1), 80));
            let conn = conn.expect("connected");
            // Three requests over ONE keep-alive connection.
            let index <- fetch_body(&conn, "/index.html");
            let big <- fetch_body(&conn, "/big.bin");
            let missing <- fetch_body(&conn, "/nope");
            let again <- fetch_body(&conn, "/index.html");
            ThreadM::pure((index, big, missing, again))
        })
        .expect("simulation completed");

    let (index, big, missing, again) = results;
    assert_eq!(index.0, 200);
    assert_eq!(&index.1[..], b"<html>hello</html>");
    assert_eq!(big.0, 200);
    assert_eq!(big.1.len(), 50_000);
    let expect: Vec<u8> = (0..50_000u32).map(|i| i as u8).collect();
    assert_eq!(&big.1[..], &expect[..], "body must be byte-exact");
    assert_eq!(missing.0, 404);
    assert_eq!(again.0, 200, "keep-alive session survives a 404");
    assert_eq!(&again.1[..], b"<html>hello</html>");
}

#[test]
fn content_exact_over_kernel_sockets() {
    end_to_end(false);
}

#[test]
fn content_exact_over_app_level_tcp() {
    end_to_end(true);
}

#[test]
fn second_fetch_hits_the_cache() {
    let sim = SimRuntime::new_default();
    let (server_stack, client_stack) = stacks(&sim, false);
    let server = WebServer::new(
        server_stack,
        store_with_files(),
        ServerConfig {
            port: 80,
            cache_bytes: 1024 * 1024,
            ..Default::default()
        },
    );
    let cache = Arc::clone(server.cache());
    sim.spawn(server.run());
    sim.block_on(do_m! {
        let conn <- client_stack.connect(Endpoint::new(HostId(1), 80));
        let conn = conn.expect("connected");
        let first <- http_get(&conn, "/big.bin");
        let _ = first.expect("fetch 1");
        let second <- http_get(&conn, "/big.bin");
        let _ = second.expect("fetch 2");
        sys_nbio(move || ())
    })
    .expect("done");
    assert!(
        cache
            .stats()
            .hits
            .load(std::sync::atomic::Ordering::Relaxed)
            >= 1,
        "second fetch must be served from the cache"
    );
}

#[test]
fn malformed_request_gets_400_and_close() {
    let sim = SimRuntime::new_default();
    let (server_stack, client_stack) = stacks(&sim, false);
    let server = WebServer::new(
        server_stack,
        store_with_files(),
        ServerConfig {
            port: 80,
            ..Default::default()
        },
    );
    sim.spawn(server.run());
    let status = sim
        .block_on(do_m! {
            let conn <- client_stack.connect(Endpoint::new(HostId(1), 80));
            let conn = conn.expect("connected");
            let sent <- send_all(&conn, Bytes::from_static(b"NONSENSE\r\n\r\n"));
            let _ = sent.expect("sent");
            let head <- recv_exact(&conn, 12);
            ThreadM::pure(head.expect("status line"))
        })
        .expect("done");
    assert_eq!(&status[..], b"HTTP/1.1 400");
}
