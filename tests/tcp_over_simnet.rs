//! Integration: the application-level TCP stack over the simulated packet
//! network, across latency, bandwidth and loss regimes.

use bytes::Bytes;
use eveth::core::net::{recv_exact, send_all, Endpoint, HostId, NetStack};
use eveth::core::syscall::sys_fork;
use eveth::glue;
use eveth::simos::net::{LinkParams, SimNet};
use eveth::simos::SimRuntime;
use eveth::tcp::tcb::TcpConfig;
use eveth::{do_m, ThreadM};

fn run_transfer(bytes: usize, loss: f64, seed: u64) -> (u64, u64) {
    let sim = SimRuntime::new_default();
    let net = SimNet::new(
        sim.clock(),
        LinkParams::ethernet_100mbps().with_loss(loss),
        seed,
    );
    let a = glue::tcp_host_over_simnet(sim.ctx(), &net, HostId(1), TcpConfig::default());
    let b = glue::tcp_host_over_simnet(sim.ctx(), &net, HostId(2), TcpConfig::default());

    let payload = Bytes::from(vec![0xAB; bytes]);
    let server = do_m! {
        let lst <- b.listen(80);
        let conn <- lst.unwrap().accept();
        let conn = conn.unwrap();
        let got <- recv_exact(&conn, bytes);
        let echoed <- send_all(&conn, got.unwrap().slice(..128));
        let _ = echoed.unwrap();
        ThreadM::pure(())
    };
    let back = sim
        .block_on(do_m! {
            sys_fork(server);
            let conn <- a.connect(Endpoint::new(HostId(2), 80));
            let conn = conn.unwrap();
            let sent <- send_all(&conn, payload);
            let _ = sent.unwrap();
            recv_exact(&conn, 128)
        })
        .unwrap()
        .unwrap();
    assert_eq!(back.len(), 128);
    assert!(back.iter().all(|&x| x == 0xAB));
    (
        sim.now(),
        net.stats()
            .dropped
            .load(std::sync::atomic::Ordering::Relaxed),
    )
}

#[test]
fn small_transfer_lossless() {
    let (t, dropped) = run_transfer(4 * 1024, 0.0, 1);
    assert_eq!(dropped, 0);
    assert!(t > 0);
}

#[test]
fn large_transfer_lossless() {
    let (t, _) = run_transfer(200_000, 0.0, 1);
    // 200 KB over 100 Mbps ≥ 16 ms of serialization.
    assert!(t >= 16_000_000, "virtual time {t}");
}

#[test]
fn large_transfer_with_loss_retransmits() {
    let (t, dropped) = run_transfer(200_000, 0.02, 42);
    assert!(dropped > 0, "lossy link must drop something");
    assert!(t >= 16_000_000);
}
