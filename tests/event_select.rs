//! Semantics of the first-class event layer (`eveth_core::event`):
//!
//! * `choose` resolution is deterministic under `SimRuntime` — same seed +
//!   config ⇒ byte-identical `SimReport` at every CPU count, and ties at
//!   equal virtual time break by branch order;
//! * losing branches are *cancelled*: no waiter is left registered in a
//!   channel/MVar/signal wait queue after the race is decided, and a
//!   losing timeout neither fires nor extends the virtual makespan;
//! * nested `choose` flattens, `guard` re-evaluates per synchronization;
//! * the KV service's idle-connection deadline (a `timeout_evt` branch of
//!   the per-session `choose`) reaps a stalled connection while live
//!   pipelined connections are unaffected — and wins are classified as
//!   timer wait, readiness wins as I/O wait, in the report's taxonomy.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use bytes::Bytes;
use eveth::core::event::{always, choose, guard, never, sync, timeout_evt, Signal};
use eveth::core::net::{send_all, Endpoint, HostId, NetStack};
use eveth::core::sync::{Chan, MVar};
use eveth::core::syscall::{sys_fork, sys_nbio, sys_sleep, sys_time};
use eveth::core::time::{Nanos, MILLIS};
use eveth::kv::loadgen::{client_thread, KvLoadConfig, KvLoadStats};
use eveth::kv::server::{KvConfig, KvServer};
use eveth::kv::store::StoreConfig;
use eveth::simos::cost::CostModel;
use eveth::simos::sockets::{FabricParams, SocketFabric};
use eveth::simos::{SimClock, SimConfig, SimRuntime};
use eveth::{do_m, loop_m, Loop, ThreadM};

fn sim_with_cpus(cpus: usize) -> SimRuntime {
    SimRuntime::new(
        SimClock::new(),
        SimConfig {
            cost: CostModel::monadic(),
            slice: 32,
            cpus,
            ..SimConfig::default()
        },
    )
}

/// A mixed event workload: producers on their own cadences, consumers
/// racing two channels against a timeout and a shutdown broadcast.
/// Returns the winners' log plus the report fingerprint.
fn choose_workload(cpus: usize) -> (Vec<String>, String) {
    let sim = sim_with_cpus(cpus);
    let a: Chan<u64> = Chan::new();
    let b: Chan<u64> = Chan::new();
    let stop = Signal::new();
    let log: Arc<std::sync::Mutex<Vec<String>>> = Arc::new(std::sync::Mutex::new(Vec::new()));

    for (pace, ch, tag) in [(3u64, a.clone(), 100u64), (5u64, b.clone(), 200u64)] {
        sim.spawn(eveth::for_each_m(0..4u64, move |n| {
            let ch = ch.clone();
            do_m! {
                sys_sleep(pace * MILLIS);
                ch.write(tag + n)
            }
        }));
    }
    {
        let stop = stop.clone();
        sim.spawn(do_m! {
            sys_sleep(40 * MILLIS);
            sys_nbio(move || stop.fire())
        });
    }
    for c in 0..3u64 {
        let a = a.clone();
        let b = b.clone();
        let stop = stop.clone();
        let log = Arc::clone(&log);
        sim.spawn(loop_m((), move |()| {
            let ev = choose(vec![
                a.read_evt().wrap(Some),
                b.read_evt().wrap(Some),
                timeout_evt(4 * MILLIS).wrap(|()| Some(u64::MAX)),
                stop.wait_evt().wrap(|()| None),
            ]);
            let log = Arc::clone(&log);
            do_m! {
                let got <- sync(ev);
                let now <- sys_time();
                match got {
                    Some(v) => sys_nbio(move || {
                        log.lock().unwrap().push(format!("c{c}@{now}:{v}"));
                    })
                    .map(|_| Loop::Continue(())),
                    None => ThreadM::pure(Loop::Break(())),
                }
            }
        }));
    }
    let report = sim.run();
    let log = log.lock().unwrap().clone();
    (log, format!("{report:?}"))
}

#[test]
fn choose_is_deterministic_across_runs_and_cpu_counts() {
    for cpus in [1usize, 4] {
        let (log_a, rep_a) = choose_workload(cpus);
        let (log_b, rep_b) = choose_workload(cpus);
        assert_eq!(log_a, log_b, "winner log must be identical (cpus={cpus})");
        assert_eq!(
            rep_a, rep_b,
            "SimReport must be byte-identical (cpus={cpus})"
        );
        // Every produced message is consumed exactly once, whatever the
        // CPU count.
        let delivered: Vec<u64> = {
            let mut v: Vec<u64> = log_a
                .iter()
                .map(|s| s.rsplit(':').next().unwrap().parse().unwrap())
                .filter(|&v| v != u64::MAX)
                .collect();
            v.sort_unstable();
            v
        };
        assert_eq!(
            delivered,
            vec![100, 101, 102, 103, 200, 201, 202, 203],
            "cpus={cpus}"
        );
    }
}

#[test]
fn ties_at_equal_virtual_time_break_by_branch_order() {
    // Both branches are ready at the instant of the sync: the listed-first
    // one must win — and swapping the list swaps the winner.
    for (first_is_chan, expect) in [(true, "chan"), (false, "always")] {
        let run = || {
            let sim = SimRuntime::new_default();
            let ch: Chan<&'static str> = Chan::new();
            ch.push_now("chan");
            let arms = if first_is_chan {
                vec![ch.read_evt(), always("always")]
            } else {
                vec![always("always"), ch.read_evt()]
            };
            sim.block_on(sync(choose(arms))).unwrap()
        };
        assert_eq!(run(), expect);
        assert_eq!(run(), expect, "and deterministically so");
    }
}

#[test]
fn losing_branches_leave_no_registered_waiters() {
    // Timeout beats two silent channels and an empty MVar: afterwards
    // every wait queue must be empty again.
    let sim = SimRuntime::new_default();
    let a: Chan<u8> = Chan::new();
    let b: Chan<u8> = Chan::new();
    let mv: MVar<u8> = MVar::new_empty();
    let stop = Signal::new();
    let winner = sim
        .block_on(sync(choose(vec![
            a.read_evt().wrap(|_| "a"),
            b.read_evt().wrap(|_| "b"),
            mv.take_evt().wrap(|_| "mv"),
            stop.wait_evt().wrap(|_| "stop"),
            timeout_evt(2 * MILLIS).wrap(|_| "timeout"),
        ])))
        .unwrap();
    assert_eq!(winner, "timeout");
    assert_eq!(a.taker_count(), 0, "losing chan registration withdrawn");
    assert_eq!(b.taker_count(), 0);
    assert_eq!(mv.waiter_counts(), (0, 0));
    assert_eq!(stop.waiter_count(), 0);

    // And the reverse: a channel win cancels the armed timeout *eagerly* —
    // the virtual clock must not run on to the abandoned deadline.
    let sim = SimRuntime::new_default();
    let ch: Chan<u8> = Chan::new();
    let tx = ch.clone();
    let rx = ch.clone();
    let winner = sim
        .block_on(do_m! {
            sys_fork(do_m! {
                sys_sleep(MILLIS);
                tx.write(9)
            });
            sync(choose(vec![
                rx.read_evt().wrap(|v| v),
                timeout_evt(10_000 * MILLIS).wrap(|()| 0),
            ]))
        })
        .unwrap();
    let report = sim.run();
    assert_eq!(winner, 9);
    assert_eq!(ch.taker_count(), 0);
    assert!(
        report.now < 100 * MILLIS,
        "cancelled 10s timeout must not extend the makespan: now = {}",
        report.now
    );
}

#[test]
fn nested_choose_flattens_and_guard_reevaluates() {
    let sim = SimRuntime::new_default();
    // Nested choice: the inner choose's first ready branch wins overall.
    let v = sim
        .block_on(sync(choose(vec![
            choose(vec![never::<u32>(), choose(vec![never(), always(7)])]),
            always(1),
        ])))
        .unwrap();
    assert_eq!(v, 7, "inner ready branch precedes later outer branches");

    // Guard: evaluated at sync time, once per synchronization.
    let runs = Arc::new(AtomicU64::new(0));
    let make = {
        let runs = Arc::clone(&runs);
        move || {
            let runs = Arc::clone(&runs);
            guard(move || {
                let n = runs.fetch_add(1, Ordering::SeqCst);
                always(n)
            })
        }
    };
    let ev1 = make();
    let ev2 = make();
    assert_eq!(runs.load(Ordering::SeqCst), 0, "construction runs nothing");
    assert_eq!(sim.block_on(sync(ev1)).unwrap(), 0);
    assert_eq!(sim.block_on(sync(ev2)).unwrap(), 1);
    assert_eq!(runs.load(Ordering::SeqCst), 2);

    // Guard under choose: still lazy, still flattened.
    let runs2 = Arc::new(AtomicU64::new(0));
    let g = {
        let runs2 = Arc::clone(&runs2);
        guard(move || {
            runs2.fetch_add(1, Ordering::SeqCst);
            never::<u64>()
        })
    };
    let v = sim
        .block_on(sync(choose(vec![g, timeout_evt(MILLIS).wrap(|()| 42)])))
        .unwrap();
    assert_eq!(v, 42);
    assert_eq!(runs2.load(Ordering::SeqCst), 1, "guard forced by the sync");
}

#[test]
fn timeout_win_is_timer_wait_channel_win_is_lock_wait() {
    // A choose lost to the timeout must account the blocked episode as
    // *timer* wait (the winning branch reclassifies the park), keeping the
    // io + lock == park invariant intact.
    let sim = SimRuntime::new_default();
    let ch: Chan<u8> = Chan::new();
    sim.block_on(sync(choose(vec![
        ch.read_evt().wrap(|_| ()),
        timeout_evt(5 * MILLIS).wrap(|()| ()),
    ])))
    .unwrap();
    let report = sim.report();
    assert_eq!(report.io_wait_ns + report.lock_wait_ns, report.park_wait_ns);
    assert!(
        report.timer_wait_ns >= 4 * MILLIS,
        "timeout win must land in timer wait: {}",
        report.timer_wait_ns
    );
    assert_eq!(report.lock_waits, 0, "no lock-classified episode");

    // And a channel win lands in lock wait.
    let sim = SimRuntime::new_default();
    let ch: Chan<u8> = Chan::new();
    let tx = ch.clone();
    sim.block_on(do_m! {
        sys_fork(do_m! {
            sys_sleep(5 * MILLIS);
            tx.write(1)
        });
        sync(choose(vec![
            ch.read_evt().wrap(|_| ()),
            timeout_evt(50 * MILLIS).wrap(|()| ()),
        ]))
    })
    .unwrap();
    let report = sim.report();
    assert_eq!(report.io_wait_ns + report.lock_wait_ns, report.park_wait_ns);
    assert!(
        report.lock_wait_ns >= 4 * MILLIS,
        "channel win must land in lock wait: {}",
        report.lock_wait_ns
    );
}

/// The service-layer proof: with `idle_timeout` set, a connection that
/// goes silent is reaped by the session's `choose` while a live pipelined
/// connection on the same server is answered in full.
#[test]
fn kv_idle_timeout_reaps_stalled_connection_only() {
    const IDLE: Nanos = 50 * MILLIS;
    let sim = SimRuntime::new_default();
    let fabric = SocketFabric::new(sim.clock(), FabricParams::default());
    let server = KvServer::new(
        fabric.stack(HostId(1)),
        KvConfig {
            port: 11211,
            store: StoreConfig {
                shards: 2,
                ..Default::default()
            },
            idle_timeout: IDLE,
            ..Default::default()
        },
    );
    sim.spawn(server.run());

    // The stalled client: one request, then silence. Its next recv must
    // observe EOF when the server reaps the session at the idle deadline.
    let stalled_eof_at: Arc<AtomicU64> = Arc::new(AtomicU64::new(0));
    {
        let stack = fabric.stack(HostId(2));
        let eof_at = Arc::clone(&stalled_eof_at);
        sim.spawn(do_m! {
            let conn <- stack.connect(Endpoint::new(HostId(1), 11211));
            let conn = conn.unwrap();
            let sent <- send_all(&conn, Bytes::from_static(b"set idle 0 0 1\r\nv\r\n"));
            let _ = sent.unwrap();
            let reply <- conn.recv(64);
            let _ = assert_eq!(&reply.unwrap()[..], b"STORED\r\n");
            // Go silent; the server must close this session at IDLE.
            let eof <- conn.recv(64);
            let now <- sys_time();
            sys_nbio(move || {
                assert!(eof.unwrap().is_empty(), "server close surfaces as EOF");
                eof_at.store(now, Ordering::SeqCst);
            })
        });
    }

    // The live client: ordinary pipelined load, slow enough to span the
    // idle deadline but never silent for IDLE at once.
    let stats = Arc::new(KvLoadStats::default());
    let cfg = Arc::new(KvLoadConfig {
        server: Endpoint::new(HostId(1), 11211),
        batches_per_conn: 20,
        pipeline_depth: 4,
        keys: 32,
        zipf_s: 0.8,
        set_percent: 30,
        value_bytes: 32,
        ttl_secs: 0,
        seed: 5,
    });
    sim.spawn(client_thread(
        fabric.stack(HostId(3)) as Arc<dyn NetStack>,
        Arc::clone(&cfg),
        Arc::clone(&stats),
        0,
    ));

    sim.run_until(Some(400 * MILLIS));

    assert_eq!(
        stats.responses(),
        20 * 4,
        "the live pipelined connection is answered in full"
    );
    assert_eq!(
        server.stats().idle_reaped.get(),
        1,
        "exactly the stalled session is reaped"
    );
    let eof_at = stalled_eof_at.load(Ordering::SeqCst);
    assert!(
        eof_at >= IDLE,
        "reap happens no earlier than the idle deadline: {eof_at}"
    );
    assert!(
        eof_at < 3 * IDLE,
        "and not much later than it either: {eof_at}"
    );
}

/// Graceful shutdown: firing the broadcast closes the listener and every
/// idle session; a fresh connect is refused afterwards.
#[test]
fn kv_shutdown_broadcast_closes_sessions_and_listener() {
    let sim = SimRuntime::new_default();
    let fabric = SocketFabric::new(sim.clock(), FabricParams::default());
    let server = KvServer::new(
        fabric.stack(HostId(1)),
        KvConfig {
            port: 11211,
            janitor_interval: 0,
            ..Default::default()
        },
    );
    sim.spawn(server.run());

    let stack = fabric.stack(HostId(2));
    let srv = Arc::clone(&server);
    let outcome = sim
        .block_on(do_m! {
            let conn <- stack.connect(Endpoint::new(HostId(1), 11211));
            let conn = conn.unwrap();
            let sent <- send_all(&conn, Bytes::from_static(b"version\r\n"));
            let _ = sent.unwrap();
            let reply <- conn.recv(128);
            let _ = assert!(reply.unwrap().starts_with(b"VERSION"));
            // Fire the broadcast mid-session: the parked session's choose
            // must wake on the Shutdown branch and close the connection.
            sys_nbio(move || srv.shutdown());
            let eof <- conn.recv(64);
            let _ = assert!(eof.unwrap().is_empty(), "session closed by shutdown");
            // The listener is gone too: connecting again is refused.
            let again <- stack.connect(Endpoint::new(HostId(1), 11211));
            ThreadM::pure(again.is_err())
        })
        .unwrap();
    assert!(outcome, "post-shutdown connect must fail");
}
