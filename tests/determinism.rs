//! The simulated substrate is deterministic: identical seeds produce
//! identical virtual timings and statistics, run after run. This is what
//! makes the figure harnesses reproducible.

use eveth::simos::cost::CostModel;
use eveth::simos::disk::DiskSched;
use eveth_bench::workloads::{disk_head_scheduling, web_server_run, WebRunParams};

fn disk_run(seed: u64) -> (u64, f64) {
    let r = disk_head_scheduling(CostModel::monadic(), DiskSched::CLook, 32, 1024, seed)
        .expect("no cap");
    (r.elapsed, r.mb_s)
}

#[test]
fn disk_benchmark_is_bit_deterministic() {
    let a = disk_run(7);
    let b = disk_run(7);
    assert_eq!(a.0, b.0, "virtual elapsed time must match exactly");
    assert_eq!(a.1, b.1);
}

#[test]
fn different_seeds_change_the_run() {
    let a = disk_run(7);
    let b = disk_run(8);
    assert_ne!(a.0, b.0, "seed must actually influence the workload");
}

#[test]
fn web_benchmark_is_bit_deterministic() {
    let params = WebRunParams {
        cost: CostModel::monadic(),
        files: 128,
        cache_bytes: 256 * 1024,
        connections: 8,
        requests_per_conn: 4,
        seed: 21,
    };
    let a = web_server_run(&params);
    let b = web_server_run(&params);
    assert_eq!(a.elapsed, b.elapsed);
    assert_eq!(a.bytes, b.bytes);
    assert_eq!(a.responses, b.responses);
}

#[test]
fn nptl_and_monadic_models_order_as_expected() {
    // The same workload must not be faster under kernel-thread pricing:
    // this is the invariant behind every paired figure.
    let monadic =
        disk_head_scheduling(CostModel::monadic(), DiskSched::CLook, 256, 2048, 3).unwrap();
    let nptl = disk_head_scheduling(CostModel::nptl(), DiskSched::CLook, 256, 2048, 3).unwrap();
    assert!(
        monadic.mb_s >= nptl.mb_s,
        "monadic {} MB/s must be >= NPTL {} MB/s",
        monadic.mb_s,
        nptl.mb_s
    );
}
