//! A concurrent echo server over the application-level TCP stack, on the
//! deterministic simulated network.
//!
//! Run with: `cargo run --example echo_server`
//!
//! One monadic thread per client; the TCP stack's `worker_tcp_input` and
//! `worker_tcp_timer` event loops run beside them in the same runtime —
//! the whole "operating system" is application code (paper §6.3). The link
//! drops 3% of segments to show retransmission at work.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use bytes::Bytes;
use eveth::core::net::{recv_exact, send_all, Endpoint, HostId, NetStack};
use eveth::core::syscall::*;
use eveth::glue;
use eveth::simos::net::{LinkParams, SimNet};
use eveth::simos::SimRuntime;
use eveth::tcp::tcb::TcpConfig;
use eveth::{do_m, loop_m, Loop, ThreadM};

const CLIENTS: u32 = 16;
const ROUNDS: usize = 8;
const MSG: usize = 2_000;

fn main() {
    let sim = SimRuntime::new_default();
    let net = SimNet::new(
        sim.clock(),
        LinkParams::ethernet_100mbps().with_loss(0.03),
        2024,
    );
    let server_host = glue::tcp_host_over_simnet(sim.ctx(), &net, HostId(1), TcpConfig::default());
    let client_host = glue::tcp_host_over_simnet(sim.ctx(), &net, HostId(2), TcpConfig::default());

    // --- Server: accept loop forking an echo thread per connection.
    let srv = Arc::clone(&server_host);
    sim.spawn(do_m! {
        let lst <- srv.listen(7);
        let lst = lst.expect("bind echo port");
        eveth::forever_m(move || {
            let lst = Arc::clone(&lst);
            do_m! {
                let conn <- lst.accept();
                let conn = conn.expect("accept");
                sys_fork(echo_session(conn))
            }
        })
    });

    // --- Clients: each sends MSG bytes ROUNDS times and checks the echo.
    let done = Arc::new(AtomicU64::new(0));
    let echoed_bytes = Arc::new(AtomicU64::new(0));
    for id in 0..CLIENTS {
        let stack = Arc::clone(&client_host);
        let done = Arc::clone(&done);
        let echoed = Arc::clone(&echoed_bytes);
        sim.spawn(do_m! {
            let conn <- stack.connect(Endpoint::new(HostId(1), 7));
            let conn = conn.expect("connect");
            loop_m(0usize, move |round| {
                if round == ROUNDS {
                    let done = Arc::clone(&done);
                    return conn.close().bind(move |_| {
                        sys_nbio(move || { done.fetch_add(1, Ordering::SeqCst); })
                            .map(|_| Loop::Break(()))
                    });
                }
                let payload = Bytes::from(vec![(id as u8).wrapping_add(round as u8); MSG]);
                let expect = payload.clone();
                let conn2 = Arc::clone(&conn);
                let echoed = Arc::clone(&echoed);
                do_m! {
                    let sent <- send_all(&conn2, payload);
                    let _ = sent.expect("send");
                    let back <- recv_exact(&conn2, MSG);
                    let back = back.expect("echo back");
                    let _ = assert_eq!(back, expect, "echo must be byte-identical");
                    sys_nbio(move || { echoed.fetch_add(MSG as u64, Ordering::SeqCst); })
                        .map(move |_| Loop::Continue(round + 1))
                }
            })
        });
    }

    // Drive the simulation until every client finished.
    let watch = Arc::clone(&done);
    sim.block_on(loop_m((), move |()| {
        let watch = Arc::clone(&watch);
        do_m! {
            sys_sleep(10 * eveth::core::time::MILLIS);
            let finished <- sys_nbio(move || watch.load(Ordering::SeqCst));
            ThreadM::pure(if finished == CLIENTS as u64 {
                Loop::Break(())
            } else {
                Loop::Continue(())
            })
        }
    }))
    .expect("simulation completed");

    let retr: u64 = net.stats().dropped.load(Ordering::Relaxed);
    println!(
        "echoed {} KB across {CLIENTS} clients in {:.1} ms of virtual time",
        echoed_bytes.load(Ordering::SeqCst) / 1024,
        sim.now() as f64 / 1e6
    );
    println!(
        "network: {} segments sent, {} dropped by the lossy link (recovered by retransmission)",
        net.stats().sent.load(Ordering::Relaxed),
        retr
    );
    assert_eq!(
        echoed_bytes.load(Ordering::SeqCst),
        (CLIENTS as u64) * (ROUNDS as u64) * MSG as u64
    );
    assert!(
        retr > 0,
        "with 3% loss some segments must have been dropped"
    );
}

fn echo_session(conn: Arc<dyn eveth::core::net::Conn>) -> ThreadM<()> {
    loop_m((), move |()| {
        let conn2 = Arc::clone(&conn);
        conn.recv(64 * 1024).bind(move |data| match data {
            Ok(data) if data.is_empty() => conn2.close().map(|_| Loop::Break(())),
            Ok(data) => send_all(&conn2, data).map(|res| match res {
                Ok(()) => Loop::Continue(()),
                Err(_) => Loop::Break(()),
            }),
            Err(_) => ThreadM::pure(Loop::Break(())),
        })
    })
}
