//! A concurrent echo server over the application-level TCP stack, on the
//! deterministic simulated network — written as a [`Service`] on the
//! event-native service framework.
//!
//! Run with: `cargo run --example echo_server`
//!
//! The framework's generic `Server<S>` owns the whole lifecycle (listen,
//! the accept/shutdown `choose`, one monadic thread per client, graceful
//! drain); the service below is just "send every chunk back". The TCP
//! stack's `worker_tcp_input` and `worker_tcp_timer` event loops run
//! beside the sessions in the same runtime — the whole "operating system"
//! is application code (paper §6.3). The link drops 3% of segments to
//! show retransmission at work.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use bytes::Bytes;
use eveth::core::net::{recv_exact, send_all, Conn, Endpoint, HostId, NetStack};
use eveth::core::service::{Server, ServerConfig, Service, Step};
use eveth::core::syscall::*;
use eveth::glue;
use eveth::simos::net::{LinkParams, SimNet};
use eveth::simos::SimRuntime;
use eveth::tcp::tcb::TcpConfig;
use eveth::{do_m, loop_m, Loop, ThreadM};

const CLIENTS: u32 = 16;
const ROUNDS: usize = 8;
const MSG: usize = 2_000;

/// The whole echo protocol: stateless sessions, every chunk sent back.
struct EchoService {
    echoed_chunks: AtomicU64,
}

impl Service for EchoService {
    type Session = ();

    fn open(&self, _conn: &Arc<dyn Conn>) {}

    fn on_chunk(&self, conn: Arc<dyn Conn>, _session: (), chunk: Bytes) -> ThreadM<Step<()>> {
        self.echoed_chunks.fetch_add(1, Ordering::Relaxed);
        send_all(&conn, chunk).map(|sent| match sent {
            Ok(()) => Step::Continue(()),
            Err(_) => Step::Close,
        })
    }
}

fn main() {
    let sim = SimRuntime::new_default();
    let net = SimNet::new(
        sim.clock(),
        LinkParams::ethernet_100mbps().with_loss(0.03),
        2024,
    );
    let server_host = glue::tcp_host_over_simnet(sim.ctx(), &net, HostId(1), TcpConfig::default());
    let client_host = glue::tcp_host_over_simnet(sim.ctx(), &net, HostId(2), TcpConfig::default());

    // --- Server: the framework owns accept fan-out and session lifecycle.
    let server = Server::new(
        server_host as Arc<dyn NetStack>,
        EchoService {
            echoed_chunks: AtomicU64::new(0),
        },
        ServerConfig {
            port: 7,
            ..Default::default()
        },
    );
    sim.spawn(server.run());

    // --- Clients: each sends MSG bytes ROUNDS times and checks the echo.
    let done = Arc::new(AtomicU64::new(0));
    let echoed_bytes = Arc::new(AtomicU64::new(0));
    for id in 0..CLIENTS {
        let stack = Arc::clone(&client_host);
        let done = Arc::clone(&done);
        let echoed = Arc::clone(&echoed_bytes);
        sim.spawn(do_m! {
            let conn <- stack.connect(Endpoint::new(HostId(1), 7));
            let conn = conn.expect("connect");
            loop_m(0usize, move |round| {
                if round == ROUNDS {
                    let done = Arc::clone(&done);
                    return conn.close().bind(move |_| {
                        sys_nbio(move || { done.fetch_add(1, Ordering::SeqCst); })
                            .map(|_| Loop::Break(()))
                    });
                }
                let payload = Bytes::from(vec![(id as u8).wrapping_add(round as u8); MSG]);
                let expect = payload.clone();
                let conn2 = Arc::clone(&conn);
                let echoed = Arc::clone(&echoed);
                do_m! {
                    let sent <- send_all(&conn2, payload);
                    let _ = sent.expect("send");
                    let back <- recv_exact(&conn2, MSG);
                    let back = back.expect("echo back");
                    let _ = assert_eq!(back, expect, "echo must be byte-identical");
                    sys_nbio(move || { echoed.fetch_add(MSG as u64, Ordering::SeqCst); })
                        .map(move |_| Loop::Continue(round + 1))
                }
            })
        });
    }

    // Drive the simulation until every client finished, then shut the
    // server down gracefully and wait on the framework's drain barrier.
    let watch = Arc::clone(&done);
    let srv = Arc::clone(&server);
    sim.block_on(do_m! {
        loop_m((), move |()| {
            let watch = Arc::clone(&watch);
            do_m! {
                sys_sleep(10 * eveth::core::time::MILLIS);
                let finished <- sys_nbio(move || watch.load(Ordering::SeqCst));
                ThreadM::pure(if finished == CLIENTS as u64 {
                    Loop::Break(())
                } else {
                    Loop::Continue(())
                })
            }
        });
        let _ = srv.shutdown();
        eveth::core::event::sync(srv.drained_signal().wait_evt())
    })
    .expect("simulation completed");

    let retr: u64 = net.stats().dropped.load(Ordering::Relaxed);
    println!(
        "echoed {} KB across {CLIENTS} clients in {:.1} ms of virtual time",
        echoed_bytes.load(Ordering::SeqCst) / 1024,
        sim.now() as f64 / 1e6
    );
    println!(
        "network: {} segments sent, {} dropped by the lossy link (recovered by retransmission)",
        net.stats().sent.load(Ordering::Relaxed),
        retr
    );
    println!(
        "server: {} connections accepted, {} chunks echoed, drained with {} sessions left",
        server.stats().accepted.get(),
        server.service().echoed_chunks.load(Ordering::Relaxed),
        server.active()
    );
    assert_eq!(
        echoed_bytes.load(Ordering::SeqCst),
        (CLIENTS as u64) * (ROUNDS as u64) * MSG as u64
    );
    assert!(
        retr > 0,
        "with 3% loss some segments must have been dropped"
    );
    assert_eq!(server.active(), 0, "graceful drain left no session behind");
}
