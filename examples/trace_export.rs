//! Flight-recorder → Perfetto: run the contended KV cell with the
//! telemetry fabric attached, export the recorded spans as Chrome
//! trace-event JSON, and drop it next to the metrics exposition.
//!
//! The export is a pure function of (parameters, seed): events carry
//! virtual-time stamps and the scheduler is deterministic, so rerunning
//! this example produces byte-identical files — diff them to prove it.
//!
//! Run with:
//! ```text
//! cargo run --example trace_export [-- out.json]
//! ```
//!
//! Then load the JSON in Perfetto: open <https://ui.perfetto.dev>, press
//! "Open trace file" and pick the exported file (legacy
//! `chrome://tracing` loads it too). Each monadic thread renders as its
//! own track — named `kv` session spans, wake slices sized by how long
//! the thread sat parked (I/O vs lock vs timer), spawn/exit instants.

use eveth::simos::cost::CostModel;
use eveth_bench::workloads::{kv_trace_run, KvRunParams};

fn main() {
    let out = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "trace_export.json".to_string());

    // The same fixed cell CI exports (`EVETH_TRACE_OUT` on the fig_kv
    // binary): loopback link, 4 virtual CPUs, a single shard under 32
    // pipelining clients with a preemption slice small enough to split
    // batches — every wait kind lands on the timeline (I/O parks on the
    // sockets, lock parks on the hot shard gate, timer parks in the
    // janitor and load pacing).
    let params = KvRunParams {
        cost: CostModel::monadic(),
        cpus: 4,
        slice: 8,
        app_tcp: false,
        loopback: true,
        shards: 1,
        stm: false,
        clients: 32,
        batches_per_conn: 4,
        pipeline_depth: 8,
        set_percent: 30,
        keys: 64,
        value_bytes: 100,
        preload: false,
        seed: 11,
    };
    let art = kv_trace_run(&params);

    std::fs::write(&out, &art.chrome_json).expect("trace written");
    let metrics_out = format!("{out}.metrics.txt");
    std::fs::write(&metrics_out, &art.metrics_body).expect("metrics written");

    let rec = art.telemetry.recorder();
    let (io, lock, timer) = art.telemetry.wait_totals();
    println!(
        "recorded {} events ({} dropped by the bounded ring) across {} spans",
        rec.recorded(),
        rec.dropped(),
        art.telemetry.spans().len()
    );
    println!(
        "wait attribution: io={io}ns lock={lock}ns timer={timer}ns — \
         reconciles with the report: io={} lock={} timer={}",
        art.report.io_wait_ns, art.report.lock_wait_ns, art.report.timer_wait_ns
    );
    println!(
        "wrote {out} ({} bytes) + {metrics_out}",
        art.chrome_json.len()
    );
    println!("load it at https://ui.perfetto.dev  (\"Open trace file\")");
}
