//! The FIFO-pipe workload of the paper's Figure 18, in miniature, on the
//! *real* wall-clock runtime: pairs of monadic threads exchange 32 KB
//! messages over 4 KB-buffer pipes while thousands of idle threads sit
//! parked on epoll waits — and the same workload runs on kernel threads
//! (`std::thread`, i.e. Linux NPTL) against the very same pipe device.
//!
//! Run with: `cargo run --release --example fifo_pipes`

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use bytes::Bytes;
use eveth::core::io::pipe;
use eveth::core::runtime::Runtime;
use eveth::{do_m, loop_m, Loop, ThreadM};

const PAIRS: usize = 16;
const MSG: usize = 32 * 1024;
const ROUNDS: usize = 64;
const IDLE_THREADS: usize = 2_000;
const PIPE_BUF: usize = 4 * 1024;

fn monadic_run() -> (f64, u64) {
    let rt = Runtime::builder().workers(2).build();
    let done = Arc::new(AtomicU64::new(0));

    // Idle threads: parked forever on never-ready pipes (the paper's
    // "simulating idle network connections").
    let mut keep_alive = Vec::new();
    for _ in 0..IDLE_THREADS {
        let (w, r) = pipe(PIPE_BUF);
        rt.spawn(r.read_m(1).map(|_| ()));
        keep_alive.push(w); // hold the writer so EOF never fires
    }

    let started = Instant::now();
    for p in 0..PAIRS {
        let (wa, rb) = pipe(PIPE_BUF); // a -> b
        let (wb, ra) = pipe(PIPE_BUF); // b -> a
        let done = Arc::clone(&done);
        // Thread A: send then receive, ROUNDS times.
        rt.spawn(loop_m(0usize, move |round| {
            if round == ROUNDS {
                let done = Arc::clone(&done);
                return eveth::core::syscall::sys_nbio(move || {
                    done.fetch_add(1, Ordering::SeqCst);
                })
                .map(|_| Loop::Break(()));
            }
            let payload = Bytes::from(vec![p as u8; MSG]);
            let wa = wa.clone();
            let ra = ra.clone();
            do_m! {
                let sent <- wa.write_all_m(payload);
                let _ = sent.expect("pipe write");
                let back <- ra.read_exact_m(MSG);
                let _ = back.expect("pipe read");
                ThreadM::pure(Loop::Continue(round + 1))
            }
        }));
        // Thread B: the mirror.
        rt.spawn(loop_m(0usize, move |round| {
            if round == ROUNDS {
                return ThreadM::pure(Loop::Break(()));
            }
            let wb = wb.clone();
            let rb = rb.clone();
            do_m! {
                let data <- rb.read_exact_m(MSG);
                let data = data.expect("pipe read");
                let sent <- wb.write_all_m(data);
                let _ = sent.expect("pipe write");
                ThreadM::pure(Loop::Continue(round + 1))
            }
        }));
    }

    // Wait for all A-threads.
    let watch = Arc::clone(&done);
    rt.block_on(loop_m((), move |()| {
        let watch = Arc::clone(&watch);
        do_m! {
            eveth::core::syscall::sys_yield();
            let d <- eveth::core::syscall::sys_nbio(move || watch.load(Ordering::SeqCst));
            ThreadM::pure(if d == PAIRS as u64 { Loop::Break(()) } else { Loop::Continue(()) })
        }
    }));
    let secs = started.elapsed().as_secs_f64();
    let switches = rt.stats().ctx_switches;
    rt.shutdown();
    let bytes = (PAIRS * ROUNDS * MSG * 2) as f64;
    (bytes / (1024.0 * 1024.0) / secs, switches)
}

fn nptl_run() -> f64 {
    // The same workload on kernel threads with blocking pipe ops.
    let started = Instant::now();
    let mut handles = Vec::new();
    for p in 0..PAIRS {
        let (wa, rb) = pipe(PIPE_BUF);
        let (wb, ra) = pipe(PIPE_BUF);
        handles.push(std::thread::spawn(move || {
            for _ in 0..ROUNDS {
                wa.write_all_blocking(&vec![p as u8; MSG]).expect("write");
                let mut got = 0;
                while got < MSG {
                    got += ra.read_blocking(MSG - got).len();
                }
            }
        }));
        handles.push(std::thread::spawn(move || {
            for _ in 0..ROUNDS {
                let mut buf = Vec::with_capacity(MSG);
                while buf.len() < MSG {
                    buf.extend_from_slice(&rb.read_blocking(MSG - buf.len()));
                }
                wb.write_all_blocking(&buf).expect("write");
            }
        }));
    }
    for h in handles {
        h.join().expect("worker");
    }
    let secs = started.elapsed().as_secs_f64();
    (PAIRS * ROUNDS * MSG * 2) as f64 / (1024.0 * 1024.0) / secs
}

fn main() {
    println!(
        "{PAIRS} pairs exchanging {} KB x {ROUNDS} rounds over {} B pipes, {IDLE_THREADS} idle threads",
        MSG / 1024,
        PIPE_BUF
    );
    let (monadic, switches) = monadic_run();
    println!("monadic threads : {monadic:>8.1} MB/s  ({switches} scheduler switches)");
    let nptl = nptl_run();
    println!("kernel threads  : {nptl:>8.1} MB/s  (std::thread = Linux NPTL)");
    println!("ratio           : {:>8.2}x", monadic / nptl);
}
