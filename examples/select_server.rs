//! Event-driven code as a thread: a chat/fan-in server written as ONE
//! monadic thread `choose`-ing over many inputs.
//!
//! The paper's thesis is that threads and events are two views of the same
//! abstraction. The blocking API alone cannot express "wait for any of N
//! clients OR the next ticker beat OR shutdown" without N helper threads;
//! first-class events can — `choose` composes the alternatives and `sync`
//! turns the composition back into a thread-view blocking call:
//!
//! ```text
//! loop {
//!     match sync(choose([client₀.read_evt(), …, clientₙ.read_evt(),
//!                        timeout_evt(tick), shutdown.wait_evt()])) { … }
//! }
//! ```
//!
//! Branch order is the deterministic tie-break, and it doubles as policy:
//! client channels are listed before the shutdown broadcast, so the server
//! *drains* every queued message before honouring shutdown — graceful by
//! construction. Run under the simulator, the whole transcript (virtual
//! timestamps included) is byte-identical on every run.
//!
//! Run with: `cargo run --example select_server`

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use eveth::core::event::{choose, sync, timeout_evt, Event, Signal};
use eveth::core::sync::Chan;
use eveth::core::syscall::{sys_nbio, sys_sleep, sys_time};
use eveth::core::time::MILLIS;
use eveth::simos::SimRuntime;
use eveth::{do_m, loop_m, Loop, ThreadM};

const CLIENTS: usize = 4;
const MSGS_PER_CLIENT: u64 = 3;
const TICK: u64 = 5 * MILLIS;

/// What one round of the server's single `choose` produced.
enum Wake {
    /// A message from client `i`.
    Msg(usize, String),
    /// The ticker beat (no client spoke for a whole tick).
    Tick,
    /// The shutdown broadcast (and every channel already drained).
    Shutdown,
}

/// The fan-in server: one thread, any number of inputs.
fn server(inboxes: Vec<Chan<String>>, shutdown: Signal, delivered: Arc<AtomicU64>) -> ThreadM<()> {
    loop_m(0u64, move |ticks| {
        // Rebuild the event each round (events are affine values): all
        // client inboxes, then the ticker, then shutdown — listed in
        // priority order.
        let mut arms: Vec<Event<Wake>> = inboxes
            .iter()
            .enumerate()
            .map(|(i, ch)| ch.read_evt().wrap(move |msg| Wake::Msg(i, msg)))
            .collect();
        arms.push(timeout_evt(TICK).wrap(|()| Wake::Tick));
        arms.push(shutdown.wait_evt().wrap(|()| Wake::Shutdown));
        let delivered = Arc::clone(&delivered);
        do_m! {
            let wake <- sync(choose(arms));
            let now <- sys_time();
            let t_ms = now / MILLIS;
            match wake {
                Wake::Msg(i, msg) => {
                    delivered.fetch_add(1, Ordering::SeqCst);
                    sys_nbio(move || println!("[{t_ms:>3}ms] client {i}: {msg}"))
                        .map(move |_| Loop::Continue(ticks))
                }
                Wake::Tick => sys_nbio(move || println!("[{t_ms:>3}ms] -- tick --"))
                    .map(move |_| Loop::Continue(ticks + 1)),
                Wake::Shutdown => sys_nbio(move || {
                    println!("[{t_ms:>3}ms] shutdown: all inboxes drained, {ticks} idle ticks")
                })
                .map(|_| Loop::Break(())),
            }
        }
    })
}

/// Client `i`: speaks `MSGS_PER_CLIENT` times on its own cadence, then
/// reports done.
fn client(i: usize, inbox: Chan<String>, done: Chan<()>) -> ThreadM<()> {
    let pace = (3 + 2 * i as u64) * MILLIS;
    do_m! {
        eveth::for_each_m(0..MSGS_PER_CLIENT, move |n| {
            let inbox = inbox.clone();
            do_m! {
                sys_sleep(pace);
                inbox.write(format!("message {n}"))
            }
        });
        done.write(())
    }
}

fn main() {
    let sim = SimRuntime::new_default();
    let inboxes: Vec<Chan<String>> = (0..CLIENTS).map(|_| Chan::new()).collect();
    let shutdown = Signal::new();
    let delivered = Arc::new(AtomicU64::new(0));

    sim.spawn(server(
        inboxes.clone(),
        shutdown.clone(),
        Arc::clone(&delivered),
    ));
    let done: Chan<()> = Chan::new();
    for (i, inbox) in inboxes.iter().enumerate() {
        sim.spawn(client(i, inbox.clone(), done.clone()));
    }

    // Controller: once every client reports done, fire the broadcast.
    let sig = shutdown.clone();
    sim.block_on(do_m! {
        eveth::for_each_m(0..CLIENTS, move |_| done.read().map(|_| ()));
        sys_nbio(move || sig.fire())
    })
    .expect("controller finished");
    // Drive the server to its graceful exit.
    sim.run();

    let total = delivered.load(Ordering::SeqCst);
    println!(
        "---\n{total} messages fanned into one thread over {CLIENTS} channels \
         (virtual makespan {:.1}ms)",
        sim.now() as f64 / MILLIS as f64
    );
    assert_eq!(
        total,
        CLIENTS as u64 * MSGS_PER_CLIENT,
        "every message must be delivered before shutdown wins the choose"
    );
}
