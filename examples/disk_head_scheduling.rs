//! Disk head scheduling in miniature — the mechanism behind Figure 17.
//!
//! Run with: `cargo run --example disk_head_scheduling`
//!
//! Many threads issuing random 4 KB reads keep a deep request queue at the
//! disk; the C-LOOK elevator turns that depth into shorter seeks and
//! *higher* throughput. With FIFO scheduling (the ablation), extra threads
//! buy nothing.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use eveth::core::aio::FileStore;
use eveth::core::syscall::*;
use eveth::simos::disk::{throughput_mb_s, DiskGeometry, DiskSched, SimDisk};
use eveth::simos::fs::SimFs;
use eveth::simos::SimRuntime;
use eveth::{do_m, loop_m, Loop, ThreadM};

const FILE_BYTES: u64 = 1 << 30; // the paper's 1 GB test file
const BLOCK: usize = 4096;
const READS_TOTAL: u64 = 2048;

fn run(sched: DiskSched, threads: u64) -> f64 {
    let sim = SimRuntime::new_default();
    let disk = SimDisk::new(sim.clock(), DiskGeometry::eide_7200_80gb(), sched, 11);
    let fs = SimFs::new(disk);
    fs.add_file("/big", FILE_BYTES);
    let file = fs.lookup("/big").expect("file exists");

    let remaining = Arc::new(AtomicU64::new(READS_TOTAL));
    let live = Arc::new(AtomicU64::new(threads));
    for t in 0..threads {
        let file = Arc::clone(&file);
        let remaining = Arc::clone(&remaining);
        let live = Arc::clone(&live);
        let rng0 = 0x9E37_79B9u64.wrapping_mul(t + 1) | 1;
        sim.spawn(loop_m(rng0, move |mut rng| {
            if remaining.fetch_sub(1, Ordering::SeqCst) == 0
                || remaining.load(Ordering::SeqCst) > READS_TOTAL
            {
                remaining.store(0, Ordering::SeqCst);
                let live = Arc::clone(&live);
                return sys_nbio(move || {
                    live.fetch_sub(1, Ordering::SeqCst);
                })
                .map(|_| Loop::Break(()));
            }
            rng ^= rng << 13;
            rng ^= rng >> 7;
            rng ^= rng << 17;
            let offset = (rng % (FILE_BYTES / BLOCK as u64)) * BLOCK as u64;
            sys_aio_read(&file, offset, BLOCK).map(move |res| {
                res.expect("disk read");
                Loop::Continue(rng)
            })
        }));
    }

    // Wait for all reader threads to retire (sleep-poll: parking lets the
    // simulation advance to the next disk completion).
    let watch = Arc::clone(&live);
    sim.block_on(loop_m((), move |()| {
        let watch = Arc::clone(&watch);
        do_m! {
            sys_sleep(eveth::core::time::MILLIS);
            let n <- sys_nbio(move || watch.load(Ordering::SeqCst));
            ThreadM::pure(if n == 0 { Loop::Break(()) } else { Loop::Continue(()) })
        }
    }))
    .expect("all readers finished");

    throughput_mb_s(READS_TOTAL * BLOCK as u64, sim.now())
}

fn main() {
    println!("random 4 KB reads from a 1 GB file on a simulated 7200 RPM disk");
    println!(
        "{:>8} | {:>14} | {:>14}",
        "threads", "C-LOOK MB/s", "FIFO MB/s"
    );
    for threads in [1u64, 4, 16, 64, 256] {
        let clook = run(DiskSched::CLook, threads);
        let fifo = run(DiskSched::Fifo, threads);
        println!("{threads:>8} | {clook:>14.3} | {fifo:>14.3}");
    }
    println!("\nC-LOOK rises with concurrency (Figure 17's effect); FIFO stays flat.");
}
