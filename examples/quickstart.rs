//! Quickstart: monadic threads on the real (wall-clock) hybrid runtime.
//!
//! Run with: `cargo run --example quickstart`
//!
//! Mirrors the paper's §4.1: per-client logic written in the familiar
//! multithreaded style with `do_m!` (Haskell's do-syntax), scheduled by an
//! event-driven runtime underneath.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use eveth::core::runtime::Runtime;
use eveth::core::sync::{Chan, MVar, Mutex};
use eveth::core::syscall::*;
use eveth::{do_m, ThreadM};

fn main() {
    // An event-driven runtime: two worker_main scheduler loops, a
    // worker_epoll loop, a worker_aio loop, a blocking-I/O pool, a timer.
    let rt = Runtime::builder().workers(2).build();

    // --- Threads are cheap: fork a few thousand, coordinate via a channel.
    let results: Chan<u64> = Chan::new();
    let counter = Arc::new(AtomicU64::new(0));
    const N: u64 = 5_000;

    for i in 0..N {
        let results = results.clone();
        let counter = Arc::clone(&counter);
        rt.spawn(do_m! {
            sys_yield();                            // cooperate
            let v <- sys_nbio(move || i * i);       // non-blocking effect
            let _c <- sys_nbio(move || counter.fetch_add(1, Ordering::SeqCst));
            results.write(v)
        });
    }

    // Collect all N results from the main monadic thread.
    let sum = rt.block_on(eveth::loop_m((0u64, 0u64), move |(count, sum)| {
        if count == N {
            return ThreadM::pure(eveth::Loop::Break(sum));
        }
        results
            .read()
            .map(move |v| eveth::Loop::Continue((count + 1, sum + v)))
    }));
    println!("forked {N} threads; sum of squares = {sum}");
    assert_eq!(sum, (0..N).map(|i| i * i).sum::<u64>());

    // --- Exceptions (paper §4.3): failures propagate to handlers.
    let outcome = rt.block_on(sys_catch(
        do_m! {
            sys_nbio(|| println!("acquiring resource..."));
            sys_throw::<&str>("disk on fire")
        },
        |e| {
            ThreadM::pure(if e.message() == "disk on fire" {
                "handled"
            } else {
                "?"
            })
        },
    ));
    println!("exception outcome: {outcome}");

    // --- Blocking synchronization as scheduler extensions (paper §4.7).
    let mutex = Mutex::new();
    let shared = Arc::new(AtomicU64::new(0));
    let mv: MVar<&str> = MVar::new_empty();
    let producer = mv.clone();
    let m2 = mutex.clone();
    let s2 = Arc::clone(&shared);
    rt.block_on(do_m! {
        sys_fork(do_m! {
            sys_sleep(5 * eveth::core::time::MILLIS);
            m2.with(sys_nbio(move || { s2.fetch_add(1, Ordering::SeqCst); }));
            producer.put("done")
        });
        let msg <- mv.take();                       // blocks this monadic thread only
        sys_nbio(move || println!("child says: {msg}"))
    });

    let stats = rt.stats();
    println!(
        "runtime stats: spawned={} exited={} ctx_switches={} steps={}",
        stats.spawned, stats.exited, stats.ctx_switches, stats.steps
    );
    rt.shutdown();
}
