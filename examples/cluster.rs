//! The cluster layer: four KV nodes behind a consistent-hash router,
//! hot-key replication, and a mid-run crash that loses nothing.
//!
//! The router is just another [`Service`](eveth::core::service::Service)
//! on the hybrid runtime — the same monadic threads, the same
//! [`NetStack`](eveth::core::net::NetStack) switch as the KV server and
//! the web server. This example tells the durability story end to end:
//!
//! 1. spawn four KV nodes and a router with `R = 2` replication for
//!    keys prefixed `hot:`;
//! 2. ack 64 hot writes through the router (each lands on two ring
//!    successors before `STORED` comes back);
//! 3. crash one node — sockets die mid-conversation;
//! 4. read every acked key back: the router fails over to the replica,
//!    zero acknowledged writes lost, zero `SERVER_ERROR`;
//! 5. swap the crashed node out of the ring and keep serving.
//!
//! Run with:
//! ```text
//! cargo run --example cluster            # kernel-socket model
//! cargo run --example cluster -- tcp     # application-level TCP stack
//! ```

use std::sync::Arc;

use bytes::Bytes;
use eveth::cluster::{HashRing, Router, RouterConfig};
use eveth::core::net::{send_all, Conn, Endpoint, HostId, NetStack};
use eveth::glue;
use eveth::kv::server::{KvConfig, KvServer};
use eveth::simos::net::{LinkParams, SimNet};
use eveth::simos::sockets::{FabricParams, SocketFabric};
use eveth::simos::SimRuntime;
use eveth::tcp::tcb::TcpConfig;
use eveth::{do_m, loop_m, Loop, ThreadM};

const NODES: u32 = 4;
const KEYS: usize = 64;
const KV_PORT: u16 = 11211;
const ROUTER_PORT: u16 = 11311;

fn backend(h: u32) -> Endpoint {
    Endpoint::new(HostId(h), KV_PORT)
}

/// Sends `wire`, then receives until `expected` command-closing replies
/// (`\r\n`-framed, `VALUE` bodies included) have been parsed.
fn pipelined(conn: Arc<dyn Conn>, wire: Bytes, expected: usize) -> ThreadM<Vec<u8>> {
    use eveth::kv::protocol::ReplyParser;
    let conn_read = Arc::clone(&conn);
    send_all(&conn, wire).bind(move |sent| {
        sent.expect("request sent");
        loop_m(
            (ReplyParser::new(), Vec::new(), 0usize),
            move |(mut parser, mut acc, mut closed)| {
                let conn = Arc::clone(&conn_read);
                conn.recv(16 * 1024).map(move |chunk| {
                    let chunk = chunk.expect("router reply");
                    assert!(!chunk.is_empty(), "router closed early");
                    acc.extend_from_slice(&chunk);
                    let mut fed = parser.feed_bytes(chunk);
                    while let Some(r) = fed.expect("well-formed reply stream") {
                        if r.closes_command() {
                            closed += 1;
                        }
                        fed = parser.try_next();
                    }
                    if closed >= expected {
                        Loop::Break(acc)
                    } else {
                        Loop::Continue((parser, acc, closed))
                    }
                })
            },
        )
    })
}

fn main() {
    let use_app_tcp = std::env::args().any(|a| a == "tcp");
    let sim = SimRuntime::new_default();

    // ---- the one-line stack switch, now for a whole cluster ------------
    // The fabric handle doubles as the fault injector (crash_host); TCP
    // hosts share a SimNet, whose lever is set_link_down instead — the
    // crash is the sharper demo, so the tcp variant skips that phase.
    let mut fabric = None;
    let stack: Box<dyn Fn(u32) -> Arc<dyn NetStack>> = if use_app_tcp {
        let net = SimNet::new(sim.clock(), LinkParams::ethernet_100mbps(), 7);
        let ctx = sim.ctx();
        Box::new(move |h| {
            glue::tcp_host_over_simnet(Arc::clone(&ctx), &net, HostId(h), TcpConfig::default())
                as Arc<dyn NetStack>
        })
    } else {
        let f = SocketFabric::new(sim.clock(), FabricParams::default());
        fabric = Some(Arc::clone(&f));
        Box::new(move |h| f.stack(HostId(h)) as Arc<dyn NetStack>)
    };
    // --------------------------------------------------------------------

    for h in 1..=NODES {
        let server = KvServer::new(
            stack(h),
            KvConfig {
                port: KV_PORT,
                ..Default::default()
            },
        );
        sim.spawn(server.run());
    }

    let router = Router::new(
        stack(10),
        RouterConfig {
            port: ROUTER_PORT,
            backends: (1..=NODES).map(backend).collect(),
            replication: 2,
            hot_prefix: Some(b"hot:".to_vec()),
            ..Default::default()
        },
    );
    sim.spawn(router.run());

    // Which node owns the probe key? That's the one we'll kill.
    let ring = HashRing::new((1..=NODES).map(backend).collect(), 64);
    let victim = ring.primary(b"hot:k0").host;
    println!(
        "cluster: {NODES} nodes, R=2 on \"hot:\", stack: {}",
        if use_app_tcp {
            "application-level TCP"
        } else {
            "kernel-socket model"
        }
    );

    let client = stack(20);
    let conn = sim
        .block_on(do_m! {
            let conn <- client.connect(Endpoint::new(HostId(10), ROUTER_PORT));
            ThreadM::pure(conn.expect("router reachable"))
        })
        .expect("connected");

    // Phase 1: acked, replicated writes.
    let mut wire = Vec::new();
    for k in 0..KEYS {
        wire.extend_from_slice(format!("set hot:k{k} 0 0 6\r\nv{k:05}\r\n").as_bytes());
    }
    let acks = sim
        .block_on(pipelined(Arc::clone(&conn), Bytes::from(wire), KEYS))
        .expect("writes acked");
    assert_eq!(String::from_utf8(acks).unwrap(), "STORED\r\n".repeat(KEYS));
    println!(
        "phase 1: {KEYS} writes acked, {} fanned to both replicas",
        router.stats().replicated_writes.get()
    );

    // Phase 2: kill the probe key's primary mid-run.
    if let Some(f) = &fabric {
        f.crash_host(victim);
        println!(
            "phase 2: crashed node {} (primary for hot:k0) — sockets dead",
            victim.0
        );
    } else {
        println!("phase 2: (tcp mode: skipping the crash, the ring swap below still runs)");
    }

    // Phase 3: every acked key still answers through the survivor.
    let mut wire = Vec::new();
    for k in 0..KEYS {
        wire.extend_from_slice(format!("get hot:k{k}\r\n").as_bytes());
    }
    let got = sim
        .block_on(pipelined(Arc::clone(&conn), Bytes::from(wire), KEYS))
        .expect("reads answered");
    let text = String::from_utf8(got).unwrap();
    let mut hits = 0;
    for k in 0..KEYS {
        if text.contains(&format!("VALUE hot:k{k} 0 6\r\nv{k:05}\r\n")) {
            hits += 1;
        }
    }
    assert_eq!(hits, KEYS, "acknowledged writes lost: {hits}/{KEYS}");
    assert!(!text.contains("SERVER_ERROR"), "unavailability window");
    println!(
        "phase 3: {hits}/{KEYS} acked keys read back, 0 SERVER_ERROR \
         ({} failovers, {} backend errors)",
        router.stats().read_retries.get(),
        router.stats().backend_errors.get()
    );

    // Phase 4: administratively swap the dead node out; the ring remaps
    // only its arcs (consistent hashing), service continues.
    let rest: Vec<Endpoint> = (1..=NODES)
        .filter(|&h| HostId(h) != victim)
        .map(backend)
        .collect();
    router.set_ring(rest);
    let again = sim
        .block_on(pipelined(
            Arc::clone(&conn),
            Bytes::from("get hot:k0\r\n".as_bytes().to_vec()),
            1,
        ))
        .expect("post-swap read");
    let again = String::from_utf8(again).unwrap();
    assert!(again.contains("VALUE hot:k0"), "replica serves after swap");
    println!(
        "phase 4: ring swapped to {} nodes, hot:k0 still answers: {}",
        NODES - 1,
        again.lines().next().unwrap_or("")
    );

    println!(
        "done in {:.3} ms virtual ({} commands routed)",
        sim.now() as f64 / 1e6,
        router.stats().commands.get()
    );
}
