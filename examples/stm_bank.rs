//! Software transactional memory from monadic threads (paper §4.7):
//! concurrent bank transfers with `atomically_m`, plus a `retry`-based
//! auditor that blocks until the books balance a condition.
//!
//! Run with: `cargo run --example stm_bank`

use std::sync::Arc;

use eveth::core::runtime::Runtime;
use eveth::stm::{atomically_m, TVar};
use eveth::{do_m, for_each_m};

const ACCOUNTS: usize = 16;
const INITIAL: i64 = 1_000;
const TRANSFERS_PER_WORKER: u64 = 200;
const WORKERS: u64 = 8;

fn main() {
    let rt = Runtime::builder().workers(4).build();
    let accounts: Arc<Vec<TVar<i64>>> =
        Arc::new((0..ACCOUNTS).map(|_| TVar::new(INITIAL)).collect());
    let completed: TVar<u64> = TVar::new(0);

    // --- Transfer workers: move random amounts between random accounts,
    // atomically, from many monadic threads on many OS workers.
    for w in 0..WORKERS {
        let accounts = Arc::clone(&accounts);
        let completed = completed.clone();
        rt.spawn(for_each_m(0..TRANSFERS_PER_WORKER, move |i| {
            let seed = (w * 1_000_003 + i).wrapping_mul(0x9E37_79B9);
            let from_idx = (seed as usize) % ACCOUNTS;
            // Offset in [1, ACCOUNTS-1] guarantees from != to; a
            // self-transfer would double-write one TVar and lose money.
            let to_idx = (from_idx + 1 + (seed as usize / 7) % (ACCOUNTS - 1)) % ACCOUNTS;
            let from = accounts[from_idx].clone();
            let to = accounts[to_idx].clone();
            let amount = (seed % 50) as i64 + 1;
            let completed = completed.clone();
            do_m! {
                atomically_m(move |txn| {
                    let f = txn.read(&from)?;
                    let t = txn.read(&to)?;
                    txn.write(&from, f - amount);
                    txn.write(&to, t + amount);
                    Ok(())
                });
                atomically_m(move |txn| {
                    let c = txn.read(&completed)?;
                    txn.write(&completed, c + 1);
                    Ok(())
                })
            }
        }));
    }

    // --- Auditor: `retry` blocks this monadic thread until every transfer
    // committed, then checks conservation — all without a single lock in
    // user code.
    let audit_accounts = Arc::clone(&accounts);
    let audit_done = completed.clone();
    let total = rt.block_on(atomically_m(move |txn| {
        if txn.read(&audit_done)? < WORKERS * TRANSFERS_PER_WORKER {
            return txn.retry(); // parked until a commit touches `completed`
        }
        let mut sum = 0i64;
        for acct in audit_accounts.iter() {
            sum += txn.read(acct)?;
        }
        Ok(sum)
    }));

    println!(
        "{} transfers across {} accounts complete; total = {} (expected {})",
        WORKERS * TRANSFERS_PER_WORKER,
        ACCOUNTS,
        total,
        ACCOUNTS as i64 * INITIAL
    );
    assert_eq!(total, ACCOUNTS as i64 * INITIAL, "money must be conserved");

    for (i, acct) in accounts.iter().enumerate().take(4) {
        println!("  account[{i}] = {}", acct.read_now());
    }
    println!("  ...");
    rt.shutdown();
}
