//! The lazy trace made visible — the paper's Figure 4 and Figure 11.
//!
//! Run with: `cargo run --example trace_demo`
//!
//! A thread *is* a generator of trace nodes: forcing a node runs the thread
//! to its next system call. This example builds the paper's recursive
//! `server`/`client` program, converts it to a trace with `build_trace`
//! (here `into_trace`), and interprets it with a hand-rolled round-robin
//! scheduler — the naive `worker_main` of Figure 11 — printing each system
//! call as it is dispatched.

use std::collections::VecDeque;

use eveth::core::syscall::*;
use eveth::core::trace::Trace;
use eveth::{do_m, ThreadM};

/// The paper's Figure 4, with a bound so the demo terminates:
///
/// ```text
/// server = do { sys_call_1; fork client; server }
/// client = do { sys_call_2 }
/// ```
fn server(rounds: u32) -> ThreadM<()> {
    if rounds == 0 {
        return ThreadM::pure(());
    }
    do_m! {
        sys_nbio(move || println!("  [thread] sys_call_1 (round {rounds})"));
        sys_fork(client(rounds));
        server(rounds - 1)
    }
}

fn client(id: u32) -> ThreadM<()> {
    sys_nbio(move || println!("  [thread] sys_call_2 (client {id})"))
}

fn main() {
    println!("building the trace (nothing runs yet — construction is O(1))...");
    let root = server(3).into_trace();
    println!(
        "first node: {:?} (forcing it would run the thread)\n",
        root.kind()
    );

    println!("interpreting with a Figure-11 round-robin scheduler:");
    // The ready queue holds traces; the event loop forces one node at a
    // time and performs the system call it reveals.
    let mut ready: VecDeque<Trace> = VecDeque::new();
    ready.push_back(root);
    let mut dispatched = 0u32;

    while let Some(node) = ready.pop_front() {
        dispatched += 1;
        println!("[scheduler] dispatch #{dispatched}: {}", node.kind());
        match node {
            // Nonblocking I/O: run it; the result is the next trace node.
            Trace::Nbio(run_io) => ready.push_back(run_io()),
            // Fork: both sub-traces go on the ready queue (Figure 11).
            Trace::Fork(child, parent) => {
                ready.push_back(child());
                ready.push_back(parent());
            }
            Trace::Yield(k) => ready.push_back(k()),
            Trace::Ret => { /* thread finished; forget it */ }
            other => panic!("demo scheduler does not handle {other:?}"),
        }
    }
    println!("\nall threads ran to SYS_RET after {dispatched} dispatches");
}
