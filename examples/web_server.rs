//! The paper's case study (§5.2): a static web server with its own AIO
//! cache, switchable between the kernel-socket model and the
//! application-level TCP stack by one line. `WebServer` is a thin
//! `Service` implementation hosted on the generic `Server<S>` of
//! `eveth_core::service`, so this demo also exercises the event-native
//! framework end to end (accept fan-out, per-session `choose`, graceful
//! drain).
//!
//! The telemetry fabric rides along: a [`DebugService`] on port 9990
//! serves `GET /metrics`, `/threads` and `/trace` beside the web server,
//! and the example fetches the live span table over a real (virtual)
//! connection before draining.
//!
//! Run with:
//! ```text
//! cargo run --example web_server            # kernel-socket model
//! cargo run --example web_server -- tcp     # application-level TCP stack
//! ```

use std::sync::atomic::Ordering;
use std::sync::Arc;

use eveth::core::net::{send_all, Endpoint, HostId, NetStack};
use eveth::core::service::{Server, ServerConfig as DebugConfig};
use eveth::core::syscall::*;
use eveth::core::telemetry::{DebugService, Telemetry};
use eveth::glue;
use eveth::http::loadgen::{client_thread, corpus_paths, LoadConfig, LoadStats};
use eveth::http::server::{ServerConfig, WebServer};
use eveth::simos::disk::{DiskGeometry, DiskSched, SimDisk};
use eveth::simos::fs::SimFs;
use eveth::simos::net::{LinkParams, SimNet};
use eveth::simos::sockets::{FabricParams, SocketFabric};
use eveth::simos::SimRuntime;
use eveth::tcp::tcb::TcpConfig;
use eveth::{do_m, loop_m, Loop, ThreadM};

const FILES: usize = 512;
const FILE_BYTES: u64 = 16 * 1024;
const CONNECTIONS: u64 = 32;
const REQUESTS_PER_CONN: usize = 12;
const DEBUG_PORT: u16 = 9990;

/// One `GET` against the debug service (it closes after one response).
fn debug_get(stack: &Arc<dyn NetStack>, ep: Endpoint, target: &str) -> ThreadM<String> {
    let stack = Arc::clone(stack);
    let req = bytes::Bytes::from(format!("GET {target} HTTP/1.0\r\n\r\n"));
    do_m! {
        let conn <- stack.connect(ep);
        let conn = conn.expect("debug service reachable");
        let sent <- send_all(&conn, req);
        let _ = sent.expect("request sent");
        let raw <- loop_m((Vec::new(), conn), move |(mut acc, conn)| {
            conn.recv(16 * 1024).map(move |res| match res {
                Ok(chunk) if chunk.is_empty() => Loop::Break(acc),
                Ok(chunk) => {
                    acc.extend_from_slice(&chunk);
                    Loop::Continue((acc, conn))
                }
                Err(_) => Loop::Break(acc),
            })
        });
        let text = String::from_utf8_lossy(&raw).into_owned();
        ThreadM::pure(match text.split_once("\r\n\r\n") {
            Some((_, body)) => body.to_string(),
            None => text,
        })
    }
}

fn main() {
    let use_app_tcp = std::env::args().any(|a| a == "tcp");

    let sim = SimRuntime::new_default();
    let telemetry = Telemetry::new();
    assert!(sim.set_telemetry(Arc::clone(&telemetry)));

    // A simulated 7200 RPM disk with C-LOOK head scheduling and a corpus
    // of 16 KB files, exactly the shape of the paper's workload.
    let disk = SimDisk::new(
        sim.clock(),
        DiskGeometry::eide_7200_80gb(),
        DiskSched::CLook,
        7,
    );
    let fs = SimFs::new(disk);
    for path in corpus_paths(FILES) {
        fs.add_file(path, FILE_BYTES);
    }

    // ---- THE one-line switch (paper §5.2) -------------------------------
    let (server_stack, client_stack): (Arc<dyn NetStack>, Arc<dyn NetStack>) = if use_app_tcp {
        let net = SimNet::new(sim.clock(), LinkParams::ethernet_100mbps(), 99);
        (
            glue::tcp_host_over_simnet(sim.ctx(), &net, HostId(1), TcpConfig::default()),
            glue::tcp_host_over_simnet(sim.ctx(), &net, HostId(2), TcpConfig::default()),
        )
    } else {
        let fabric = SocketFabric::new(sim.clock(), FabricParams::default());
        (fabric.stack(HostId(1)), fabric.stack(HostId(2)))
    };
    // ----------------------------------------------------------------------

    let server = WebServer::new(
        Arc::clone(&server_stack),
        fs,
        ServerConfig {
            port: 80,
            cache_bytes: 2 * 1024 * 1024, // small cache: visible hit/miss mix
            ..Default::default()
        },
    );
    server.attach_telemetry(&telemetry);
    sim.spawn(server.run());

    // Live introspection beside the web server: same host, own port.
    let debug = Server::new(
        Arc::clone(&server_stack),
        DebugService::new(&telemetry),
        DebugConfig {
            port: DEBUG_PORT,
            ..Default::default()
        },
    );
    debug.attach_telemetry(&telemetry, "debug");
    sim.spawn(debug.run());

    // Load generator: CONNECTIONS keep-alive clients on the other host.
    let stats = Arc::new(LoadStats::default());
    let cfg = Arc::new(LoadConfig {
        server: Endpoint::new(HostId(1), 80),
        requests_per_conn: REQUESTS_PER_CONN,
        paths: Arc::new(corpus_paths(FILES)),
        seed: 4242,
    });
    for id in 0..CONNECTIONS {
        sim.spawn(client_thread(
            Arc::clone(&client_stack),
            Arc::clone(&cfg),
            Arc::clone(&stats),
            id,
        ));
    }

    // Drive until every client finished.
    let watch = Arc::clone(&stats);
    sim.block_on(loop_m((), move |()| {
        let watch = Arc::clone(&watch);
        do_m! {
            sys_sleep(20 * eveth::core::time::MILLIS);
            let done <- sys_nbio(move || watch.clients_done.load(Ordering::Relaxed));
            ThreadM::pure(if done == CONNECTIONS { Loop::Break(()) } else { Loop::Continue(()) })
        }
    }))
    .expect("load completed");

    // Peek at the live span table and metrics over the wire while the
    // web server is still up — the debug service shares its runtime.
    let threads = sim
        .block_on(debug_get(
            &client_stack,
            Endpoint::new(HostId(1), DEBUG_PORT),
            "/threads",
        ))
        .expect("threads fetched");
    let metrics = sim
        .block_on(debug_get(
            &client_stack,
            Endpoint::new(HostId(1), DEBUG_PORT),
            "/metrics",
        ))
        .expect("metrics fetched");

    // Graceful drain through the framework: close the listener via the
    // acceptor's choose, let every keep-alive session observe the
    // broadcast, and wait on the drain barrier.
    server.shutdown();
    sim.block_on(eveth::core::event::sync(server.drained_signal().wait_evt()))
        .expect("drain barrier");
    assert_eq!(server.server().active(), 0, "drained");

    let secs = sim.now() as f64 / 1e9;
    let bytes = stats.bytes.load(Ordering::Relaxed);
    println!(
        "stack: {}",
        if use_app_tcp {
            "application-level TCP (eveth-tcp)"
        } else {
            "kernel-socket model"
        }
    );
    println!(
        "served {} responses ({} not found, {} errors) in {:.2}s virtual",
        stats.responses(),
        stats.non_200.load(Ordering::Relaxed),
        stats.errors.load(Ordering::Relaxed),
        secs
    );
    println!(
        "throughput: {:.2} MB/s | cache: {:.0}% hits | server stats: {:?}",
        bytes as f64 / (1024.0 * 1024.0) / secs,
        server.cache().hit_ratio() * 100.0,
        server.stats()
    );
    assert_eq!(
        stats.ok.load(Ordering::Relaxed),
        CONNECTIONS * REQUESTS_PER_CONN as u64
    );

    println!("\nGET /metrics (debug service, port {DEBUG_PORT}) — http lines:");
    for line in metrics
        .lines()
        .filter(|l| l.starts_with("eveth_http_") || l.starts_with("eveth_server_session_"))
    {
        println!("  {line}");
    }
    println!(
        "GET /threads: {} live spans at fetch time (also /trace for Perfetto)",
        threads.lines().filter(|l| l.contains("tid=")).count()
    );
}
