//! The second workload: a sharded, memcached-style KV service over the
//! hybrid runtime, switchable between the kernel-socket model and the
//! application-level TCP stack by one line — the same switch as the web
//! server, on a completely different protocol.
//!
//! A [`DebugService`] is mounted beside the KV server (same host, port
//! 11280) with the telemetry fabric attached: after the load drains, the
//! example fetches `GET /metrics` over a real (virtual) connection and
//! prints the server-side counters next to the client's view.
//!
//! Run with:
//! ```text
//! cargo run --example kv_server             # kernel-socket model
//! cargo run --example kv_server -- tcp      # application-level TCP stack
//! cargo run --example kv_server -- stm      # TVar-backed shards
//! cargo run --example kv_server -- tcp stm  # both
//! ```

use std::sync::Arc;

use eveth::core::net::{send_all, Endpoint, HostId, NetStack};
use eveth::core::service::{Server, ServerConfig as DebugConfig};
use eveth::core::telemetry::{DebugService, Telemetry};
use eveth::glue;
use eveth::kv::loadgen::{client_thread, KvLoadConfig, KvLoadStats};
use eveth::kv::server::{KvConfig, KvServer};
use eveth::kv::store::{Backend, StoreConfig};
use eveth::simos::net::{LinkParams, SimNet};
use eveth::simos::sockets::{FabricParams, SocketFabric};
use eveth::simos::SimRuntime;
use eveth::tcp::tcb::TcpConfig;

const CLIENTS: u64 = 24;
const BATCHES_PER_CONN: usize = 16;
const PIPELINE_DEPTH: usize = 8;
const DEBUG_PORT: u16 = 11280;

/// One `GET` against the debug service: connect, send the request line,
/// read to EOF (it closes after one response), return the body.
fn debug_get(stack: &Arc<dyn NetStack>, ep: Endpoint, target: &str) -> eveth::ThreadM<String> {
    let stack = Arc::clone(stack);
    let req = bytes::Bytes::from(format!("GET {target} HTTP/1.0\r\n\r\n"));
    eveth::do_m! {
        let conn <- stack.connect(ep);
        let conn = conn.expect("debug service reachable");
        let sent <- send_all(&conn, req);
        let _ = sent.expect("request sent");
        let raw <- eveth::loop_m((Vec::new(), conn), move |(mut acc, conn)| {
            conn.recv(16 * 1024).map(move |res| match res {
                Ok(chunk) if chunk.is_empty() => eveth::Loop::Break(acc),
                Ok(chunk) => {
                    acc.extend_from_slice(&chunk);
                    eveth::Loop::Continue((acc, conn))
                }
                Err(_) => eveth::Loop::Break(acc),
            })
        });
        let text = String::from_utf8_lossy(&raw).into_owned();
        eveth::ThreadM::pure(match text.split_once("\r\n\r\n") {
            Some((_, body)) => body.to_string(),
            None => text,
        })
    }
}

fn main() {
    let use_app_tcp = std::env::args().any(|a| a == "tcp");
    let use_stm = std::env::args().any(|a| a == "stm");

    let sim = SimRuntime::new_default();
    let telemetry = Telemetry::new();
    assert!(sim.set_telemetry(Arc::clone(&telemetry)));

    // ---- THE one-line switch (paper §5.2) -------------------------------
    let (server_stack, client_stack): (Arc<dyn NetStack>, Arc<dyn NetStack>) = if use_app_tcp {
        let net = SimNet::new(sim.clock(), LinkParams::ethernet_100mbps(), 7);
        (
            glue::tcp_host_over_simnet(sim.ctx(), &net, HostId(1), TcpConfig::default()),
            glue::tcp_host_over_simnet(sim.ctx(), &net, HostId(2), TcpConfig::default()),
        )
    } else {
        let fabric = SocketFabric::new(sim.clock(), FabricParams::default());
        (fabric.stack(HostId(1)), fabric.stack(HostId(2)))
    };
    // ----------------------------------------------------------------------

    let server = KvServer::new(
        Arc::clone(&server_stack),
        KvConfig {
            port: 11211,
            store: StoreConfig {
                shards: 8,
                backend: if use_stm {
                    Backend::Stm
                } else {
                    Backend::Mutex
                },
                ..Default::default()
            },
            ..Default::default()
        },
    );
    server.attach_telemetry(&telemetry);
    sim.spawn(server.run());

    // Live introspection beside the KV server: same host, own port.
    let debug = Server::new(
        Arc::clone(&server_stack),
        DebugService::new(&telemetry),
        DebugConfig {
            port: DEBUG_PORT,
            ..Default::default()
        },
    );
    debug.attach_telemetry(&telemetry, "debug");
    sim.spawn(debug.run());

    // Load: pipelined get/set mix over zipfian keys.
    let stats = Arc::new(KvLoadStats::default());
    let cfg = Arc::new(KvLoadConfig {
        server: Endpoint::new(HostId(1), 11211),
        batches_per_conn: BATCHES_PER_CONN,
        pipeline_depth: PIPELINE_DEPTH,
        keys: 512,
        zipf_s: 0.99,
        set_percent: 20,
        value_bytes: 100,
        ttl_secs: 0,
        seed: 4242,
    });
    for id in 0..CLIENTS {
        sim.spawn(client_thread(
            Arc::clone(&client_stack),
            Arc::clone(&cfg),
            Arc::clone(&stats),
            id,
        ));
    }

    // Drive until every client finished (the server and its janitor run
    // forever, so block on the clients, not on quiescence).
    let watch = Arc::clone(&stats);
    sim.block_on(eveth::loop_m((), move |()| {
        let watch = Arc::clone(&watch);
        eveth::do_m! {
            eveth::core::syscall::sys_sleep(10 * eveth::core::time::MILLIS);
            let done <- eveth::core::syscall::sys_nbio(move || watch.clients_done.get());
            eveth::ThreadM::pure(if done == CLIENTS {
                eveth::Loop::Break(())
            } else {
                eveth::Loop::Continue(())
            })
        }
    }))
    .expect("load completed");

    // Introspect over the wire while everything is still mounted: the
    // debug service renders the same registry the servers write into.
    let metrics = sim
        .block_on(debug_get(
            &client_stack,
            Endpoint::new(HostId(1), DEBUG_PORT),
            "/metrics",
        ))
        .expect("metrics fetched");

    let secs = sim.now() as f64 / 1e9;
    let snap = server.store_snapshot();
    println!(
        "stack: {} | shards: {} ({:?} backend)",
        if use_app_tcp {
            "application-level TCP (eveth-tcp)"
        } else {
            "kernel-socket model"
        },
        server.store().shard_count(),
        server.store().config().backend,
    );
    println!(
        "{} commands answered in {:.3}s virtual ({:.0} commands/s)",
        stats.responses(),
        secs,
        stats.responses() as f64 / secs
    );
    println!("client view : {stats}");
    println!("server view : {snap}");
    println!(
        "store       : {} live entries, hit ratio {:.0}%",
        server.store().len_now(),
        snap.hit_ratio() * 100.0
    );
    assert_eq!(
        stats.responses(),
        CLIENTS * (BATCHES_PER_CONN * PIPELINE_DEPTH) as u64,
        "every pipelined command must be answered"
    );

    println!("\nGET /metrics (debug service, port {DEBUG_PORT}) — server-side lines:");
    for line in metrics.lines().filter(|l| {
        l.starts_with("eveth_kv_commands")
            || l.starts_with("eveth_server_")
            || l.starts_with("eveth_runtime_io_wait")
    }) {
        println!("  {line}");
    }
    println!("  (also try /threads for the live span table, /trace for Perfetto)");
}
