//! Binary form of the KV sweep: `cargo run --release -p eveth-bench --bin
//! fig_kv` regenerates `BENCH_kv.json` exactly as the bench target does.

fn main() {
    eveth_bench::figkv::run();
}
