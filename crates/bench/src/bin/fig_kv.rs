//! Binary form of the KV sweep: `cargo run --release -p eveth-bench --bin
//! fig_kv` regenerates `BENCH_kv.json` exactly as the bench target does.
//! The counting allocator is installed here so the `allocs_per_op` column
//! is live (it reads as 0 without it).

use eveth_bench::allocmeter::CountingAlloc;

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc::new();

fn main() {
    eveth_bench::figkv::run();
}
