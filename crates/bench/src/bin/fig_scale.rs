//! Binary form of the scale sweep: `cargo run --release -p eveth-bench
//! --bin fig_scale` regenerates `BENCH_scale.json` exactly as the bench
//! target does. The counting allocator is installed here so the resident
//! scenario's bytes-per-connection column is live.

use eveth_bench::allocmeter::CountingAlloc;

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc::new();

fn main() {
    eveth_bench::figscale::run();
}
