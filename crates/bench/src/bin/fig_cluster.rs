//! Binary form of the cluster suite: `cargo run --release -p eveth-bench
//! --bin fig_cluster` regenerates `BENCH_cluster.json` exactly as the
//! bench target does — CI runs both and compares the bytes.

use eveth_bench::allocmeter::CountingAlloc;

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc::new();

fn main() {
    eveth_bench::figcluster::run();
}
