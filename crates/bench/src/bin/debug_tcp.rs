//! Diagnostic harness: drives a lossy TCP-over-SimNet transfer in 100 ms
//! virtual slices and dumps every TCB between slices. Useful when a
//! protocol change stalls an exchange (run with `cargo run -p eveth-bench
//! --bin debug_tcp`).

use bytes::Bytes;
use eveth_core::net::{recv_exact, send_all, Endpoint, HostId, NetStack};
use eveth_core::{do_m, ThreadM};
use eveth_simos::net::{LinkParams, SimNet};
use eveth_simos::SimRuntime;
use eveth_tcp::host::TcpHost;
use eveth_tcp::tcb::TcpConfig;
use eveth_tcp::transport::SegmentTransport;
use std::sync::atomic::Ordering;
use std::sync::Arc;

struct SimNetTransport {
    net: Arc<SimNet>,
}
impl SegmentTransport for SimNetTransport {
    fn send(&self, src: HostId, dst: HostId, seg: eveth_tcp::segment::Segment) {
        let wire = seg.wire_len();
        self.net.send(src, dst, wire, Box::new(seg));
    }
}

fn attach(net: &Arc<SimNet>, host: &Arc<TcpHost>) {
    let weak = Arc::downgrade(host);
    net.register_host(
        host.host_id(),
        Arc::new(move |src, pkt| {
            if let (Some(h), Ok(seg)) = (
                weak.upgrade(),
                pkt.downcast::<eveth_tcp::segment::Segment>(),
            ) {
                h.inject(src, *seg);
            }
        }),
    );
}

fn main() {
    let bytes = 200_000usize;
    let sim = SimRuntime::new_default();
    let net = SimNet::new(
        sim.clock(),
        LinkParams::ethernet_100mbps().with_loss(0.02),
        42,
    );
    let a = TcpHost::start(
        sim.ctx(),
        HostId(1),
        Arc::new(SimNetTransport { net: net.clone() }),
        TcpConfig::default(),
    );
    let b = TcpHost::start(
        sim.ctx(),
        HostId(2),
        Arc::new(SimNetTransport { net: net.clone() }),
        TcpConfig::default(),
    );
    attach(&net, &a);
    attach(&net, &b);

    let payload = Bytes::from(vec![0xAB; bytes]);
    let server = do_m! {
        let lst <- b.listen(80);
        let conn <- lst.unwrap().accept();
        let conn = conn.unwrap();
        let got <- recv_exact(&conn, bytes);
        let echoed <- send_all(&conn, got.unwrap().slice(..128));
        let _ = echoed.unwrap();
        ThreadM::pure(())
    };
    sim.spawn(server);
    let a2 = Arc::clone(&a);
    sim.spawn(do_m! {
        let conn <- a2.connect(Endpoint::new(HostId(2), 80));
        let conn = conn.unwrap();
        let sent <- send_all(&conn, payload);
        let _ = sent.unwrap();
        let back <- recv_exact(&conn, 128);
        let back = back.unwrap();
        eveth_core::syscall::sys_nbio(move || println!("CLIENT DONE, got {} bytes", back.len()))
    });

    // Run in 100ms virtual slices, dumping state. The wait columns use
    // the runtime's split accounting: `io` is time blocked on socket
    // readiness (`sys_epoll_wait`), `lock` is pure synchronization wait
    // (`sys_park`) — a stall that grows `io` without moving segments
    // points at the protocol, one that grows `lock` points at the host's
    // internal queues.
    for slice in 1..=50u64 {
        let report = sim.run_until(Some(slice * 100_000_000));
        println!(
            "t={:>6}ms a={:?} b={:?} sent={} dropped={} io={}us/{} lock={}us/{}",
            sim.now() / 1_000_000,
            a,
            b,
            net.stats().sent.load(Ordering::Relaxed),
            net.stats().dropped.load(Ordering::Relaxed),
            report.io_wait_ns / 1_000,
            report.io_waits,
            report.lock_wait_ns / 1_000,
            report.lock_waits,
        );
        a.debug_dump();
        b.debug_dump();
    }
}
