//! # eveth-bench — harnesses reproducing the paper's evaluation (§5)
//!
//! One bench target per table/figure (see `benches/`), plus the shared
//! workload builders and measurement plumbing they use. Run everything
//! with `cargo bench --workspace`; each harness prints the same rows the
//! paper reports. `EXPERIMENTS.md` at the workspace root records
//! paper-vs-measured for every artifact.
//!
//! Environment knobs:
//!
//! * `EVETH_FULL=1` — run paper-scale workloads (512 MB disk reads, 64 GB
//!   FIFO traffic equivalents, 128k-file corpus, 10M-thread memory test)
//!   instead of the scaled defaults.

#![warn(missing_docs)]

pub mod allocmeter;
pub mod figcluster;
pub mod figkv;
pub mod figscale;
pub mod tables;
pub mod workloads;

/// xorshift64*: the deterministic RNG used across all harnesses.
pub fn xorshift(state: &mut u64) -> u64 {
    let mut x = *state;
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    *state = x;
    x
}

/// True when paper-scale workloads were requested.
pub fn full_scale() -> bool {
    std::env::var("EVETH_FULL")
        .map(|v| v == "1")
        .unwrap_or(false)
}

#[cfg(test)]
mod tests {
    #[test]
    fn xorshift_is_deterministic_and_moves() {
        let mut a = 42;
        let mut b = 42;
        assert_eq!(super::xorshift(&mut a), super::xorshift(&mut b));
        assert_ne!(a, 42);
    }
}
