//! The cluster sweep behind both the `fig_cluster` bench target and the
//! `fig_cluster` binary (`cargo run --release -p eveth-bench --bin
//! fig_cluster`): one shared implementation so CI and ad-hoc runs
//! regenerate the exact same `BENCH_cluster.json`.
//!
//! Three scenario families over the multi-host simnet:
//!
//! * **node sweep** — the zipf-free KV workload through the
//!   consistent-hash router at 1/2/4/8 backend nodes, each node a
//!   single-shard store so per-node serialization is the bottleneck the
//!   cluster spreads. CI gates 4 nodes ≥ 2× 1 node.
//! * **crash failover** — R=2 replication, the probe key's primary host
//!   crashes mid-run (sockets reset, listener gone), and the membership
//!   is repaired a few virtual milliseconds later. A probe client
//!   measures the unavailability window (largest gap between successive
//!   successful probe reads); acknowledged replicated writes survive by
//!   construction (see `tests/cluster.rs`).
//! * **partition heal** — over the app-level TCP stack, the router is
//!   partitioned from one backend and healed later; replicated reads
//!   fail over after the backend timeout (tail latency, not
//!   unavailability), and `recovery_ns` reports how long after the heal
//!   the primary serves fast reads again.
//!
//! All columns are virtual-time deterministic: reruns must produce a
//! byte-identical `BENCH_cluster.json` (CI compares).
//!
//! Run: `cargo bench --bench fig_cluster` (EVETH_FULL=1 for the larger
//! sweep).

use std::sync::Arc;

use bytes::Bytes;
use eveth_cluster::{HashRing, Router, RouterConfig};
use eveth_core::net::{Endpoint, HostId, NetStack};
use eveth_core::syscall::{sys_nbio, sys_sleep, sys_time};
use eveth_core::time::{Nanos, MICROS, MILLIS};
use eveth_core::{do_m, loop_m, Loop, ThreadM};
use eveth_kv::client::KvClient;
use eveth_kv::loadgen::{client_thread, KvLoadConfig, KvLoadStats};
use eveth_kv::protocol::Reply;
use eveth_kv::server::{KvConfig, KvServer};
use eveth_kv::store::StoreConfig;
use eveth_simos::cost::CostModel;
use eveth_simos::net::{LinkParams, SimNet};
use eveth_simos::sockets::{FabricParams, SocketFabric};
use std::sync::Mutex;

use crate::tables::{banner, count, write_json_rows, JsonVal};
use crate::workloads::sim_with_config;

const KV_PORT: u16 = 11211;
const ROUTER_PORT: u16 = 11311;
const ROUTER_HOST: u32 = 50;
const CLIENT_HOST: u32 = 60;
/// The replicated key the fault probe reads; its primary is the fault
/// victim.
const PROBE_KEY: &str = "hot:probe";

/// One cluster bench cell.
#[derive(Debug, Clone)]
pub struct ClusterParams {
    /// Cost model for the whole simulation.
    pub cost: CostModel,
    /// Virtual CPUs.
    pub cpus: usize,
    /// Non-blocking steps per scheduling turn.
    pub slice: usize,
    /// Backend KV nodes on the ring.
    pub nodes: usize,
    /// Replica count R (1 = no replication).
    pub replication: usize,
    /// Store shards per backend node (1 makes each node a serialization
    /// point, so the node sweep measures cluster spreading).
    pub shards_per_node: usize,
    /// Router's per-round backend inactivity deadline (0 = none).
    pub backend_timeout: Nanos,
    /// Router's per-backend failure cooldown (circuit breaker; 0 = off).
    pub backend_cooldown: Nanos,
    /// Serve over the app-level TCP stack instead of the socket fabric.
    pub app_tcp: bool,
    /// Loopback-class link instead of 100 Mbps Ethernet.
    pub loopback: bool,
    /// Concurrent client connections.
    pub clients: u64,
    /// Hosts the client connections are spread over. Matters over the
    /// app-TCP stack, where the simnet serializes each directed host
    /// pair at the link rate: one client host would make the
    /// client↔router pair the bottleneck instead of the backends.
    pub client_hosts: u32,
    /// Pipelined batches per connection.
    pub batches_per_conn: usize,
    /// Commands per batch.
    pub pipeline_depth: usize,
    /// Sets per 100 commands.
    pub set_percent: u8,
    /// Key-space size.
    pub keys: usize,
    /// Zipf skew (0.0 = uniform; uniform spreads load across nodes).
    pub zipf_s: f64,
    /// Value payload bytes.
    pub value_bytes: usize,
    /// RNG seed.
    pub seed: u64,
}

/// The injected fault, if any.
#[derive(Debug, Clone, Copy)]
pub enum Fault {
    /// No fault: the plain scaling run.
    None,
    /// Crash the probe key's primary at `at`; remove it from the ring
    /// `repair_after` later (the operator's membership fix).
    Crash {
        /// Virtual time of the crash.
        at: Nanos,
        /// Delay from crash to ring repair.
        repair_after: Nanos,
    },
    /// Partition the router from the probe key's primary at `at`, heal
    /// at `heal_at`. Requires `app_tcp` (link control lives in `SimNet`).
    Partition {
        /// Virtual time the link drops.
        at: Nanos,
        /// Virtual time the link is restored.
        heal_at: Nanos,
    },
}

/// Outcome of one cell.
#[derive(Debug, Clone)]
pub struct ClusterResult {
    /// Virtual time consumed.
    pub elapsed: Nanos,
    /// Commands answered (client-observed).
    pub responses: u64,
    /// Commands answered per virtual second.
    pub ops_per_sec: f64,
    /// Client-observed get hits / misses.
    pub hits: u64,
    /// Client-observed get misses.
    pub misses: u64,
    /// Error replies clients saw (includes `SERVER_ERROR` during faults).
    pub errors: u64,
    /// Per-command latency percentiles (batch send → reply).
    pub p50_ns: Nanos,
    /// 95th percentile.
    pub p95_ns: Nanos,
    /// 99th percentile — the failover cells' tail-latency headline.
    pub p99_ns: Nanos,
    /// Router: writes fanned to >1 replica.
    pub replicated_writes: u64,
    /// Router: replicated reads retried on another replica.
    pub read_retries: u64,
    /// Router: read-repair sets shipped.
    pub read_repairs: u64,
    /// Router: backends dropped mid-batch.
    pub backend_errors: u64,
    /// Router: `SERVER_ERROR` replies synthesized.
    pub server_errors: u64,
    /// Largest gap between successive successful probe reads (the
    /// unavailability window; 0 when no fault/probe ran).
    pub unavail_ns: Nanos,
    /// Partition cells: heal time → first fast (sub-timeout) probe read.
    pub recovery_ns: Nanos,
    /// Successful probe reads over the run.
    pub probe_successes: u64,
    /// Mean CPU utilization.
    pub cpu_utilization: f64,
}

fn backends(n: usize) -> Vec<Endpoint> {
    (1..=n as u32)
        .map(|h| Endpoint::new(HostId(h), KV_PORT))
        .collect()
}

/// The fault probe: one dedicated connection reading `PROBE_KEY` through
/// the router every `interval`, recording `(completion time, latency)`
/// of each successful read. Reconnects after transport errors; treats
/// `SERVER_ERROR` and misses as failures.
fn probe_thread(
    stack: Arc<dyn NetStack>,
    target: Endpoint,
    interval: Nanos,
    log: Arc<Mutex<Vec<(Nanos, Nanos)>>>,
) -> ThreadM<()> {
    let wire = Bytes::from(format!("get {PROBE_KEY}\r\n"));
    loop_m(None::<KvClient>, move |client| {
        let stack = Arc::clone(&stack);
        let log = Arc::clone(&log);
        let wire = wire.clone();
        let ensure = match client {
            Some(c) => ThreadM::pure(Ok(c)),
            None => KvClient::connect(stack, target),
        };
        ensure.bind(move |client| match client {
            Err(_) => sys_sleep(interval).map(|()| Loop::Continue(None)),
            Ok(client) => do_m! {
                let t0 <- sys_time();
                let got <- client.request(wire, 1);
                let t1 <- sys_time();
                let next = match got {
                    Ok(replies) => {
                        if replies.iter().any(|r| matches!(r, Reply::Value { .. })) {
                            log.lock().unwrap().push((t1, t1.saturating_sub(t0)));
                        }
                        Some(client)
                    }
                    Err(_) => None,
                };
                sys_sleep(interval).map(move |()| Loop::Continue(next))
            },
        })
    })
}

/// Runs one cluster cell: `nodes` single-host KV servers, the router on
/// its own host, `clients` loadgen connections against the router, and
/// (for fault cells) the probe plus the fault injector.
pub fn cluster_run(p: &ClusterParams, fault: Fault) -> ClusterResult {
    let sim = sim_with_config(p.cost.clone(), p.cpus, p.slice);
    let link = if p.loopback {
        LinkParams::loopback()
    } else {
        LinkParams::ethernet_100mbps()
    };

    // Build one stack per host over the chosen transport, keeping the
    // fault handles (fabric for crashes, net for partitions). Memoized:
    // a TCP host must exist exactly once per `HostId` — re-creating one
    // would re-register the packet tap and orphan the first instance.
    let mut fabric = None;
    let mut net = None;
    let make: Box<dyn Fn(u32) -> Arc<dyn NetStack>> = if p.app_tcp {
        let n = SimNet::new(sim.clock(), link, p.seed);
        net = Some(Arc::clone(&n));
        let ctx = sim.ctx();
        // LAN-tuned TCP: the stack's default 200 ms min-RTO clamp is a
        // WAN-era safety net; inside a simulated rack it would turn any
        // partition into a 200 ms convoy behind one lost SYN.
        let tcp_cfg = eveth_tcp::tcb::TcpConfig {
            min_rto: 10 * MILLIS,
            initial_rto: 10 * MILLIS,
            tick: MILLIS,
            max_syn_retries: 2,
            ..eveth_tcp::tcb::TcpConfig::default()
        };
        Box::new(move |h| {
            eveth::glue::tcp_host_over_simnet(Arc::clone(&ctx), &n, HostId(h), tcp_cfg.clone())
                as Arc<dyn NetStack>
        })
    } else {
        let f = SocketFabric::new(
            sim.clock(),
            FabricParams {
                link,
                ..FabricParams::default()
            },
        );
        fabric = Some(Arc::clone(&f));
        Box::new(move |h| f.stack(HostId(h)) as Arc<dyn NetStack>)
    };
    let cache = std::cell::RefCell::new(std::collections::HashMap::<u32, Arc<dyn NetStack>>::new());
    let stack = |h: u32| -> Arc<dyn NetStack> {
        Arc::clone(cache.borrow_mut().entry(h).or_insert_with(|| make(h)))
    };

    for h in 1..=p.nodes as u32 {
        let server = KvServer::new(
            stack(h),
            KvConfig {
                port: KV_PORT,
                store: StoreConfig {
                    shards: p.shards_per_node,
                    ..Default::default()
                },
                ..Default::default()
            },
        );
        sim.spawn(server.run());
    }

    let router = Router::new(
        stack(ROUTER_HOST),
        RouterConfig {
            port: ROUTER_PORT,
            backends: backends(p.nodes),
            replication: p.replication,
            backend_timeout: p.backend_timeout,
            backend_cooldown: p.backend_cooldown,
            ..Default::default()
        },
    );
    sim.spawn(router.run());
    let router_ep = Endpoint::new(HostId(ROUTER_HOST), ROUTER_PORT);

    // The fault victim: the probe key's primary, from the same ring the
    // router routes by.
    let ring = HashRing::new(backends(p.nodes), 64);
    let victim = ring.primary(PROBE_KEY.as_bytes());

    let probe_log: Arc<Mutex<Vec<(Nanos, Nanos)>>> = Arc::new(Mutex::new(Vec::new()));
    let mut heal_at_ns: Nanos = 0;
    if !matches!(fault, Fault::None) {
        // Seed the probe key (replicated) before the measured window.
        let seed_stack = stack(CLIENT_HOST);
        sim.block_on(do_m! {
            let c <- KvClient::connect(seed_stack, router_ep);
            let client = c.unwrap();
            let put <- client.request(
                Bytes::from(format!("set {PROBE_KEY} 0 0 5\r\nalive\r\n")),
                1,
            );
            let _ = assert_eq!(put.unwrap(), vec![Reply::Stored], "probe key seeded");
            client.close()
        })
        .expect("probe seed ran");
        sim.spawn(probe_thread(
            stack(CLIENT_HOST),
            router_ep,
            200 * MICROS,
            Arc::clone(&probe_log),
        ));
    }
    match fault {
        Fault::None => {}
        Fault::Crash { at, repair_after } => {
            let fabric = Arc::clone(fabric.as_ref().expect("crash faults run on the fabric"));
            let router = Arc::clone(&router);
            let rest: Vec<Endpoint> = backends(p.nodes)
                .into_iter()
                .filter(|ep| *ep != victim)
                .collect();
            sim.spawn(do_m! {
                sys_sleep(at);
                sys_nbio(move || fabric.crash_host(victim.host));
                sys_sleep(repair_after);
                sys_nbio(move || router.set_ring(rest.clone()))
            });
        }
        Fault::Partition { at, heal_at } => {
            heal_at_ns = heal_at;
            let net = Arc::clone(net.as_ref().expect("partition faults need app_tcp"));
            let net_heal = Arc::clone(&net);
            sim.spawn(do_m! {
                sys_sleep(at);
                sys_nbio(move || {
                    net.set_link_down(HostId(ROUTER_HOST), victim.host);
                    net.set_link_down(victim.host, HostId(ROUTER_HOST));
                });
                sys_sleep(heal_at.saturating_sub(at));
                sys_nbio(move || {
                    net_heal.set_link_up(HostId(ROUTER_HOST), victim.host);
                    net_heal.set_link_up(victim.host, HostId(ROUTER_HOST));
                })
            });
        }
    }

    let stats = Arc::new(KvLoadStats::default());
    let cfg = Arc::new(KvLoadConfig {
        server: router_ep,
        batches_per_conn: p.batches_per_conn,
        pipeline_depth: p.pipeline_depth,
        keys: p.keys,
        zipf_s: p.zipf_s,
        set_percent: p.set_percent,
        value_bytes: p.value_bytes,
        ttl_secs: 0,
        seed: p.seed,
    });
    for id in 0..p.clients {
        sim.spawn(client_thread(
            stack(CLIENT_HOST + id as u32 % p.client_hosts.max(1)),
            Arc::clone(&cfg),
            Arc::clone(&stats),
            id,
        ));
    }

    let clients = p.clients;
    let watch = Arc::clone(&stats);
    sim.block_on(loop_m((), move |()| {
        let watch = Arc::clone(&watch);
        do_m! {
            sys_sleep(50 * MICROS);
            let done <- sys_nbio(move || watch.clients_done.get());
            ThreadM::pure(if done == clients { Loop::Break(()) } else { Loop::Continue(()) })
        }
    }))
    .expect("cluster load completed");

    let report = sim.report();
    let elapsed = report.now;
    let responses = stats.responses();
    let pcts = stats.latency.percentiles(&[50.0, 95.0, 99.0]);

    // Probe post-processing: the unavailability window is the largest
    // gap between successive successful reads; recovery is heal → first
    // fast read (under half the backend timeout's failover detour).
    let log = probe_log.lock().unwrap();
    let mut unavail = 0;
    for pair in log.windows(2) {
        unavail = unavail.max(pair[1].0 - pair[0].0);
    }
    let recovery_ns = if heal_at_ns > 0 {
        log.iter()
            .find(|&&(t, lat)| t >= heal_at_ns && lat < p.backend_timeout.max(1))
            .map(|&(t, _)| t - heal_at_ns)
            .unwrap_or(0)
    } else {
        0
    };

    let rs = router.stats();
    ClusterResult {
        elapsed,
        responses,
        ops_per_sec: if elapsed == 0 {
            0.0
        } else {
            responses as f64 / (elapsed as f64 / 1e9)
        },
        hits: stats.hits.get(),
        misses: stats.misses.get(),
        errors: stats.errors.get(),
        p50_ns: pcts[0],
        p95_ns: pcts[1],
        p99_ns: pcts[2],
        replicated_writes: rs.replicated_writes.get(),
        read_retries: rs.read_retries.get(),
        read_repairs: rs.read_repairs.get(),
        backend_errors: rs.backend_errors.get(),
        server_errors: rs.server_errors.get(),
        unavail_ns: unavail,
        recovery_ns,
        probe_successes: log.len() as u64,
        cpu_utilization: report.avg_utilization(),
    }
}

fn base_params() -> ClusterParams {
    ClusterParams {
        cost: CostModel::monadic(),
        cpus: 8,
        slice: 16,
        nodes: 4,
        replication: 1,
        shards_per_node: 1,
        backend_timeout: 0,
        backend_cooldown: 0,
        app_tcp: false,
        loopback: true,
        clients: 32,
        client_hosts: 1,
        batches_per_conn: 8,
        pipeline_depth: 8,
        set_percent: 10,
        keys: 1024,
        zipf_s: 0.0,
        value_bytes: 100,
        seed: 42,
    }
}

/// One JSON row with the uniform column set.
fn row(
    sweep: &str,
    fault: &str,
    p: &ClusterParams,
    r: &ClusterResult,
) -> Vec<(&'static str, JsonVal)> {
    vec![
        ("sweep", JsonVal::Str(sweep.into())),
        ("fault", JsonVal::Str(fault.into())),
        (
            "stack",
            JsonVal::Str(if p.app_tcp { "app-tcp" } else { "sockets" }.into()),
        ),
        ("nodes", JsonVal::Int(p.nodes as u64)),
        ("replication", JsonVal::Int(p.replication as u64)),
        ("clients", JsonVal::Int(p.clients)),
        ("client_hosts", JsonVal::Int(p.client_hosts as u64)),
        ("pipeline_depth", JsonVal::Int(p.pipeline_depth as u64)),
        ("cpus", JsonVal::Int(p.cpus as u64)),
        ("responses", JsonVal::Int(r.responses)),
        ("ops_per_sec", JsonVal::Num(r.ops_per_sec)),
        ("virtual_ns", JsonVal::Int(r.elapsed)),
        ("p50_ns", JsonVal::Int(r.p50_ns)),
        ("p95_ns", JsonVal::Int(r.p95_ns)),
        ("p99_ns", JsonVal::Int(r.p99_ns)),
        ("hits", JsonVal::Int(r.hits)),
        ("misses", JsonVal::Int(r.misses)),
        ("errors", JsonVal::Int(r.errors)),
        ("replicated_writes", JsonVal::Int(r.replicated_writes)),
        ("read_retries", JsonVal::Int(r.read_retries)),
        ("read_repairs", JsonVal::Int(r.read_repairs)),
        ("backend_errors", JsonVal::Int(r.backend_errors)),
        ("server_errors", JsonVal::Int(r.server_errors)),
        ("unavail_ns", JsonVal::Int(r.unavail_ns)),
        ("recovery_ns", JsonVal::Int(r.recovery_ns)),
        ("probe_successes", JsonVal::Int(r.probe_successes)),
        ("cpu_utilization", JsonVal::Num(r.cpu_utilization)),
    ]
}

/// Runs the whole cluster suite and writes `BENCH_cluster.json` at the
/// workspace root. Exits nonzero if the JSON drop cannot be written.
pub fn run() {
    let full = crate::full_scale();
    let node_counts: Vec<usize> = vec![1, 2, 4, 8];
    let mut rows: Vec<Vec<(&str, JsonVal)>> = Vec::new();

    banner(
        "CLUSTER / multi-host KV",
        "consistent-hash router: ops/s vs nodes; crash failover; partition heal",
        "the same monadic service code scaled across simulated hosts, with CML choose as the fan-in",
    );

    // ---- ops/s vs node count ---------------------------------------------
    println!();
    println!(
        "{:>6} | {:>14} | {:>12} | {:>12} | {:>5}",
        "nodes", "ops/s", "p50 ns", "p99 ns", "util"
    );
    println!(
        "{:->6}-+-{:->14}-+-{:->12}-+-{:->12}-+-{:->5}",
        "", "", "", "", ""
    );
    for &nodes in &node_counts {
        let p = ClusterParams {
            nodes,
            app_tcp: true,
            loopback: false,
            clients: 64,
            client_hosts: 8,
            batches_per_conn: if full { 48 } else { 24 },
            pipeline_depth: 16,
            ..base_params()
        };
        let r = cluster_run(&p, Fault::None);
        println!(
            "{:>6} | {:>14} | {:>12} | {:>12} | {:>4.0}%",
            nodes,
            count(r.ops_per_sec as u64),
            count(r.p50_ns),
            count(r.p99_ns),
            r.cpu_utilization * 100.0
        );
        rows.push(row("nodes", "none", &p, &r));
    }

    // ---- crash failover: R=2, primary dies mid-run ------------------------
    println!();
    println!(
        "{:>10} | {:>14} | {:>12} | {:>12} | {:>12} | {:>8}",
        "failover", "ops/s", "p99 ns", "unavail us", "retries", "errors"
    );
    println!(
        "{:->10}-+-{:->14}-+-{:->12}-+-{:->12}-+-{:->12}-+-{:->8}",
        "", "", "", "", "", ""
    );
    let p_crash = ClusterParams {
        replication: 2,
        set_percent: 20,
        batches_per_conn: 150,
        ..base_params()
    };
    let r_crash = cluster_run(
        &p_crash,
        Fault::Crash {
            at: 4 * MILLIS,
            repair_after: 4 * MILLIS,
        },
    );
    println!(
        "{:>10} | {:>14} | {:>12} | {:>12} | {:>12} | {:>8}",
        "crash",
        count(r_crash.ops_per_sec as u64),
        count(r_crash.p99_ns),
        count(r_crash.unavail_ns / 1000),
        count(r_crash.read_retries),
        count(r_crash.errors)
    );
    rows.push(row("failover", "crash", &p_crash, &r_crash));

    // ---- partition heal over app-level TCP --------------------------------
    let p_part = ClusterParams {
        nodes: 3,
        replication: 2,
        app_tcp: true,
        loopback: false,
        backend_timeout: 2 * MILLIS,
        backend_cooldown: 3 * MILLIS,
        cpus: 4,
        clients: 8,
        batches_per_conn: 60,
        set_percent: 20,
        ..base_params()
    };
    let r_part = cluster_run(
        &p_part,
        Fault::Partition {
            at: 5 * MILLIS,
            heal_at: 20 * MILLIS,
        },
    );
    println!(
        "{:>10} | {:>14} | {:>12} | {:>12} | {:>12} | {:>8}",
        "partition",
        count(r_part.ops_per_sec as u64),
        count(r_part.p99_ns),
        count(r_part.unavail_ns / 1000),
        count(r_part.read_retries),
        count(r_part.errors)
    );
    rows.push(row("failover", "partition", &p_part, &r_part));
    println!();
    println!(
        "partition heal: recovered {} us after the link came back ({} probe reads)",
        count(r_part.recovery_ns / 1000),
        count(r_part.probe_successes)
    );

    // ---- machine-readable drop -------------------------------------------
    let out = workspace_root().join("BENCH_cluster.json");
    let meta = [
        ("bench", JsonVal::Str("fig_cluster".into())),
        ("full_scale", JsonVal::Bool(full)),
        ("cost_model", JsonVal::Str("monadic".into())),
        ("keys", JsonVal::Int(base_params().keys as u64)),
        (
            "value_bytes",
            JsonVal::Int(base_params().value_bytes as u64),
        ),
        ("probe_key", JsonVal::Str(PROBE_KEY.into())),
    ];
    match write_json_rows(&out, &meta, &rows) {
        Ok(()) => println!("\nwrote {} rows to {}", rows.len(), out.display()),
        Err(e) => {
            eprintln!("\nfailed to write {}: {e}", out.display());
            std::process::exit(1);
        }
    }
    println!("expected shape: ops/s grows with node count while each node's");
    println!("single shard gate would serialize a lone server; the crash cell");
    println!("keeps serving reads through failover (bounded unavailability);");
    println!("the partition cell trades tail latency for availability until");
    println!("the link heals.");
}

/// The workspace root: prefer CARGO env (set under `cargo bench`),
/// falling back to the current directory.
fn workspace_root() -> std::path::PathBuf {
    if let Ok(dir) = std::env::var("CARGO_MANIFEST_DIR") {
        std::path::Path::new(&dir)
            .ancestors()
            .nth(2)
            .map(|p| p.to_path_buf())
            .unwrap_or_else(|| std::path::PathBuf::from("."))
    } else {
        std::path::PathBuf::from(".")
    }
}
