//! The KV service sweep behind both the `fig_kv` bench target and the
//! `fig_kv` binary (`cargo run --release -p eveth-bench --bin fig_kv`):
//! one shared implementation so CI and ad-hoc runs regenerate the exact
//! same `BENCH_kv.json`.
//!
//! KV service throughput — the repository's second workload, benched in
//! the style of the paper's figures: the same monadic program swept across
//! client counts, pipeline depths, shard counts, shard backends, virtual
//! CPU counts and both socket layers, under the monadic cost model.
//!
//! Every row carries tail latency (p50/p95/p99 of per-command
//! virtual-time latency, as the memcached literature reports) plus the
//! full wait taxonomy: runtime-wide I/O wait (`io_wait_ns`, readiness
//! blocking on sockets), *pure* lock wait (`lock_wait_ns`, `sys_park`
//! only — the two are disjoint now that the socket stacks block via
//! `sys_epoll_wait`), the store's own shard-gate wait
//! (`store_lock_wait_ns`) and STM transaction retries (`stm_retries`,
//! the STM backend's contention signal). The *contention* sweep runs the
//! zipfian workload across `cpus × shards` on a loopback-class link — the
//! regime where the multi-CPU simulator makes sharding visible: a hot
//! shard lock stretches virtual time for every waiter while disjoint
//! shards overlap.
//!
//! Beyond the human-readable table, results land in `BENCH_kv.json` at the
//! workspace root (via `eveth_bench::tables::write_json_rows`) so future
//! PRs can track the perf trajectory mechanically; CI fails if the
//! contended 8-shard configuration stops beating 1 shard.
//!
//! Run: `cargo bench --bench fig_kv` (EVETH_FULL=1 for the larger sweep).

use crate::tables::{banner, count, write_json_rows, JsonVal};
use crate::workloads::{kv_server_run, kv_trace_run, KvRunParams, KvRunResult};
use eveth_simos::cost::CostModel;

struct Sweep {
    clients: Vec<u64>,
    depths: Vec<usize>,
    shards: Vec<usize>,
    contention_cpus: Vec<usize>,
    contention_shards: Vec<usize>,
}

fn base_params() -> KvRunParams {
    KvRunParams {
        cost: CostModel::monadic(),
        cpus: 1,
        slice: 256,
        app_tcp: false,
        loopback: false,
        shards: 8,
        stm: false,
        clients: 16,
        batches_per_conn: 16,
        pipeline_depth: 8,
        set_percent: 10,
        keys: 1024,
        value_bytes: 100,
        preload: false,
        seed: 42,
    }
}

/// The contended configuration: many pipelining clients on a
/// loopback-class link with a slice small enough that sessions preempt
/// inside batches — CPU- and lock-bound, not RTT-bound.
fn contention_params() -> KvRunParams {
    KvRunParams {
        loopback: true,
        slice: 8,
        clients: 64,
        ..base_params()
    }
}

fn run_cell(p: KvRunParams) -> KvRunResult {
    kv_server_run(&p)
}

/// One JSON row with the full column set (identical schema across sweeps).
fn row(
    sweep: &str,
    stack: &str,
    backend: &str,
    p: &KvRunParams,
    r: &KvRunResult,
) -> Vec<(&'static str, JsonVal)> {
    vec![
        ("sweep", JsonVal::Str(sweep.into())),
        ("stack", JsonVal::Str(stack.into())),
        ("clients", JsonVal::Int(p.clients)),
        ("pipeline_depth", JsonVal::Int(p.pipeline_depth as u64)),
        ("shards", JsonVal::Int(p.shards as u64)),
        ("backend", JsonVal::Str(backend.into())),
        ("cpus", JsonVal::Int(p.cpus as u64)),
        ("slice", JsonVal::Int(p.slice as u64)),
        ("value_bytes", JsonVal::Int(p.value_bytes as u64)),
        ("responses", JsonVal::Int(r.responses)),
        ("ops_per_sec", JsonVal::Num(r.ops_per_sec)),
        ("hit_ratio", JsonVal::Num(r.hit_ratio())),
        ("virtual_ns", JsonVal::Int(r.elapsed)),
        ("p50_ns", JsonVal::Int(r.p50_ns)),
        ("p95_ns", JsonVal::Int(r.p95_ns)),
        ("p99_ns", JsonVal::Int(r.p99_ns)),
        ("io_wait_ns", JsonVal::Int(r.io_wait_ns)),
        ("lock_wait_ns", JsonVal::Int(r.lock_wait_ns)),
        ("store_lock_wait_ns", JsonVal::Int(r.store_lock_wait_ns)),
        ("stm_retries", JsonVal::Int(r.stm_retries)),
        ("cpu_utilization", JsonVal::Num(r.cpu_utilization)),
        ("allocs_per_op", JsonVal::Num(r.allocs_per_op)),
        ("copies_per_op", JsonVal::Num(r.copies_per_op)),
    ]
}

/// Runs the whole sweep and writes `BENCH_kv.json` at the workspace
/// root. Exits the process nonzero if the JSON drop cannot be written.
pub fn run() {
    let full = crate::full_scale();
    let sweep = if full {
        Sweep {
            clients: vec![1, 4, 16, 64, 256, 1024],
            depths: vec![1, 2, 4, 8, 16, 32],
            shards: vec![1, 2, 4, 8, 16, 32],
            contention_cpus: vec![1, 2, 4, 8],
            contention_shards: vec![1, 2, 4, 8],
        }
    } else {
        Sweep {
            clients: vec![1, 4, 16, 64],
            depths: vec![1, 4, 16],
            shards: vec![1, 4, 16],
            contention_cpus: vec![1, 4],
            contention_shards: vec![1, 8],
        }
    };
    let mut rows: Vec<Vec<(&str, JsonVal)>> = Vec::new();

    banner(
        "KV / second workload",
        "memcached-style KV throughput vs clients, depth, shards, CPUs",
        "the §5.2 architecture applied to a second protocol; both sides of the one-line NetStack switch",
    );

    // ---- throughput vs concurrent clients, both socket layers ------------
    println!();
    println!(
        "{:>8} | {:>14} | {:>14} | {:>9}",
        "clients", "sockets ops/s", "app-tcp ops/s", "hit rate"
    );
    println!("{:->8}-+-{:->14}-+-{:->14}-+-{:->9}", "", "", "", "");
    for &clients in &sweep.clients {
        let p_sock = KvRunParams {
            clients,
            ..base_params()
        };
        let sock = run_cell(p_sock.clone());
        let p_tcp = KvRunParams {
            clients,
            app_tcp: true,
            ..base_params()
        };
        let tcp = run_cell(p_tcp.clone());
        println!(
            "{:>8} | {:>14} | {:>14} | {:>8.1}%",
            clients,
            count(sock.ops_per_sec as u64),
            count(tcp.ops_per_sec as u64),
            sock.hit_ratio() * 100.0
        );
        rows.push(row("clients", "sockets", "mutex", &p_sock, &sock));
        rows.push(row("clients", "app-tcp", "mutex", &p_tcp, &tcp));
    }

    // ---- throughput vs pipeline depth ------------------------------------
    println!();
    println!(
        "{:>8} | {:>14} | {:>12} | {:>12}",
        "depth", "ops/s", "p50 ns", "p99 ns"
    );
    println!("{:->8}-+-{:->14}-+-{:->12}-+-{:->12}", "", "", "", "");
    for &depth in &sweep.depths {
        let p = KvRunParams {
            pipeline_depth: depth,
            ..base_params()
        };
        let r = run_cell(p.clone());
        println!(
            "{:>8} | {:>14} | {:>12} | {:>12}",
            depth,
            count(r.ops_per_sec as u64),
            count(r.p50_ns),
            count(r.p99_ns)
        );
        rows.push(row("pipeline_depth", "sockets", "mutex", &p, &r));
    }

    // ---- throughput vs shard count, both backends ------------------------
    println!();
    println!(
        "{:>8} | {:>14} | {:>14}",
        "shards", "mutex ops/s", "stm ops/s"
    );
    println!("{:->8}-+-{:->14}-+-{:->14}", "", "", "");
    for &shards in &sweep.shards {
        let p_mutex = KvRunParams {
            shards,
            ..base_params()
        };
        let mutex = run_cell(p_mutex.clone());
        let p_stm = KvRunParams {
            shards,
            stm: true,
            ..base_params()
        };
        let stm = run_cell(p_stm.clone());
        println!(
            "{:>8} | {:>14} | {:>14}",
            shards,
            count(mutex.ops_per_sec as u64),
            count(stm.ops_per_sec as u64)
        );
        rows.push(row("shards", "sockets", "mutex", &p_mutex, &mutex));
        rows.push(row("shards", "sockets", "stm", &p_stm, &stm));
    }

    // ---- contention: cpus × shards on the zipfian workload ---------------
    println!();
    println!(
        "{:>4} x {:>6} | {:>14} | {:>12} | {:>12} | {:>14} | {:>14} | {:>5}",
        "cpus", "shards", "ops/s", "p50 ns", "p99 ns", "lock wait us", "io wait us", "util"
    );
    println!(
        "{:->4}---{:->6}-+-{:->14}-+-{:->12}-+-{:->12}-+-{:->14}-+-{:->14}-+-{:->5}",
        "", "", "", "", "", "", "", ""
    );
    for &cpus in &sweep.contention_cpus {
        for &shards in &sweep.contention_shards {
            let p = KvRunParams {
                cpus,
                shards,
                ..contention_params()
            };
            let r = run_cell(p.clone());
            println!(
                "{:>4} x {:>6} | {:>14} | {:>12} | {:>12} | {:>14} | {:>14} | {:>4.0}%",
                cpus,
                shards,
                count(r.ops_per_sec as u64),
                count(r.p50_ns),
                count(r.p99_ns),
                count(r.lock_wait_ns / 1000),
                count(r.io_wait_ns / 1000),
                r.cpu_utilization * 100.0
            );
            rows.push(row("contention", "sockets", "mutex", &p, &r));
            // The same contended cell on the STM backend: its contention
            // surfaces as transaction retries, not lock waits.
            let p_stm = KvRunParams { stm: true, ..p };
            let r_stm = run_cell(p_stm.clone());
            rows.push(row("contention", "sockets", "stm", &p_stm, &r_stm));
        }
    }
    println!("(each cell also ran on the STM backend; see the stm_retries");
    println!(" column in BENCH_kv.json for its contention signal)");

    // ---- get-heavy: the zero-copy showcase cell --------------------------
    // A preloaded key space and a 100% get mix, so every reply carries a
    // stored value. With the buffer fabric, that value travels
    // store → socket as a refcounted slice: `copies_per_op` counts only
    // the reply headers and must stay below `value_bytes` (CI gates it).
    println!();
    println!(
        "{:>10} | {:>14} | {:>9} | {:>14} | {:>14}",
        "get-heavy", "ops/s", "hit rate", "allocs/op", "copies/op"
    );
    println!(
        "{:->10}-+-{:->14}-+-{:->9}-+-{:->14}-+-{:->14}",
        "", "", "", "", ""
    );
    let p_get = KvRunParams {
        cpus: 4,
        shards: 8,
        set_percent: 0,
        preload: true,
        ..contention_params()
    };
    let r_get = run_cell(p_get.clone());
    println!(
        "{:>10} | {:>14} | {:>8.1}% | {:>14.2} | {:>14.2}",
        "sockets",
        count(r_get.ops_per_sec as u64),
        r_get.hit_ratio() * 100.0,
        r_get.allocs_per_op,
        r_get.copies_per_op
    );
    rows.push(row("get_heavy", "sockets", "mutex", &p_get, &r_get));

    // ---- machine-readable drop -------------------------------------------
    let out = workspace_root().join("BENCH_kv.json");
    let meta = [
        ("bench", JsonVal::Str("fig_kv".into())),
        ("full_scale", JsonVal::Bool(full)),
        ("cost_model", JsonVal::Str("monadic".into())),
        (
            "set_percent",
            JsonVal::Int(base_params().set_percent as u64),
        ),
        ("keys", JsonVal::Int(base_params().keys as u64)),
        (
            "value_bytes",
            JsonVal::Int(base_params().value_bytes as u64),
        ),
    ];
    match write_json_rows(&out, &meta, &rows) {
        Ok(()) => println!("\nwrote {} rows to {}", rows.len(), out.display()),
        Err(e) => {
            // Exit nonzero: CI's contention gate reads this file, and a
            // silent write failure would let it pass on stale data.
            eprintln!("\nfailed to write {}: {e}", out.display());
            std::process::exit(1);
        }
    }
    println!("expected shape: ops/s rises with pipeline depth (fewer round trips),");
    println!("with clients until the simulated CPUs saturate, and — in the");
    println!("contention sweep — with shard count once cpus >= 4, because the");
    println!("single hot shard lock serializes what disjoint shards overlap.");

    maybe_export_trace();
}

/// The deterministic trace cell behind `EVETH_TRACE_OUT`: small enough to
/// run in seconds, contended enough that the flight recorder sees every
/// event class (I/O parks, shard-lock parks, timer sleeps, session spans).
/// Kept fixed so CI can assert the export is byte-identical across runs.
fn trace_cell() -> KvRunParams {
    KvRunParams {
        cost: CostModel::monadic(),
        cpus: 4,
        slice: 8,
        app_tcp: false,
        loopback: true,
        shards: 1,
        stm: false,
        clients: 32,
        batches_per_conn: 4,
        pipeline_depth: 8,
        set_percent: 30,
        keys: 64,
        value_bytes: 100,
        preload: false,
        seed: 11,
    }
}

/// When `EVETH_TRACE_OUT` names a path, rerun one fixed KV cell with the
/// telemetry fabric attached and drop the Chrome trace JSON there, plus
/// the debug service's `/metrics` body at `<path>.metrics.txt`. Both
/// artifacts are functions of (params, seed) only — virtual time stamps,
/// deterministic scheduling — so reruns produce identical bytes.
fn maybe_export_trace() {
    let Ok(out) = std::env::var("EVETH_TRACE_OUT") else {
        return;
    };
    if out.is_empty() {
        return;
    }
    let art = kv_trace_run(&trace_cell());
    let trace_path = std::path::PathBuf::from(&out);
    let metrics_path = std::path::PathBuf::from(format!("{out}.metrics.txt"));
    for (path, body) in [
        (&trace_path, art.chrome_json.as_str()),
        (&metrics_path, art.metrics_body.as_str()),
    ] {
        if let Err(e) = std::fs::write(path, body) {
            eprintln!("failed to write {}: {e}", path.display());
            std::process::exit(1);
        }
    }
    println!(
        "\ntrace export: {} ({} events recorded, {} dropped) + {}",
        trace_path.display(),
        art.telemetry.recorder().recorded(),
        art.telemetry.recorder().dropped(),
        metrics_path.display()
    );
}

/// The workspace root: prefer CARGO env (set under `cargo bench`), falling
/// back to the current directory.
fn workspace_root() -> std::path::PathBuf {
    if let Ok(dir) = std::env::var("CARGO_MANIFEST_DIR") {
        // crates/bench -> workspace root.
        std::path::Path::new(&dir)
            .ancestors()
            .nth(2)
            .map(|p| p.to_path_buf())
            .unwrap_or_else(|| std::path::PathBuf::from("."))
    } else {
        std::path::PathBuf::from(".")
    }
}
