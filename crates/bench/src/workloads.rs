//! Reusable workload builders behind the figure harnesses.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use bytes::Bytes;
use eveth_core::aio::FileStore;
use eveth_core::event::sync;
use eveth_core::net::{recv_exact, send_all, Conn, Endpoint, HostId, NetStack};
use eveth_core::service::{Server, ServerConfig as SvcConfig, Service, Step};
use eveth_core::syscall::{sys_aio_read, sys_nbio, sys_sleep, sys_time};
use eveth_core::time::{Nanos, MICROS, MILLIS};
use eveth_core::{do_m, loop_m, Loop, ThreadM};
use eveth_http::loadgen::{client_thread, corpus_paths, LoadConfig, LoadStats};
use eveth_http::server::{ServerConfig, WebServer};
use eveth_simos::cost::CostModel;
use eveth_simos::disk::{DiskGeometry, DiskSched, SimDisk};
use eveth_simos::fs::SimFs;
use eveth_simos::sockets::{FabricParams, SocketFabric};
use eveth_simos::{SimClock, SimConfig, SimRuntime};

/// Throughput in MB/s from bytes moved over a duration.
pub fn mb_per_sec(bytes: u64, dur: Nanos) -> f64 {
    if dur == 0 {
        return 0.0;
    }
    bytes as f64 / (1024.0 * 1024.0) / (dur as f64 / 1e9)
}

/// Builds a single-CPU `SimRuntime` with the given cost model.
pub fn sim_with(cost: CostModel) -> SimRuntime {
    sim_with_cpus(cost, 1)
}

/// Builds a `SimRuntime` with the given cost model and virtual CPU count.
pub fn sim_with_cpus(cost: CostModel, cpus: usize) -> SimRuntime {
    sim_with_config(cost, cpus, 256)
}

/// Builds a `SimRuntime` with explicit cost model, CPU count and slice.
pub fn sim_with_config(cost: CostModel, cpus: usize, slice: usize) -> SimRuntime {
    SimRuntime::new(
        SimClock::new(),
        SimConfig {
            cost,
            slice,
            cpus,
            ..SimConfig::default()
        },
    )
}

/// Spawns a sleep-polling waiter that completes when `counter` reaches
/// `target`, and drives the simulation until then.
pub fn wait_counter(sim: &SimRuntime, counter: Arc<AtomicU64>, target: u64) {
    sim.block_on(loop_m((), move |()| {
        let counter = Arc::clone(&counter);
        do_m! {
            sys_sleep(MILLIS);
            let v <- sys_nbio(move || counter.load(Ordering::SeqCst));
            ThreadM::pure(if v >= target { Loop::Break(()) } else { Loop::Continue(()) })
        }
    }))
    .expect("workload completed");
}

/// Outcome of one disk-benchmark cell.
#[derive(Debug, Clone, Copy)]
pub struct DiskRunResult {
    /// Virtual time consumed.
    pub elapsed: Nanos,
    /// Bytes transferred.
    pub bytes: u64,
    /// Throughput.
    pub mb_s: f64,
}

/// The Figure 17 workload: `threads` monadic threads each loop random
/// 4 KB reads from a 1 GB file until `total_reads` complete; both the
/// monadic and the kernel-thread lines run this same program under
/// different cost models. Returns `None` when the cost model's thread cap
/// is exceeded (the paper's "NPTL stops at 16k").
pub fn disk_head_scheduling(
    cost: CostModel,
    sched: DiskSched,
    threads: u64,
    total_reads: u64,
    seed: u64,
) -> Option<DiskRunResult> {
    const BLOCK: usize = 4096;
    const FILE_BYTES: u64 = 1 << 30;

    if let Some(cap) = cost.max_threads {
        if threads as usize > cap {
            return None;
        }
    }
    let sim = sim_with(cost);
    let disk = SimDisk::new(sim.clock(), DiskGeometry::eide_7200_80gb(), sched, seed);
    let fs = SimFs::new(disk);
    fs.add_file("/big", FILE_BYTES);
    let file = fs.lookup("/big").expect("benchmark file");

    let remaining = Arc::new(AtomicU64::new(total_reads));
    let finished = Arc::new(AtomicU64::new(0));
    for t in 0..threads {
        let file = Arc::clone(&file);
        let remaining = Arc::clone(&remaining);
        let finished = Arc::clone(&finished);
        let rng0 = 0x9E37_79B9u64.wrapping_mul(seed + t + 1) | 1;
        sim.spawn(loop_m(rng0, move |mut rng| {
            // Claim one read; retire the thread once the quota is gone.
            let claimed = remaining
                .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |v| v.checked_sub(1))
                .is_ok();
            if !claimed {
                let finished = Arc::clone(&finished);
                return sys_nbio(move || {
                    finished.fetch_add(1, Ordering::SeqCst);
                })
                .map(|_| Loop::Break(()));
            }
            crate::xorshift(&mut rng);
            let offset = (rng % (FILE_BYTES / BLOCK as u64)) * BLOCK as u64;
            sys_aio_read(&file, offset, BLOCK).map(move |res| {
                res.expect("simulated disk never errors");
                Loop::Continue(rng)
            })
        }));
    }
    wait_counter(&sim, finished, threads);
    let elapsed = sim.now();
    let bytes = total_reads * BLOCK as u64;
    Some(DiskRunResult {
        elapsed,
        bytes,
        mb_s: mb_per_sec(bytes, elapsed),
    })
}

/// Outcome of one web-server benchmark cell.
#[derive(Debug, Clone)]
pub struct WebRunResult {
    /// Virtual time consumed.
    pub elapsed: Nanos,
    /// Response bytes received by all clients.
    pub bytes: u64,
    /// Throughput.
    pub mb_s: f64,
    /// Server cache hit ratio.
    pub cache_hit_ratio: f64,
    /// Responses completed.
    pub responses: u64,
}

/// Parameters for [`web_server_run`].
#[derive(Debug, Clone)]
pub struct WebRunParams {
    /// Cost model for the whole host (server + kernel).
    pub cost: CostModel,
    /// Number of 16 KB files in the corpus.
    pub files: usize,
    /// Server cache budget in bytes.
    pub cache_bytes: usize,
    /// Concurrent client connections.
    pub connections: u64,
    /// Requests per connection.
    pub requests_per_conn: usize,
    /// RNG seed.
    pub seed: u64,
}

/// The Figure 19 workload: a static web server with its own cache over the
/// kernel-socket model, a disk-backed corpus of 16 KB files, and N
/// keep-alive clients requesting random files. The monadic and
/// Apache-model lines run the same program under different cost models —
/// thread-per-connection synchronous blocking being priced by
/// [`CostModel::apache`]/[`CostModel::nptl`].
pub fn web_server_run(p: &WebRunParams) -> WebRunResult {
    const FILE_BYTES: u64 = 16 * 1024;

    let sim = sim_with(p.cost.clone());
    let disk = SimDisk::new(
        sim.clock(),
        DiskGeometry::eide_7200_80gb(),
        DiskSched::CLook,
        p.seed,
    );
    let fs = SimFs::new(disk);
    let paths = corpus_paths(p.files);
    for path in &paths {
        fs.add_file(path.clone(), FILE_BYTES);
    }

    let fabric = SocketFabric::new(sim.clock(), FabricParams::default());
    let server = WebServer::new(
        fabric.stack(HostId(1)),
        fs,
        ServerConfig {
            port: 80,
            cache_bytes: p.cache_bytes,
            ..Default::default()
        },
    );
    sim.spawn(server.run());

    let stats = Arc::new(LoadStats::default());
    let cfg = Arc::new(LoadConfig {
        server: Endpoint::new(HostId(1), 80),
        requests_per_conn: p.requests_per_conn,
        paths: Arc::new(paths),
        seed: p.seed,
    });
    let client_stack: Arc<dyn NetStack> = fabric.stack(HostId(2));
    for id in 0..p.connections {
        sim.spawn(client_thread(
            Arc::clone(&client_stack),
            Arc::clone(&cfg),
            Arc::clone(&stats),
            id,
        ));
    }

    // Reuse the LoadStats counter as the completion signal.
    let done = Arc::new(AtomicU64::new(0));
    let target = p.connections;
    {
        let stats = Arc::clone(&stats);
        let done = Arc::clone(&done);
        sim.spawn(loop_m((), move |()| {
            let stats = Arc::clone(&stats);
            let done = Arc::clone(&done);
            do_m! {
                sys_sleep(MILLIS);
                let d <- sys_nbio(move || stats.clients_done.load(Ordering::Relaxed));
                if d >= target {
                    sys_nbio(move || { done.store(1, Ordering::SeqCst); })
                        .map(|_| Loop::Break(()))
                } else {
                    ThreadM::pure(Loop::Continue(()))
                }
            }
        }));
    }
    wait_counter(&sim, done, 1);

    let elapsed = sim.now();
    let bytes = stats.bytes.load(Ordering::Relaxed);
    WebRunResult {
        elapsed,
        bytes,
        mb_s: mb_per_sec(bytes, elapsed),
        cache_hit_ratio: server.cache().hit_ratio(),
        responses: stats.responses(),
    }
}

// ---------------------------------------------------------------------------
// The KV workload (second service, `fig_kv`).
// ---------------------------------------------------------------------------

/// Parameters for [`kv_server_run`].
#[derive(Debug, Clone)]
pub struct KvRunParams {
    /// Cost model for the whole host.
    pub cost: CostModel,
    /// Virtual CPUs the host schedules turns on (1 = the paper's
    /// single-processor testbed; more CPUs let disjoint shards overlap
    /// while a hot shard lock serializes).
    pub cpus: usize,
    /// Non-blocking steps per scheduling turn. Large slices make each
    /// pipelined batch effectively atomic (no lock contention can arise);
    /// the contention sweeps use a small slice so sessions preempt inside
    /// batches, as OS scheduling does to real memcached workers.
    pub slice: usize,
    /// Serve over the application-level TCP stack instead of the
    /// kernel-socket model (the paper's one-line switch, swept as a bench
    /// dimension).
    pub app_tcp: bool,
    /// Use a loopback-class link (10 µs, 10 Gbps) instead of the default
    /// 100 Mbps / 100 µs Ethernet. The contention sweeps use this so the
    /// run is CPU- and lock-bound rather than RTT-bound.
    pub loopback: bool,
    /// Store shard count.
    pub shards: usize,
    /// Use the `TVar`/STM shard backend instead of the monadic mutex.
    pub stm: bool,
    /// Concurrent client connections.
    pub clients: u64,
    /// Pipelined batches per connection.
    pub batches_per_conn: usize,
    /// Commands per batch (pipeline depth).
    pub pipeline_depth: usize,
    /// Sets per 100 commands.
    pub set_percent: u8,
    /// Key-space size (zipf skew 0.99).
    pub keys: usize,
    /// Value payload bytes.
    pub value_bytes: usize,
    /// Fill the whole key space with one deterministic pipelined client
    /// before the measured load starts (outside the counter window), so a
    /// get-heavy mix actually hits and its replies carry value bytes.
    pub preload: bool,
    /// RNG seed.
    pub seed: u64,
}

/// Outcome of [`kv_server_run`].
#[derive(Debug, Clone)]
pub struct KvRunResult {
    /// Virtual time consumed.
    pub elapsed: Nanos,
    /// Commands answered.
    pub responses: u64,
    /// Commands answered per virtual second.
    pub ops_per_sec: f64,
    /// Get hits observed by clients.
    pub hits: u64,
    /// Get misses observed by clients.
    pub misses: u64,
    /// Client-received bytes.
    pub bytes_in: u64,
    /// Client-sent bytes.
    pub bytes_out: u64,
    /// Median per-command virtual-time latency (batch send → reply).
    pub p50_ns: Nanos,
    /// 95th-percentile per-command latency.
    pub p95_ns: Nanos,
    /// 99th-percentile per-command latency.
    pub p99_ns: Nanos,
    /// Runtime-wide virtual nanoseconds threads spent blocked on I/O
    /// readiness (`sys_epoll_wait`: socket reads/writes/accepts) —
    /// `SimReport::io_wait_ns`.
    pub io_wait_ns: Nanos,
    /// Runtime-wide *pure* lock wait (`sys_park`: mutexes, channels,
    /// MVars, STM `retry`) — `SimReport::lock_wait_ns`, with I/O waits
    /// accounted separately. This is the contention signal the CI gate
    /// compares across shard counts.
    pub lock_wait_ns: Nanos,
    /// Virtual nanoseconds server threads spent contending specifically
    /// on the store's shard gates (the monadic mutex's own `contended_ns`,
    /// summed per shard; 0 for the STM backend).
    pub store_lock_wait_ns: Nanos,
    /// The single hottest shard gate's share of that wait — under a
    /// thundering herd on one key this approaches `store_lock_wait_ns`
    /// itself, while a well-spread workload smears it across shards.
    pub hot_shard_lock_wait_ns: Nanos,
    /// STM transaction re-executions (conflicts + retry blocks) in the
    /// store — the STM backend's contention signal (0 under the mutex
    /// backend).
    pub stm_retries: u64,
    /// Virtual CPUs the run executed on.
    pub cpus: usize,
    /// Mean CPU utilization over the run.
    pub cpu_utilization: f64,
    /// Heap allocations per answered command over the measured load
    /// window (`allocmeter` delta / responses; 0 outside the bench bins,
    /// where the counting allocator isn't installed). Preload traffic is
    /// excluded.
    pub allocs_per_op: f64,
    /// Buffer-fabric payload bytes copied per answered command
    /// (`bytes::bytes_copied_total` delta / responses). Counts every
    /// byte the `bytes` crate physically copies into a buffer — reply
    /// headers land here, while a stored value that travels
    /// store → socket as a refcounted slice contributes nothing.
    pub copies_per_op: f64,
}

impl KvRunResult {
    /// Client-observed hit ratio over gets (1.0 when there were none).
    pub fn hit_ratio(&self) -> f64 {
        let gets = self.hits + self.misses;
        if gets == 0 {
            1.0
        } else {
            self.hits as f64 / gets as f64
        }
    }
}

/// The `fig_kv` workload: the sharded KV server and N pipelining clients
/// (zipfian keys, get/set mix) over either socket layer, under a cost
/// model. Returns client-observed throughput.
pub fn kv_server_run(p: &KvRunParams) -> KvRunResult {
    use eveth_kv::loadgen::{client_thread, KvLoadConfig, KvLoadStats};
    use eveth_kv::server::{KvConfig, KvServer};
    use eveth_kv::store::{Backend, StoreConfig};

    let sim = sim_with_config(p.cost.clone(), p.cpus, p.slice);
    let link = if p.loopback {
        eveth_simos::net::LinkParams::loopback()
    } else {
        eveth_simos::net::LinkParams::ethernet_100mbps()
    };
    let (server_stack, client_stack): (Arc<dyn NetStack>, Arc<dyn NetStack>) = if p.app_tcp {
        let net = eveth_simos::net::SimNet::new(sim.clock(), link, p.seed);
        (
            eveth::glue::tcp_host_over_simnet(
                sim.ctx(),
                &net,
                HostId(1),
                eveth_tcp::tcb::TcpConfig::default(),
            ),
            eveth::glue::tcp_host_over_simnet(
                sim.ctx(),
                &net,
                HostId(2),
                eveth_tcp::tcb::TcpConfig::default(),
            ),
        )
    } else {
        let fabric = SocketFabric::new(
            sim.clock(),
            FabricParams {
                link,
                ..FabricParams::default()
            },
        );
        (fabric.stack(HostId(1)), fabric.stack(HostId(2)))
    };

    let server = KvServer::new(
        server_stack,
        KvConfig {
            port: 11211,
            store: StoreConfig {
                shards: p.shards,
                backend: if p.stm { Backend::Stm } else { Backend::Mutex },
                ..Default::default()
            },
            ..Default::default()
        },
    );
    sim.spawn(server.run());

    let stats = Arc::new(KvLoadStats::default());
    let cfg = Arc::new(KvLoadConfig {
        server: Endpoint::new(HostId(1), 11211),
        batches_per_conn: p.batches_per_conn,
        pipeline_depth: p.pipeline_depth,
        keys: p.keys,
        zipf_s: 0.99,
        set_percent: p.set_percent,
        value_bytes: p.value_bytes,
        ttl_secs: 0,
        seed: p.seed,
    });

    if p.preload {
        // Fill the key space before the counter window opens, so the
        // measured phase is pure load and a get-heavy mix always hits.
        let pre_stats = Arc::new(KvLoadStats::default());
        sim.spawn(eveth_kv::loadgen::preload_thread(
            Arc::clone(&client_stack),
            Arc::clone(&cfg),
            Arc::clone(&pre_stats),
        ));
        let preloader = Arc::clone(&pre_stats);
        sim.block_on(loop_m((), move |()| {
            let watch = Arc::clone(&preloader);
            do_m! {
                sys_sleep(50 * eveth_core::time::MICROS);
                let done <- sys_nbio(move || watch.clients_done.get());
                ThreadM::pure(if done == 1 { Loop::Break(()) } else { Loop::Continue(()) })
            }
        }))
        .expect("kv preload completed");
        assert_eq!(
            pre_stats.stored.get(),
            p.keys as u64,
            "preload stored every key"
        );
    }

    // Per-op allocation/copy accounting covers exactly the measured load
    // phase (client spawn → last client done); preload and setup stay
    // outside the window.
    let base_allocs = crate::allocmeter::alloc_count();
    let base_copies = bytes::bytes_copied_total();

    for id in 0..p.clients {
        sim.spawn(client_thread(
            Arc::clone(&client_stack),
            Arc::clone(&cfg),
            Arc::clone(&stats),
            id,
        ));
    }

    let clients = p.clients;
    let watch = Arc::clone(&stats);
    // Poll at 50 µs so the measured makespan isn't quantized at the poll
    // interval when the run itself is only a few milliseconds.
    sim.block_on(loop_m((), move |()| {
        let watch = Arc::clone(&watch);
        do_m! {
            sys_sleep(50 * eveth_core::time::MICROS);
            let done <- sys_nbio(move || watch.clients_done.get());
            ThreadM::pure(if done == clients { Loop::Break(()) } else { Loop::Continue(()) })
        }
    }))
    .expect("kv load completed");

    let report = sim.report();
    let elapsed = report.now;
    let responses = stats.responses();
    let run_allocs = crate::allocmeter::alloc_count().saturating_sub(base_allocs) as u64;
    let run_copies = bytes::bytes_copied_total().saturating_sub(base_copies);
    let per_op = |total: u64| {
        if responses == 0 {
            0.0
        } else {
            total as f64 / responses as f64
        }
    };
    let pcts = stats.latency.percentiles(&[50.0, 95.0, 99.0]);
    KvRunResult {
        elapsed,
        responses,
        ops_per_sec: if elapsed == 0 {
            0.0
        } else {
            responses as f64 / (elapsed as f64 / 1e9)
        },
        hits: stats.hits.get(),
        misses: stats.misses.get(),
        bytes_in: stats.bytes_in.get(),
        bytes_out: stats.bytes_out.get(),
        p50_ns: pcts[0],
        p95_ns: pcts[1],
        p99_ns: pcts[2],
        io_wait_ns: report.io_wait_ns,
        lock_wait_ns: report.lock_wait_ns,
        store_lock_wait_ns: server.store().lock_wait_ns(),
        hot_shard_lock_wait_ns: server
            .store()
            .shard_lock_waits()
            .into_iter()
            .max()
            .unwrap_or(0),
        stm_retries: server.store().stm_retries(),
        cpus: report.cpus,
        cpu_utilization: report.avg_utilization(),
        allocs_per_op: per_op(run_allocs),
        copies_per_op: per_op(run_copies),
    }
}

/// Artifacts of [`kv_trace_run`]: the Chrome-trace export, the debug
/// service's `/metrics` and `/threads` bodies fetched over real (virtual)
/// connections, and the final report + telemetry hub for reconciliation.
pub struct KvTraceArtifacts {
    /// `TraceExport::to_chrome_json` over the whole run — Perfetto/
    /// `chrome://tracing` loadable, byte-identical across reruns at the
    /// same seed and configuration.
    pub chrome_json: String,
    /// Body of `GET /metrics` served by the mounted [`DebugService`](eveth_core::telemetry::DebugService)
    /// (text exposition format).
    pub metrics_body: String,
    /// Body of `GET /threads` (the live span table).
    pub threads_body: String,
    /// The runtime's own report, for reconciling against span sums.
    pub report: eveth_simos::SimReport,
    /// The telemetry hub the run recorded into.
    pub telemetry: Arc<eveth_core::telemetry::Telemetry>,
}

impl std::fmt::Debug for KvTraceArtifacts {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "KvTraceArtifacts(chrome_json={}B, metrics={}B)",
            self.chrome_json.len(),
            self.metrics_body.len()
        )
    }
}

/// One `GET` against the debug service: connect, send the request line,
/// read to EOF (the service closes after one response), return the body.
fn debug_get(stack: &Arc<dyn NetStack>, ep: Endpoint, target: &str) -> ThreadM<Vec<u8>> {
    use eveth_core::net::send_all;
    let stack = Arc::clone(stack);
    let req = bytes::Bytes::from(format!("GET {target} HTTP/1.0\r\n\r\n"));
    do_m! {
        let conn <- stack.connect(ep);
        let conn = conn.expect("debug service reachable");
        let sent <- send_all(&conn, req);
        let _ = sent.expect("request sent");
        loop_m((Vec::new(), conn), move |(mut acc, conn)| {
            conn.recv(16 * 1024).map(move |res| match res {
                Ok(chunk) if chunk.is_empty() => Loop::Break(acc),
                Ok(chunk) => {
                    acc.extend_from_slice(&chunk);
                    Loop::Continue((acc, conn))
                }
                Err(_) => Loop::Break(acc),
            })
        })
    }
}

/// Strips the HTTP/1.0 head off a debug-service response.
fn http_body(raw: &[u8]) -> String {
    let text = String::from_utf8_lossy(raw);
    match text.split_once("\r\n\r\n") {
        Some((_, body)) => body.to_string(),
        None => text.into_owned(),
    }
}

/// The observability variant of [`kv_server_run`]: the same KV cell with a
/// telemetry hub attached to the runtime and both servers, a
/// [`DebugService`](eveth_core::telemetry::DebugService) mounted beside
/// the KV server on the same host, and a real client fetch of `/metrics`
/// and `/threads` at the end of the load. Returns the exported artifacts
/// instead of throughput numbers. Always uses the kernel-socket fabric
/// (`app_tcp` is ignored): the cell exists to exercise the telemetry
/// path, not the socket-layer sweep.
pub fn kv_trace_run(p: &KvRunParams) -> KvTraceArtifacts {
    use eveth_core::service::{Server, ServerConfig as DebugServerConfig};
    use eveth_core::telemetry::{DebugService, Telemetry, TraceExport};
    use eveth_kv::loadgen::{client_thread, KvLoadConfig, KvLoadStats};
    use eveth_kv::server::{KvConfig, KvServer};
    use eveth_kv::store::{Backend, StoreConfig};

    const DEBUG_PORT: u16 = 11280;

    let sim = sim_with_config(p.cost.clone(), p.cpus, p.slice);
    let telemetry = Telemetry::new();
    assert!(sim.set_telemetry(Arc::clone(&telemetry)));

    let link = if p.loopback {
        eveth_simos::net::LinkParams::loopback()
    } else {
        eveth_simos::net::LinkParams::ethernet_100mbps()
    };
    let fabric = SocketFabric::new(
        sim.clock(),
        FabricParams {
            link,
            ..FabricParams::default()
        },
    );
    let (server_stack, client_stack): (Arc<dyn NetStack>, Arc<dyn NetStack>) =
        (fabric.stack(HostId(1)), fabric.stack(HostId(2)));

    let server = KvServer::new(
        Arc::clone(&server_stack),
        KvConfig {
            port: 11211,
            store: StoreConfig {
                shards: p.shards,
                backend: if p.stm { Backend::Stm } else { Backend::Mutex },
                ..Default::default()
            },
            // Exercise the bounded-send reply path (the deadline is far
            // above any virtual transfer time, so the count stays 0 — but
            // the metric is live and the `send_all_within` race runs).
            send_timeout: 50 * MILLIS,
            ..Default::default()
        },
    );
    server.attach_telemetry(&telemetry);
    sim.spawn(server.run());

    let debug = Server::new(
        Arc::clone(&server_stack),
        DebugService::new(&telemetry),
        DebugServerConfig {
            port: DEBUG_PORT,
            ..Default::default()
        },
    );
    debug.attach_telemetry(&telemetry, "debug");
    sim.spawn(debug.run());

    let stats = Arc::new(KvLoadStats::default());
    let cfg = Arc::new(KvLoadConfig {
        server: Endpoint::new(HostId(1), 11211),
        batches_per_conn: p.batches_per_conn,
        pipeline_depth: p.pipeline_depth,
        keys: p.keys,
        zipf_s: 0.99,
        set_percent: p.set_percent,
        value_bytes: p.value_bytes,
        ttl_secs: 0,
        seed: p.seed,
    });
    for id in 0..p.clients {
        sim.spawn(client_thread(
            Arc::clone(&client_stack),
            Arc::clone(&cfg),
            Arc::clone(&stats),
            id,
        ));
    }

    let clients = p.clients;
    let watch = Arc::clone(&stats);
    sim.block_on(loop_m((), move |()| {
        let watch = Arc::clone(&watch);
        do_m! {
            sys_sleep(50 * eveth_core::time::MICROS);
            let done <- sys_nbio(move || watch.clients_done.get());
            ThreadM::pure(if done == clients { Loop::Break(()) } else { Loop::Continue(()) })
        }
    }))
    .expect("kv load completed");

    // Live introspection over the wire: the debug service answers on its
    // own port while the KV server is still mounted beside it.
    let metrics_raw = sim
        .block_on(debug_get(
            &client_stack,
            Endpoint::new(HostId(1), DEBUG_PORT),
            "/metrics",
        ))
        .expect("metrics fetched");
    let threads_raw = sim
        .block_on(debug_get(
            &client_stack,
            Endpoint::new(HostId(1), DEBUG_PORT),
            "/threads",
        ))
        .expect("threads fetched");

    let report = sim.report();
    let chrome_json = TraceExport::from_telemetry(&telemetry).to_chrome_json();
    KvTraceArtifacts {
        chrome_json,
        metrics_body: http_body(&metrics_raw),
        threads_body: http_body(&threads_raw),
        report,
        telemetry,
    }
}

// ---------------------------------------------------------------------------
// The C1M scale scenarios (`fig_scale`).
// ---------------------------------------------------------------------------

/// Port every scale scenario's echo server listens on.
const SCALE_PORT: u16 = 7070;

/// The `fig_scale` echo service: no session state, every chunk echoed
/// back. Per-session cost is exactly the framework's own — the scale
/// scenarios measure the server plumbing (accept, session loop, idle
/// reaping, registration hygiene), not a protocol.
struct EchoService;

impl Service for EchoService {
    type Session = ();

    fn open(&self, _conn: &Arc<dyn Conn>) {}

    fn on_chunk(&self, conn: Arc<dyn Conn>, _session: (), chunk: Bytes) -> ThreadM<Step<()>> {
        send_all(&conn, chunk).map(|sent| match sent {
            Ok(()) => Step::Continue(()),
            Err(_) => Step::Close,
        })
    }
}

/// Nearest-rank percentile over an already-sorted sample vector.
fn percentile(sorted: &[Nanos], q: f64) -> Nanos {
    if sorted.is_empty() {
        return 0;
    }
    let idx = ((sorted.len() - 1) as f64 * q / 100.0).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

/// Drives the sim until `cond` holds, polling every 50 virtual µs (fine
/// enough that short makespans aren't quantized at the poll interval).
fn drive_until(sim: &SimRuntime, cond: impl Fn() -> bool + Send + Sync + 'static) {
    let cond = Arc::new(cond);
    sim.block_on(loop_m((), move |()| {
        let cond = Arc::clone(&cond);
        do_m! {
            sys_sleep(50 * MICROS);
            let ok <- sys_nbio(move || cond());
            ThreadM::pure(if ok { Loop::Break(()) } else { Loop::Continue(()) })
        }
    }))
    .expect("scale scenario completed");
}

/// Builds the scale scenarios' standard rig: a multi-CPU sim on a
/// loopback-class link with an [`EchoService`] server on `HostId(1)`
/// (already spawned) and the shared client stack on `HostId(2)`.
#[allow(clippy::type_complexity)]
fn scale_rig(
    cpus: usize,
    idle_timeout: Nanos,
) -> (SimRuntime, Arc<Server<EchoService>>, Arc<dyn NetStack>) {
    let sim = sim_with_config(CostModel::monadic(), cpus, 32);
    let fabric = SocketFabric::new(
        sim.clock(),
        FabricParams {
            link: eveth_simos::net::LinkParams::loopback(),
            ..FabricParams::default()
        },
    );
    let server = Server::new(
        fabric.stack(HostId(1)),
        EchoService,
        SvcConfig {
            port: SCALE_PORT,
            idle_timeout,
            ..Default::default()
        },
    );
    sim.spawn(server.run());
    let clients: Arc<dyn NetStack> = fabric.stack(HostId(2));
    (sim, server, clients)
}

/// Shuts the rig down, waits for the drain barrier, runs the sim to
/// quiescence, and assembles the common result fields. `elapsed` is the
/// scenario makespan sampled *before* shutdown so ops/s measures the
/// workload, not the teardown.
fn scale_teardown(
    sim: &SimRuntime,
    server: &Arc<Server<EchoService>>,
    elapsed: Nanos,
    mut latencies: Vec<Nanos>,
    ops: u64,
) -> ScaleRunResult {
    // Residue check BEFORE shutdown: every ended session must already
    // have withdrawn its registration on the shutdown broadcast — after
    // a churn storm the physical count reflects live sessions only. The
    // running acceptor always holds exactly one registration (its
    // accept/shutdown `choose`); subtract it so the figure reads "live
    // sessions".
    let shutdown_physical_waiters = server
        .shutdown_signal()
        .physical_waiter_count()
        .saturating_sub(1);
    server.shutdown();
    sim.block_on(sync(server.drained_signal().wait_evt()))
        .expect("scale server drained");
    sim.run();
    latencies.sort_unstable();
    let report = sim.report();
    ScaleRunResult {
        elapsed,
        ops,
        ops_per_sec: if elapsed == 0 {
            0.0
        } else {
            ops as f64 / (elapsed as f64 / 1e9)
        },
        p50_ns: percentile(&latencies, 50.0),
        p99_ns: percentile(&latencies, 99.0),
        io_wait_ns: report.io_wait_ns,
        lock_wait_ns: report.lock_wait_ns,
        accepted: server.stats().accepted.get(),
        idle_reaped: server.stats().idle_reaped.get(),
        shutdown_physical_waiters,
        live_threads_after: sim.live_threads(),
        bytes_per_conn: 0,
        allocs_per_conn: 0,
        cpus: report.cpus,
        cpu_utilization: report.avg_utilization(),
    }
}

/// Outcome of one scale-scenario cell ([`churn_run`], [`slowloris_run`],
/// [`resident_run`]). Fields a scenario does not exercise stay zero.
#[derive(Debug, Clone, Copy)]
pub struct ScaleRunResult {
    /// Virtual time from start to workload completion (teardown excluded).
    pub elapsed: Nanos,
    /// Operations completed — connect/echo/close cycles for churn,
    /// echo round trips for slowloris, connections established for
    /// resident.
    pub ops: u64,
    /// Operations per virtual second.
    pub ops_per_sec: f64,
    /// Median per-operation virtual-time latency.
    pub p50_ns: Nanos,
    /// 99th-percentile per-operation latency.
    pub p99_ns: Nanos,
    /// Runtime-wide virtual nanoseconds blocked on I/O readiness.
    pub io_wait_ns: Nanos,
    /// Runtime-wide pure lock wait (`sys_park`).
    pub lock_wait_ns: Nanos,
    /// Connections the server accepted.
    pub accepted: u64,
    /// Sessions reaped by the idle deadline.
    pub idle_reaped: u64,
    /// Physical waiter registrations on the server's shutdown broadcast,
    /// sampled after the workload and before shutdown. Equals the number
    /// of then-live sessions — after a churn storm that is the leak
    /// regression signal: ended sessions must have withdrawn physically.
    pub shutdown_physical_waiters: usize,
    /// Monadic threads still alive after shutdown + drain + run-to-
    /// quiescence. Anything nonzero is a leaked thread (the orphan-pump
    /// class of bug).
    pub live_threads_after: i64,
    /// Live heap bytes per held-open connection (resident scenario only;
    /// whole-system: client thread + socket pair + server session). Zero
    /// when the harness's counting allocator is not installed.
    pub bytes_per_conn: u64,
    /// Allocator calls per held-open connection (resident scenario only).
    pub allocs_per_conn: u64,
    /// Virtual CPUs the run executed on.
    pub cpus: usize,
    /// Mean CPU utilization over the run.
    pub cpu_utilization: f64,
}

/// Parameters for [`churn_run`].
#[derive(Debug, Clone, Copy)]
pub struct ChurnParams {
    /// Virtual CPUs.
    pub cpus: usize,
    /// Total connect → echo → close cycles across the run.
    pub connections: u64,
    /// Workers churning concurrently; each runs its share of
    /// `connections` sequentially.
    pub concurrent: u64,
    /// Echo payload bytes per cycle.
    pub payload: usize,
}

/// The connect/disconnect storm: `connections` total connect → echo →
/// close cycles against the echo [`Server`], `concurrent` of them in
/// flight at once. The cell exists to prove per-connection state is
/// reclaimed under churn: afterwards the shutdown broadcast holds zero
/// physical waiter registrations and no threads outlive the drain.
pub fn churn_run(p: &ChurnParams) -> ScaleRunResult {
    assert!(p.concurrent >= 1 && p.connections >= p.concurrent);
    let (sim, server, stack) = scale_rig(p.cpus, 0);

    let latencies = Arc::new(std::sync::Mutex::new(Vec::with_capacity(
        p.connections as usize,
    )));
    let done = Arc::new(AtomicU64::new(0));
    let payload = Bytes::from(vec![0x5Au8; p.payload]);
    for w in 0..p.concurrent {
        let stack = Arc::clone(&stack);
        let quota = p.connections / p.concurrent + u64::from(w < p.connections % p.concurrent);
        let latencies = Arc::clone(&latencies);
        let done = Arc::clone(&done);
        let payload = payload.clone();
        let n = p.payload;
        sim.spawn(loop_m(0u64, move |cycles| {
            if cycles == quota {
                let done = Arc::clone(&done);
                return sys_nbio(move || {
                    done.fetch_add(1, Ordering::SeqCst);
                })
                .map(|_| Loop::Break(()));
            }
            let stack = Arc::clone(&stack);
            let latencies = Arc::clone(&latencies);
            let payload = payload.clone();
            do_m! {
                let t0 <- sys_time();
                let conn <- stack.connect(Endpoint::new(HostId(1), SCALE_PORT));
                let conn = conn.expect("churn connect");
                let sent <- send_all(&conn, payload);
                let _ = sent.expect("churn send");
                let back <- recv_exact(&conn, n);
                let _ = back.expect("churn echo");
                conn.close();
                let t1 <- sys_time();
                sys_nbio(move || latencies.lock().unwrap().push(t1 - t0));
                ThreadM::pure(Loop::Continue(cycles + 1))
            }
        }));
    }

    // Wait for every cycle AND for the server to see the last close —
    // the residue sample in teardown must not race a session that is
    // still winding down.
    let workers = p.concurrent;
    {
        let done = Arc::clone(&done);
        let srv = Arc::clone(&server);
        drive_until(&sim, move || {
            done.load(Ordering::SeqCst) == workers && srv.active() == 0
        });
    }
    let elapsed = sim.now();
    let lats = std::mem::take(&mut *latencies.lock().unwrap());
    scale_teardown(&sim, &server, elapsed, lats, p.connections)
}

/// Parameters for [`slowloris_run`].
#[derive(Debug, Clone, Copy)]
pub struct SlowlorisParams {
    /// Virtual CPUs.
    pub cpus: usize,
    /// Slow readers: connect, never send, hold the connection open until
    /// the server reaps them.
    pub slow: u64,
    /// Well-behaved echo clients running alongside.
    pub busy: u64,
    /// Echo round trips each busy client completes on its connection.
    pub cycles: u64,
    /// Echo payload bytes.
    pub payload: usize,
    /// Server idle deadline (virtual ns); must exceed a loopback echo
    /// round trip and undercut the run so every slow reader is reaped.
    pub idle_timeout: Nanos,
}

/// The slowloris cell: `slow` connections that never send a byte squat on
/// server sessions while `busy` clients echo through the same server. The
/// idle deadline must reap every squatter (`idle_reaped == slow`) without
/// disturbing live traffic, and a reaped session must unwind completely —
/// no orphan pump thread, no residual registrations.
pub fn slowloris_run(p: &SlowlorisParams) -> ScaleRunResult {
    assert!(p.idle_timeout > 0);
    let (sim, server, stack) = scale_rig(p.cpus, p.idle_timeout);

    let done = Arc::new(AtomicU64::new(0));
    let latencies = Arc::new(std::sync::Mutex::new(Vec::new()));
    for _ in 0..p.slow {
        let stack = Arc::clone(&stack);
        let done = Arc::clone(&done);
        sim.spawn(do_m! {
            let conn <- stack.connect(Endpoint::new(HostId(1), SCALE_PORT));
            let conn = conn.expect("slow connect");
            // Parked here until the server reaps us: EOF or a reset —
            // either way the squat is over.
            let hangup <- conn.recv(1024);
            let _ = hangup;
            conn.close();
            sys_nbio(move || { done.fetch_add(1, Ordering::SeqCst); })
        });
    }
    let payload = Bytes::from(vec![0x5Au8; p.payload]);
    for _ in 0..p.busy {
        let stack = Arc::clone(&stack);
        let done = Arc::clone(&done);
        let latencies = Arc::clone(&latencies);
        let payload = payload.clone();
        let n = p.payload;
        let cycles = p.cycles;
        sim.spawn(do_m! {
            let conn <- stack.connect(Endpoint::new(HostId(1), SCALE_PORT));
            let conn = conn.expect("busy connect");
            loop_m((0u64, conn), move |(i, conn)| {
                if i == cycles {
                    let done = Arc::clone(&done);
                    return do_m! {
                        conn.close();
                        sys_nbio(move || { done.fetch_add(1, Ordering::SeqCst); })
                    }
                    .map(|_| Loop::Break(()));
                }
                let latencies = Arc::clone(&latencies);
                let payload = payload.clone();
                do_m! {
                    let t0 <- sys_time();
                    let sent <- send_all(&conn, payload);
                    let _ = sent.expect("busy send");
                    let back <- recv_exact(&conn, n);
                    let _ = back.expect("busy echo");
                    let t1 <- sys_time();
                    sys_nbio(move || latencies.lock().unwrap().push(t1 - t0))
                        .map(move |_| Loop::Continue((i + 1, conn)))
                }
            })
        });
    }

    let target = p.slow + p.busy;
    {
        let done = Arc::clone(&done);
        let srv = Arc::clone(&server);
        drive_until(&sim, move || {
            done.load(Ordering::SeqCst) == target && srv.active() == 0
        });
    }
    let elapsed = sim.now();
    let lats = std::mem::take(&mut *latencies.lock().unwrap());
    scale_teardown(&sim, &server, elapsed, lats, p.busy * p.cycles)
}

/// Parameters for [`resident_run`].
#[derive(Debug, Clone, Copy)]
pub struct ResidentParams {
    /// Virtual CPUs.
    pub cpus: usize,
    /// Connections held open concurrently.
    pub connections: u64,
    /// Bytes each connection echoes once before parking.
    pub payload: usize,
}

/// The resident-memory cell: `connections` clients connect, complete one
/// echo round trip (so every session has run its hot path), then park in
/// `recv` holding the connection open. With the harness's counting
/// allocator installed, the live-heap delta divided by the connection
/// count is the whole-system bytes-per-connection figure the CI budget
/// gates — client thread, socket pair and server session included.
pub fn resident_run(p: &ResidentParams) -> ScaleRunResult {
    assert!(p.connections >= 1);
    let (sim, server, stack) = scale_rig(p.cpus, 0);
    // Let the acceptor install itself before taking the heap baseline.
    sim.block_on(sys_sleep(MILLIS)).expect("acceptor up");
    let base_live = crate::allocmeter::live_bytes();
    let base_allocs = crate::allocmeter::alloc_count();

    let ready = Arc::new(AtomicU64::new(0));
    let done = Arc::new(AtomicU64::new(0));
    let latencies = Arc::new(std::sync::Mutex::new(Vec::with_capacity(
        p.connections as usize,
    )));
    let payload = Bytes::from(vec![0x5Au8; p.payload]);
    for _ in 0..p.connections {
        let stack = Arc::clone(&stack);
        let ready = Arc::clone(&ready);
        let done = Arc::clone(&done);
        let latencies = Arc::clone(&latencies);
        let payload = payload.clone();
        let n = p.payload;
        sim.spawn(do_m! {
            let t0 <- sys_time();
            let conn <- stack.connect(Endpoint::new(HostId(1), SCALE_PORT));
            let conn = conn.expect("resident connect");
            let sent <- send_all(&conn, payload);
            let _ = sent.expect("resident send");
            let back <- recv_exact(&conn, n);
            let _ = back.expect("resident echo");
            let t1 <- sys_time();
            sys_nbio(move || {
                latencies.lock().unwrap().push(t1 - t0);
                ready.fetch_add(1, Ordering::SeqCst);
            });
            // Park until shutdown hangs up on us.
            let hangup <- conn.recv(1024);
            let _ = hangup;
            conn.close();
            sys_nbio(move || { done.fetch_add(1, Ordering::SeqCst); })
        });
    }

    let target = p.connections;
    {
        let ready = Arc::clone(&ready);
        drive_until(&sim, move || ready.load(Ordering::SeqCst) == target);
    }
    let elapsed = sim.now();
    let bytes_per_conn =
        crate::allocmeter::live_bytes().saturating_sub(base_live) as u64 / p.connections;
    let allocs_per_conn =
        crate::allocmeter::alloc_count().saturating_sub(base_allocs) as u64 / p.connections;

    // Shutdown closes every parked session; the clients unblock on the
    // hangup and retire before the drain barrier check in teardown.
    let lats = std::mem::take(&mut *latencies.lock().unwrap());
    let mut r = scale_teardown(&sim, &server, elapsed, lats, p.connections);
    r.bytes_per_conn = bytes_per_conn;
    r.allocs_per_conn = allocs_per_conn;
    r
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disk_workload_produces_paper_scale_throughput() {
        let r = disk_head_scheduling(CostModel::monadic(), DiskSched::CLook, 4, 256, 3)
            .expect("under cap");
        assert!(r.mb_s > 0.2 && r.mb_s < 2.0, "throughput {} MB/s", r.mb_s);
    }

    #[test]
    fn disk_workload_respects_thread_cap() {
        let mut cost = CostModel::nptl();
        cost.max_threads = Some(8);
        assert!(disk_head_scheduling(cost, DiskSched::CLook, 16, 64, 3).is_none());
    }

    #[test]
    fn kv_workload_answers_every_pipelined_command() {
        for app_tcp in [false, true] {
            let r = kv_server_run(&KvRunParams {
                cost: CostModel::monadic(),
                cpus: 1,
                slice: 256,
                app_tcp,
                loopback: false,
                shards: 4,
                stm: false,
                clients: 4,
                batches_per_conn: 4,
                pipeline_depth: 4,
                set_percent: 30,
                keys: 64,
                value_bytes: 64,
                preload: false,
                seed: 11,
            });
            assert_eq!(r.responses, 4 * 4 * 4, "app_tcp={app_tcp}");
            assert!(r.ops_per_sec > 0.0);
            assert!(r.hit_ratio() <= 1.0);
            assert!(r.p99_ns >= r.p50_ns && r.p50_ns > 0);
        }
    }

    #[test]
    fn kv_contended_single_shard_reports_lock_wait_and_tail_latency() {
        // The fig_kv smoke property: one shard under eight pipelining
        // clients on four virtual CPUs (with a slice small enough that
        // sessions preempt inside batches) must show real lock contention
        // (nonzero wait) and a sane latency distribution.
        let r = kv_server_run(&KvRunParams {
            cost: CostModel::monadic(),
            cpus: 4,
            slice: 8,
            app_tcp: false,
            loopback: true,
            shards: 1,
            stm: false,
            clients: 8,
            batches_per_conn: 8,
            pipeline_depth: 8,
            set_percent: 10,
            keys: 256,
            value_bytes: 64,
            preload: false,
            seed: 42,
        });
        assert_eq!(r.responses, 8 * 8 * 8);
        assert!(r.p50_ns > 0, "p50 recorded");
        assert!(r.p99_ns >= r.p50_ns, "p99 {} >= p50 {}", r.p99_ns, r.p50_ns);
        assert!(
            r.lock_wait_ns > 0,
            "a 1-shard/8-client run must report lock wait"
        );
        assert!(
            r.store_lock_wait_ns > 0,
            "the contended shard gate must report its own wait"
        );
        assert!(
            r.io_wait_ns > 0,
            "a socket workload must report readiness wait"
        );
        assert_eq!(r.stm_retries, 0, "mutex backend never retries");
        assert_eq!(r.cpus, 4);
    }

    #[test]
    fn kv_sharding_beats_single_shard_on_contended_multicpu_workload() {
        // The regression the multi-CPU model exists to catch: with 4 CPUs
        // and a contended zipfian workload, 8 shards must strictly
        // out-throughput 1 shard (the sweep was flat under the old
        // single-CPU simulator).
        let run = |shards: usize| {
            kv_server_run(&KvRunParams {
                cost: CostModel::monadic(),
                cpus: 4,
                slice: 8,
                app_tcp: false,
                loopback: true,
                shards,
                stm: false,
                clients: 64,
                batches_per_conn: 16,
                pipeline_depth: 8,
                set_percent: 10,
                keys: 1024,
                value_bytes: 100,
                preload: false,
                seed: 42,
            })
        };
        let one = run(1);
        let eight = run(8);
        assert!(
            eight.ops_per_sec > one.ops_per_sec,
            "8 shards ({:.0} ops/s) must beat 1 shard ({:.0} ops/s)",
            eight.ops_per_sec,
            one.ops_per_sec
        );
        assert!(
            one.lock_wait_ns > eight.lock_wait_ns,
            "1 shard must spend more time lock-waiting ({} vs {})",
            one.lock_wait_ns,
            eight.lock_wait_ns
        );
    }

    #[test]
    fn churn_cycles_every_connection_and_leaves_no_residue() {
        let r = churn_run(&ChurnParams {
            cpus: 4,
            connections: 256,
            concurrent: 32,
            payload: 64,
        });
        assert_eq!(r.ops, 256);
        assert_eq!(r.accepted, 256);
        assert!(r.ops_per_sec > 0.0);
        assert!(r.p99_ns >= r.p50_ns && r.p50_ns > 0);
        assert_eq!(
            r.shutdown_physical_waiters, 0,
            "ended sessions must withdraw their shutdown registrations"
        );
        assert_eq!(r.live_threads_after, 0, "no thread outlives the drain");
    }

    #[test]
    fn slowloris_reaps_exactly_the_slow_readers() {
        let r = slowloris_run(&SlowlorisParams {
            cpus: 4,
            slow: 16,
            busy: 8,
            cycles: 8,
            payload: 64,
            idle_timeout: 10 * MILLIS,
        });
        assert_eq!(r.idle_reaped, 16, "every squatter reaped, nothing else");
        assert_eq!(r.ops, 8 * 8);
        assert_eq!(r.accepted, 24);
        assert_eq!(r.shutdown_physical_waiters, 0);
        assert_eq!(r.live_threads_after, 0);
    }

    #[test]
    fn resident_holds_connections_open_until_shutdown() {
        let r = resident_run(&ResidentParams {
            cpus: 4,
            connections: 64,
            payload: 64,
        });
        assert_eq!(r.ops, 64);
        assert_eq!(r.accepted, 64);
        // All 64 sessions were live (parked on the shutdown broadcast)
        // when the residue sample was taken.
        assert_eq!(r.shutdown_physical_waiters, 64);
        assert_eq!(r.live_threads_after, 0);
        // Without the counting allocator installed (lib tests) the
        // memory figures read zero; either way they must not be junk.
        assert!(r.bytes_per_conn < 1 << 20);
    }

    #[test]
    fn web_workload_serves_everything() {
        let r = web_server_run(&WebRunParams {
            cost: CostModel::monadic(),
            files: 64,
            cache_bytes: 256 * 1024,
            connections: 4,
            requests_per_conn: 5,
            seed: 9,
        });
        assert_eq!(r.responses, 20);
        assert!(r.mb_s > 0.0);
        assert!(r.cache_hit_ratio >= 0.0);
    }
}
