//! The C1M scale sweep behind both the `fig_scale` bench target and the
//! `fig_scale` binary (`cargo run --release -p eveth-bench --bin
//! fig_scale`): one shared implementation so CI and ad-hoc runs
//! regenerate the exact same `BENCH_scale.json`.
//!
//! Four scenarios drive the generic `Server<S>` through the failure
//! modes that show up only at connection-count scale:
//!
//! * **churn** — connect/disconnect storms at 10k–100k total connections
//!   (1M under `EVETH_FULL=1`). The regression class this flushes out is
//!   *accumulation*: timer entries, waiter-table slots or session state
//!   that is logically dead but physically retained. Every churn row
//!   reports the physical waiter residue on the shutdown broadcast after
//!   the storm (must be 0) and the monadic threads left after drain
//!   (must be 0 — the orphan-pump class of leak).
//! * **herd** — a thundering herd: the zipfian KV workload collapsed to a
//!   single key over 8 shards, so one shard gate takes every hit. The
//!   `hot_shard_lock_wait_ns` column concentrates there while the other
//!   seven idle — the signature that distinguishes real contention from
//!   diffuse scheduling noise.
//! * **slowloris** — slow readers that connect and never send, squatting
//!   on sessions until the idle deadline reaps them while well-behaved
//!   clients echo through the same server. `idle_reaped` must equal the
//!   squatter count exactly.
//! * **resident** — N connections held open after one echo round trip.
//!   With the counting allocator installed (both `fig_scale` targets
//!   install it) the live-heap delta per connection is the
//!   bytes-per-connection figure CI gates against a budget.
//!
//! All numbers are virtual-time and deterministically scheduled, so the
//! JSON drop is byte-identical across reruns — CI diffs two runs.
//!
//! Run: `cargo bench --bench fig_scale` (EVETH_FULL=1 for the
//! million-connection cell).

use crate::tables::{banner, count, write_json_rows, JsonVal};
use crate::workloads::{
    churn_run, kv_server_run, resident_run, slowloris_run, ChurnParams, KvRunParams,
    ResidentParams, ScaleRunResult, SlowlorisParams,
};
use eveth_core::time::MILLIS;
use eveth_simos::cost::CostModel;

/// Echo payload used by every non-KV scenario.
const PAYLOAD: usize = 64;

/// The thundering-herd cell: the contended KV configuration from
/// `fig_kv`, collapsed to a single key so every client hammers the same
/// shard gate out of 8.
fn herd_params() -> KvRunParams {
    KvRunParams {
        cost: CostModel::monadic(),
        cpus: 4,
        slice: 8,
        app_tcp: false,
        loopback: true,
        shards: 8,
        stm: false,
        clients: 64,
        batches_per_conn: 16,
        pipeline_depth: 8,
        set_percent: 10,
        keys: 1,
        value_bytes: 100,
        preload: false,
        seed: 42,
    }
}

/// One JSON row with the full column set (identical schema across
/// scenarios; columns a scenario does not exercise are zero).
#[allow(clippy::too_many_arguments)]
fn row(
    scenario: &str,
    cpus: usize,
    connections: u64,
    concurrent: u64,
    r: &ScaleRunResult,
    store_lock_wait_ns: u64,
    hot_shard_lock_wait_ns: u64,
) -> Vec<(&'static str, JsonVal)> {
    vec![
        ("scenario", JsonVal::Str(scenario.into())),
        ("cpus", JsonVal::Int(cpus as u64)),
        ("connections", JsonVal::Int(connections)),
        ("concurrent", JsonVal::Int(concurrent)),
        ("ops", JsonVal::Int(r.ops)),
        ("ops_per_sec", JsonVal::Num(r.ops_per_sec)),
        ("virtual_ns", JsonVal::Int(r.elapsed)),
        ("p50_ns", JsonVal::Int(r.p50_ns)),
        ("p99_ns", JsonVal::Int(r.p99_ns)),
        ("io_wait_ns", JsonVal::Int(r.io_wait_ns)),
        ("lock_wait_ns", JsonVal::Int(r.lock_wait_ns)),
        ("store_lock_wait_ns", JsonVal::Int(store_lock_wait_ns)),
        (
            "hot_shard_lock_wait_ns",
            JsonVal::Int(hot_shard_lock_wait_ns),
        ),
        ("accepted", JsonVal::Int(r.accepted)),
        ("idle_reaped", JsonVal::Int(r.idle_reaped)),
        (
            "shutdown_physical_waiters",
            JsonVal::Int(r.shutdown_physical_waiters as u64),
        ),
        (
            "live_threads_after",
            JsonVal::Int(r.live_threads_after as u64),
        ),
        ("bytes_per_conn", JsonVal::Int(r.bytes_per_conn)),
        ("allocs_per_conn", JsonVal::Int(r.allocs_per_conn)),
        ("cpu_utilization", JsonVal::Num(r.cpu_utilization)),
    ]
}

/// Runs the whole scale sweep and writes `BENCH_scale.json` at the
/// workspace root. Exits the process nonzero if the JSON drop cannot be
/// written (CI's budget gate reads it).
pub fn run() {
    let full = crate::full_scale();
    let churn_sizes: Vec<u64> = if full {
        vec![10_000, 100_000, 1_000_000]
    } else {
        vec![10_000, 100_000]
    };
    let resident_sizes: Vec<u64> = if full {
        vec![10_000, 100_000]
    } else {
        vec![10_000]
    };
    let mut rows: Vec<Vec<(&str, JsonVal)>> = Vec::new();

    banner(
        "C1M / scale scenarios",
        "connection churn, thundering herd, slowloris reaping, resident memory",
        "the paper's million-thread claim applied to a million *connections*: O(1) timers, slab-backed waiter tables, no per-connection leak",
    );

    // ---- churn: connect/disconnect storms --------------------------------
    println!();
    println!(
        "{:>12} | {:>14} | {:>12} | {:>12} | {:>8} | {:>8}",
        "connections", "conns/s", "p50 ns", "p99 ns", "residue", "threads"
    );
    println!(
        "{:->12}-+-{:->14}-+-{:->12}-+-{:->12}-+-{:->8}-+-{:->8}",
        "", "", "", "", "", ""
    );
    for &n in &churn_sizes {
        let p = ChurnParams {
            cpus: 4,
            connections: n,
            concurrent: 512,
            payload: PAYLOAD,
        };
        let r = churn_run(&p);
        println!(
            "{:>12} | {:>14} | {:>12} | {:>12} | {:>8} | {:>8}",
            count(n),
            count(r.ops_per_sec as u64),
            count(r.p50_ns),
            count(r.p99_ns),
            r.shutdown_physical_waiters,
            r.live_threads_after
        );
        rows.push(row("churn", p.cpus, n, p.concurrent, &r, 0, 0));
    }

    // ---- herd: every client on one key -----------------------------------
    let hp = herd_params();
    let hr = kv_server_run(&hp);
    let concentration = if hr.store_lock_wait_ns == 0 {
        0.0
    } else {
        hr.hot_shard_lock_wait_ns as f64 / hr.store_lock_wait_ns as f64
    };
    println!();
    println!(
        "herd: {} ops/s, hot shard holds {:.0}% of {} us store lock wait",
        count(hr.ops_per_sec as u64),
        concentration * 100.0,
        count(hr.store_lock_wait_ns / 1000)
    );
    // Adapt the KV result into the shared row schema.
    let herd_as_scale = ScaleRunResult {
        elapsed: hr.elapsed,
        ops: hr.responses,
        ops_per_sec: hr.ops_per_sec,
        p50_ns: hr.p50_ns,
        p99_ns: hr.p99_ns,
        io_wait_ns: hr.io_wait_ns,
        lock_wait_ns: hr.lock_wait_ns,
        accepted: 0,
        idle_reaped: 0,
        shutdown_physical_waiters: 0,
        live_threads_after: 0,
        bytes_per_conn: 0,
        allocs_per_conn: 0,
        cpus: hr.cpus,
        cpu_utilization: hr.cpu_utilization,
    };
    rows.push(row(
        "herd",
        hp.cpus,
        hp.clients,
        hp.clients,
        &herd_as_scale,
        hr.store_lock_wait_ns,
        hr.hot_shard_lock_wait_ns,
    ));

    // ---- slowloris: squatters vs the idle deadline -----------------------
    let sp = SlowlorisParams {
        cpus: 4,
        slow: 256,
        busy: 64,
        cycles: 32,
        payload: PAYLOAD,
        idle_timeout: 10 * MILLIS,
    };
    let sr = slowloris_run(&sp);
    println!(
        "slowloris: {} squatters reaped (expected {}), {} echo ops beside them",
        count(sr.idle_reaped),
        sp.slow,
        count(sr.ops)
    );
    rows.push(row(
        "slowloris",
        sp.cpus,
        sp.slow + sp.busy,
        sp.slow + sp.busy,
        &sr,
        0,
        0,
    ));

    // ---- resident: bytes per held-open connection ------------------------
    println!();
    println!(
        "{:>12} | {:>12} | {:>12} | {:>12}",
        "resident", "bytes/conn", "allocs/conn", "p99 ns"
    );
    println!("{:->12}-+-{:->12}-+-{:->12}-+-{:->12}", "", "", "", "");
    for &n in &resident_sizes {
        let p = ResidentParams {
            cpus: 4,
            connections: n,
            payload: PAYLOAD,
        };
        let r = resident_run(&p);
        println!(
            "{:>12} | {:>12} | {:>12} | {:>12}",
            count(n),
            count(r.bytes_per_conn),
            count(r.allocs_per_conn),
            count(r.p99_ns)
        );
        rows.push(row("resident", p.cpus, n, n, &r, 0, 0));
    }

    // ---- machine-readable drop -------------------------------------------
    let out = workspace_root().join("BENCH_scale.json");
    let meta = [
        ("bench", JsonVal::Str("fig_scale".into())),
        ("full_scale", JsonVal::Bool(full)),
        ("cost_model", JsonVal::Str("monadic".into())),
        ("payload_bytes", JsonVal::Int(PAYLOAD as u64)),
    ];
    match write_json_rows(&out, &meta, &rows) {
        Ok(()) => println!("\nwrote {} rows to {}", rows.len(), out.display()),
        Err(e) => {
            // Exit nonzero: CI's scale gates read this file, and a silent
            // write failure would let them pass on stale data.
            eprintln!("\nfailed to write {}: {e}", out.display());
            std::process::exit(1);
        }
    }
    println!("expected shape: churn conns/s roughly flat from 10k to 100k (no");
    println!("O(connections) structure on the hot path); herd lock wait pinned");
    println!("to one shard; idle_reaped == squatter count; bytes/conn flat in N.");
}

/// The workspace root: prefer CARGO env (set under `cargo bench`), falling
/// back to the current directory.
fn workspace_root() -> std::path::PathBuf {
    if let Ok(dir) = std::env::var("CARGO_MANIFEST_DIR") {
        // crates/bench -> workspace root.
        std::path::Path::new(&dir)
            .ancestors()
            .nth(2)
            .map(|p| p.to_path_buf())
            .unwrap_or_else(|| std::path::PathBuf::from("."))
    } else {
        std::path::PathBuf::from(".")
    }
}
