//! Table formatting for the figure harnesses.

/// Prints a banner naming the paper artifact being reproduced.
pub fn banner(id: &str, title: &str, paper: &str) {
    println!();
    println!("================================================================");
    println!("{id}: {title}");
    println!("paper reference: {paper}");
    println!("================================================================");
}

/// Formats an optional MB/s cell ("n/a" when a model could not run).
pub fn mb_cell(v: Option<f64>) -> String {
    match v {
        Some(v) => format!("{v:>12.3}"),
        None => format!("{:>12}", "n/a"),
    }
}

/// Formats a count with thousands separators.
pub fn count(n: u64) -> String {
    let s = n.to_string();
    let mut out = String::new();
    for (i, c) in s.chars().enumerate() {
        if i > 0 && (s.len() - i) % 3 == 0 {
            out.push(',');
        }
        out.push(c);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn count_groups_thousands() {
        assert_eq!(count(5), "5");
        assert_eq!(count(1234), "1,234");
        assert_eq!(count(10_000_000), "10,000,000");
    }

    #[test]
    fn mb_cell_handles_na() {
        assert!(mb_cell(None).contains("n/a"));
        assert!(mb_cell(Some(1.5)).contains("1.500"));
    }
}
