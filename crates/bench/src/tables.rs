//! Table formatting for the figure harnesses, plus a dependency-free JSON
//! emitter so benches can drop machine-readable results (`BENCH_*.json`)
//! next to their human tables — giving future PRs a perf trajectory.

use std::io::Write;

/// Prints a banner naming the paper artifact being reproduced.
pub fn banner(id: &str, title: &str, paper: &str) {
    println!();
    println!("================================================================");
    println!("{id}: {title}");
    println!("paper reference: {paper}");
    println!("================================================================");
}

/// Formats an optional MB/s cell ("n/a" when a model could not run).
pub fn mb_cell(v: Option<f64>) -> String {
    match v {
        Some(v) => format!("{v:>12.3}"),
        None => format!("{:>12}", "n/a"),
    }
}

/// Formats a count with thousands separators.
pub fn count(n: u64) -> String {
    let s = n.to_string();
    let mut out = String::new();
    for (i, c) in s.chars().enumerate() {
        if i > 0 && (s.len() - i).is_multiple_of(3) {
            out.push(',');
        }
        out.push(c);
    }
    out
}

/// A JSON scalar for [`write_json_rows`].
#[derive(Debug, Clone, PartialEq)]
pub enum JsonVal {
    /// A float (NaN/∞ serialize as `null`).
    Num(f64),
    /// An integer.
    Int(u64),
    /// A string.
    Str(String),
    /// A boolean.
    Bool(bool),
}

impl JsonVal {
    fn emit(&self, out: &mut String) {
        match self {
            JsonVal::Num(v) if v.is_finite() => out.push_str(&format!("{v}")),
            JsonVal::Num(_) => out.push_str("null"),
            JsonVal::Int(v) => out.push_str(&v.to_string()),
            JsonVal::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            JsonVal::Str(s) => {
                out.push('"');
                for c in s.chars() {
                    match c {
                        '"' => out.push_str("\\\""),
                        '\\' => out.push_str("\\\\"),
                        '\n' => out.push_str("\\n"),
                        '\r' => out.push_str("\\r"),
                        '\t' => out.push_str("\\t"),
                        c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
                        c => out.push(c),
                    }
                }
                out.push('"');
            }
        }
    }
}

fn emit_object(fields: &[(&str, JsonVal)], out: &mut String) {
    out.push('{');
    for (i, (k, v)) in fields.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        JsonVal::Str(k.to_string()).emit(out);
        out.push(':');
        v.emit(out);
    }
    out.push('}');
}

/// Serializes `{"meta": {…}, "rows": [{…}, …]}`.
pub fn json_rows_string(meta: &[(&str, JsonVal)], rows: &[Vec<(&str, JsonVal)>]) -> String {
    let mut out = String::new();
    out.push_str("{\"meta\":");
    emit_object(meta, &mut out);
    out.push_str(",\"rows\":[");
    for (i, row) in rows.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        emit_object(row, &mut out);
    }
    out.push_str("]}\n");
    out
}

/// Writes machine-readable bench results to `path` (atomically enough for
/// a bench harness: temp file + rename).
///
/// # Errors
///
/// Propagates I/O failures from the filesystem.
pub fn write_json_rows(
    path: &std::path::Path,
    meta: &[(&str, JsonVal)],
    rows: &[Vec<(&str, JsonVal)>],
) -> std::io::Result<()> {
    let tmp = path.with_extension("json.tmp");
    {
        let mut f = std::fs::File::create(&tmp)?;
        f.write_all(json_rows_string(meta, rows).as_bytes())?;
    }
    std::fs::rename(&tmp, path)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn count_groups_thousands() {
        assert_eq!(count(5), "5");
        assert_eq!(count(1234), "1,234");
        assert_eq!(count(10_000_000), "10,000,000");
    }

    #[test]
    fn mb_cell_handles_na() {
        assert!(mb_cell(None).contains("n/a"));
        assert!(mb_cell(Some(1.5)).contains("1.500"));
    }

    #[test]
    fn json_rows_shape_and_escaping() {
        let s = json_rows_string(
            &[("bench", JsonVal::Str("kv \"x\"\n".into()))],
            &[
                vec![("a", JsonVal::Int(3)), ("b", JsonVal::Num(1.5))],
                vec![("ok", JsonVal::Bool(true)), ("bad", JsonVal::Num(f64::NAN))],
            ],
        );
        assert_eq!(
            s,
            "{\"meta\":{\"bench\":\"kv \\\"x\\\"\\n\"},\"rows\":[{\"a\":3,\"b\":1.5},{\"ok\":true,\"bad\":null}]}\n"
        );
    }

    #[test]
    fn write_json_rows_roundtrips_through_fs() {
        let dir = std::env::temp_dir().join("eveth_bench_tables_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("BENCH_test.json");
        write_json_rows(&path, &[("v", JsonVal::Int(1))], &[]).unwrap();
        let got = std::fs::read_to_string(&path).unwrap();
        assert_eq!(got, "{\"meta\":{\"v\":1},\"rows\":[]}\n");
        std::fs::remove_file(&path).unwrap();
    }
}
