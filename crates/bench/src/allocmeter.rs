//! A counting global allocator for the memory-consumption experiment (E1).
//!
//! The paper measures the live heap of ten million yield-looping threads
//! with GHC's GC profiler; we wrap the system allocator and track live and
//! peak bytes instead.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};

static LIVE: AtomicUsize = AtomicUsize::new(0);
static PEAK: AtomicUsize = AtomicUsize::new(0);

/// Install with `#[global_allocator]` in a bench binary.
#[derive(Debug, Default)]
pub struct CountingAlloc;

impl CountingAlloc {
    /// Const constructor for static installation.
    pub const fn new() -> Self {
        CountingAlloc
    }
}

// SAFETY: delegates every operation to `System`, only adding relaxed
// counter updates, so all `GlobalAlloc` contract obligations are inherited.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let p = System.alloc(layout);
        if !p.is_null() {
            let live = LIVE.fetch_add(layout.size(), Ordering::Relaxed) + layout.size();
            PEAK.fetch_max(live, Ordering::Relaxed);
        }
        p
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout);
        LIVE.fetch_sub(layout.size(), Ordering::Relaxed);
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let p = System.realloc(ptr, layout, new_size);
        if !p.is_null() {
            LIVE.fetch_add(new_size, Ordering::Relaxed);
            let live = LIVE.fetch_sub(layout.size(), Ordering::Relaxed) + new_size
                - layout.size().min(new_size + layout.size());
            PEAK.fetch_max(live, Ordering::Relaxed);
        }
        p
    }
}

/// Live heap bytes right now.
pub fn live_bytes() -> usize {
    LIVE.load(Ordering::Relaxed)
}

/// Peak live heap bytes since process start.
pub fn peak_bytes() -> usize {
    PEAK.load(Ordering::Relaxed)
}
