//! A counting global allocator for the memory-consumption experiment (E1).
//!
//! The paper measures the live heap of ten million yield-looping threads
//! with GHC's GC profiler; we wrap the system allocator and track live and
//! peak bytes instead.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};

static LIVE: AtomicUsize = AtomicUsize::new(0);
static PEAK: AtomicUsize = AtomicUsize::new(0);
static ALLOCS: AtomicUsize = AtomicUsize::new(0);

/// Install with `#[global_allocator]` in a bench binary.
#[derive(Debug, Default)]
pub struct CountingAlloc;

impl CountingAlloc {
    /// Const constructor for static installation.
    pub const fn new() -> Self {
        CountingAlloc
    }
}

// SAFETY: delegates every operation to `System`, only adding relaxed
// counter updates, so all `GlobalAlloc` contract obligations are inherited.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let p = System.alloc(layout);
        if !p.is_null() {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
            let live = LIVE.fetch_add(layout.size(), Ordering::Relaxed) + layout.size();
            PEAK.fetch_max(live, Ordering::Relaxed);
        }
        p
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout);
        LIVE.fetch_sub(layout.size(), Ordering::Relaxed);
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let p = System.realloc(ptr, layout, new_size);
        if !p.is_null() {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
            LIVE.fetch_add(new_size, Ordering::Relaxed);
            let live = LIVE.fetch_sub(layout.size(), Ordering::Relaxed) + new_size
                - layout.size().min(new_size + layout.size());
            PEAK.fetch_max(live, Ordering::Relaxed);
        }
        p
    }
}

/// Live heap bytes right now.
pub fn live_bytes() -> usize {
    LIVE.load(Ordering::Relaxed)
}

/// Peak live heap bytes since process start (or the last
/// [`reset_peak`]).
pub fn peak_bytes() -> usize {
    PEAK.load(Ordering::Relaxed)
}

/// Allocator calls (`alloc` + `realloc`) since process start. Divided by
/// the connection count of a scale cell this is the allocations-per-
/// connection figure — the metric that catches per-registration heap
/// cells creeping back into the hot path.
pub fn alloc_count() -> usize {
    ALLOCS.load(Ordering::Relaxed)
}

/// Rebases the peak to the current live figure, so a per-cell
/// measurement window starts from "now" instead of inheriting an earlier
/// cell's high-water mark.
pub fn reset_peak() {
    PEAK.store(LIVE.load(Ordering::Relaxed), Ordering::Relaxed);
}
