//! Figure 19 — "Web server under disk-intensive load".
//!
//! The paper's clients request random 16 KB files from a 128k-file corpus
//! (2 GB on disk, far beyond the server's 100 MB cache), over 100 Mbps
//! Ethernet; throughput is plotted against concurrent connections for the
//! monadic Haskell server and Apache 2.0.55. Both rise with concurrency
//! (deeper disk queues) and the Haskell server compares favorably.
//!
//! Here the same web-server program (own LRU cache + AIO + monadic thread
//! per connection) runs under the monadic cost model, and again under the
//! Apache model (thread-per-connection kernel-thread pricing with a larger
//! per-request code path) — the architectural contrast the figure is
//! about.
//!
//! Run: `cargo bench --bench fig19_webserver` (EVETH_FULL=1 for the
//! 128k-file corpus).

use eveth_bench::tables::{banner, count, mb_cell};
use eveth_bench::workloads::{web_server_run, WebRunParams};
use eveth_simos::cost::CostModel;

fn main() {
    let full = eveth_bench::full_scale();
    // Corpus sized so the cache covers ~5% of it, matching the paper's
    // 100 MB cache vs 2 GB of files.
    let files: usize = if full { 131_072 } else { 4_096 };
    let cache_bytes: usize = files * 16 * 1024 / 20;
    let requests_per_conn: usize = if full { 64 } else { 16 };
    let connections: &[u64] = &[1, 4, 16, 64, 256, 1_024];

    banner(
        "E4 / Figure 19",
        "web server throughput vs concurrent connections (disk-bound)",
        "§5.2, Figure 19: both servers rise to ≈2.75 MB/s; the monadic server compares favorably to Apache",
    );
    println!(
        "(corpus {} x 16 KB files = {} MB on disk; server cache {} MB; keep-alive clients)",
        count(files as u64),
        files * 16 / 1024,
        cache_bytes / (1024 * 1024)
    );
    println!();
    println!(
        "{:>12} | {:>12} | {:>12} | {:>10}",
        "connections", "Apache MB/s", "eveth MB/s", "cache hit"
    );
    println!("{:->12}-+-{:->12}-+-{:->12}-+-{:->10}", "", "", "", "");
    for &conns in connections {
        let apache = web_server_run(&WebRunParams {
            cost: CostModel::apache(),
            files,
            cache_bytes,
            connections: conns,
            requests_per_conn,
            seed: 19,
        });
        let eveth = web_server_run(&WebRunParams {
            cost: CostModel::monadic(),
            files,
            cache_bytes,
            connections: conns,
            requests_per_conn,
            seed: 19,
        });
        println!(
            "{:>12} | {} | {} | {:>9.1}%",
            conns,
            mb_cell(Some(apache.mb_s)),
            mb_cell(Some(eveth.mb_s)),
            eveth.cache_hit_ratio * 100.0
        );
    }
    println!();
    println!("expected shape: throughput rises with connections (head scheduling),");
    println!("then saturates at the disk; the monadic server sits at or above Apache.");
}
