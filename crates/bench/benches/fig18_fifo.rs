//! Figure 18 — "FIFO pipe scalability test (simulating idle network
//! connections)".
//!
//! The paper: 128 pairs of active threads exchange 32 KB messages over
//! 4 KB-buffer FIFO pipes while up to 100,000 *idle* threads wait for
//! epoll events on idle pipes. Both NPTL and Haskell stay flat as idle
//! threads grow, Haskell ≈30% above NPTL, and Haskell scales to far more
//! threads than NPTL.
//!
//! Two reproductions here, against the *same* in-memory pipe device:
//!
//! 1. **wall clock** — monadic threads (non-blocking ops + epoll waits)
//!    vs. real `std::thread` kernel threads (blocking ops on condvars;
//!    `std::thread` on Linux *is* NPTL) with 32 KB stacks;
//! 2. **virtual time** — the same monadic program under the monadic and
//!    kernel-thread cost models, deterministic and seedless.
//!
//! Run: `cargo bench --bench fig18_fifo` (EVETH_FULL=1 for more traffic).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use bytes::Bytes;
use eveth_bench::tables::{banner, count, mb_cell};
use eveth_bench::workloads::{mb_per_sec, sim_with};
use eveth_core::io::pipe::{pipe, PipeReader, PipeWriter};
use eveth_core::runtime::Runtime;
use eveth_core::syscall::{sys_nbio, sys_sleep};
use eveth_core::time::MILLIS;
use eveth_core::{do_m, loop_m, Loop, ThreadM};
use eveth_simos::cost::CostModel;

const PAIRS: usize = 128;
const MSG: usize = 32 * 1024;
const PIPE_BUF: usize = 4 * 1024;

/// One active pair: A sends then receives MSG bytes, B mirrors, `rounds`
/// times — built once, used by every runtime and cost model.
fn pair_programs(
    wa: PipeWriter,
    ra: PipeReader,
    wb: PipeWriter,
    rb: PipeReader,
    rounds: usize,
    tag: u8,
    done: Arc<AtomicU64>,
) -> (ThreadM<()>, ThreadM<()>) {
    let a = loop_m(0usize, move |round| {
        if round == rounds {
            let done = Arc::clone(&done);
            return sys_nbio(move || {
                done.fetch_add(1, Ordering::SeqCst);
            })
            .map(|_| Loop::Break(()));
        }
        let payload = Bytes::from(vec![tag; MSG]);
        let wa = wa.clone();
        let ra = ra.clone();
        do_m! {
            let sent <- wa.write_all_m(payload);
            let _ = sent.expect("pipe write");
            let back <- ra.read_exact_m(MSG);
            let _ = back.expect("pipe read");
            ThreadM::pure(Loop::Continue(round + 1))
        }
    });
    let b = loop_m(0usize, move |round| {
        if round == rounds {
            return ThreadM::pure(Loop::Break(()));
        }
        let wb = wb.clone();
        let rb = rb.clone();
        do_m! {
            let data <- rb.read_exact_m(MSG);
            let data = data.expect("pipe read");
            let sent <- wb.write_all_m(data);
            let _ = sent.expect("pipe write");
            ThreadM::pure(Loop::Continue(round + 1))
        }
    });
    (a, b)
}

/// Parks `idle` monadic threads on reads of never-written pipes; returns
/// the writers that keep them parked.
fn spawn_idle_monadic(spawn: &mut dyn FnMut(ThreadM<()>), idle: usize) -> Vec<PipeWriter> {
    let mut keep = Vec::with_capacity(idle);
    for _ in 0..idle {
        let (w, r) = pipe(PIPE_BUF);
        spawn(r.read_m(1).map(|_| ()));
        keep.push(w);
    }
    keep
}

fn wall_clock_monadic(idle: usize, rounds: usize) -> f64 {
    let workers = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(2)
        .min(4);
    let rt = Runtime::builder().workers(workers).build();
    let _keep = spawn_idle_monadic(
        &mut |m| {
            rt.spawn(m);
        },
        idle,
    );

    let done = Arc::new(AtomicU64::new(0));
    let started = Instant::now();
    for p in 0..PAIRS {
        let (wa, rb) = pipe(PIPE_BUF);
        let (wb, ra) = pipe(PIPE_BUF);
        let (a, b) = pair_programs(wa, ra, wb, rb, rounds, p as u8, Arc::clone(&done));
        rt.spawn(a);
        rt.spawn(b);
    }
    let watch = Arc::clone(&done);
    rt.block_on(loop_m((), move |()| {
        let watch = Arc::clone(&watch);
        do_m! {
            sys_sleep(MILLIS);
            let d <- sys_nbio(move || watch.load(Ordering::SeqCst));
            ThreadM::pure(if d == PAIRS as u64 { Loop::Break(()) } else { Loop::Continue(()) })
        }
    }));
    let bytes = (PAIRS * rounds * MSG * 2) as u64;
    let mb_s = bytes as f64 / (1024.0 * 1024.0) / started.elapsed().as_secs_f64();
    rt.shutdown();
    mb_s
}

fn wall_clock_nptl(idle: usize, rounds: usize) -> Option<f64> {
    // Idle kernel threads blocked on empty pipes, 32 KB stacks (the
    // paper's NPTL configuration).
    let mut idle_handles = Vec::with_capacity(idle);
    let mut keep_writers = Vec::with_capacity(idle);
    for _ in 0..idle {
        let (w, r) = pipe(PIPE_BUF);
        let spawned = std::thread::Builder::new()
            .stack_size(32 * 1024)
            .spawn(move || {
                let _ = r.read_blocking(1); // EOF on writer drop
            });
        match spawned {
            Ok(h) => {
                idle_handles.push(h);
                keep_writers.push(w);
            }
            Err(_) => {
                // Address space / thread limit reached: the paper's NPTL
                // cap, observed live.
                drop(keep_writers);
                for h in idle_handles {
                    let _ = h.join();
                }
                return None;
            }
        }
    }

    let started = Instant::now();
    let mut workers = Vec::with_capacity(PAIRS * 2);
    for p in 0..PAIRS {
        let (wa, rb) = pipe(PIPE_BUF);
        let (wb, ra) = pipe(PIPE_BUF);
        workers.push(
            std::thread::Builder::new()
                .stack_size(32 * 1024)
                .spawn(move || {
                    for _ in 0..rounds {
                        wa.write_all_blocking(&vec![p as u8; MSG]).expect("write");
                        let mut got = 0;
                        while got < MSG {
                            got += ra.read_blocking(MSG - got).len();
                        }
                    }
                })
                .expect("active pair thread"),
        );
        workers.push(
            std::thread::Builder::new()
                .stack_size(32 * 1024)
                .spawn(move || {
                    for _ in 0..rounds {
                        let mut buf = Vec::with_capacity(MSG);
                        while buf.len() < MSG {
                            buf.extend_from_slice(&rb.read_blocking(MSG - buf.len()));
                        }
                        wb.write_all_blocking(&buf).expect("write");
                    }
                })
                .expect("active pair thread"),
        );
    }
    for h in workers {
        h.join().expect("pair finished");
    }
    let bytes = (PAIRS * rounds * MSG * 2) as u64;
    let mb_s = bytes as f64 / (1024.0 * 1024.0) / started.elapsed().as_secs_f64();

    drop(keep_writers);
    for h in idle_handles {
        let _ = h.join();
    }
    Some(mb_s)
}

fn virtual_time(cost: CostModel, idle: usize, rounds: usize) -> f64 {
    let sim = sim_with(cost);
    let _keep = spawn_idle_monadic(
        &mut |m| {
            sim.spawn(m);
        },
        idle,
    );
    let done = Arc::new(AtomicU64::new(0));
    for p in 0..PAIRS {
        let (wa, rb) = pipe(PIPE_BUF);
        let (wb, ra) = pipe(PIPE_BUF);
        let (a, b) = pair_programs(wa, ra, wb, rb, rounds, p as u8, Arc::clone(&done));
        sim.spawn(a);
        sim.spawn(b);
    }
    eveth_bench::workloads::wait_counter(&sim, done, PAIRS as u64);
    mb_per_sec((PAIRS * rounds * MSG * 2) as u64, sim.now())
}

fn main() {
    let full = eveth_bench::full_scale();
    let rounds: usize = if full { 64 } else { 8 }; // per pair; 2*32 KB per round
    let traffic_mb = PAIRS * rounds * MSG * 2 / (1024 * 1024);

    banner(
        "E3 / Figure 18",
        "FIFO pipe throughput vs idle threads",
        "§5.1, Figure 18: flat scalability; Haskell ≈30% above NPTL; Haskell scales far beyond NPTL",
    );
    println!(
        "(128 active pairs exchanging 32 KB over {} B pipes; {} MB per cell)",
        PIPE_BUF, traffic_mb
    );

    println!("\n-- wall clock: monadic runtime vs real kernel threads (std::thread = NPTL)\n");
    println!(
        "{:>12} | {:>12} | {:>12}",
        "idle threads", "NPTL MB/s", "eveth MB/s"
    );
    println!("{:->12}-+-{:->12}-+-{:->12}", "", "", "");
    let idle_sweep: &[usize] = if full {
        &[0, 100, 1_000, 10_000, 100_000]
    } else {
        &[0, 100, 1_000, 10_000, 50_000]
    };
    // Real kernel threads are expensive enough that CI-class containers
    // kill the process (OOM / pids cgroup) well before the paper's 16k —
    // which is exactly the scaling cliff the figure is about. Keep the
    // NPTL column inside a safe budget by default.
    let nptl_idle_cap: usize = if full { 16 * 1024 } else { 2_000 };
    for &idle in idle_sweep {
        let nptl = if idle + 2 * PAIRS <= nptl_idle_cap {
            wall_clock_nptl(idle, rounds)
        } else {
            None
        };
        let monadic = wall_clock_monadic(idle, rounds);
        println!(
            "{:>12} | {} | {}",
            count(idle as u64),
            mb_cell(nptl),
            mb_cell(Some(monadic))
        );
    }

    println!("\n-- virtual time (deterministic): same program, two cost models\n");
    println!(
        "{:>12} | {:>12} | {:>12}",
        "idle threads", "NPTL MB/s", "eveth MB/s"
    );
    println!("{:->12}-+-{:->12}-+-{:->12}", "", "", "");
    let sim_rounds = rounds.min(8);
    for &idle in &[0usize, 100, 1_000, 10_000] {
        let nptl = virtual_time(CostModel::nptl(), idle, sim_rounds);
        let monadic = virtual_time(CostModel::monadic(), idle, sim_rounds);
        println!(
            "{:>12} | {} | {}",
            count(idle as u64),
            mb_cell(Some(nptl)),
            mb_cell(Some(monadic))
        );
    }
    println!();
    println!("expected shape: both lines flat in idle threads; eveth above NPTL");
    println!("(the paper reports ≈30% on its Celeron; the gap here reflects the");
    println!("same mechanism — no kernel context switch per pipe operation).");
}
