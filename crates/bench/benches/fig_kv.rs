//! Bench-target shim: the sweep lives in `eveth_bench::figkv` so the
//! `fig_kv` *binary* regenerates the identical `BENCH_kv.json`. The
//! counting allocator is installed in both entrypoints so the
//! `allocs_per_op` column is live — and identical — either way.
//!
//! Run: `cargo bench --bench fig_kv` (EVETH_FULL=1 for the larger sweep).

use eveth_bench::allocmeter::CountingAlloc;

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc::new();

fn main() {
    eveth_bench::figkv::run();
}
