//! Bench-target shim: the sweep lives in `eveth_bench::figkv` so the
//! `fig_kv` *binary* regenerates the identical `BENCH_kv.json`.
//!
//! Run: `cargo bench --bench fig_kv` (EVETH_FULL=1 for the larger sweep).

fn main() {
    eveth_bench::figkv::run();
}
