//! KV service throughput — the repository's second workload, benched in
//! the style of the paper's figures: the same monadic program swept across
//! client counts, pipeline depths, shard counts, shard backends and both
//! socket layers, under the monadic cost model.
//!
//! Beyond the human-readable table, results land in `BENCH_kv.json` at the
//! workspace root (via `eveth_bench::tables::write_json_rows`) so future
//! PRs can track the perf trajectory mechanically.
//!
//! Run: `cargo bench --bench fig_kv` (EVETH_FULL=1 for the larger sweep).

use eveth_bench::tables::{banner, count, write_json_rows, JsonVal};
use eveth_bench::workloads::{kv_server_run, KvRunParams, KvRunResult};
use eveth_simos::cost::CostModel;

struct Sweep {
    clients: Vec<u64>,
    depths: Vec<usize>,
    shards: Vec<usize>,
}

fn base_params() -> KvRunParams {
    KvRunParams {
        cost: CostModel::monadic(),
        app_tcp: false,
        shards: 8,
        stm: false,
        clients: 16,
        batches_per_conn: 16,
        pipeline_depth: 8,
        set_percent: 10,
        keys: 1024,
        value_bytes: 100,
        seed: 42,
    }
}

fn run(p: KvRunParams) -> KvRunResult {
    kv_server_run(&p)
}

fn main() {
    let full = eveth_bench::full_scale();
    let sweep = if full {
        Sweep {
            clients: vec![1, 4, 16, 64, 256, 1024],
            depths: vec![1, 2, 4, 8, 16, 32],
            shards: vec![1, 2, 4, 8, 16, 32],
        }
    } else {
        Sweep {
            clients: vec![1, 4, 16, 64],
            depths: vec![1, 4, 16],
            shards: vec![1, 4, 16],
        }
    };
    let mut rows: Vec<Vec<(&str, JsonVal)>> = Vec::new();

    banner(
        "KV / second workload",
        "memcached-style KV throughput vs clients, pipeline depth, shards",
        "the §5.2 architecture applied to a second protocol; both sides of the one-line NetStack switch",
    );

    // ---- throughput vs concurrent clients, both socket layers ------------
    println!();
    println!(
        "{:>8} | {:>14} | {:>14} | {:>9}",
        "clients", "sockets ops/s", "app-tcp ops/s", "hit rate"
    );
    println!("{:->8}-+-{:->14}-+-{:->14}-+-{:->9}", "", "", "", "");
    for &clients in &sweep.clients {
        let sock = run(KvRunParams {
            clients,
            ..base_params()
        });
        let tcp = run(KvRunParams {
            clients,
            app_tcp: true,
            ..base_params()
        });
        println!(
            "{:>8} | {:>14} | {:>14} | {:>8.1}%",
            clients,
            count(sock.ops_per_sec as u64),
            count(tcp.ops_per_sec as u64),
            sock.hit_ratio() * 100.0
        );
        for (stack, r) in [("sockets", &sock), ("app-tcp", &tcp)] {
            rows.push(vec![
                ("sweep", JsonVal::Str("clients".into())),
                ("stack", JsonVal::Str(stack.into())),
                ("clients", JsonVal::Int(clients)),
                (
                    "pipeline_depth",
                    JsonVal::Int(base_params().pipeline_depth as u64),
                ),
                ("shards", JsonVal::Int(base_params().shards as u64)),
                ("backend", JsonVal::Str("mutex".into())),
                ("responses", JsonVal::Int(r.responses)),
                ("ops_per_sec", JsonVal::Num(r.ops_per_sec)),
                ("hit_ratio", JsonVal::Num(r.hit_ratio())),
                ("virtual_ns", JsonVal::Int(r.elapsed)),
            ]);
        }
    }

    // ---- throughput vs pipeline depth ------------------------------------
    println!();
    println!(
        "{:>8} | {:>14} | {:>16}",
        "depth", "ops/s", "ns/op (virtual)"
    );
    println!("{:->8}-+-{:->14}-+-{:->16}", "", "", "");
    for &depth in &sweep.depths {
        let r = run(KvRunParams {
            pipeline_depth: depth,
            ..base_params()
        });
        println!(
            "{:>8} | {:>14} | {:>16}",
            depth,
            count(r.ops_per_sec as u64),
            count(r.elapsed / r.responses.max(1))
        );
        rows.push(vec![
            ("sweep", JsonVal::Str("pipeline_depth".into())),
            ("stack", JsonVal::Str("sockets".into())),
            ("clients", JsonVal::Int(base_params().clients)),
            ("pipeline_depth", JsonVal::Int(depth as u64)),
            ("shards", JsonVal::Int(base_params().shards as u64)),
            ("backend", JsonVal::Str("mutex".into())),
            ("responses", JsonVal::Int(r.responses)),
            ("ops_per_sec", JsonVal::Num(r.ops_per_sec)),
            ("hit_ratio", JsonVal::Num(r.hit_ratio())),
            ("virtual_ns", JsonVal::Int(r.elapsed)),
        ]);
    }

    // ---- throughput vs shard count, both backends ------------------------
    println!();
    println!(
        "{:>8} | {:>14} | {:>14}",
        "shards", "mutex ops/s", "stm ops/s"
    );
    println!("{:->8}-+-{:->14}-+-{:->14}", "", "", "");
    for &shards in &sweep.shards {
        let mutex = run(KvRunParams {
            shards,
            ..base_params()
        });
        let stm = run(KvRunParams {
            shards,
            stm: true,
            ..base_params()
        });
        println!(
            "{:>8} | {:>14} | {:>14}",
            shards,
            count(mutex.ops_per_sec as u64),
            count(stm.ops_per_sec as u64)
        );
        for (backend, r) in [("mutex", &mutex), ("stm", &stm)] {
            rows.push(vec![
                ("sweep", JsonVal::Str("shards".into())),
                ("stack", JsonVal::Str("sockets".into())),
                ("clients", JsonVal::Int(base_params().clients)),
                (
                    "pipeline_depth",
                    JsonVal::Int(base_params().pipeline_depth as u64),
                ),
                ("shards", JsonVal::Int(shards as u64)),
                ("backend", JsonVal::Str(backend.into())),
                ("responses", JsonVal::Int(r.responses)),
                ("ops_per_sec", JsonVal::Num(r.ops_per_sec)),
                ("hit_ratio", JsonVal::Num(r.hit_ratio())),
                ("virtual_ns", JsonVal::Int(r.elapsed)),
            ]);
        }
    }

    // ---- machine-readable drop -------------------------------------------
    let out = workspace_root().join("BENCH_kv.json");
    let meta = [
        ("bench", JsonVal::Str("fig_kv".into())),
        ("full_scale", JsonVal::Bool(full)),
        ("cost_model", JsonVal::Str("monadic".into())),
        (
            "set_percent",
            JsonVal::Int(base_params().set_percent as u64),
        ),
        ("keys", JsonVal::Int(base_params().keys as u64)),
        (
            "value_bytes",
            JsonVal::Int(base_params().value_bytes as u64),
        ),
    ];
    match write_json_rows(&out, &meta, &rows) {
        Ok(()) => println!("\nwrote {} rows to {}", rows.len(), out.display()),
        Err(e) => eprintln!("\nfailed to write {}: {e}", out.display()),
    }
    println!("expected shape: ops/s rises with pipeline depth (fewer round trips)");
    println!("and with clients until the single simulated CPU saturates;");
    println!("shard count matters once clients contend on hot shards.");
}

/// The workspace root: prefer CARGO env (set under `cargo bench`), falling
/// back to the current directory.
fn workspace_root() -> std::path::PathBuf {
    if let Ok(dir) = std::env::var("CARGO_MANIFEST_DIR") {
        // crates/bench -> workspace root.
        std::path::Path::new(&dir)
            .ancestors()
            .nth(2)
            .map(|p| p.to_path_buf())
            .unwrap_or_else(|| std::path::PathBuf::from("."))
    } else {
        std::path::PathBuf::from(".")
    }
}
