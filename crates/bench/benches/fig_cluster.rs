//! Bench-target shim: the cluster suite lives in
//! `eveth_bench::figcluster` so the `fig_cluster` *binary* regenerates
//! the identical `BENCH_cluster.json` — byte determinism across both
//! entrypoints is a CI gate.
//!
//! Run: `cargo bench --bench fig_cluster` (EVETH_FULL=1 for the larger
//! sweep).

use eveth_bench::allocmeter::CountingAlloc;

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc::new();

fn main() {
    eveth_bench::figcluster::run();
}
