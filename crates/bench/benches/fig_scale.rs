//! Bench-target shim: the sweep lives in `eveth_bench::figscale` so the
//! `fig_scale` *binary* regenerates the identical `BENCH_scale.json`.
//! The counting allocator backs the resident scenario's bytes-per-
//! connection column.
//!
//! Run: `cargo bench --bench fig_scale` (EVETH_FULL=1 for the
//! million-connection cell).

use eveth_bench::allocmeter::CountingAlloc;

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc::new();

fn main() {
    eveth_bench::figscale::run();
}
