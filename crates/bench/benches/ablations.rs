//! Ablations of the design choices DESIGN.md calls out.
//!
//! * **A1 — execution slice**: the paper runs each thread "for a large
//!   number of steps before switching ... to improve locality" (§4.2).
//! * **A2 — elevator vs FIFO disk scheduling**: what Figure 17 would look
//!   like without the kernel's head scheduling (§5.1).
//! * **A3 — server cache size**: the web server's own cache (§5.2).
//! * **A4 — kernel sockets vs application-level TCP** under the web
//!   server: the one-line switch, measured (§5.2).
//!
//! Run: `cargo bench --bench ablations`.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use eveth::glue;
use eveth_bench::tables::{banner, mb_cell};
use eveth_bench::workloads::{
    disk_head_scheduling, mb_per_sec, sim_with, wait_counter, web_server_run, WebRunParams,
};
use eveth_core::net::{Endpoint, HostId, NetStack};
use eveth_core::syscall::sys_nbio;
use eveth_core::{loop_m, Loop};
use eveth_http::loadgen::{client_thread, corpus_paths, LoadConfig, LoadStats};
use eveth_http::server::{ServerConfig, WebServer};
use eveth_simos::cost::CostModel;
use eveth_simos::disk::{DiskGeometry, DiskSched, SimDisk};
use eveth_simos::fs::SimFs;
use eveth_simos::net::{LinkParams, SimNet};
use eveth_simos::sockets::{FabricParams, SocketFabric};
use eveth_simos::{SimClock, SimConfig, SimRuntime};
use eveth_tcp::tcb::TcpConfig;

/// A1: CPU-bound thread mix; virtual time vs slice length.
fn slice_ablation() {
    banner(
        "A1",
        "execution slice length (locality batching, §4.2)",
        "threads run many steps per scheduling turn to amortize switching",
    );
    const THREADS: u64 = 2_000;
    const STEPS: u64 = 200;
    println!("({THREADS} threads x {STEPS} non-blocking steps each)");
    println!(
        "{:>8} | {:>14} | {:>14}",
        "slice", "virtual ms", "ctx switches"
    );
    println!("{:->8}-+-{:->14}-+-{:->14}", "", "", "");
    for slice in [1usize, 4, 16, 64, 256, 1024] {
        let sim = SimRuntime::new(
            SimClock::new(),
            SimConfig {
                cost: CostModel::monadic(),
                slice,
                cpus: 1,
                ..SimConfig::default()
            },
        );
        let finished = Arc::new(AtomicU64::new(0));
        for _ in 0..THREADS {
            let finished = Arc::clone(&finished);
            sim.spawn(loop_m(0u64, move |i| {
                if i == STEPS {
                    let finished = Arc::clone(&finished);
                    return sys_nbio(move || {
                        finished.fetch_add(1, Ordering::SeqCst);
                    })
                    .map(|_| Loop::Break(()));
                }
                sys_nbio(move || std::hint::black_box(i)).map(move |_| Loop::Continue(i + 1))
            }));
        }
        wait_counter(&sim, finished, THREADS);
        let report = sim.report();
        println!(
            "{:>8} | {:>14.3} | {:>14}",
            slice,
            sim.now() as f64 / 1e6,
            report.stats.ctx_switches
        );
    }
    println!("longer slices amortize context switches; returns diminish once");
    println!("switch cost is negligible against real work.");
}

/// A2: Figure 17 with the elevator turned off.
fn elevator_ablation() {
    banner(
        "A2",
        "disk scheduling discipline (C-LOOK elevator vs FIFO)",
        "Figure 17's rise exists only because of head scheduling",
    );
    const READS: u64 = 8_192;
    println!(
        "{:>8} | {:>12} | {:>12}",
        "threads", "C-LOOK MB/s", "FIFO MB/s"
    );
    println!("{:->8}-+-{:->12}-+-{:->12}", "", "", "");
    for threads in [1u64, 16, 256, 4_096] {
        let clook = disk_head_scheduling(CostModel::monadic(), DiskSched::CLook, threads, READS, 2);
        let fifo = disk_head_scheduling(CostModel::monadic(), DiskSched::Fifo, threads, READS, 2);
        println!(
            "{:>8} | {} | {}",
            threads,
            mb_cell(clook.map(|r| r.mb_s)),
            mb_cell(fifo.map(|r| r.mb_s))
        );
    }
    println!("FIFO stays at the single-request baseline no matter the concurrency.");
}

/// A3: web-server cache budget sweep.
fn cache_ablation() {
    banner(
        "A3",
        "server cache size (the server \"implements its own caching\", §5.2)",
        "hit ratio and throughput vs cache budget at fixed concurrency",
    );
    let files = 512usize;
    let corpus = files * 16 * 1024;
    println!("{:>12} | {:>12} | {:>10}", "cache", "MB/s", "hit ratio");
    println!("{:->12}-+-{:->12}-+-{:->10}", "", "", "");
    for (label, cache_bytes) in [
        ("none", 1usize),
        ("5% corpus", corpus / 20),
        ("25% corpus", corpus / 4),
        ("100% corpus", corpus),
    ] {
        let r = web_server_run(&WebRunParams {
            cost: CostModel::monadic(),
            files,
            cache_bytes,
            connections: 128,
            requests_per_conn: 40,
            seed: 3,
        });
        println!(
            "{:>12} | {} | {:>9.1}%",
            label,
            mb_cell(Some(r.mb_s)),
            r.cache_hit_ratio * 100.0
        );
    }
    println!("a cache covering the working set converts the workload from");
    println!("disk-bound to CPU/network-bound (the paper's \"mostly-cached\" case).");
}

/// A4: kernel-socket model vs application-level TCP under the web server.
fn tcp_stack_ablation() {
    banner(
        "A4",
        "kernel sockets vs application-level TCP stack (§5.2's one-line switch)",
        "same server, same corpus, sockets swapped",
    );
    let files = 512usize;
    let connections = 32u64;
    let requests = 8usize;

    let run = |use_tcp: bool| -> (f64, u64) {
        let sim = sim_with(CostModel::monadic());
        let disk = SimDisk::new(
            sim.clock(),
            DiskGeometry::eide_7200_80gb(),
            DiskSched::CLook,
            4,
        );
        let fs = SimFs::new(disk);
        let paths = corpus_paths(files);
        for p in &paths {
            fs.add_file(p.clone(), 16 * 1024);
        }
        let (server_stack, client_stack): (Arc<dyn NetStack>, Arc<dyn NetStack>) = if use_tcp {
            let net = SimNet::new(sim.clock(), LinkParams::ethernet_100mbps(), 5);
            (
                glue::tcp_host_over_simnet(sim.ctx(), &net, HostId(1), TcpConfig::default()),
                glue::tcp_host_over_simnet(sim.ctx(), &net, HostId(2), TcpConfig::default()),
            )
        } else {
            let fabric = SocketFabric::new(sim.clock(), FabricParams::default());
            (fabric.stack(HostId(1)), fabric.stack(HostId(2)))
        };
        let server = WebServer::new(
            server_stack,
            fs,
            ServerConfig {
                port: 80,
                cache_bytes: files * 16 * 1024 / 10,
                ..Default::default()
            },
        );
        sim.spawn(server.run());
        let stats = Arc::new(LoadStats::default());
        let cfg = Arc::new(LoadConfig {
            server: Endpoint::new(HostId(1), 80),
            requests_per_conn: requests,
            paths: Arc::new(paths),
            seed: 6,
        });
        for id in 0..connections {
            sim.spawn(client_thread(
                Arc::clone(&client_stack),
                Arc::clone(&cfg),
                Arc::clone(&stats),
                id,
            ));
        }
        let done = Arc::new(AtomicU64::new(0));
        {
            let stats = Arc::clone(&stats);
            let done = Arc::clone(&done);
            sim.spawn(loop_m((), move |()| {
                let stats = Arc::clone(&stats);
                let done = Arc::clone(&done);
                eveth_core::do_m! {
                    eveth_core::syscall::sys_sleep(eveth_core::time::MILLIS);
                    let d <- sys_nbio(move || stats.clients_done.load(Ordering::Relaxed));
                    if d >= connections {
                        sys_nbio(move || { done.store(1, Ordering::SeqCst); }).map(|_| Loop::Break(()))
                    } else {
                        eveth_core::ThreadM::pure(Loop::Continue(()))
                    }
                }
            }));
        }
        wait_counter(&sim, done, 1);
        (
            mb_per_sec(stats.bytes.load(Ordering::Relaxed), sim.now()),
            stats.responses(),
        )
    };

    let (kernel_mb, kernel_resp) = run(false);
    let (tcp_mb, tcp_resp) = run(true);
    println!(
        "{:>18} | {:>12} | {:>10}",
        "socket stack", "MB/s", "responses"
    );
    println!("{:->18}-+-{:->12}-+-{:->10}", "", "", "");
    println!(
        "{:>18} | {} | {:>10}",
        "kernel model",
        mb_cell(Some(kernel_mb)),
        kernel_resp
    );
    println!(
        "{:>18} | {} | {:>10}",
        "eveth-tcp",
        mb_cell(Some(tcp_mb)),
        tcp_resp
    );
    println!("the application-level stack carries the same workload; its cost is");
    println!("protocol processing on the host CPU (the paper's zero-copy motivation).");
}

/// A5: shared ready queue (paper) vs per-worker deques with stealing
/// (§4.4's proposed improvement), wall clock, fork-heavy load.
fn queue_ablation() {
    banner(
        "A5",
        "ready-queue discipline: shared MPMC vs per-worker deques + stealing",
        "§4.4: \"can be further improved by ... a separate task queue for each scheduler and work stealing\"",
    );
    use eveth_core::runtime::Runtime;
    use eveth_core::syscall::{sys_nbio, sys_sleep, sys_yield};
    use eveth_core::ThreadM;

    const TASKS: u64 = 60_000;
    let run = |stealing: bool| -> f64 {
        let rt = Runtime::builder()
            .workers(4)
            .work_stealing(stealing)
            .build();
        let done = Arc::new(AtomicU64::new(0));
        let started = std::time::Instant::now();
        for _ in 0..TASKS {
            let done = Arc::clone(&done);
            rt.spawn(eveth_core::do_m! {
                sys_yield();
                let _x <- sys_nbio(|| std::hint::black_box(17u64.wrapping_mul(31)));
                sys_nbio(move || { done.fetch_add(1, Ordering::Relaxed); })
            });
        }
        let watch = Arc::clone(&done);
        rt.block_on(eveth_core::loop_m((), move |()| {
            let watch = Arc::clone(&watch);
            eveth_core::do_m! {
                sys_sleep(eveth_core::time::MILLIS);
                let d <- sys_nbio(move || watch.load(Ordering::Relaxed));
                ThreadM::pure(if d == TASKS { Loop::Break(()) } else { Loop::Continue(()) })
            }
        }));
        let secs = started.elapsed().as_secs_f64();
        rt.shutdown();
        TASKS as f64 / secs / 1e3
    };
    println!("({TASKS} short-lived threads, 4 workers, wall clock)");
    println!("{:>18} | {:>16}", "queue", "k threads/sec");
    println!("{:->18}-+-{:->16}", "", "");
    for (label, stealing) in [("shared (paper)", false), ("work stealing", true)] {
        println!("{:>18} | {:>16.1}", label, run(stealing));
    }
    println!("(wall-clock numbers vary with host; the point is both disciplines");
    println!("drain the same load and the stealing path exists and scales)");
}

fn main() {
    slice_ablation();
    elevator_ablation();
    cache_ablation();
    tcp_stack_ablation();
    queue_ablation();
}
