//! E1 — "Memory consumption" (paper §5.1).
//!
//! The paper launches **ten million** threads that loop `sys_yield` and
//! reads the live heap from GHC's collector: 480 MB, i.e. ≈48 bytes per
//! monadic thread — "the representation of a monadic thread is so
//! lightweight it is never the bottleneck of the system."
//!
//! This harness does the same with a counting global allocator: spawn N
//! yield-looping threads on a scheduler, run one scheduling round so every
//! thread is suspended at its `SYS_YIELD`, and attribute the live-heap
//! delta to them.
//!
//! Run: `cargo bench --bench tbl_memory` (EVETH_FULL=1 for the full 10M).

use eveth_bench::allocmeter::{self, CountingAlloc};
use eveth_bench::tables::{banner, count};
use eveth_core::engine::testing::CountingCtx;
use eveth_core::syscall::sys_yield;
use eveth_core::{loop_m, Loop};
use std::sync::Arc;

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc::new();

fn yielder() -> eveth_core::ThreadM<()> {
    loop_m((), |()| sys_yield().map(|_| Loop::Continue(())))
}

fn measure(n: u64) -> (usize, f64) {
    let ctx = Arc::new(CountingCtx::new());
    let before = allocmeter::live_bytes();
    for _ in 0..n {
        ctx.spawn(yielder());
    }
    // One scheduling turn each: every thread now sits parked at SYS_YIELD
    // with its continuation on the ready list — the steady state the paper
    // measures.
    let as_ctx: Arc<dyn eveth_core::engine::RuntimeCtx> = Arc::clone(&ctx) as _;
    for _ in 0..n {
        if let Some(task) = ctx.pop_ready() {
            eveth_core::engine::run_task(&as_ctx, task, 1);
        }
    }
    let after = allocmeter::live_bytes();
    let total = after.saturating_sub(before);
    (total, total as f64 / n as f64)
}

fn main() {
    banner(
        "E1 / memory consumption",
        "live heap per monadic thread",
        "§5.1: 10,000,000 yield-looping threads ≈ 480 MB live — 48 bytes/thread",
    );
    let full = eveth_bench::full_scale();
    let sweep: &[u64] = if full {
        &[1_000, 100_000, 1_000_000, 10_000_000]
    } else {
        &[1_000, 100_000, 1_000_000]
    };
    println!(
        "{:>12} | {:>14} | {:>14}",
        "threads", "live bytes", "bytes/thread"
    );
    println!("{:->12}-+-{:->14}-+-{:->14}", "", "", "");
    for &n in sweep {
        let (total, per) = measure(n);
        println!(
            "{:>12} | {:>14} | {:>14.1}",
            count(n),
            count(total as u64),
            per
        );
    }
    println!();
    println!("paper: 48 bytes/thread; ours is the same order (boxed continuation");
    println!("closure + task shell), demonstrating the same claim: thread");
    println!("representation is never the bottleneck.");
    if !full {
        println!("(set EVETH_FULL=1 to run the 10,000,000-thread row)");
    }
}
