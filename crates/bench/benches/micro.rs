//! Criterion microbenchmarks of the concurrency primitives: the costs the
//! paper's qualitative claims rest on (cheap thread creation, cheap
//! context switches, scheduler-extension sync, STM via `sys_nbio`,
//! zero-overhead exceptions on the happy path).
//!
//! Run: `cargo bench --bench micro`.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use eveth_core::local::run_local;
use eveth_core::runtime::Runtime;
use eveth_core::sync::{Chan, Mutex};
use eveth_core::syscall::*;
use eveth_core::{do_m, loop_m, Loop, ThreadM};
use eveth_stm::{atomically_m, TVar};

fn bench_spawn(c: &mut Criterion) {
    let mut g = c.benchmark_group("thread");
    g.throughput(Throughput::Elements(1));
    // Cost of constructing + running a trivial monadic thread to
    // completion on the inline executor (no OS runtime in the way).
    g.bench_function("construct_and_run", |b| {
        b.iter(|| run_local(ThreadM::pure(std::hint::black_box(1))).unwrap())
    });
    g.bench_function("fork_1000_local", |b| {
        b.iter(|| {
            let mut ex = eveth_core::local::LocalExecutor::new();
            ex.spawn(eveth_core::for_each_m(0..1000u32, |_| {
                sys_fork(ThreadM::pure(()))
            }));
            ex.run().completed
        })
    });
    g.finish();
}

fn bench_context_switch(c: &mut Criterion) {
    let mut g = c.benchmark_group("context_switch");
    // 10k yields through the inline round-robin scheduler: the per-switch
    // cost of the trace machinery itself.
    g.throughput(Throughput::Elements(10_000));
    g.bench_function("yield_10k_local", |b| {
        b.iter(|| {
            run_local(loop_m(0u32, |i| {
                if i == 10_000 {
                    ThreadM::pure(Loop::Break(()))
                } else {
                    sys_yield().map(move |_| Loop::Continue(i + 1))
                }
            }))
            .unwrap()
        })
    });
    g.finish();
}

fn bench_exceptions(c: &mut Criterion) {
    let mut g = c.benchmark_group("exceptions");
    g.bench_function("catch_no_throw", |b| {
        b.iter(|| run_local(sys_catch(ThreadM::pure(7), |_| ThreadM::pure(0))).unwrap())
    });
    g.bench_function("throw_and_catch", |b| {
        b.iter(|| run_local(sys_catch(sys_throw::<i32>("e"), |_| ThreadM::pure(0))).unwrap())
    });
    g.finish();
}

fn bench_sync(c: &mut Criterion) {
    let mut g = c.benchmark_group("sync");
    let rt = Runtime::builder().workers(2).build();
    g.bench_function("mutex_uncontended_1k", |b| {
        let m = Mutex::new();
        b.iter(|| {
            let m = m.clone();
            rt.block_on(eveth_core::for_each_m(0..1000u32, move |_| {
                let m2 = m.clone();
                do_m! { m2.lock(); m2.unlock() }
            }))
        })
    });
    g.bench_function("chan_pingpong_1k", |b| {
        b.iter(|| {
            let ping: Chan<u32> = Chan::new();
            let pong: Chan<u32> = Chan::new();
            let (ping2, pong2) = (ping.clone(), pong.clone());
            rt.spawn(eveth_core::for_each_m(0..1000u32, move |_| {
                let pong2 = pong2.clone();
                ping2.read().bind(move |v| pong2.write(v))
            }));
            rt.block_on(eveth_core::for_each_m(0..1000u32, move |i| {
                let ping = ping.clone();
                let pong = pong.clone();
                do_m! { ping.write(i); pong.read().map(|_| ()) }
            }))
        })
    });
    g.finish();
    rt.shutdown();
}

fn bench_stm(c: &mut Criterion) {
    let mut g = c.benchmark_group("stm");
    let rt = Runtime::builder().workers(2).build();
    g.throughput(Throughput::Elements(1000));
    g.bench_function("counter_increments_1k", |b| {
        let v = TVar::new(0u64);
        b.iter(|| {
            let v = v.clone();
            rt.block_on(eveth_core::for_each_m(0..1000u32, move |_| {
                let v = v.clone();
                atomically_m(move |t| {
                    let x = t.read(&v)?;
                    t.write(&v, x + 1);
                    Ok(())
                })
            }))
        })
    });
    g.finish();
    rt.shutdown();
}

criterion_group!(
    benches,
    bench_spawn,
    bench_context_switch,
    bench_exceptions,
    bench_sync,
    bench_stm
);
criterion_main!(benches);
