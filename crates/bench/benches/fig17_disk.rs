//! Figure 17 — "Disk head scheduling test".
//!
//! Each of N threads randomly reads 4 KB blocks from a 1 GB file; the
//! paper reads 512 MB total per point and plots overall throughput against
//! the number of working threads, comparing C/NPTL kernel threads against
//! the monadic (Haskell) runtime. Both lines rise from ≈0.525 to ≈0.675
//! MB/s as deeper disk queues shorten elevator seeks, and NPTL cannot run
//! past ≈16k threads (32 KB stacks exhaust a 32-bit address space).
//!
//! Here the *same* monadic program runs twice per point: once under the
//! monadic cost model with AIO, once under the kernel-thread cost model
//! (every blocking point = two kernel context switches, 32 KB stack per
//! thread, 16k cap) — the Lauer–Needham duality as an experimental method.
//!
//! Run: `cargo bench --bench fig17_disk` (EVETH_FULL=1 for 512 MB/point).

use eveth_bench::tables::{banner, count, mb_cell};
use eveth_bench::workloads::disk_head_scheduling;
use eveth_simos::cost::CostModel;
use eveth_simos::disk::DiskSched;

fn main() {
    let full = eveth_bench::full_scale();
    // 512 MB (paper) or 64 MB (default) of 4 KB reads per cell.
    let total_reads: u64 = if full { 131_072 } else { 16_384 };
    let threads: &[u64] = &[1, 10, 100, 1_000, 4_096, 16_384, 65_536];

    banner(
        "E2 / Figure 17",
        "disk head scheduling: throughput vs working threads",
        "§5.1, Figure 17: NPTL and Haskell rise 0.525 → 0.675 MB/s; NPTL stops at 16k threads",
    );
    println!(
        "({} random 4 KB reads per point from a 1 GB file on a simulated 7200 RPM EIDE disk)",
        count(total_reads)
    );
    println!();
    println!(
        "{:>8} | {:>12} | {:>12}",
        "threads", "C/NPTL MB/s", "eveth MB/s"
    );
    println!("{:->8}-+-{:->12}-+-{:->12}", "", "", "");
    for &n in threads {
        let nptl = disk_head_scheduling(CostModel::nptl(), DiskSched::CLook, n, total_reads, 17);
        let monadic =
            disk_head_scheduling(CostModel::monadic(), DiskSched::CLook, n, total_reads, 17);
        println!(
            "{:>8} | {} | {}",
            n,
            mb_cell(nptl.map(|r| r.mb_s)),
            mb_cell(monadic.map(|r| r.mb_s))
        );
    }
    println!();
    println!("expected shape: both rise with thread count (deeper elevator queues);");
    println!("eveth ≥ NPTL beyond ~100 threads; NPTL line ends at its 16k-thread cap.");
}
