//! TCB scenario tests beyond the unit suite: simultaneous close, rollback
//! recovery, window dynamics, RTO backoff, and reordering — each driven by
//! hand-delivering segments to a pair of state machines.

use eveth_core::net::{Endpoint, HostId, NetError};
use eveth_core::time::MILLIS;
use eveth_tcp::segment::Segment;
use eveth_tcp::tcb::{State, Tcb, TcpConfig};

fn pair(cfg: TcpConfig) -> (Tcb, Tcb) {
    let a = Endpoint::new(HostId(1), 1000);
    let b = Endpoint::new(HostId(2), 80);
    let mut client = Tcb::new_active(cfg.clone(), a, b, 100, 0);
    let syn = client.syn_segment();
    let mut server = Tcb::new_passive(cfg, b, a, 5000, &syn, 0);
    let syn_ack = server.syn_ack_segment();
    let (acks, _) = client.on_segment(syn_ack, 1000);
    for seg in acks {
        server.on_segment(seg, 2000);
    }
    assert_eq!(client.state(), State::Established);
    assert_eq!(server.state(), State::Established);
    (client, server)
}

fn exchange(a: &mut Tcb, b: &mut Tcb, first_from_a: Vec<Segment>, mut now: u64) -> u64 {
    let mut from_a = first_from_a;
    let mut from_b: Vec<Segment> = Vec::new();
    for _ in 0..200 {
        if from_a.is_empty() && from_b.is_empty() {
            return now;
        }
        now += 500;
        let mut new_from_b = Vec::new();
        for seg in from_a.drain(..) {
            new_from_b.extend(b.on_segment(seg, now).0);
        }
        now += 500;
        let mut new_from_a = Vec::new();
        for seg in from_b.drain(..) {
            new_from_a.extend(a.on_segment(seg, now).0);
        }
        from_a = new_from_a;
        from_b = new_from_b;
    }
    panic!("exchange did not quiesce");
}

#[test]
fn simultaneous_close_reaches_time_wait_on_both() {
    let (mut c, mut s) = pair(TcpConfig::default());
    // Both sides close before seeing the other's FIN.
    c.app_close();
    s.app_close();
    let fin_c = c.output(10_000);
    let fin_s = s.output(10_000);
    assert!(fin_c.iter().any(|x| x.flags.fin));
    assert!(fin_s.iter().any(|x| x.flags.fin));
    assert_eq!(c.state(), State::FinWait1);
    assert_eq!(s.state(), State::FinWait1);
    // Cross-deliver the FINs, then the resulting ACKs.
    let mut to_c = Vec::new();
    let mut to_s = Vec::new();
    for seg in fin_s {
        to_c.push(seg);
    }
    for seg in fin_c {
        to_s.push(seg);
    }
    let mut now = 20_000;
    for _ in 0..10 {
        if to_c.is_empty() && to_s.is_empty() {
            break;
        }
        now += 1_000;
        let mut nc = Vec::new();
        for seg in to_s.drain(..) {
            nc.extend(s.on_segment(seg, now).0);
        }
        let mut ns = Vec::new();
        for seg in to_c.drain(..) {
            ns.extend(c.on_segment(seg, now).0);
        }
        to_c = nc;
        to_s = ns;
    }
    // Simultaneous close: FIN crossed FIN → Closing → TimeWait.
    assert_eq!(c.state(), State::TimeWait);
    assert_eq!(s.state(), State::TimeWait);
    // 2MSL expiry closes both.
    let end = now + TcpConfig::default().time_wait + MILLIS;
    c.on_tick(end);
    s.on_tick(end);
    assert_eq!(c.state(), State::Closed);
    assert_eq!(s.state(), State::Closed);
}

#[test]
fn rto_backoff_doubles_under_repeated_loss() {
    let (mut c, _s) = pair(TcpConfig::default());
    c.app_write(b"doomed").unwrap();
    let _lost = c.output(0);
    // Fire several consecutive RTOs; the retransmission gaps must grow.
    let mut now = 0u64;
    let mut gaps = Vec::new();
    let mut last_fire = 0u64;
    for _ in 0..4 {
        // March time forward until a retransmission happens.
        let mut fired_at = None;
        for _ in 0..100_000 {
            now += 10 * MILLIS;
            if !c.on_tick(now).is_empty() {
                fired_at = Some(now);
                break;
            }
        }
        let t = fired_at.expect("RTO must fire");
        if last_fire > 0 {
            gaps.push(t - last_fire);
        }
        last_fire = t;
    }
    assert!(gaps.len() >= 2);
    for w in gaps.windows(2) {
        assert!(
            w[1] >= w[0] * 2 - 20 * MILLIS,
            "backoff must roughly double: {:?}",
            gaps
        );
    }
    assert!(c.retransmits() >= 4);
}

#[test]
fn receiver_window_closes_and_reopens() {
    let cfg = TcpConfig {
        recv_window: 4096,
        send_buf: 64 * 1024,
        ..Default::default()
    };
    let (mut c, mut s) = pair(cfg);
    // Push far more than the window; receiver does not read.
    c.app_write(&vec![9u8; 32 * 1024]).unwrap();
    let mut to_s = c.output(10_000);
    let mut now = 10_000;
    // Drive until the sender is window-throttled.
    for _ in 0..50 {
        if to_s.is_empty() {
            break;
        }
        now += 1_000;
        let mut to_c = Vec::new();
        for seg in to_s.drain(..) {
            to_c.extend(s.on_segment(seg, now).0);
        }
        now += 1_000;
        for seg in to_c {
            to_s.extend(c.on_segment(seg, now).0);
        }
    }
    // Receiver has at most a window's worth buffered and unread.
    let (first, reopened_early) = s.app_read(2048).unwrap();
    assert!(first.is_some());
    assert!(!reopened_early || first.is_some());
    // Drain everything receiver-side; eventually a read reopens a zero
    // window and asks for a window-update ACK.
    let mut reopened = false;
    let mut drained = first.unwrap().len();
    loop {
        let (chunk, r) = s.app_read(4096).unwrap();
        reopened |= r;
        match chunk {
            Some(c2) if !c2.is_empty() => drained += c2.len(),
            _ => break,
        }
    }
    assert!(drained >= 4096 - 2048, "drained {drained}");
    // Window update lets the sender move again.
    let update = s.ack_segment();
    let before = c.send_buffered();
    let more = c.on_segment(update, now + 1_000);
    let _ = more;
    let after_out = c.output(now + 2_000);
    assert!(
        !after_out.is_empty() || before == 0,
        "sender must resume after the window reopens (reopened={reopened})"
    );
}

#[test]
fn heavy_reordering_still_delivers_in_order() {
    let cfg = TcpConfig {
        initial_cwnd_mss: 16,
        mss: 1000,
        ..Default::default()
    };
    let (mut c, mut s) = pair(cfg);
    let payload: Vec<u8> = (0..10_000u32).map(|i| i as u8).collect();
    c.app_write(&payload).unwrap();
    let mut segs = c.output(10_000);
    assert!(segs.len() >= 8, "want many segments, got {}", segs.len());
    // Deliver in reverse order.
    segs.reverse();
    let mut acks = Vec::new();
    for seg in segs {
        acks.extend(s.on_segment(seg, 20_000).0);
    }
    for ack in acks {
        c.on_segment(ack, 30_000);
    }
    let mut got = Vec::new();
    while let (Some(chunk), _) = s.app_read(64 * 1024).unwrap() {
        if chunk.is_empty() {
            break;
        }
        got.extend_from_slice(&chunk);
        if got.len() >= payload.len() {
            break;
        }
    }
    assert_eq!(got, payload, "reassembly must restore exact order");
}

#[test]
fn data_after_peer_close_is_still_deliverable() {
    // Half-close: client closes its direction; server may keep sending.
    let (mut c, mut s) = pair(TcpConfig::default());
    c.app_close();
    let fin = c.output(10_000);
    let now = exchange(&mut c, &mut s, fin, 10_000);
    assert_eq!(s.state(), State::CloseWait);
    assert_eq!(c.state(), State::FinWait2);
    // Server writes after receiving the FIN.
    s.app_write(b"parting words").unwrap();
    let mut to_c = s.output(now + 1_000);
    let mut to_s = Vec::new();
    let mut t = now + 1_000;
    for _ in 0..20 {
        if to_c.is_empty() && to_s.is_empty() {
            break;
        }
        t += 1_000;
        let mut ns = Vec::new();
        for seg in to_c.drain(..) {
            ns.extend(c.on_segment(seg, t).0);
        }
        t += 1_000;
        let mut nc = Vec::new();
        for seg in to_s.drain(..) {
            nc.extend(s.on_segment(seg, t).0);
        }
        to_s = ns;
        to_c = nc;
    }
    let (data, _) = c.app_read(64).unwrap();
    assert_eq!(&data.unwrap()[..], b"parting words");
}

#[test]
fn connect_to_dead_host_times_out_with_error() {
    let cfg = TcpConfig {
        max_syn_retries: 3,
        ..Default::default()
    };
    let a = Endpoint::new(HostId(1), 1000);
    let b = Endpoint::new(HostId(9), 80);
    let mut c = Tcb::new_active(cfg, a, b, 100, 0);
    let _syn = c.syn_segment();
    let mut now = 0;
    for _ in 0..20_000 {
        now += 10 * MILLIS;
        c.on_tick(now);
        if c.state() == State::Closed {
            break;
        }
    }
    assert_eq!(c.state(), State::Closed);
    assert_eq!(c.error(), Some(NetError::Timeout));
}
