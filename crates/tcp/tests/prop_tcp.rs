//! Property tests for the TCP stack: whatever the payload, chunking, loss
//! rate or duplication pattern, the byte stream delivered equals the byte
//! stream sent — the end-to-end invariant everything else rests on.

use bytes::Bytes;
use eveth_core::do_m;
use eveth_core::net::{recv_exact, send_all, Endpoint, HostId, NetStack};
use eveth_core::syscall::sys_fork;
use eveth_simos::SimRuntime;
use eveth_tcp::host::TcpHost;
use eveth_tcp::tcb::TcpConfig;
use eveth_tcp::transport::{Faults, LoopbackNet};
use proptest::prelude::*;

fn transfer(payload: Vec<u8>, faults: Faults, seed: u64) -> Vec<u8> {
    let sim = SimRuntime::new_default();
    let net = LoopbackNet::with_faults(faults, seed);
    let a = TcpHost::start(sim.ctx(), HostId(1), net.clone(), TcpConfig::default());
    let b = TcpHost::start(sim.ctx(), HostId(2), net.clone(), TcpConfig::default());
    net.register(&a);
    net.register(&b);

    let len = payload.len();
    let data = Bytes::from(payload);
    let server = do_m! {
        let lst <- b.listen(80);
        let conn <- lst.expect("listen").accept();
        let conn = conn.expect("accept");
        let got <- recv_exact(&conn, len);
        let got = got.expect("receive all");
        let sent <- send_all(&conn, got);
        let _ = sent.expect("echo");
        conn.close()
    };
    let echoed = sim
        .block_on(do_m! {
            sys_fork(server);
            let conn <- a.connect(Endpoint::new(HostId(2), 80));
            let conn = conn.expect("connect");
            let sent <- send_all(&conn, data);
            let _ = sent.expect("send all");
            recv_exact(&conn, len)
        })
        .expect("simulation completes")
        .expect("echo received");
    echoed.to_vec()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Lossless: arbitrary payloads arrive intact (segmentation,
    /// reassembly, windows).
    #[test]
    fn echo_is_identity_lossless(payload in proptest::collection::vec(any::<u8>(), 1..20_000)) {
        let expect = payload.clone();
        let got = transfer(payload, Faults::default(), 1);
        prop_assert_eq!(got, expect);
    }

    /// Lossy and duplicating links: retransmission and duplicate
    /// suppression still deliver the exact stream.
    ///
    /// Ignored by default: rare loss+duplication seeds make the recovery
    /// exchange extremely long (suspected pathological RTO interaction —
    /// tracked as a known issue). Always-on lossy-path coverage lives in
    /// `tests/tcp_over_simnet.rs`, the crate doctest (5% loss) and the
    /// facade glue test (2% loss). Run with `cargo test -- --ignored`
    /// when touching the retransmission paths.
    #[test]
    #[ignore = "long fault-injection sweep; see doc comment"]
    fn echo_is_identity_under_faults(
        payload in proptest::collection::vec(any::<u8>(), 1..8_000),
        loss in 0.0f64..0.15,
        dup in proptest::option::of(2u64..10),
        seed in 1u64..u64::MAX,
    ) {
        let expect = payload.clone();
        let got = transfer(payload, Faults { loss, duplicate_every: dup }, seed);
        prop_assert_eq!(got, expect);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Sequence arithmetic: ordering is antisymmetric and consistent with
    /// distance, across wraparound.
    #[test]
    fn seq_ordering_is_consistent(a in any::<u32>(), d in 1u32..(1 << 30)) {
        let b = a.wrapping_add(d);
        prop_assert!(eveth_tcp::seq::seq_lt(a, b));
        prop_assert!(!eveth_tcp::seq::seq_lt(b, a));
        prop_assert_eq!(eveth_tcp::seq::seq_diff(b, a), d);
        prop_assert!(eveth_tcp::seq::seq_in(a, a, b));
        prop_assert!(!eveth_tcp::seq::seq_in(b, a, b));
    }
}
