//! 32-bit TCP sequence-number arithmetic (RFC 793 §3.3).
//!
//! Sequence numbers live on a ring; all comparisons are modular with a
//! half-ring horizon. These helpers keep the rest of the stack honest about
//! wraparound.

/// `a < b` on the sequence ring.
#[inline]
pub fn seq_lt(a: u32, b: u32) -> bool {
    (a.wrapping_sub(b) as i32) < 0
}

/// `a <= b` on the sequence ring.
#[inline]
pub fn seq_le(a: u32, b: u32) -> bool {
    a == b || seq_lt(a, b)
}

/// `a > b` on the sequence ring.
#[inline]
pub fn seq_gt(a: u32, b: u32) -> bool {
    seq_lt(b, a)
}

/// `a >= b` on the sequence ring.
#[inline]
pub fn seq_ge(a: u32, b: u32) -> bool {
    seq_le(b, a)
}

/// `low <= x < high` on the sequence ring.
#[inline]
pub fn seq_in(x: u32, low: u32, high: u32) -> bool {
    seq_le(low, x) && seq_lt(x, high)
}

/// Distance from `a` forward to `b` (number of bytes in `[a, b)`).
#[inline]
pub fn seq_diff(b: u32, a: u32) -> u32 {
    b.wrapping_sub(a)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plain_ordering() {
        assert!(seq_lt(1, 2));
        assert!(seq_le(2, 2));
        assert!(seq_gt(3, 2));
        assert!(seq_ge(3, 3));
    }

    #[test]
    fn wraparound_ordering() {
        let near_max = u32::MAX - 5;
        assert!(seq_lt(near_max, 3), "wrapped value is 'after'");
        assert!(seq_gt(3, near_max));
        assert_eq!(seq_diff(3, near_max), 9);
    }

    #[test]
    fn in_range_across_wrap() {
        let low = u32::MAX - 2;
        let high = 4u32;
        assert!(seq_in(u32::MAX, low, high));
        assert!(seq_in(0, low, high));
        assert!(seq_in(3, low, high));
        assert!(!seq_in(4, low, high));
        assert!(!seq_in(low.wrapping_sub(1), low, high));
    }

    #[test]
    fn half_ring_horizon() {
        // Differences beyond 2^31 flip the comparison — the standard TCP
        // ambiguity bound.
        assert!(seq_lt(0, 1 << 30));
        assert!(!seq_lt(0, (1 << 31) + 1));
    }
}
