//! TCP segments as they travel over the (simulated) wire.
//!
//! Buffers are [`Bytes`], so fan-out into MSS-sized segments and
//! retransmissions are zero-copy slices of the application's data — the
//! paper's "IO vectors to represent data buffers indirectly" (§5.2).

use std::fmt;

use bytes::Bytes;

/// TCP header flags (the subset the stack uses).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Flags {
    /// Synchronize sequence numbers (connection setup).
    pub syn: bool,
    /// Acknowledgement field is valid.
    pub ack: bool,
    /// Sender has finished sending.
    pub fin: bool,
    /// Hard reset.
    pub rst: bool,
    /// Push — deliver promptly (set on every data segment here).
    pub psh: bool,
}

impl Flags {
    /// Just `ACK`.
    pub fn ack() -> Self {
        Flags {
            ack: true,
            ..Flags::default()
        }
    }

    /// `SYN` alone (active open).
    pub fn syn() -> Self {
        Flags {
            syn: true,
            ..Flags::default()
        }
    }

    /// `SYN+ACK` (passive open reply).
    pub fn syn_ack() -> Self {
        Flags {
            syn: true,
            ack: true,
            ..Flags::default()
        }
    }

    /// `RST` (optionally with ACK).
    pub fn rst() -> Self {
        Flags {
            rst: true,
            ..Flags::default()
        }
    }
}

impl fmt::Display for Flags {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut any = false;
        for (set, name) in [
            (self.syn, "SYN"),
            (self.ack, "ACK"),
            (self.fin, "FIN"),
            (self.rst, "RST"),
            (self.psh, "PSH"),
        ] {
            if set {
                if any {
                    f.write_str("|")?;
                }
                f.write_str(name)?;
                any = true;
            }
        }
        if !any {
            f.write_str("-")?;
        }
        Ok(())
    }
}

/// One TCP segment.
#[derive(Clone)]
pub struct Segment {
    /// Sender's port.
    pub src_port: u16,
    /// Receiver's port.
    pub dst_port: u16,
    /// Sequence number of the first payload byte (or of SYN/FIN).
    pub seq: u32,
    /// Acknowledgement number (valid if `flags.ack`).
    pub ack: u32,
    /// Header flags.
    pub flags: Flags,
    /// Advertised receive window in bytes.
    pub wnd: u32,
    /// Payload (zero-copy slice of application data).
    pub payload: Bytes,
}

/// Modelled TCP/IP header overhead per segment on the wire.
pub const HEADER_BYTES: usize = 40;

impl Segment {
    /// Number of sequence positions this segment occupies (payload plus one
    /// for SYN and one for FIN).
    pub fn seq_len(&self) -> u32 {
        self.payload.len() as u32 + self.flags.syn as u32 + self.flags.fin as u32
    }

    /// Bytes this segment occupies on the wire (header + payload).
    pub fn wire_len(&self) -> usize {
        HEADER_BYTES + self.payload.len()
    }

    /// The sequence number one past this segment's data.
    pub fn seq_end(&self) -> u32 {
        self.seq.wrapping_add(self.seq_len())
    }
}

impl fmt::Debug for Segment {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Segment[{}->{} {} seq={} ack={} wnd={} len={}]",
            self.src_port,
            self.dst_port,
            self.flags,
            self.seq,
            self.ack,
            self.wnd,
            self.payload.len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seg(flags: Flags, payload: &'static [u8]) -> Segment {
        Segment {
            src_port: 1,
            dst_port: 2,
            seq: 100,
            ack: 0,
            flags,
            wnd: 65535,
            payload: Bytes::from_static(payload),
        }
    }

    #[test]
    fn seq_len_counts_syn_and_fin() {
        assert_eq!(seg(Flags::syn(), b"").seq_len(), 1);
        assert_eq!(seg(Flags::ack(), b"abc").seq_len(), 3);
        let mut f = Flags::ack();
        f.fin = true;
        assert_eq!(seg(f, b"abc").seq_len(), 4);
        assert_eq!(seg(f, b"abc").seq_end(), 104);
    }

    #[test]
    fn wire_len_includes_header() {
        assert_eq!(seg(Flags::ack(), b"xyz").wire_len(), HEADER_BYTES + 3);
    }

    #[test]
    fn flags_display() {
        assert_eq!(Flags::syn_ack().to_string(), "SYN|ACK");
        assert_eq!(Flags::default().to_string(), "-");
    }

    #[test]
    fn debug_mentions_ports_and_seq() {
        let s = format!("{:?}", seg(Flags::ack(), b"abc"));
        assert!(s.contains("1->2") && s.contains("seq=100"));
    }
}
