//! TCP Reno congestion control: slow start, congestion avoidance, fast
//! retransmit and fast recovery (RFC 5681).

use std::fmt;

/// What the sender should do after feeding an event to the controller.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CcAction {
    /// Nothing special; transmit as the window allows.
    None,
    /// Third duplicate ACK: retransmit the first unacknowledged segment now.
    FastRetransmit,
}

/// Reno controller state for one connection.
#[derive(Clone)]
pub struct Reno {
    mss: u32,
    cwnd: u32,
    ssthresh: u32,
    dup_acks: u32,
    /// In fast recovery until `snd_una` passes this point.
    recover: Option<u32>,
    /// Congestion-avoidance byte accumulator.
    bytes_acked: u32,
}

impl Reno {
    /// Creates a controller with an initial window of `initial_mss` MSS.
    pub fn new(mss: u32, initial_mss: u32) -> Self {
        Reno {
            mss,
            cwnd: mss * initial_mss,
            ssthresh: u32::MAX / 2,
            dup_acks: 0,
            recover: None,
            bytes_acked: 0,
        }
    }

    /// Current congestion window in bytes.
    pub fn cwnd(&self) -> u32 {
        self.cwnd
    }

    /// Current slow-start threshold in bytes.
    pub fn ssthresh(&self) -> u32 {
        self.ssthresh
    }

    /// True while recovering from a fast retransmit.
    pub fn in_recovery(&self) -> bool {
        self.recover.is_some()
    }

    /// True while in slow start.
    pub fn in_slow_start(&self) -> bool {
        self.cwnd < self.ssthresh && !self.in_recovery()
    }

    /// A new ACK advanced `snd_una` by `acked` bytes to `snd_una`.
    /// `in_flight` is the amount outstanding *before* this ACK.
    pub fn on_new_ack(&mut self, acked: u32, snd_una: u32, in_flight: u32) {
        self.dup_acks = 0;
        if let Some(recover) = self.recover {
            if crate::seq::seq_ge(snd_una, recover) {
                // Full ACK: leave recovery, deflate to ssthresh.
                self.recover = None;
                self.cwnd = self.ssthresh.max(self.mss);
                return;
            } else {
                // Partial ACK: stay in recovery, window partially deflates.
                self.cwnd = self.cwnd.saturating_sub(acked).max(self.mss);
                return;
            }
        }
        if self.cwnd < self.ssthresh {
            // Slow start: one MSS per MSS acknowledged (capped by the ACK).
            self.cwnd = self.cwnd.saturating_add(acked.min(self.mss));
        } else {
            // Congestion avoidance: one MSS per window's worth of ACKs.
            self.bytes_acked = self.bytes_acked.saturating_add(acked);
            if self.bytes_acked >= self.cwnd {
                self.bytes_acked -= self.cwnd;
                self.cwnd = self.cwnd.saturating_add(self.mss);
            }
        }
        let _ = in_flight;
    }

    /// A duplicate ACK arrived; `snd_nxt` is the current send frontier and
    /// `in_flight` the outstanding bytes.
    pub fn on_dup_ack(&mut self, snd_nxt: u32, in_flight: u32) -> CcAction {
        if self.in_recovery() {
            // Window inflation: each dup ACK signals one departed segment.
            self.cwnd = self.cwnd.saturating_add(self.mss);
            return CcAction::None;
        }
        self.dup_acks += 1;
        if self.dup_acks == 3 {
            self.ssthresh = (in_flight / 2).max(2 * self.mss);
            self.cwnd = self.ssthresh + 3 * self.mss;
            self.recover = Some(snd_nxt);
            CcAction::FastRetransmit
        } else {
            CcAction::None
        }
    }

    /// The retransmission timer fired; `in_flight` is the outstanding bytes.
    pub fn on_timeout(&mut self, in_flight: u32) {
        self.ssthresh = (in_flight / 2).max(2 * self.mss);
        self.cwnd = self.mss;
        self.dup_acks = 0;
        self.recover = None;
        self.bytes_acked = 0;
    }
}

impl fmt::Debug for Reno {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Reno(cwnd={}, ssthresh={}, dup={}, recovery={})",
            self.cwnd,
            self.ssthresh,
            self.dup_acks,
            self.in_recovery()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    const MSS: u32 = 1460;

    #[test]
    fn slow_start_doubles_per_window() {
        let mut cc = Reno::new(MSS, 2);
        let start = cc.cwnd();
        // ACK a full window's worth in MSS chunks: cwnd roughly doubles.
        let mut acked = 0;
        let mut una = 0u32;
        while acked < start {
            una = una.wrapping_add(MSS);
            cc.on_new_ack(MSS, una, start);
            acked += MSS;
        }
        assert!(
            cc.cwnd() >= start * 2 - MSS,
            "slow start must double: {} -> {}",
            start,
            cc.cwnd()
        );
    }

    #[test]
    fn congestion_avoidance_is_linear() {
        let mut cc = Reno::new(MSS, 2);
        cc.ssthresh = cc.cwnd(); // force CA immediately
        let start = cc.cwnd();
        let mut una = 0u32;
        // One full window of ACKs → exactly one MSS growth.
        let mut acked = 0;
        while acked < start {
            una = una.wrapping_add(MSS);
            cc.on_new_ack(MSS, una, start);
            acked += MSS;
        }
        assert_eq!(cc.cwnd(), start + MSS);
    }

    #[test]
    fn three_dup_acks_trigger_fast_retransmit() {
        let mut cc = Reno::new(MSS, 10);
        let in_flight = 10 * MSS;
        assert_eq!(cc.on_dup_ack(in_flight, in_flight), CcAction::None);
        assert_eq!(cc.on_dup_ack(in_flight, in_flight), CcAction::None);
        assert_eq!(
            cc.on_dup_ack(in_flight, in_flight),
            CcAction::FastRetransmit
        );
        assert!(cc.in_recovery());
        assert_eq!(cc.ssthresh(), 5 * MSS);
        assert_eq!(cc.cwnd(), 5 * MSS + 3 * MSS);
    }

    #[test]
    fn recovery_exits_on_full_ack() {
        let mut cc = Reno::new(MSS, 10);
        let snd_nxt = 10 * MSS;
        for _ in 0..3 {
            cc.on_dup_ack(snd_nxt, 10 * MSS);
        }
        assert!(cc.in_recovery());
        cc.on_new_ack(10 * MSS, snd_nxt, 10 * MSS);
        assert!(!cc.in_recovery());
        assert_eq!(cc.cwnd(), cc.ssthresh());
    }

    #[test]
    fn timeout_collapses_to_one_mss() {
        let mut cc = Reno::new(MSS, 10);
        cc.on_timeout(10 * MSS);
        assert_eq!(cc.cwnd(), MSS);
        assert_eq!(cc.ssthresh(), 5 * MSS);
        assert!(cc.in_slow_start());
    }

    #[test]
    fn new_ack_resets_dup_count() {
        let mut cc = Reno::new(MSS, 10);
        cc.on_dup_ack(10 * MSS, 10 * MSS);
        cc.on_dup_ack(10 * MSS, 10 * MSS);
        cc.on_new_ack(MSS, MSS, 10 * MSS);
        // Two more dups should NOT trigger (count restarted).
        assert_eq!(cc.on_dup_ack(10 * MSS, 9 * MSS), CcAction::None);
        assert_eq!(cc.on_dup_ack(10 * MSS, 9 * MSS), CcAction::None);
        assert_eq!(
            cc.on_dup_ack(10 * MSS, 9 * MSS),
            CcAction::FastRetransmit,
            "third dup after reset fires"
        );
    }
}
