//! Round-trip time estimation and retransmission timeout: Jacobson/Karels
//! smoothing with Karn's rule and exponential backoff (RFC 6298).

use eveth_core::time::{Nanos, MILLIS};

/// RTT estimator state for one connection.
#[derive(Debug, Clone)]
pub struct RttEstimator {
    srtt: Option<Nanos>,
    rttvar: Nanos,
    rto: Nanos,
    min_rto: Nanos,
    max_rto: Nanos,
    backoff_shift: u32,
}

impl RttEstimator {
    /// Creates an estimator with the given RTO clamp and the RFC 6298
    /// conservative pre-sample RTO (200 ms here; the RFC says "about one
    /// second").
    pub fn new(min_rto: Nanos, max_rto: Nanos) -> Self {
        Self::with_initial(min_rto, max_rto, 200 * MILLIS)
    }

    /// Creates an estimator whose pre-sample RTO is `initial_rto`
    /// (clamped from below by `min_rto`). A conservative initial RTO is
    /// the right default on an unknown path, but on a known-LAN fabric
    /// it makes the very first lost SYN cost 200 ms — datacenter stacks
    /// tune this down.
    pub fn with_initial(min_rto: Nanos, max_rto: Nanos, initial_rto: Nanos) -> Self {
        RttEstimator {
            srtt: None,
            rttvar: 0,
            rto: initial_rto.max(min_rto),
            min_rto,
            max_rto,
            backoff_shift: 0,
        }
    }

    /// Current retransmission timeout (with any backoff applied).
    pub fn rto(&self) -> Nanos {
        (self.rto << self.backoff_shift).clamp(self.min_rto, self.max_rto)
    }

    /// Smoothed RTT, if any sample has been taken.
    pub fn srtt(&self) -> Option<Nanos> {
        self.srtt
    }

    /// Feeds one RTT sample from a segment that was *not* retransmitted
    /// (Karn's rule: callers must not sample retransmitted data).
    pub fn sample(&mut self, rtt: Nanos) {
        match self.srtt {
            None => {
                self.srtt = Some(rtt);
                self.rttvar = rtt / 2;
            }
            Some(srtt) => {
                let err = srtt.abs_diff(rtt);
                // rttvar = 3/4 rttvar + 1/4 |err|; srtt = 7/8 srtt + 1/8 rtt
                self.rttvar = (3 * self.rttvar + err) / 4;
                self.srtt = Some((7 * srtt + rtt) / 8);
            }
        }
        let srtt = self.srtt.expect("just set");
        self.rto = (srtt + 4 * self.rttvar.max(MILLIS)).clamp(self.min_rto, self.max_rto);
        self.backoff_shift = 0;
    }

    /// Doubles the RTO after a retransmission timeout.
    pub fn backoff(&mut self) {
        self.backoff_shift = (self.backoff_shift + 1).min(10);
    }
}

impl Default for RttEstimator {
    fn default() -> Self {
        RttEstimator::new(200 * MILLIS, 60_000 * MILLIS)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_sample_initializes() {
        let mut e = RttEstimator::default();
        e.sample(100 * MILLIS);
        assert_eq!(e.srtt(), Some(100 * MILLIS));
        assert!(e.rto() >= 200 * MILLIS);
    }

    #[test]
    fn smoothing_converges_toward_stable_rtt() {
        let mut e = RttEstimator::default();
        for _ in 0..50 {
            e.sample(80 * MILLIS);
        }
        let srtt = e.srtt().unwrap();
        assert!((79 * MILLIS..81 * MILLIS).contains(&srtt), "srtt={srtt}");
    }

    #[test]
    fn variance_raises_rto() {
        let mut stable = RttEstimator::new(1, u64::MAX);
        let mut jittery = RttEstimator::new(1, u64::MAX);
        for i in 0..50u64 {
            stable.sample(100 * MILLIS);
            jittery.sample(if i % 2 == 0 { 40 } else { 160 } * MILLIS);
        }
        assert!(
            jittery.rto() > stable.rto(),
            "jitter must widen RTO: {} vs {}",
            jittery.rto(),
            stable.rto()
        );
    }

    #[test]
    fn backoff_doubles_and_sample_resets() {
        let mut e = RttEstimator::default();
        e.sample(100 * MILLIS);
        let base = e.rto();
        e.backoff();
        assert_eq!(e.rto(), (base * 2).min(60_000 * MILLIS));
        e.backoff();
        assert_eq!(e.rto(), (base * 4).min(60_000 * MILLIS));
        e.sample(100 * MILLIS);
        assert!(e.rto() <= base * 2, "sample clears backoff");
    }

    #[test]
    fn rto_respects_clamp() {
        let mut e = RttEstimator::new(300 * MILLIS, 400 * MILLIS);
        e.sample(MILLIS);
        assert_eq!(e.rto(), 300 * MILLIS);
        for _ in 0..20 {
            e.backoff();
        }
        assert_eq!(e.rto(), 400 * MILLIS);
    }
}
