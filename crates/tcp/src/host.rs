//! The per-host TCP engine: demultiplexing, the `worker_tcp_input` and
//! `worker_tcp_timer` event loops, and the socket interface.
//!
//! This is the glue the paper describes in §4.8: the generic TCP state
//! machine ([`Tcb`]) is plugged into the event-driven system as two monadic
//! threads — one draining the inbound packet queue, one driving timers —
//! and a library of socket operations that park/resume application threads
//! on TCB state changes. [`TcpHost`] implements
//! [`NetStack`] — so a server switches from
//! kernel sockets to this stack by changing one line.

use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};
use std::sync::{Arc, Weak};

use bytes::Bytes;
use eveth_core::engine::{spawn_thread, RuntimeCtx};
use eveth_core::net::{queue_accept_evt, Conn, Endpoint, HostId, Listener, NetError, NetStack};
use eveth_core::reactor::{AcceptQueue, Fd, Interest, Pollable, Waiter};
use eveth_core::sync::Chan;
use eveth_core::syscall::{sys_epoll_wait, sys_nbio, sys_sleep, sys_time};
use eveth_core::time::Nanos;
use eveth_core::{loop_m, Loop, ThreadM};
use parking_lot::Mutex;

use crate::segment::Segment;
use crate::tcb::{State, Tcb, TcpConfig};
use crate::transport::SegmentTransport;

/// Demux key: local port + remote endpoint.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
struct ConnKey {
    local_port: u16,
    peer: Endpoint,
}

enum Input {
    Seg(HostId, Segment),
    Stop,
}

/// Counters for one TCP host.
#[derive(Debug, Default)]
pub struct TcpStats {
    /// Segments handed to the transport.
    pub segs_sent: AtomicU64,
    /// Segments received from the transport.
    pub segs_received: AtomicU64,
    /// Connections actively opened.
    pub conns_opened: AtomicU64,
    /// Connections accepted from listeners.
    pub conns_accepted: AtomicU64,
    /// RSTs emitted for unmatched segments.
    pub resets_sent: AtomicU64,
}

struct ListenerInner {
    port: u16,
    queue: Arc<AcceptQueue<Arc<TcpConn>>>,
}

/// One host's application-level TCP stack.
///
/// Create with [`TcpHost::start`]; it spawns its two event-loop threads on
/// the supplied runtime context and serves sockets until
/// [`TcpHost::shutdown`].
pub struct TcpHost {
    self_weak: Weak<TcpHost>,
    host: HostId,
    cfg: TcpConfig,
    transport: Arc<dyn SegmentTransport>,
    conns: Mutex<HashMap<ConnKey, Arc<Mutex<Tcb>>>>,
    listeners: Mutex<HashMap<u16, Arc<ListenerInner>>>,
    passive_parents: Mutex<HashMap<ConnKey, u16>>,
    rx: Chan<Input>,
    stopped: AtomicBool,
    next_ephemeral: AtomicU32,
    next_iss: AtomicU32,
    stats: TcpStats,
}

impl TcpHost {
    /// Starts a TCP host: registers nothing with the transport (callers
    /// wire delivery to [`TcpHost::inject`]) and spawns the
    /// `worker_tcp_input` / `worker_tcp_timer` threads on `ctx`.
    pub fn start(
        ctx: Arc<dyn RuntimeCtx>,
        host: HostId,
        transport: Arc<dyn SegmentTransport>,
        cfg: TcpConfig,
    ) -> Arc<Self> {
        let this = Arc::new_cyclic(|weak| TcpHost {
            self_weak: weak.clone(),
            host,
            cfg,
            transport,
            conns: Mutex::new(HashMap::new()),
            listeners: Mutex::new(HashMap::new()),
            passive_parents: Mutex::new(HashMap::new()),
            rx: Chan::new(),
            stopped: AtomicBool::new(false),
            next_ephemeral: AtomicU32::new(0),
            next_iss: AtomicU32::new(0x1d37_5a11),
            stats: TcpStats::default(),
        });
        spawn_thread(&ctx, worker_tcp_input(Arc::clone(&this)));
        spawn_thread(&ctx, worker_tcp_timer(Arc::clone(&this)));
        this
    }

    /// This host's network identity.
    pub fn host_id(&self) -> HostId {
        self.host
    }

    /// Counters.
    pub fn stats(&self) -> &TcpStats {
        &self.stats
    }

    /// Live connections in the demux table.
    pub fn conn_count(&self) -> usize {
        self.conns.lock().len()
    }

    /// Prints every connection's state — a debugging aid for stuck
    /// exchanges.
    pub fn debug_dump(&self) {
        for (key, tcb) in self.conns.lock().iter() {
            println!("  {} {:?} -> {:?}", self.host, key, &*tcb.lock());
        }
    }

    /// Delivers an inbound segment (called by transports).
    pub fn inject(&self, src: HostId, seg: Segment) {
        if !self.stopped.load(Ordering::SeqCst) {
            self.rx.push_now(Input::Seg(src, seg));
        }
    }

    /// Stops both event loops; existing sockets error out over time.
    pub fn shutdown(&self) {
        self.stopped.store(true, Ordering::SeqCst);
        self.rx.push_now(Input::Stop);
    }

    fn arc(&self) -> Arc<TcpHost> {
        self.self_weak.upgrade().expect("host alive")
    }

    fn ephemeral(&self) -> u16 {
        40_000 + (self.next_ephemeral.fetch_add(1, Ordering::Relaxed) % 25_000) as u16
    }

    fn fresh_iss(&self) -> u32 {
        self.next_iss
            .fetch_add(0x0001_f3d7, Ordering::Relaxed)
            .wrapping_mul(2_654_435_761)
    }

    fn send_segs(&self, peer_host: HostId, segs: Vec<Segment>) {
        for seg in segs {
            self.stats.segs_sent.fetch_add(1, Ordering::Relaxed);
            self.transport.send(self.host, peer_host, seg);
        }
    }

    fn process_segment(&self, src: HostId, seg: Segment, now: Nanos) {
        self.stats.segs_received.fetch_add(1, Ordering::Relaxed);
        let key = ConnKey {
            local_port: seg.dst_port,
            peer: Endpoint::new(src, seg.src_port),
        };
        let existing = self.conns.lock().get(&key).cloned();
        if let Some(tcb_arc) = existing {
            let (out, became_established) = {
                let mut tcb = tcb_arc.lock();
                tcb.on_segment(seg, now)
            };
            self.send_segs(src, out);
            if became_established {
                self.promote_passive(&key, &tcb_arc);
            }
            self.gc_if_closed(&key, &tcb_arc);
            return;
        }
        // No connection: maybe a SYN for a listener.
        if seg.flags.syn && !seg.flags.ack {
            let listener = self.listeners.lock().get(&seg.dst_port).cloned();
            if let Some(listener) = listener {
                if !listener.queue.is_closed() {
                    let local = Endpoint::new(self.host, seg.dst_port);
                    let tcb = Tcb::new_passive(
                        self.cfg.clone(),
                        local,
                        key.peer,
                        self.fresh_iss(),
                        &seg,
                        now,
                    );
                    let syn_ack = tcb.syn_ack_segment();
                    self.conns.lock().insert(key, Arc::new(Mutex::new(tcb)));
                    self.passive_parents.lock().insert(key, seg.dst_port);
                    self.send_segs(src, vec![syn_ack]);
                    return;
                }
            }
        }
        // Otherwise: refuse with RST (unless it *is* a RST).
        if !seg.flags.rst {
            self.stats.resets_sent.fetch_add(1, Ordering::Relaxed);
            let rst = Segment {
                src_port: seg.dst_port,
                dst_port: seg.src_port,
                seq: if seg.flags.ack { seg.ack } else { 0 },
                ack: seg.seq_end(),
                flags: crate::segment::Flags {
                    rst: true,
                    ack: true,
                    ..Default::default()
                },
                wnd: 0,
                payload: Bytes::new(),
            };
            self.send_segs(src, vec![rst]);
        }
    }

    fn promote_passive(&self, key: &ConnKey, tcb_arc: &Arc<Mutex<Tcb>>) {
        let Some(port) = self.passive_parents.lock().remove(key) else {
            return; // active open; connector was woken by the TCB itself
        };
        let listener = self.listeners.lock().get(&port).cloned();
        let pushed = match listener {
            Some(listener) => listener
                .queue
                .push(TcpConn::attach(self.arc(), *key, Arc::clone(tcb_arc)))
                .is_ok(),
            None => false,
        };
        if pushed {
            self.stats.conns_accepted.fetch_add(1, Ordering::Relaxed);
        } else {
            // Listener vanished or shut down: abort the orphan.
            let rst = tcb_arc.lock().app_abort();
            self.send_segs(key.peer.host, vec![rst]);
            self.conns.lock().remove(key);
        }
    }

    fn gc_if_closed(&self, key: &ConnKey, tcb_arc: &Arc<Mutex<Tcb>>) {
        if tcb_arc.lock().state() == State::Closed {
            self.conns.lock().remove(key);
            self.passive_parents.lock().remove(key);
        }
    }

    fn process_ticks(&self, now: Nanos) {
        let mut conns: Vec<(ConnKey, Arc<Mutex<Tcb>>)> = self
            .conns
            .lock()
            .iter()
            .map(|(k, v)| (*k, Arc::clone(v)))
            .collect();
        // Hash order varies between processes; when several connections
        // retransmit on the same tick, segment emission order must not.
        conns.sort_unstable_by_key(|(k, _)| *k);
        for (key, tcb_arc) in conns {
            let (out, peer_host) = {
                let mut tcb = tcb_arc.lock();
                (tcb.on_tick(now), tcb.peer().host)
            };
            self.send_segs(peer_host, out);
            self.gc_if_closed(&key, &tcb_arc);
        }
    }
}

impl fmt::Debug for TcpHost {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "TcpHost({}, conns={}, listeners={})",
            self.host,
            self.conn_count(),
            self.listeners.lock().len()
        )
    }
}

fn worker_tcp_input(host: Arc<TcpHost>) -> ThreadM<()> {
    loop_m((), move |()| {
        let h = Arc::clone(&host);
        host.rx.read().bind(move |input| match input {
            Input::Stop => ThreadM::pure(Loop::Break(())),
            Input::Seg(src, seg) => sys_time().bind(move |now| {
                sys_nbio(move || h.process_segment(src, seg, now)).map(|_| Loop::Continue(()))
            }),
        })
    })
}

fn worker_tcp_timer(host: Arc<TcpHost>) -> ThreadM<()> {
    let tick = host.cfg.tick;
    loop_m((), move |()| {
        let h = Arc::clone(&host);
        sys_sleep(tick).bind(move |_| {
            let h2 = Arc::clone(&h);
            sys_time().bind(move |now| {
                sys_nbio(move || {
                    if h2.stopped.load(Ordering::SeqCst) {
                        return Loop::Break(());
                    }
                    h2.process_ticks(now);
                    Loop::Continue(())
                })
            })
        })
    })
}

// ---------------------------------------------------------------------------
// Socket objects.
// ---------------------------------------------------------------------------

/// The pollable device behind a [`TcpConn`]'s descriptor: readiness is
/// answered by the TCB itself, under its own lock (so the check-then-park
/// of `register` cannot lose a wakeup to a concurrent segment arrival).
struct TcbSock {
    tcb: Arc<Mutex<Tcb>>,
}

impl Pollable for TcbSock {
    fn register(&self, interest: Interest, waiter: Waiter) {
        let mut t = self.tcb.lock();
        match interest {
            Interest::Read => t.register_reader(waiter),
            Interest::Write => t.register_writer(waiter),
        }
    }
}

/// The pollable device behind an in-flight active open: per the
/// non-blocking `connect` convention the socket becomes writable when the
/// handshake resolves, so the connector waits on `Write` readiness of
/// this gate rather than parking.
struct ConnectGate {
    tcb: Arc<Mutex<Tcb>>,
}

impl Pollable for ConnectGate {
    fn register(&self, _interest: Interest, waiter: Waiter) {
        self.tcb.lock().register_connector(waiter);
    }
}

/// A TCP connection exposed through the generic [`Conn`] interface.
pub struct TcpConn {
    host: Arc<TcpHost>,
    key: ConnKey,
    tcb: Arc<Mutex<Tcb>>,
    /// Readiness descriptor over the TCB; every blocking socket operation
    /// is a non-blocking attempt + `sys_epoll_wait` on this fd.
    fd: Fd,
}

impl TcpConn {
    fn attach(host: Arc<TcpHost>, key: ConnKey, tcb: Arc<Mutex<Tcb>>) -> Arc<Self> {
        let fd = Fd::new(Arc::new(TcbSock {
            tcb: Arc::clone(&tcb),
        }));
        Arc::new(TcpConn { host, key, tcb, fd })
    }

    /// Retransmission count (for tests and the loss benchmarks).
    pub fn retransmits(&self) -> u64 {
        self.tcb.lock().retransmits()
    }

    /// Current congestion window in bytes.
    pub fn cwnd(&self) -> u32 {
        self.tcb.lock().cwnd()
    }
}

impl Conn for TcpConn {
    fn readiness_fd(&self) -> Option<Fd> {
        Some(self.fd.clone())
    }

    fn recv(&self, max: usize) -> ThreadM<Result<Bytes, NetError>> {
        let tcb = Arc::clone(&self.tcb);
        let host = Arc::clone(&self.host);
        let fd = self.fd.clone();
        let peer = self.key.peer.host;
        loop_m((), move |()| {
            let try_tcb = Arc::clone(&tcb);
            let fd = fd.clone();
            let h = Arc::clone(&host);
            sys_nbio(move || {
                let mut t = try_tcb.lock();
                match t.app_read(max) {
                    Err(e) => Some(Err(e)),
                    Ok((Some(data), reopened)) => {
                        if reopened {
                            let ack = t.ack_segment();
                            drop(t);
                            h.send_segs(peer, vec![ack]);
                        }
                        Some(Ok(data))
                    }
                    Ok((None, _)) => None,
                }
            })
            .bind(move |res| match res {
                Some(r) => ThreadM::pure(Loop::Break(r)),
                None => sys_epoll_wait(&fd, Interest::Read).map(|_| Loop::Continue(())),
            })
        })
    }

    fn send(&self, data: Bytes) -> ThreadM<Result<usize, NetError>> {
        if data.is_empty() {
            return ThreadM::pure(Ok(0));
        }
        let tcb = Arc::clone(&self.tcb);
        let host = Arc::clone(&self.host);
        let fd = self.fd.clone();
        let peer = self.key.peer.host;
        loop_m(data, move |data| {
            let try_tcb = Arc::clone(&tcb);
            let fd = fd.clone();
            let h = Arc::clone(&host);
            let attempt = data.clone();
            sys_time()
                .bind(move |now| {
                    sys_nbio(move || {
                        let mut t = try_tcb.lock();
                        match t.app_write(&attempt) {
                            Err(e) => Some(Err(e)),
                            Ok(0) => None,
                            Ok(n) => {
                                let out = t.output(now);
                                drop(t);
                                h.send_segs(peer, out);
                                Some(Ok(n))
                            }
                        }
                    })
                })
                .bind(move |res| match res {
                    Some(r) => ThreadM::pure(Loop::Break(r)),
                    None => sys_epoll_wait(&fd, Interest::Write).map(move |_| Loop::Continue(data)),
                })
        })
    }

    fn sendv(&self, bufs: Vec<Bytes>) -> ThreadM<Result<usize, NetError>> {
        if bufs.iter().all(|b| b.is_empty()) {
            return ThreadM::pure(Ok(0));
        }
        let tcb = Arc::clone(&self.tcb);
        let host = Arc::clone(&self.host);
        let fd = self.fd.clone();
        let peer = self.key.peer.host;
        loop_m(bufs, move |bufs| {
            let try_tcb = Arc::clone(&tcb);
            let fd = fd.clone();
            let h = Arc::clone(&host);
            let attempt = bufs.clone();
            sys_time()
                .bind(move |now| {
                    sys_nbio(move || {
                        // One locked pass: buffer from every segment into
                        // the send queue, then a single output flush for
                        // the whole batch.
                        let mut t = try_tcb.lock();
                        let mut total = 0;
                        for b in &attempt {
                            if b.is_empty() {
                                continue;
                            }
                            match t.app_write(b) {
                                Err(e) => {
                                    if total == 0 {
                                        return Some(Err(e));
                                    }
                                    // Partial progress wins; the error
                                    // resurfaces on the next send.
                                    break;
                                }
                                Ok(0) => break,
                                Ok(n) => {
                                    total += n;
                                    if n < b.len() {
                                        break;
                                    }
                                }
                            }
                        }
                        if total == 0 {
                            return None;
                        }
                        let out = t.output(now);
                        drop(t);
                        h.send_segs(peer, out);
                        Some(Ok(total))
                    })
                })
                .bind(move |res| match res {
                    Some(r) => ThreadM::pure(Loop::Break(r)),
                    None => sys_epoll_wait(&fd, Interest::Write).map(move |_| Loop::Continue(bufs)),
                })
        })
    }

    fn close(&self) -> ThreadM<()> {
        let tcb = Arc::clone(&self.tcb);
        let host = Arc::clone(&self.host);
        let peer = self.key.peer.host;
        sys_time().bind(move |now| {
            sys_nbio(move || {
                let mut t = tcb.lock();
                t.app_close();
                let out = t.output(now);
                drop(t);
                host.send_segs(peer, out);
            })
        })
    }

    fn peer(&self) -> Endpoint {
        self.tcb.lock().peer()
    }

    fn local(&self) -> Endpoint {
        self.tcb.lock().local()
    }
}

impl fmt::Debug for TcpConn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "TcpConn({:?})", &*self.tcb.lock())
    }
}

/// A listening TCP socket.
pub struct TcpListener {
    host: Arc<TcpHost>,
    inner: Arc<ListenerInner>,
}

/// Accept is the composable backlog event ([`queue_accept_evt`]): ready
/// when the backlog holds an established connection or the listener was
/// shut down ([`AcceptQueue`] synchronizes push/close/register on one
/// lock, so no wakeup is lost to a concurrent promotion *or* shutdown).
/// The blocking `accept` is the trait-provided `sync(accept_evt())`.
impl Listener for TcpListener {
    fn accept_evt(&self) -> eveth_core::event::Event<Result<Arc<dyn Conn>, NetError>> {
        queue_accept_evt(Arc::clone(&self.inner.queue), |c| c as Arc<dyn Conn>)
    }

    fn local(&self) -> Endpoint {
        Endpoint::new(self.host.host, self.inner.port)
    }

    fn shutdown(&self) {
        self.inner.queue.close();
        self.host.listeners.lock().remove(&self.inner.port);
    }
}

impl fmt::Debug for TcpListener {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "TcpListener(port={})", self.inner.port)
    }
}

impl NetStack for TcpHost {
    fn listen(&self, port: u16) -> ThreadM<Result<Arc<dyn Listener>, NetError>> {
        let host = self.arc();
        sys_nbio(move || {
            let mut listeners = host.listeners.lock();
            if listeners.contains_key(&port) {
                return Err(NetError::AddrInUse);
            }
            let inner = Arc::new(ListenerInner {
                port,
                queue: Arc::new(AcceptQueue::new()),
            });
            listeners.insert(port, Arc::clone(&inner));
            drop(listeners);
            Ok(Arc::new(TcpListener {
                host: Arc::clone(&host),
                inner,
            }) as Arc<dyn Listener>)
        })
    }

    fn connect(&self, remote: Endpoint) -> ThreadM<Result<Arc<dyn Conn>, NetError>> {
        let host = self.arc();
        sys_time().bind(move |now| {
            // Create the TCB, fire the SYN, then park until the handshake
            // resolves (the timer thread retries lost SYNs).
            let setup_host = Arc::clone(&host);
            sys_nbio(move || {
                let local = Endpoint::new(setup_host.host, setup_host.ephemeral());
                let key = ConnKey {
                    local_port: local.port,
                    peer: remote,
                };
                let tcb = Tcb::new_active(
                    setup_host.cfg.clone(),
                    local,
                    remote,
                    setup_host.fresh_iss(),
                    now,
                );
                let syn = tcb.syn_segment();
                let tcb_arc = Arc::new(Mutex::new(tcb));
                setup_host.conns.lock().insert(key, Arc::clone(&tcb_arc));
                setup_host
                    .stats
                    .conns_opened
                    .fetch_add(1, Ordering::Relaxed);
                setup_host.send_segs(remote.host, vec![syn]);
                (key, tcb_arc)
            })
            .bind(move |(key, tcb_arc)| {
                let host2 = Arc::clone(&host);
                // The handshake wait is Write readiness on the connect
                // gate (non-blocking `connect` convention).
                let gate = Fd::new(Arc::new(ConnectGate {
                    tcb: Arc::clone(&tcb_arc),
                }));
                loop_m((), move |()| {
                    let check_tcb = Arc::clone(&tcb_arc);
                    let conn_tcb = Arc::clone(&tcb_arc);
                    let gate = gate.clone();
                    let h = Arc::clone(&host2);
                    sys_nbio(move || {
                        let t = check_tcb.lock();
                        match t.state() {
                            State::Established => Some(Ok(())),
                            State::Closed => {
                                Some(Err(t.error().unwrap_or(NetError::ConnectionRefused)))
                            }
                            _ => None,
                        }
                    })
                    .bind(move |res| match res {
                        Some(Ok(())) => {
                            let conn = TcpConn::attach(Arc::clone(&h), key, conn_tcb);
                            ThreadM::pure(Loop::Break(Ok(conn as Arc<dyn Conn>)))
                        }
                        Some(Err(e)) => {
                            h.conns.lock().remove(&key);
                            ThreadM::pure(Loop::Break(Err(e)))
                        }
                        None => sys_epoll_wait(&gate, Interest::Write).map(|_| Loop::Continue(())),
                    })
                })
            })
        })
    }

    fn host(&self) -> HostId {
        self.host
    }
}
