//! The per-connection TCP control block and state machine.
//!
//! A pure(ish) transition system in the spirit of the HOL-derived stack the
//! paper describes (§4.8): `on_segment` and `on_tick` consume events and
//! produce reply segments; all timing comes in as arguments, so the same
//! machine runs under real and virtual clocks and can be unit-tested by
//! feeding it segments directly — no sockets, threads or clocks required.

use std::collections::{BTreeMap, VecDeque};
use std::fmt;

use bytes::Bytes;
use eveth_core::net::{Endpoint, NetError};
use eveth_core::reactor::Waiter;
use eveth_core::time::{Nanos, MILLIS};

use crate::congestion::{CcAction, Reno};
use crate::rtt::RttEstimator;
use crate::segment::{Flags, Segment};
use crate::seq::{seq_diff, seq_ge, seq_gt, seq_le, seq_lt};

/// Tunables for one TCP stack instance.
#[derive(Debug, Clone)]
pub struct TcpConfig {
    /// Maximum segment size (payload bytes per segment).
    pub mss: usize,
    /// Send-buffer capacity (unsent + unacknowledged bytes).
    pub send_buf: usize,
    /// Receive window (assembled + out-of-order bytes).
    pub recv_window: usize,
    /// Retransmission timeout clamp, lower bound.
    pub min_rto: Nanos,
    /// Retransmission timeout clamp, upper bound.
    pub max_rto: Nanos,
    /// RTO before the first RTT sample (RFC 6298's conservative start).
    /// A fresh connection's first lost segment — a SYN into a partition,
    /// typically — waits this long before retransmitting, so LAN-class
    /// deployments tune it far below the WAN-safe default.
    pub initial_rto: Nanos,
    /// Period of the `worker_tcp_timer` loop.
    pub tick: Nanos,
    /// How long a closed connection lingers in TIME_WAIT.
    pub time_wait: Nanos,
    /// Initial congestion window, in MSS units.
    pub initial_cwnd_mss: u32,
    /// Connection attempts give up after this many SYN retransmissions.
    pub max_syn_retries: u32,
}

impl Default for TcpConfig {
    fn default() -> Self {
        TcpConfig {
            mss: 1460,
            send_buf: 64 * 1024,
            recv_window: 64 * 1024,
            min_rto: 200 * MILLIS,
            max_rto: 60_000 * MILLIS,
            initial_rto: 200 * MILLIS,
            tick: 10 * MILLIS,
            time_wait: 1_000 * MILLIS,
            initial_cwnd_mss: 2,
            max_syn_retries: 6,
        }
    }
}

/// TCP connection states (RFC 793 §3.2; LISTEN lives at the host level).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum State {
    /// Active open: SYN sent, awaiting SYN+ACK.
    SynSent,
    /// Passive open: SYN received, SYN+ACK sent, awaiting ACK.
    SynRcvd,
    /// Data transfer.
    Established,
    /// We closed first; FIN sent, awaiting its ACK.
    FinWait1,
    /// Our FIN acknowledged; awaiting the peer's FIN.
    FinWait2,
    /// Peer closed first; we may still send.
    CloseWait,
    /// Simultaneous close: FIN exchanged, awaiting our FIN's ACK.
    Closing,
    /// Passive close finished sending; awaiting final ACK.
    LastAck,
    /// Lingering to absorb stray segments.
    TimeWait,
    /// Gone.
    Closed,
}

/// The TCP control block: all state for one connection.
pub struct Tcb {
    cfg: TcpConfig,
    local: Endpoint,
    peer: Endpoint,
    state: State,

    // Send side.
    iss: u32,
    snd_una: u32,
    snd_nxt: u32,
    /// Highest sequence ever sent; survives go-back-N rollbacks so ACKs for
    /// pre-rollback data are still acceptable.
    snd_max: u32,
    snd_wnd: u32,
    snd_buf: VecDeque<u8>,
    fin_queued: bool,
    fin_seq: Option<u32>,
    cc: Reno,
    rtt: RttEstimator,
    rto_deadline: Option<Nanos>,
    rtt_sample: Option<(u32, Nanos)>,
    syn_retries: u32,

    // Receive side.
    irs: u32,
    rcv_nxt: u32,
    readable: VecDeque<u8>,
    ooo: BTreeMap<u32, Bytes>,
    peer_fin: Option<u32>,
    fin_received: bool,

    // Lifecycle.
    time_wait_deadline: Option<Nanos>,
    error: Option<NetError>,
    retransmit_count: u64,

    // Readiness registrations from blocked application threads
    // (`sys_epoll_wait` waiters, routed through the runtime's event port
    // on wake).
    recv_waiters: Vec<Waiter>,
    send_waiters: Vec<Waiter>,
    conn_waiters: Vec<Waiter>,
}

impl Tcb {
    /// Creates a TCB performing an active open. The caller must transmit
    /// [`Tcb::syn_segment`] and arm the retransmission timer via the result
    /// of [`Tcb::output`].
    pub fn new_active(
        cfg: TcpConfig,
        local: Endpoint,
        peer: Endpoint,
        iss: u32,
        now: Nanos,
    ) -> Self {
        let mut tcb = Self::new_raw(cfg, local, peer, iss, State::SynSent);
        tcb.snd_nxt = iss.wrapping_add(1); // SYN occupies one position
        tcb.snd_max = tcb.snd_nxt;
        tcb.rto_deadline = Some(now + tcb.rtt.rto());
        tcb
    }

    /// Creates a TCB for a passive open in response to `syn`. The caller
    /// must transmit [`Tcb::syn_ack_segment`].
    pub fn new_passive(
        cfg: TcpConfig,
        local: Endpoint,
        peer: Endpoint,
        iss: u32,
        syn: &Segment,
        now: Nanos,
    ) -> Self {
        let mut tcb = Self::new_raw(cfg, local, peer, iss, State::SynRcvd);
        tcb.snd_nxt = iss.wrapping_add(1);
        tcb.snd_max = tcb.snd_nxt;
        tcb.irs = syn.seq;
        tcb.rcv_nxt = syn.seq.wrapping_add(1);
        tcb.snd_wnd = syn.wnd;
        tcb.rto_deadline = Some(now + tcb.rtt.rto());
        tcb
    }

    fn new_raw(cfg: TcpConfig, local: Endpoint, peer: Endpoint, iss: u32, state: State) -> Self {
        let cc = Reno::new(cfg.mss as u32, cfg.initial_cwnd_mss);
        let rtt = RttEstimator::with_initial(cfg.min_rto, cfg.max_rto, cfg.initial_rto);
        Tcb {
            cfg,
            local,
            peer,
            state,
            iss,
            snd_una: iss,
            snd_nxt: iss,
            snd_max: iss,
            snd_wnd: 0,
            snd_buf: VecDeque::new(),
            fin_queued: false,
            fin_seq: None,
            cc,
            rtt,
            rto_deadline: None,
            rtt_sample: None,
            syn_retries: 0,
            irs: 0,
            rcv_nxt: 0,
            readable: VecDeque::new(),
            ooo: BTreeMap::new(),
            peer_fin: None,
            fin_received: false,
            time_wait_deadline: None,
            error: None,
            retransmit_count: 0,
            recv_waiters: Vec::new(),
            send_waiters: Vec::new(),
            conn_waiters: Vec::new(),
        }
    }

    // -- Accessors ----------------------------------------------------------

    /// Current state.
    pub fn state(&self) -> State {
        self.state
    }

    /// The local endpoint.
    pub fn local(&self) -> Endpoint {
        self.local
    }

    /// The remote endpoint.
    pub fn peer(&self) -> Endpoint {
        self.peer
    }

    /// The fatal error that closed this connection, if any.
    pub fn error(&self) -> Option<NetError> {
        self.error.clone()
    }

    /// Retransmitted segments so far.
    pub fn retransmits(&self) -> u64 {
        self.retransmit_count
    }

    /// Current congestion window in bytes (exposed for tests/benches).
    pub fn cwnd(&self) -> u32 {
        self.cc.cwnd()
    }

    /// Bytes queued in the send buffer (sent-unacked + unsent).
    pub fn send_buffered(&self) -> usize {
        self.snd_buf.len()
    }

    /// Bytes assembled and readable by the application.
    pub fn recv_buffered(&self) -> usize {
        self.readable.len()
    }

    fn in_flight(&self) -> u32 {
        seq_diff(self.snd_nxt, self.snd_una)
    }

    fn recv_window(&self) -> u32 {
        let used = self.readable.len() + self.ooo.values().map(|b| b.len()).sum::<usize>();
        self.cfg.recv_window.saturating_sub(used) as u32
    }

    fn base_flags(&self) -> Flags {
        Flags::ack()
    }

    fn make_seg(&self, seq: u32, flags: Flags, payload: Bytes) -> Segment {
        Segment {
            src_port: self.local.port,
            dst_port: self.peer.port,
            seq,
            ack: self.rcv_nxt,
            flags,
            wnd: self.recv_window(),
            payload,
        }
    }

    /// A bare ACK advertising the current receive window — sent after an
    /// application read reopens a closed window.
    pub fn ack_segment(&self) -> Segment {
        self.make_seg(self.snd_nxt, Flags::ack(), Bytes::new())
    }

    /// The initial SYN (active open).
    pub fn syn_segment(&self) -> Segment {
        Segment {
            src_port: self.local.port,
            dst_port: self.peer.port,
            seq: self.iss,
            ack: 0,
            flags: Flags::syn(),
            wnd: self.recv_window(),
            payload: Bytes::new(),
        }
    }

    /// The SYN+ACK (passive open).
    pub fn syn_ack_segment(&self) -> Segment {
        self.make_seg(self.iss, Flags::syn_ack(), Bytes::new())
    }

    // -- Wakeups -------------------------------------------------------------

    fn wake(list: &mut Vec<Waiter>) {
        for w in list.drain(..) {
            w.wake();
        }
    }

    fn wake_all(&mut self) {
        Self::wake(&mut self.recv_waiters);
        Self::wake(&mut self.send_waiters);
        Self::wake(&mut self.conn_waiters);
    }

    /// Registers a read-readiness waiter; wakes immediately if
    /// data/EOF/error is already available (lost-wakeup-free: callers hold
    /// the TCB lock).
    pub fn register_reader(&mut self, w: Waiter) {
        if self.read_ready() {
            w.wake();
        } else {
            self.recv_waiters.push(w);
        }
    }

    /// Registers a write-readiness waiter.
    pub fn register_writer(&mut self, w: Waiter) {
        if self.write_ready() {
            w.wake();
        } else {
            self.send_waiters.push(w);
        }
    }

    /// Registers a waiter for handshake completion — the non-blocking
    /// `connect` convention: the socket signals writable once the
    /// three-way handshake resolves (either way).
    pub fn register_connector(&mut self, w: Waiter) {
        if self.state == State::Established || self.error.is_some() || self.state == State::Closed {
            w.wake();
        } else {
            self.conn_waiters.push(w);
        }
    }

    fn read_ready(&self) -> bool {
        !self.readable.is_empty()
            || self.fin_received
            || self.error.is_some()
            || matches!(self.state, State::Closed | State::TimeWait)
    }

    fn write_ready(&self) -> bool {
        self.error.is_some()
            || self.snd_buf.len() < self.cfg.send_buf
            || !matches!(
                self.state,
                State::SynSent | State::SynRcvd | State::Established | State::CloseWait
            )
    }

    // -- Application interface ------------------------------------------------

    /// Queues application data for transmission; returns the bytes accepted
    /// (0 = buffer full, caller should park).
    ///
    /// # Errors
    ///
    /// The connection's fatal error, or [`NetError::Closed`] after the
    /// sending direction was shut down.
    pub fn app_write(&mut self, data: &[u8]) -> Result<usize, NetError> {
        if let Some(e) = &self.error {
            return Err(e.clone());
        }
        if self.fin_queued
            || !matches!(
                self.state,
                State::SynSent | State::SynRcvd | State::Established | State::CloseWait
            )
        {
            return Err(NetError::Closed);
        }
        let room = self.cfg.send_buf.saturating_sub(self.snd_buf.len());
        let n = room.min(data.len());
        self.snd_buf.extend(&data[..n]);
        Ok(n)
    }

    /// Takes up to `max` assembled bytes. `Ok(None)` means no data yet
    /// (park); `Ok(Some(empty))` means end-of-stream. The boolean is true
    /// when this read reopened a zero receive window (caller should send a
    /// window-update ACK).
    ///
    /// # Errors
    ///
    /// The connection's fatal error (reset, timeout).
    #[allow(clippy::type_complexity)]
    pub fn app_read(&mut self, max: usize) -> Result<(Option<Bytes>, bool), NetError> {
        if self.readable.is_empty() {
            if let Some(e) = &self.error {
                return Err(e.clone());
            }
        }
        if !self.readable.is_empty() {
            let was_zero = self.recv_window() == 0;
            let n = max.min(self.readable.len());
            let out: Bytes = self.readable.drain(..n).collect::<Vec<u8>>().into();
            let reopened = was_zero && self.recv_window() > 0;
            return Ok((Some(out), reopened));
        }
        if self.fin_received || matches!(self.state, State::Closed | State::TimeWait) {
            return Ok((Some(Bytes::new()), false)); // EOF
        }
        Ok((None, false))
    }

    /// Application close: no further writes; a FIN is emitted once queued
    /// data drains.
    pub fn app_close(&mut self) {
        self.fin_queued = true;
        Self::wake(&mut self.send_waiters);
    }

    /// Hard abort: emits a RST (returned) and kills the connection.
    pub fn app_abort(&mut self) -> Segment {
        let seg = self.make_seg(self.snd_nxt, Flags::rst(), Bytes::new());
        self.error = Some(NetError::Reset);
        self.state = State::Closed;
        self.wake_all();
        seg
    }

    // -- Transmission ----------------------------------------------------------

    /// Emits everything the windows allow: data segments from `snd_nxt`,
    /// plus the FIN when its turn comes. Arms/disarms the RTO.
    pub fn output(&mut self, now: Nanos) -> Vec<Segment> {
        let mut out = Vec::new();
        if matches!(self.state, State::SynSent | State::SynRcvd) {
            // Handshake segments are (re)sent by connect/accept and on_tick.
            return out;
        }
        let can_send_data = matches!(self.state, State::Established | State::CloseWait);
        if can_send_data {
            let wnd = self.cc.cwnd().min(self.snd_wnd.max(self.cfg.mss as u32)) as usize;
            loop {
                let in_flight = self.in_flight() as usize;
                let unsent_start = in_flight; // snd_buf[0] is at snd_una
                if unsent_start >= self.snd_buf.len() {
                    break;
                }
                let room = wnd.saturating_sub(in_flight);
                let n = self
                    .cfg
                    .mss
                    .min(self.snd_buf.len() - unsent_start)
                    .min(room);
                if n == 0 {
                    break;
                }
                let chunk: Bytes = self
                    .snd_buf
                    .iter()
                    .skip(unsent_start)
                    .take(n)
                    .copied()
                    .collect::<Vec<u8>>()
                    .into();
                let mut flags = self.base_flags();
                flags.psh = true;
                let seg = self.make_seg(self.snd_nxt, flags, chunk);
                self.snd_nxt = self.snd_nxt.wrapping_add(n as u32);
                if seq_gt(self.snd_nxt, self.snd_max) {
                    self.snd_max = self.snd_nxt;
                }
                if self.rtt_sample.is_none() {
                    self.rtt_sample = Some((self.snd_nxt, now));
                }
                out.push(seg);
            }
        }
        // FIN, once all data is out.
        let may_emit_fin = matches!(
            self.state,
            State::Established
                | State::CloseWait
                | State::FinWait1
                | State::Closing
                | State::LastAck
        );
        if self.fin_queued
            && self.fin_seq.is_none()
            && may_emit_fin
            && self.in_flight() as usize >= self.snd_buf.len()
        {
            let mut flags = self.base_flags();
            flags.fin = true;
            out.push(self.make_seg(self.snd_nxt, flags, Bytes::new()));
            self.fin_seq = Some(self.snd_nxt);
            self.snd_nxt = self.snd_nxt.wrapping_add(1);
            if seq_gt(self.snd_nxt, self.snd_max) {
                self.snd_max = self.snd_nxt;
            }
            self.state = match self.state {
                State::Established => State::FinWait1,
                State::CloseWait => State::LastAck,
                other => other,
            };
        }
        // RTO management.
        if self.in_flight() > 0 {
            if self.rto_deadline.is_none() {
                self.rto_deadline = Some(now + self.rtt.rto());
            }
        } else {
            self.rto_deadline = None;
        }
        out
    }

    fn retransmit_one(&mut self, now: Nanos) -> Option<Segment> {
        self.rtt_sample = None; // Karn's rule
        self.retransmit_count += 1;
        match self.state {
            State::SynSent => Some(self.syn_segment()),
            State::SynRcvd => Some(self.syn_ack_segment()),
            _ => {
                let in_flight_data = (self.in_flight() as usize).min(self.snd_buf.len());
                if in_flight_data > 0 {
                    let n = self.cfg.mss.min(in_flight_data);
                    let chunk: Bytes = self
                        .snd_buf
                        .iter()
                        .take(n)
                        .copied()
                        .collect::<Vec<u8>>()
                        .into();
                    let mut flags = self.base_flags();
                    flags.psh = true;
                    Some(self.make_seg(self.snd_una, flags, chunk))
                } else if self.fin_seq == Some(self.snd_una) {
                    let mut flags = self.base_flags();
                    flags.fin = true;
                    Some(self.make_seg(self.snd_una, flags, Bytes::new()))
                } else {
                    let _ = now;
                    None
                }
            }
        }
    }

    // -- Timers ---------------------------------------------------------------

    /// Advances timers to `now`; returns segments to (re)transmit.
    pub fn on_tick(&mut self, now: Nanos) -> Vec<Segment> {
        let mut out = Vec::new();
        if let Some(d) = self.time_wait_deadline {
            if now >= d {
                self.state = State::Closed;
                self.time_wait_deadline = None;
                self.wake_all();
            }
        }
        let Some(deadline) = self.rto_deadline else {
            return out;
        };
        if now < deadline {
            return out;
        }
        // Retransmission timeout.
        if matches!(self.state, State::SynSent | State::SynRcvd) {
            self.syn_retries += 1;
            if self.syn_retries > self.cfg.max_syn_retries {
                self.error = Some(NetError::Timeout);
                self.state = State::Closed;
                self.rto_deadline = None;
                self.wake_all();
                return out;
            }
        }
        self.cc.on_timeout(self.in_flight());
        self.rtt.backoff();
        // Go-back-N: rewind the send frontier and let output() resend.
        if !matches!(self.state, State::SynSent | State::SynRcvd) {
            self.snd_nxt = self.snd_una;
            if let Some(f) = self.fin_seq {
                if seq_ge(f, self.snd_una) {
                    self.fin_seq = None; // still in flight: re-emit it
                }
            }
        }
        if let Some(seg) = self.retransmit_one(now) {
            out.push(seg);
        }
        out.extend(self.output(now));
        self.rto_deadline = Some(now + self.rtt.rto());
        out
    }

    // -- Segment arrival --------------------------------------------------------

    /// Processes an arriving segment; returns replies to transmit. The
    /// returned flag is true if the connection just became `Established`
    /// (the host promotes it to its listener's accept queue).
    pub fn on_segment(&mut self, seg: Segment, now: Nanos) -> (Vec<Segment>, bool) {
        let mut became_established = false;
        let mut out = Vec::new();

        if seg.flags.rst {
            if self.state != State::Closed {
                // A RST for an orderly-finished connection is not an error;
                // one answering our SYN means nobody is listening.
                if self.state == State::SynSent {
                    self.error = Some(NetError::ConnectionRefused);
                } else if !matches!(self.state, State::TimeWait) {
                    self.error = Some(NetError::Reset);
                }
                self.state = State::Closed;
                self.wake_all();
            }
            return (out, false);
        }

        match self.state {
            State::Closed => return (out, false),
            State::SynSent => {
                if seg.flags.syn && seg.flags.ack && seg.ack == self.iss.wrapping_add(1) {
                    self.irs = seg.seq;
                    self.rcv_nxt = seg.seq.wrapping_add(1);
                    self.snd_una = seg.ack;
                    self.snd_wnd = seg.wnd;
                    self.state = State::Established;
                    self.rto_deadline = None;
                    became_established = true;
                    Self::wake(&mut self.conn_waiters);
                    Self::wake(&mut self.send_waiters);
                    out.push(self.make_seg(self.snd_nxt, Flags::ack(), Bytes::new()));
                    out.extend(self.output(now));
                }
                return (out, became_established);
            }
            State::SynRcvd => {
                if seg.flags.syn && !seg.flags.ack {
                    // Duplicate SYN: our SYN+ACK was lost.
                    out.push(self.syn_ack_segment());
                    return (out, false);
                }
                if seg.flags.ack && seg.ack == self.iss.wrapping_add(1) {
                    self.snd_una = seg.ack;
                    self.snd_wnd = seg.wnd;
                    self.state = State::Established;
                    self.rto_deadline = None;
                    became_established = true;
                    Self::wake(&mut self.conn_waiters);
                    Self::wake(&mut self.send_waiters);
                    // Fall through: the ACK may carry data.
                } else {
                    return (out, false);
                }
            }
            State::TimeWait => {
                // Re-ACK retransmitted FINs.
                if seg.flags.fin {
                    out.push(self.make_seg(self.snd_nxt, Flags::ack(), Bytes::new()));
                }
                return (out, false);
            }
            _ => {}
        }

        let mut need_ack = false;

        // ---- ACK processing.
        if seg.flags.ack {
            let in_flight_before = self.in_flight();
            if seq_gt(seg.ack, self.snd_una) && seq_le(seg.ack, self.snd_max) {
                if seq_gt(seg.ack, self.snd_nxt) {
                    // The ACK covers data sent before a go-back-N rollback.
                    self.snd_nxt = seg.ack;
                }
                let acked = seq_diff(seg.ack, self.snd_una);
                let fin_acked = self.fin_seq.is_some()
                    && seg.ack == self.fin_seq.expect("checked").wrapping_add(1);
                let data_acked = if fin_acked { acked - 1 } else { acked } as usize;
                let drain = data_acked.min(self.snd_buf.len());
                self.snd_buf.drain(..drain);
                self.snd_una = seg.ack;
                self.cc.on_new_ack(acked, self.snd_una, in_flight_before);
                if let Some((sample_seq, sent_at)) = self.rtt_sample {
                    if seq_ge(seg.ack, sample_seq) {
                        self.rtt.sample(now.saturating_sub(sent_at));
                        self.rtt_sample = None;
                    }
                }
                self.rto_deadline = if self.in_flight() > 0 {
                    Some(now + self.rtt.rto())
                } else {
                    None
                };
                Self::wake(&mut self.send_waiters);
                if fin_acked {
                    self.state = match self.state {
                        State::FinWait1 => State::FinWait2,
                        State::Closing => {
                            self.time_wait_deadline = Some(now + self.cfg.time_wait);
                            State::TimeWait
                        }
                        State::LastAck => {
                            self.wake_all();
                            State::Closed
                        }
                        other => other,
                    };
                }
            } else if seg.ack == self.snd_una
                && self.in_flight() > 0
                && seg.payload.is_empty()
                && !seg.flags.fin
            {
                if let CcAction::FastRetransmit = self.cc.on_dup_ack(self.snd_nxt, in_flight_before)
                {
                    if let Some(rseg) = self.retransmit_one(now) {
                        out.push(rseg);
                    }
                }
            }
            self.snd_wnd = seg.wnd;
        }

        // ---- Payload processing.
        if !seg.payload.is_empty() {
            need_ack = true;
            self.ingest_payload(seg.seq, seg.payload.clone());
        }

        // ---- FIN processing.
        if seg.flags.fin {
            need_ack = true;
            let fin_pos = seg.seq.wrapping_add(seg.payload.len() as u32);
            self.peer_fin = Some(fin_pos);
        }
        self.maybe_consume_fin(now);

        // ---- Replies: data (carrying the ACK) or a bare ACK.
        let data_out = self.output(now);
        let sent_data = !data_out.is_empty();
        out.extend(data_out);
        if need_ack && !sent_data {
            out.push(self.make_seg(self.snd_nxt, Flags::ack(), Bytes::new()));
        }
        (out, became_established)
    }

    fn ingest_payload(&mut self, seq: u32, payload: Bytes) {
        let seg_end = seq.wrapping_add(payload.len() as u32);
        if seq_le(seg_end, self.rcv_nxt) {
            return; // pure duplicate
        }
        if seq_lt(seq, self.rcv_nxt) {
            // Partial overlap: take the new suffix.
            let skip = seq_diff(self.rcv_nxt, seq) as usize;
            self.accept_in_order(payload.slice(skip..));
            return;
        }
        if seq == self.rcv_nxt {
            self.accept_in_order(payload);
            return;
        }
        // Out of order: hold if it fits the window.
        let window_end = self.rcv_nxt.wrapping_add(self.cfg.recv_window as u32);
        if seq_lt(seq, window_end) {
            self.ooo.entry(seq).or_insert(payload);
        }
    }

    fn accept_in_order(&mut self, payload: Bytes) {
        self.readable.extend(payload.iter());
        self.rcv_nxt = self.rcv_nxt.wrapping_add(payload.len() as u32);
        // Drain any now-contiguous out-of-order segments.
        while let Some((&seq, _)) = self.ooo.iter().next() {
            if seq_gt(seq, self.rcv_nxt) {
                break;
            }
            let chunk = self.ooo.remove(&seq).expect("present");
            let end = seq.wrapping_add(chunk.len() as u32);
            if seq_le(end, self.rcv_nxt) {
                continue; // fully duplicate
            }
            let skip = seq_diff(self.rcv_nxt, seq) as usize;
            self.readable.extend(chunk.slice(skip..).iter());
            self.rcv_nxt = end;
        }
        Self::wake(&mut self.recv_waiters);
    }

    fn maybe_consume_fin(&mut self, now: Nanos) {
        let Some(fin_pos) = self.peer_fin else { return };
        if self.fin_received || self.rcv_nxt != fin_pos {
            return;
        }
        self.rcv_nxt = self.rcv_nxt.wrapping_add(1);
        self.fin_received = true;
        Self::wake(&mut self.recv_waiters);
        self.state = match self.state {
            State::Established => State::CloseWait,
            State::FinWait1 => State::Closing,
            State::FinWait2 => {
                self.time_wait_deadline = Some(now + self.cfg.time_wait);
                State::TimeWait
            }
            other => other,
        };
    }
}

impl fmt::Debug for Tcb {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Tcb[{} -> {} {:?} una={} nxt={} rcv={} buf={} readable={}]",
            self.local,
            self.peer,
            self.state,
            self.snd_una,
            self.snd_nxt,
            self.rcv_nxt,
            self.snd_buf.len(),
            self.readable.len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eveth_core::net::HostId;

    fn pair() -> (Tcb, Tcb) {
        pair_with(TcpConfig::default())
    }

    fn pair_with(cfg: TcpConfig) -> (Tcb, Tcb) {
        let a = Endpoint::new(HostId(1), 1000);
        let b = Endpoint::new(HostId(2), 80);
        let mut client = Tcb::new_active(cfg.clone(), a, b, 100, 0);
        let syn = client.syn_segment();
        let mut server = Tcb::new_passive(cfg, b, a, 5000, &syn, 0);
        let syn_ack = server.syn_ack_segment();
        let (acks, est_c) = client.on_segment(syn_ack, 1000);
        assert!(est_c);
        assert_eq!(client.state(), State::Established);
        let mut est_s = false;
        for seg in acks {
            let (_replies, est) = server.on_segment(seg, 2000);
            est_s |= est;
        }
        assert!(est_s);
        assert_eq!(server.state(), State::Established);
        (client, server)
    }

    /// Delivers all of `segs` from one side to the other, returning replies.
    fn deliver(to: &mut Tcb, segs: Vec<Segment>, now: Nanos) -> Vec<Segment> {
        let mut replies = Vec::new();
        for seg in segs {
            let (r, _) = to.on_segment(seg, now);
            replies.extend(r);
        }
        replies
    }

    /// Ping-pongs segments until both sides go silent.
    fn settle(a: &mut Tcb, b: &mut Tcb, first: Vec<Segment>, mut now: Nanos) {
        let mut from_a = first;
        let mut from_b = Vec::new();
        for _ in 0..100 {
            if from_a.is_empty() && from_b.is_empty() {
                return;
            }
            now += 1000;
            from_b = deliver(b, std::mem::take(&mut from_a), now);
            now += 1000;
            from_a = deliver(a, std::mem::take(&mut from_b), now);
        }
        panic!("segment exchange did not settle");
    }

    #[test]
    fn three_way_handshake_establishes_both() {
        let _ = pair();
    }

    #[test]
    fn data_transfer_in_order() {
        let (mut c, mut s) = pair();
        assert_eq!(c.app_write(b"hello tcp").unwrap(), 9);
        let segs = c.output(10_000);
        assert_eq!(segs.len(), 1);
        settle(&mut c, &mut s, segs, 10_000);
        let (data, _) = s.app_read(100).unwrap();
        assert_eq!(&data.unwrap()[..], b"hello tcp");
    }

    #[test]
    fn large_write_fans_out_into_mss_segments() {
        let (mut c, _s) = pair();
        let big = vec![7u8; 10_000];
        assert_eq!(c.app_write(&big).unwrap(), 10_000);
        let segs = c.output(10_000);
        // cwnd = 2 MSS initially: exactly two segments go out.
        assert_eq!(segs.len(), 2);
        assert!(segs.iter().all(|s| s.payload.len() == 1460));
    }

    #[test]
    fn out_of_order_segments_reassemble() {
        let (mut c, mut s) = pair();
        c.app_write(b"aaaabbbb").unwrap();
        let mut segs = {
            // Force two small segments by draining output at mss=4.
            let cfg = TcpConfig {
                mss: 4,
                ..Default::default()
            };
            // Rebuild client with small MSS for this test.
            let _ = cfg;
            c.output(10_000)
        };
        // Only one segment here (8 bytes < MSS); manually split it.
        assert_eq!(segs.len(), 1);
        let seg = segs.remove(0);
        let first = Segment {
            payload: seg.payload.slice(..4),
            ..seg.clone()
        };
        let second = Segment {
            seq: seg.seq.wrapping_add(4),
            payload: seg.payload.slice(4..),
            ..seg.clone()
        };
        // Deliver out of order.
        deliver(&mut s, vec![second], 20_000);
        let (none, _) = s.app_read(64).unwrap();
        assert!(none.is_none(), "gap: nothing readable yet");
        deliver(&mut s, vec![first], 21_000);
        let (data, _) = s.app_read(64).unwrap();
        assert_eq!(&data.unwrap()[..], b"aaaabbbb");
    }

    #[test]
    fn duplicate_delivery_is_idempotent() {
        let (mut c, mut s) = pair();
        c.app_write(b"once").unwrap();
        let segs = c.output(10_000);
        let dup = segs.clone();
        settle(&mut c, &mut s, segs, 10_000);
        deliver(&mut s, dup, 30_000);
        let (data, _) = s.app_read(64).unwrap();
        assert_eq!(&data.unwrap()[..], b"once");
        let (after, _) = s.app_read(64).unwrap();
        assert!(after.is_none(), "duplicate must not re-deliver");
    }

    #[test]
    fn rto_retransmits_lost_segment() {
        let (mut c, mut s) = pair();
        c.app_write(b"lost").unwrap();
        let segs = c.output(10_000);
        assert_eq!(segs.len(), 1);
        drop(segs); // the network ate it
                    // Fire the retransmission timeout.
        let rto_at = 10_000 + 300 * MILLIS;
        let resent = c.on_tick(rto_at);
        assert!(!resent.is_empty(), "RTO must retransmit");
        assert!(c.retransmits() >= 1);
        settle(&mut c, &mut s, resent, rto_at);
        let (data, _) = s.app_read(64).unwrap();
        assert_eq!(&data.unwrap()[..], b"lost");
    }

    #[test]
    fn triple_dup_ack_fast_retransmits() {
        // Start with a 10-MSS congestion window so six segments depart at
        // once and the lost head produces a burst of duplicate ACKs.
        let cfg = TcpConfig {
            initial_cwnd_mss: 10,
            ..Default::default()
        };
        let (mut c, mut s) = pair_with(cfg);
        let chunk = vec![1u8; 1460];
        for _ in 0..6 {
            c.app_write(&chunk).unwrap();
        }
        let mut sent = c.output(10_000);
        // Lose the first segment, deliver the rest: receiver dup-acks.
        sent.remove(0);
        let dup_acks = deliver(&mut s, sent, 20_000);
        assert!(
            dup_acks.len() >= 3,
            "receiver should emit dup ACKs for the gap"
        );
        let before = c.retransmits();
        let replies = deliver(&mut c, dup_acks, 30_000);
        assert!(
            c.retransmits() > before,
            "third dup ACK triggers fast retransmit"
        );
        assert!(replies.iter().any(|sg| sg.seq == c.snd_una));
    }

    #[test]
    fn orderly_close_reaches_closed_and_time_wait() {
        let (mut c, mut s) = pair();
        c.app_close();
        let fin = c.output(10_000);
        assert!(fin.iter().any(|sg| sg.flags.fin));
        assert_eq!(c.state(), State::FinWait1);
        settle(&mut c, &mut s, fin, 10_000);
        assert_eq!(s.state(), State::CloseWait);
        // Server reads EOF.
        let (eof, _) = s.app_read(16).unwrap();
        assert_eq!(eof.unwrap().len(), 0);
        // Server closes too.
        s.app_close();
        let fin2 = s.output(50_000);
        settle(&mut s, &mut c, fin2, 50_000);
        assert_eq!(s.state(), State::Closed);
        assert_eq!(c.state(), State::TimeWait);
        // TIME_WAIT expires.
        let end = 50_000 + TcpConfig::default().time_wait + MILLIS;
        c.on_tick(end);
        assert_eq!(c.state(), State::Closed);
    }

    #[test]
    fn rst_wakes_and_errors() {
        let (mut c, mut s) = pair();
        let rst = c.app_abort();
        deliver(&mut s, vec![rst], 10_000);
        assert_eq!(s.state(), State::Closed);
        assert_eq!(s.error(), Some(NetError::Reset));
        assert_eq!(s.app_read(16).unwrap_err(), NetError::Reset);
    }

    #[test]
    fn syn_retransmission_then_give_up() {
        let a = Endpoint::new(HostId(1), 1000);
        let b = Endpoint::new(HostId(9), 80); // nobody home
        let cfg = TcpConfig {
            max_syn_retries: 2,
            ..Default::default()
        };
        let mut c = Tcb::new_active(cfg, a, b, 100, 0);
        let mut now = 0;
        let mut retries = 0;
        for _ in 0..10 {
            now += 10_000 * MILLIS;
            let segs = c.on_tick(now);
            if c.state() == State::Closed {
                break;
            }
            if !segs.is_empty() {
                retries += 1;
            }
        }
        assert_eq!(c.state(), State::Closed);
        assert_eq!(c.error(), Some(NetError::Timeout));
        assert!(retries >= 2);
    }

    #[test]
    fn send_buffer_backpressure() {
        let (mut c, _s) = pair();
        let huge = vec![0u8; 100_000];
        let n = c.app_write(&huge).unwrap();
        assert_eq!(n, TcpConfig::default().send_buf, "accepts only the buffer");
        assert_eq!(c.app_write(&huge).unwrap(), 0, "then blocks");
    }

    #[test]
    fn write_after_close_fails() {
        let (mut c, _s) = pair();
        c.app_close();
        assert_eq!(c.app_write(b"x").unwrap_err(), NetError::Closed);
    }

    #[test]
    fn flow_control_respects_peer_window() {
        let (mut c, _s) = pair();
        // Peer advertises a tiny window.
        let tiny_wnd = Segment {
            src_port: 80,
            dst_port: 1000,
            seq: c.rcv_nxt,
            ack: c.snd_una,
            flags: Flags::ack(),
            wnd: 1000,
            payload: Bytes::new(),
        };
        c.on_segment(tiny_wnd, 5_000);
        c.app_write(&vec![0u8; 8000]).unwrap();
        let segs = c.output(6_000);
        let sent: usize = segs.iter().map(|s| s.payload.len()).sum();
        assert!(
            sent <= 1460,
            "must respect the advertised window, sent {sent}"
        );
    }
}
