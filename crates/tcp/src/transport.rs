//! Packet substrates the TCP stack runs over.
//!
//! The stack only needs [`SegmentTransport::send`]; delivery happens by the
//! substrate calling [`TcpHost::inject`](crate::host::TcpHost::inject).
//! [`LoopbackNet`] is an in-process substrate with seeded loss and
//! duplication for deterministic protocol tests; latency/bandwidth-shaped
//! delivery comes from wiring the stack to `eveth-simos`'s packet network
//! (see the `eveth` facade crate).

use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Weak};

use eveth_core::net::HostId;
use parking_lot::Mutex;

use crate::host::TcpHost;
use crate::segment::Segment;

/// Where outbound segments go. Implementations must not block.
pub trait SegmentTransport: Send + Sync {
    /// Ships `seg` from `src` towards `dst` (possibly dropping it).
    fn send(&self, src: HostId, dst: HostId, seg: Segment);
}

/// Fault injection knobs for [`LoopbackNet`].
#[derive(Debug, Clone, Copy)]
pub struct Faults {
    /// Probability in [0,1) of dropping any segment.
    pub loss: f64,
    /// Deliver every n-th surviving segment twice (duplication).
    pub duplicate_every: Option<u64>,
}

impl Default for Faults {
    fn default() -> Self {
        Faults {
            loss: 0.0,
            duplicate_every: None,
        }
    }
}

struct FaultState {
    faults: Faults,
    rng: u64,
    survivors: u64,
}

/// Counters for a [`LoopbackNet`].
#[derive(Debug, Default)]
pub struct LoopbackStats {
    /// Segments offered.
    pub sent: AtomicU64,
    /// Segments dropped by injected loss.
    pub dropped: AtomicU64,
    /// Segments delivered twice.
    pub duplicated: AtomicU64,
}

/// An in-process, zero-latency segment network with deterministic fault
/// injection. Hosts are registered weakly, so the net never keeps a stack
/// alive.
pub struct LoopbackNet {
    hosts: Mutex<HashMap<HostId, Weak<TcpHost>>>,
    state: Mutex<FaultState>,
    stats: LoopbackStats,
}

impl LoopbackNet {
    /// A lossless loopback.
    pub fn new() -> Arc<Self> {
        Self::with_faults(Faults::default(), 1)
    }

    /// A loopback with the given faults; `seed` fixes the loss sequence.
    pub fn with_faults(faults: Faults, seed: u64) -> Arc<Self> {
        Arc::new(LoopbackNet {
            hosts: Mutex::new(HashMap::new()),
            state: Mutex::new(FaultState {
                faults,
                rng: seed | 1,
                survivors: 0,
            }),
            stats: LoopbackStats::default(),
        })
    }

    /// Attaches a TCP host so segments addressed to its id reach it.
    pub fn register(&self, host: &Arc<TcpHost>) {
        self.hosts
            .lock()
            .insert(host.host_id(), Arc::downgrade(host));
    }

    /// Counters.
    pub fn stats(&self) -> &LoopbackStats {
        &self.stats
    }
}

impl SegmentTransport for LoopbackNet {
    fn send(&self, src: HostId, dst: HostId, seg: Segment) {
        self.stats.sent.fetch_add(1, Ordering::Relaxed);
        let duplicate = {
            let mut st = self.state.lock();
            st.rng ^= st.rng << 13;
            st.rng ^= st.rng >> 7;
            st.rng ^= st.rng << 17;
            let roll = (st.rng >> 11) as f64 / (1u64 << 53) as f64;
            if roll < st.faults.loss {
                self.stats.dropped.fetch_add(1, Ordering::Relaxed);
                return;
            }
            st.survivors += 1;
            matches!(st.faults.duplicate_every, Some(n) if n > 0 && st.survivors.is_multiple_of(n))
        };
        let target = self.hosts.lock().get(&dst).and_then(Weak::upgrade);
        if let Some(host) = target {
            if duplicate {
                self.stats.duplicated.fetch_add(1, Ordering::Relaxed);
                host.inject(src, seg.clone());
            }
            host.inject(src, seg);
        }
    }
}

impl fmt::Debug for LoopbackNet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "LoopbackNet(hosts={}, sent={}, dropped={})",
            self.hosts.lock().len(),
            self.stats.sent.load(Ordering::Relaxed),
            self.stats.dropped.load(Ordering::Relaxed)
        )
    }
}
