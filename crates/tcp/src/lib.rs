//! # eveth-tcp — an application-level TCP stack for monadic threads
//!
//! The paper's §4.8: because the hybrid model combines events and threads in
//! one program, a transport protocol can live *inside the application* —
//! type-safe, tailorable, and scheduled by the same event-driven system as
//! everything else. This crate is that stack:
//!
//! * [`segment`] — wire segments with zero-copy [`bytes::Bytes`] payloads;
//! * [`seq`] — 32-bit sequence arithmetic;
//! * [`tcb`] — the per-connection state machine (handshake, sliding
//!   windows, out-of-order reassembly, FIN/RST teardown) as a pure
//!   transition system;
//! * [`rtt`] — Jacobson/Karels RTO estimation with Karn's rule;
//! * [`congestion`] — Reno: slow start, congestion avoidance, fast
//!   retransmit/recovery;
//! * [`host`] — the event-loop glue (`worker_tcp_input`,
//!   `worker_tcp_timer`) and sockets implementing
//!   [`NetStack`](eveth_core::net::NetStack), so servers swap kernel
//!   sockets for this stack by changing one line;
//! * [`transport`] — pluggable packet substrates, including an in-process
//!   loopback with deterministic loss/duplication for protocol tests.
//!
//! ## Example: an echo roundtrip over a lossy link
//!
//! ```
//! use bytes::Bytes;
//! use eveth_core::net::{recv_exact, send_all, Endpoint, HostId, NetStack};
//! use eveth_core::syscall::sys_fork;
//! use eveth_core::{do_m, ThreadM};
//! use eveth_simos::SimRuntime;
//! use eveth_tcp::host::TcpHost;
//! use eveth_tcp::tcb::TcpConfig;
//! use eveth_tcp::transport::{Faults, LoopbackNet};
//!
//! let sim = SimRuntime::new_default();
//! let net = LoopbackNet::with_faults(Faults { loss: 0.05, ..Default::default() }, 7);
//! let a = TcpHost::start(sim.ctx(), HostId(1), net.clone(), TcpConfig::default());
//! let b = TcpHost::start(sim.ctx(), HostId(2), net.clone(), TcpConfig::default());
//! net.register(&a);
//! net.register(&b);
//!
//! let server = do_m! {
//!     let lst <- b.listen(80);
//!     let conn <- lst.unwrap().accept();
//!     let conn = conn.unwrap();
//!     let data <- recv_exact(&conn, 4);
//!     let sent <- send_all(&conn, data.unwrap());
//!     let _ = sent.unwrap();
//!     ThreadM::pure(())
//! };
//! let echoed = sim
//!     .block_on(do_m! {
//!         sys_fork(server);
//!         let conn <- a.connect(Endpoint::new(HostId(2), 80));
//!         let conn = conn.unwrap();
//!         let sent <- send_all(&conn, Bytes::from_static(b"ping"));
//!         let _ = sent.unwrap();
//!         recv_exact(&conn, 4)
//!     })
//!     .unwrap()
//!     .unwrap();
//! assert_eq!(&echoed[..], b"ping");
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod congestion;
pub mod host;
pub mod rtt;
pub mod segment;
pub mod seq;
pub mod tcb;
pub mod transport;

pub use host::{TcpConn, TcpHost, TcpListener, TcpStats};
pub use segment::{Flags, Segment};
pub use tcb::{State, Tcb, TcpConfig};
pub use transport::{Faults, LoopbackNet, SegmentTransport};
