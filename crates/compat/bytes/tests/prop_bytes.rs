//! Model-checks the buffer fabric against plain `Vec<u8>`s: an arbitrary
//! op sequence driven through `BytesMut`/`split_to`/`freeze`/pool
//! recycling must observe exactly the bytes the model predicts (no
//! aliasing bugs), and every region a pool hands out must come back to
//! its free list once the last refcounted window drops.

use bytes::{BufferPool, Bytes};
use proptest::prelude::*;

/// One step applied to both the staging buffer under test and the model.
#[derive(Debug, Clone)]
enum Op {
    /// Append a payload.
    Extend(Vec<u8>),
    /// Split off a prefix (index scaled into the current length) and keep
    /// mutating the *tail*; the head must hold exactly the model prefix.
    SplitTo(u16),
    /// Reserve extra capacity (must never change contents).
    Reserve(u16),
    /// Freeze, take O(1) windows, compare them to model slices, then
    /// start a fresh staging buffer from the pool.
    FreezeAndWindow(u16, u16),
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        proptest::collection::vec(any::<u8>(), 0..48).prop_map(Op::Extend),
        (any::<u16>()).prop_map(Op::SplitTo),
        (any::<u16>()).prop_map(Op::Reserve),
        (any::<u16>(), any::<u16>()).prop_map(|(a, b)| Op::FreezeAndWindow(a, b)),
    ]
}

proptest! {
    /// The staging buffer and every window frozen from it agree with the
    /// `Vec<u8>` model byte-for-byte, across splits, growth and freezes.
    #[test]
    fn bytes_mut_matches_vec_model(ops in proptest::collection::vec(arb_op(), 0..40)) {
        let pool = BufferPool::new(64, 4);
        let mut buf = pool.acquire();
        let mut model: Vec<u8> = Vec::new();
        // Frozen windows with their expected contents, held alive so
        // later ops can't scribble over an aliased region.
        let mut frozen: Vec<(Bytes, Vec<u8>)> = Vec::new();

        for op in ops {
            match op {
                Op::Extend(payload) => {
                    buf.extend_from_slice(&payload);
                    model.extend_from_slice(&payload);
                }
                Op::SplitTo(raw) => {
                    let at = if model.is_empty() { 0 } else { raw as usize % (model.len() + 1) };
                    let head = buf.split_to(at);
                    let model_head: Vec<u8> = model.drain(..at).collect();
                    prop_assert_eq!(&head[..], &model_head[..]);
                }
                Op::Reserve(extra) => {
                    buf.reserve(extra as usize % 256);
                }
                Op::FreezeAndWindow(a, b) => {
                    let whole = buf.freeze();
                    prop_assert_eq!(&whole[..], &model[..]);
                    if !model.is_empty() {
                        let lo = a as usize % (model.len() + 1);
                        let hi = lo + (b as usize % (model.len() - lo + 1));
                        let window = whole.slice(lo..hi);
                        prop_assert_eq!(&window[..], &model[lo..hi]);
                        frozen.push((window, model[lo..hi].to_vec()));
                    }
                    frozen.push((whole, model.clone()));
                    buf = pool.acquire();
                    model.clear();
                }
            }
            prop_assert_eq!(&buf[..], &model[..]);
        }
        // Nothing that happened after a freeze may have disturbed the
        // frozen windows.
        for (bytes, expect) in &frozen {
            prop_assert_eq!(&bytes[..], &expect[..]);
        }
    }

    /// Refcounts drive recycling: once every window over every carved
    /// region drops, the regions are back in the pool (up to its cap),
    /// and further acquires hit the free list instead of carving.
    #[test]
    fn refcounts_return_slabs_to_the_pool(
        payloads in proptest::collection::vec(
            proptest::collection::vec(any::<u8>(), 1..32), 1..8),
        clones in 0usize..4,
    ) {
        let pool = BufferPool::new(32, 16);
        let mut windows: Vec<Bytes> = Vec::new();
        for payload in &payloads {
            let mut m = pool.acquire();
            m.extend_from_slice(payload);
            let f = m.freeze();
            for _ in 0..clones {
                windows.push(f.clone());
            }
            let mut tail = f;
            let head = tail.split_to(payload.len() / 2);
            windows.push(head);
            windows.push(tail);
        }
        let carved = pool.slabs_carved();
        prop_assert_eq!(carved, payloads.len() as u64);
        // Alive windows pin their regions.
        prop_assert_eq!(pool.free_slabs(), 0);
        windows.clear();
        prop_assert_eq!(pool.free_slabs(), payloads.len());
        prop_assert_eq!(pool.slabs_recycled(), payloads.len() as u64);
        // Steady state: reuse, don't carve.
        let again = pool.acquire().freeze();
        prop_assert_eq!(pool.slabs_carved(), carved);
        drop(again);
        prop_assert_eq!(pool.free_slabs(), payloads.len());
    }
}
