//! A minimal, offline-vendored subset of the `bytes` crate.
//!
//! The build environment has no network access to crates.io, so this
//! workspace ships the small part of the `bytes` API it actually uses:
//! [`Bytes`], a cheaply cloneable, sliceable, immutable byte buffer.
//! Semantics match the real crate for the covered surface; swap the path
//! dependency for the registry crate when a registry is available.

use std::borrow::Borrow;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::ops::{Bound, Deref, RangeBounds};
use std::sync::Arc;

/// A cheaply cloneable, immutable slice of contiguous memory.
///
/// Internally an `Arc<[u8]>` plus a `(start, end)` window; `clone` and
/// [`Bytes::slice`] are O(1) and never copy the payload.
#[derive(Clone, Default)]
pub struct Bytes {
    data: Arc<[u8]>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// Creates an empty `Bytes`.
    pub fn new() -> Self {
        Bytes::from_vec(Vec::new())
    }

    /// Creates a `Bytes` from a static slice without copying at use sites
    /// that already have `'static` data. (This shim copies once into an
    /// `Arc`; the real crate aliases the static directly.)
    pub fn from_static(data: &'static [u8]) -> Self {
        Bytes::from_vec(data.to_vec())
    }

    /// Copies `data` into a new buffer.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes::from_vec(data.to_vec())
    }

    fn from_vec(v: Vec<u8>) -> Self {
        let data: Arc<[u8]> = Arc::from(v.into_boxed_slice());
        let end = data.len();
        Bytes {
            data,
            start: 0,
            end,
        }
    }

    /// Length of the view in bytes.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// True when the view is empty.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// Returns a sub-view; O(1), shares the underlying allocation.
    ///
    /// # Panics
    ///
    /// Panics when the range is out of bounds, like the real crate.
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Bytes {
        let len = self.len();
        let begin = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let stop = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => len,
        };
        assert!(
            begin <= stop && stop <= len,
            "range out of bounds: {begin}..{stop} of {len}"
        );
        Bytes {
            data: Arc::clone(&self.data),
            start: self.start + begin,
            end: self.start + stop,
        }
    }

    /// Splits off and returns the first `at` bytes, leaving the rest.
    pub fn split_to(&mut self, at: usize) -> Bytes {
        let head = self.slice(..at);
        *self = self.slice(at..);
        head
    }

    /// Copies the view into a fresh `Vec<u8>`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.as_slice().to_vec()
    }

    fn as_slice(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl Borrow<[u8]> for Bytes {
    fn borrow(&self) -> &[u8] {
        self.as_slice()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes::from_vec(v)
    }
}

impl From<String> for Bytes {
    fn from(s: String) -> Self {
        Bytes::from_vec(s.into_bytes())
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(s: &'static [u8]) -> Self {
        Bytes::from_static(s)
    }
}

impl From<&'static str> for Bytes {
    fn from(s: &'static str) -> Self {
        Bytes::from_static(s.as_bytes())
    }
}

impl FromIterator<u8> for Bytes {
    fn from_iter<T: IntoIterator<Item = u8>>(iter: T) -> Self {
        Bytes::from_vec(iter.into_iter().collect())
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_slice() == other
    }
}

impl PartialEq<&[u8]> for Bytes {
    fn eq(&self, other: &&[u8]) -> bool {
        self.as_slice() == *other
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl PartialEq<Bytes> for Vec<u8> {
    fn eq(&self, other: &Bytes) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl PartialOrd for Bytes {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Bytes {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.as_slice().cmp(other.as_slice())
    }
}

impl Hash for Bytes {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.as_slice().hash(state);
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.as_slice().iter().take(64) {
            for esc in std::ascii::escape_default(b) {
                write!(f, "{}", esc as char)?;
            }
        }
        if self.len() > 64 {
            write!(f, "… ({} bytes)", self.len())?;
        }
        write!(f, "\"")
    }
}

impl IntoIterator for Bytes {
    type Item = u8;
    type IntoIter = std::vec::IntoIter<u8>;
    fn into_iter(self) -> Self::IntoIter {
        self.to_vec().into_iter()
    }
}

impl<'a> IntoIterator for &'a Bytes {
    type Item = &'a u8;
    type IntoIter = std::slice::Iter<'a, u8>;
    fn into_iter(self) -> Self::IntoIter {
        self.as_slice().iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slice_is_window_not_copy() {
        let b = Bytes::from(vec![1, 2, 3, 4, 5]);
        let s = b.slice(1..4);
        assert_eq!(&s[..], &[2, 3, 4]);
        let s2 = s.slice(1..);
        assert_eq!(&s2[..], &[3, 4]);
    }

    #[test]
    fn split_to_advances() {
        let mut b = Bytes::from(vec![9, 8, 7, 6]);
        let head = b.split_to(2);
        assert_eq!(&head[..], &[9, 8]);
        assert_eq!(&b[..], &[7, 6]);
    }

    #[test]
    fn equality_and_hash_by_content() {
        let a = Bytes::from(vec![1, 2, 3]);
        let b = Bytes::from(vec![0, 1, 2, 3]).slice(1..);
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic]
    fn out_of_bounds_slice_panics() {
        Bytes::from(vec![1]).slice(..5);
    }
}
