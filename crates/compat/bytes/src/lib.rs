//! A minimal, offline-vendored subset of the `bytes` crate, extended with
//! the workspace's zero-copy buffer fabric.
//!
//! The build environment has no network access to crates.io, so this
//! workspace ships the small part of the `bytes` API it actually uses:
//! [`Bytes`], a cheaply cloneable, sliceable, immutable byte buffer, and
//! [`BytesMut`], its mutable staging counterpart. Semantics match the real
//! crate for the covered surface; swap the path dependency for the
//! registry crate when a registry is available.
//!
//! On top of that API subset sits the slab-buffer layer (modeled on
//! timely-dataflow's `bytes` crate: shared ownership of slab regions with
//! O(1) splitting):
//!
//! * [`BufferPool`] hands out [`BytesMut`] staging buffers backed by
//!   recycled slab regions. [`BytesMut::freeze`] turns the staged bytes
//!   into refcounted [`Bytes`] windows of that one region — [`Bytes::slice`]
//!   and [`Bytes::split_to`] are O(1) — and when the last window drops,
//!   the slab's storage returns to the pool instead of the allocator.
//! * [`Bytes::from_static`] aliases its `'static` input directly: reply
//!   constants like `STORED\r\n` cost neither an allocation nor a copy.
//! * The crate counts its own work: [`bytes_copied_total`] is every
//!   payload byte physically copied *into* a buffer by this crate, and
//!   [`buffers_allocated_total`] every fresh backing allocation it makes
//!   (pool hits count zero of each). Benchmarks report these as
//!   `copies_per_op` / feed `allocs_per_op`, which is how the zero-copy
//!   reply path stays regression-proof.

use std::borrow::Borrow;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::mem;
use std::ops::{Bound, Deref, DerefMut, RangeBounds};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock, Weak};

// ---------------------------------------------------------------------------
// Instrumentation: what this crate copies and allocates.
// ---------------------------------------------------------------------------

static BYTES_COPIED: AtomicU64 = AtomicU64::new(0);
static BUFFERS_ALLOCATED: AtomicU64 = AtomicU64::new(0);
static SLABS_CARVED: AtomicU64 = AtomicU64::new(0);

/// Total payload bytes physically copied *into* buffers by this crate
/// since process start: [`Bytes::copy_from_slice`], writes into a
/// [`BytesMut`] ([`extend_from_slice`](BytesMut::extend_from_slice) and
/// friends), and the bytes moved when a `BytesMut` outgrows its backing
/// region. O(1) window operations (`clone`, `slice`, `split_to`,
/// `freeze`) and ownership transfers (`From<Vec<u8>>`) count nothing.
pub fn bytes_copied_total() -> u64 {
    BYTES_COPIED.load(Ordering::Relaxed)
}

/// Total fresh backing allocations this crate has made since process
/// start: copied-in buffers, non-empty `BytesMut` capacity requests, and
/// pool misses that carve a new slab. Pool hits and `'static` aliases
/// count nothing.
pub fn buffers_allocated_total() -> u64 {
    BUFFERS_ALLOCATED.load(Ordering::Relaxed)
}

/// Total slab regions ever carved by [`BufferPool`]s (pool misses), for
/// the `eveth_buf_slabs_total` metric. A steady state that keeps hitting
/// the pool holds this flat.
pub fn slabs_carved_total() -> u64 {
    SLABS_CARVED.load(Ordering::Relaxed)
}

fn note_copy(n: usize) {
    if n > 0 {
        BYTES_COPIED.fetch_add(n as u64, Ordering::Relaxed);
    }
}

fn note_alloc() {
    BUFFERS_ALLOCATED.fetch_add(1, Ordering::Relaxed);
}

// ---------------------------------------------------------------------------
// Bytes: immutable refcounted windows.
// ---------------------------------------------------------------------------

/// The three places a [`Bytes`] window can point.
#[derive(Clone)]
enum Repr {
    /// Aliases a `'static` slice directly — zero allocation, zero copy.
    Static(&'static [u8]),
    /// A refcounted private allocation (`From<Vec<u8>>` and friends).
    Shared(Arc<[u8]>),
    /// A refcounted window of a (possibly pooled) slab region; the last
    /// window to drop returns the region to its pool.
    Slab(Arc<Slab>),
}

/// A cheaply cloneable, immutable slice of contiguous memory.
///
/// Internally a refcounted region plus a `(start, end)` window; `clone`,
/// [`Bytes::slice`] and [`Bytes::split_to`] are O(1) and never copy the
/// payload. Regions come in three flavors — aliased `'static` data, a
/// private allocation, or a [`BufferPool`] slab (see the crate docs).
#[derive(Clone)]
pub struct Bytes {
    repr: Repr,
    start: usize,
    end: usize,
}

impl Bytes {
    /// Creates an empty `Bytes` without allocating.
    pub fn new() -> Self {
        Bytes::from_static(b"")
    }

    /// Creates a `Bytes` aliasing a static slice directly — no allocation,
    /// no copy, like the real crate.
    pub fn from_static(data: &'static [u8]) -> Self {
        Bytes {
            repr: Repr::Static(data),
            start: 0,
            end: data.len(),
        }
    }

    /// Copies `data` into a new buffer (one counted allocation + copy).
    pub fn copy_from_slice(data: &[u8]) -> Self {
        note_alloc();
        note_copy(data.len());
        Bytes::from_vec_uncounted(data.to_vec())
    }

    /// Takes ownership of `v` without a counted copy (the caller already
    /// owns the bytes; `Arc<[u8]>::from` may still move them once).
    fn from_vec_uncounted(v: Vec<u8>) -> Self {
        let data: Arc<[u8]> = Arc::from(v.into_boxed_slice());
        let end = data.len();
        Bytes {
            repr: Repr::Shared(data),
            start: 0,
            end,
        }
    }

    /// Length of the view in bytes.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// True when the view is empty.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// Returns a sub-view; O(1), shares the underlying region.
    ///
    /// # Panics
    ///
    /// Panics when the range is out of bounds, like the real crate.
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Bytes {
        let len = self.len();
        let begin = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let stop = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => len,
        };
        assert!(
            begin <= stop && stop <= len,
            "range out of bounds: {begin}..{stop} of {len}"
        );
        Bytes {
            repr: self.repr.clone(),
            start: self.start + begin,
            end: self.start + stop,
        }
    }

    /// Splits off and returns the first `at` bytes, leaving the rest;
    /// O(1), both halves share the region.
    pub fn split_to(&mut self, at: usize) -> Bytes {
        let head = self.slice(..at);
        *self = self.slice(at..);
        head
    }

    /// Copies the view into a fresh `Vec<u8>` (an explicit copy-out,
    /// deliberately not counted as a buffer-fabric copy).
    pub fn to_vec(&self) -> Vec<u8> {
        self.as_slice().to_vec()
    }

    /// Returns a view with no excess backing storage: when this window
    /// covers only part of its region, the bytes are copied out into a
    /// right-sized private allocation (counted) so long-lived holders —
    /// store entries, caches — don't pin a whole slab or recv chunk.
    /// Full-region windows (and `'static` aliases) are returned as O(1)
    /// clones.
    pub fn compact(&self) -> Bytes {
        let region_len = match &self.repr {
            Repr::Static(_) => return self.clone(),
            Repr::Shared(a) => a.len(),
            Repr::Slab(s) => s.storage.len(),
        };
        if self.start == 0 && self.end == region_len {
            if let Repr::Slab(s) = &self.repr {
                // A full-region window of a pooled slab still pins the
                // slab; detach only when the region is pool-backed.
                if s.pool.strong_count() > 0 {
                    return Bytes::copy_from_slice(self.as_slice());
                }
            }
            return self.clone();
        }
        Bytes::copy_from_slice(self.as_slice())
    }

    fn as_slice(&self) -> &[u8] {
        let region: &[u8] = match &self.repr {
            Repr::Static(s) => s,
            Repr::Shared(a) => a,
            Repr::Slab(s) => &s.storage,
        };
        &region[self.start..self.end]
    }
}

impl Default for Bytes {
    fn default() -> Self {
        Bytes::new()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl Borrow<[u8]> for Bytes {
    fn borrow(&self) -> &[u8] {
        self.as_slice()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes::from_vec_uncounted(v)
    }
}

impl From<String> for Bytes {
    fn from(s: String) -> Self {
        Bytes::from_vec_uncounted(s.into_bytes())
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(s: &'static [u8]) -> Self {
        Bytes::from_static(s)
    }
}

impl From<&'static str> for Bytes {
    fn from(s: &'static str) -> Self {
        Bytes::from_static(s.as_bytes())
    }
}

impl From<BytesMut> for Bytes {
    fn from(b: BytesMut) -> Self {
        b.freeze()
    }
}

impl FromIterator<u8> for Bytes {
    fn from_iter<T: IntoIterator<Item = u8>>(iter: T) -> Self {
        Bytes::from_vec_uncounted(iter.into_iter().collect())
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_slice() == other
    }
}

impl PartialEq<&[u8]> for Bytes {
    fn eq(&self, other: &&[u8]) -> bool {
        self.as_slice() == *other
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl PartialEq<Bytes> for Vec<u8> {
    fn eq(&self, other: &Bytes) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl PartialOrd for Bytes {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Bytes {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.as_slice().cmp(other.as_slice())
    }
}

impl Hash for Bytes {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.as_slice().hash(state);
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.as_slice().iter().take(64) {
            for esc in std::ascii::escape_default(b) {
                write!(f, "{}", esc as char)?;
            }
        }
        if self.len() > 64 {
            write!(f, "… ({} bytes)", self.len())?;
        }
        write!(f, "\"")
    }
}

impl IntoIterator for Bytes {
    type Item = u8;
    type IntoIter = std::vec::IntoIter<u8>;
    fn into_iter(self) -> Self::IntoIter {
        self.to_vec().into_iter()
    }
}

impl<'a> IntoIterator for &'a Bytes {
    type Item = &'a u8;
    type IntoIter = std::slice::Iter<'a, u8>;
    fn into_iter(self) -> Self::IntoIter {
        self.as_slice().iter()
    }
}

// ---------------------------------------------------------------------------
// BytesMut: the mutable staging buffer.
// ---------------------------------------------------------------------------

/// A unique, growable byte buffer that [`freeze`](BytesMut::freeze)s into
/// refcounted [`Bytes`] windows of its single backing region.
///
/// Obtain one from a [`BufferPool`] to stage bytes in a recycled slab
/// (the hot-path form), or stand-alone via [`BytesMut::new`] /
/// [`BytesMut::with_capacity`]. Writes are counted in
/// [`bytes_copied_total`]; fresh backing allocations (including growth
/// past the current capacity) in [`buffers_allocated_total`].
pub struct BytesMut {
    buf: Vec<u8>,
    /// The pool the backing region returns to after the last frozen
    /// window drops; dead for stand-alone buffers.
    pool: Weak<PoolInner>,
}

impl BytesMut {
    /// An empty, unpooled buffer; allocates nothing until written to.
    pub fn new() -> Self {
        BytesMut {
            buf: Vec::new(),
            pool: Weak::new(),
        }
    }

    /// An unpooled buffer with `cap` bytes of backing capacity.
    pub fn with_capacity(cap: usize) -> Self {
        if cap > 0 {
            note_alloc();
        }
        BytesMut {
            buf: Vec::with_capacity(cap),
            pool: Weak::new(),
        }
    }

    /// Staged length in bytes.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when nothing has been staged.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Backing capacity in bytes.
    pub fn capacity(&self) -> usize {
        self.buf.capacity()
    }

    /// Discards the staged bytes, keeping the backing region.
    pub fn clear(&mut self) {
        self.buf.clear();
    }

    /// Ensures room for `additional` more bytes, counting a growth (one
    /// allocation, plus the move of the already-staged bytes) when the
    /// current region is too small.
    pub fn reserve(&mut self, additional: usize) {
        if self.buf.capacity() - self.buf.len() < additional {
            note_alloc();
            note_copy(self.buf.len());
            self.buf.reserve(additional);
        }
    }

    /// Appends `src`, counting the copy.
    pub fn extend_from_slice(&mut self, src: &[u8]) {
        self.reserve(src.len());
        note_copy(src.len());
        self.buf.extend_from_slice(src);
    }

    /// Appends `src` (`bytes` crate spelling of
    /// [`extend_from_slice`](BytesMut::extend_from_slice)).
    pub fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }

    /// Appends one byte.
    pub fn put_u8(&mut self, b: u8) {
        self.reserve(1);
        note_copy(1);
        self.buf.push(b);
    }

    /// Appends `n` copies of `byte` (a counted write, like any other);
    /// the fill loadgen uses to stage synthetic values without a
    /// temporary `Vec`.
    pub fn put_repeat(&mut self, byte: u8, n: usize) {
        self.reserve(n);
        note_copy(n);
        let len = self.buf.len();
        self.buf.resize(len + n, byte);
    }

    /// Drops all staged bytes and returns the backing region to its pool
    /// (when pooled) without waiting for frozen windows — the explicit
    /// counterpart of the refcount-drop path, for buffers that staged
    /// nothing worth freezing.
    pub fn recycle(self) {
        if let Some(pool) = self.pool.upgrade() {
            pool.recycle(self.buf);
        }
    }

    /// Splits off and returns the first `at` staged bytes as a new
    /// unpooled buffer, leaving the rest in place. Unlike
    /// [`Bytes::split_to`] this moves payload (both counted), because the
    /// two halves must stay independently mutable.
    ///
    /// # Panics
    ///
    /// Panics when `at > len`.
    pub fn split_to(&mut self, at: usize) -> BytesMut {
        assert!(
            at <= self.buf.len(),
            "split_to out of bounds: {at} of {}",
            self.buf.len()
        );
        note_alloc();
        note_copy(at);
        let head: Vec<u8> = self.buf.drain(..at).collect();
        BytesMut {
            buf: head,
            pool: Weak::new(),
        }
    }

    /// Converts the staged bytes into an immutable refcounted [`Bytes`]
    /// window — O(1), no copy. Windows derived from it (`clone`, `slice`,
    /// `split_to`) share the one region; when the last drops, a pooled
    /// region returns to its [`BufferPool`].
    pub fn freeze(self) -> Bytes {
        let end = self.buf.len();
        let slab = Arc::new(Slab {
            storage: self.buf,
            pool: self.pool,
        });
        Bytes {
            repr: Repr::Slab(slab),
            start: 0,
            end,
        }
    }
}

impl Default for BytesMut {
    fn default() -> Self {
        BytesMut::new()
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.buf
    }
}

impl DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.buf
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.buf
    }
}

/// `write!`-style formatting appends into the buffer (used for reply
/// headers); the formatted bytes are counted like any other write.
impl fmt::Write for BytesMut {
    fn write_str(&mut self, s: &str) -> fmt::Result {
        self.extend_from_slice(s.as_bytes());
        Ok(())
    }
}

impl fmt::Debug for BytesMut {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "BytesMut(len={}, cap={}, pooled={})",
            self.buf.len(),
            self.buf.capacity(),
            self.pool.strong_count() > 0
        )
    }
}

// ---------------------------------------------------------------------------
// BufferPool: recycled slab regions.
// ---------------------------------------------------------------------------

/// One backing region shared by every [`Bytes`] window frozen from it.
/// Dropping the last window returns the storage to the pool (if any) —
/// the refcount *is* the recycling trigger.
struct Slab {
    storage: Vec<u8>,
    pool: Weak<PoolInner>,
}

impl Drop for Slab {
    fn drop(&mut self) {
        if let Some(pool) = self.pool.upgrade() {
            pool.recycle(mem::take(&mut self.storage));
        }
    }
}

struct PoolInner {
    slab_size: usize,
    max_free: usize,
    free: Mutex<Vec<Vec<u8>>>,
    carved: AtomicU64,
    recycled: AtomicU64,
}

impl PoolInner {
    fn recycle(&self, mut storage: Vec<u8>) {
        // A buffer that shrank below slab size (shouldn't happen) or a
        // full free list goes back to the allocator instead.
        if storage.capacity() < self.slab_size {
            return;
        }
        let mut free = self.free.lock().expect("buffer pool poisoned");
        if free.len() < self.max_free {
            storage.clear();
            self.recycled.fetch_add(1, Ordering::Relaxed);
            free.push(storage);
        }
    }
}

/// A recycling arena of fixed-size slab regions backing [`BytesMut`]
/// staging buffers.
///
/// [`acquire`](BufferPool::acquire) pops a free region (or carves a new
/// one on a miss — the only allocation in steady state is *none*); the
/// region flows `BytesMut` → [`freeze`](BytesMut::freeze) → refcounted
/// [`Bytes`] windows → last drop → back to the free list. Cloning the
/// pool handle is O(1) and shares the free list.
#[derive(Clone)]
pub struct BufferPool {
    inner: Arc<PoolInner>,
}

impl BufferPool {
    /// A pool of `slab_size`-byte regions retaining at most `max_free`
    /// free ones.
    pub fn new(slab_size: usize, max_free: usize) -> Self {
        assert!(slab_size > 0, "slab_size must be positive");
        BufferPool {
            inner: Arc::new(PoolInner {
                slab_size,
                max_free,
                free: Mutex::new(Vec::new()),
                carved: AtomicU64::new(0),
                recycled: AtomicU64::new(0),
            }),
        }
    }

    /// The process-wide default pool (16 KiB slabs, 256 retained) used by
    /// the bundled services' reply paths.
    pub fn global() -> &'static BufferPool {
        static GLOBAL: OnceLock<BufferPool> = OnceLock::new();
        GLOBAL.get_or_init(|| BufferPool::new(16 * 1024, 256))
    }

    /// Pops a recycled region, or carves a fresh slab on a miss (counted
    /// in [`buffers_allocated_total`] and [`slabs_carved_total`]).
    pub fn acquire(&self) -> BytesMut {
        let recycled = self.inner.free.lock().expect("buffer pool poisoned").pop();
        let buf = match recycled {
            Some(v) => v,
            None => {
                note_alloc();
                self.inner.carved.fetch_add(1, Ordering::Relaxed);
                SLABS_CARVED.fetch_add(1, Ordering::Relaxed);
                Vec::with_capacity(self.inner.slab_size)
            }
        };
        BytesMut {
            buf,
            pool: Arc::downgrade(&self.inner),
        }
    }

    /// The configured region size in bytes.
    pub fn slab_size(&self) -> usize {
        self.inner.slab_size
    }

    /// Free regions currently parked in the pool (the occupancy gauge).
    pub fn free_slabs(&self) -> usize {
        self.inner.free.lock().expect("buffer pool poisoned").len()
    }

    /// Regions this pool has carved fresh (misses) over its lifetime.
    pub fn slabs_carved(&self) -> u64 {
        self.inner.carved.load(Ordering::Relaxed)
    }

    /// Times a region came back via the refcount-drop path.
    pub fn slabs_recycled(&self) -> u64 {
        self.inner.recycled.load(Ordering::Relaxed)
    }
}

impl fmt::Debug for BufferPool {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "BufferPool(slab_size={}, free={}, carved={}, recycled={})",
            self.slab_size(),
            self.free_slabs(),
            self.slabs_carved(),
            self.slabs_recycled()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slice_is_window_not_copy() {
        let b = Bytes::from(vec![1, 2, 3, 4, 5]);
        let s = b.slice(1..4);
        assert_eq!(&s[..], &[2, 3, 4]);
        let s2 = s.slice(1..);
        assert_eq!(&s2[..], &[3, 4]);
    }

    #[test]
    fn split_to_advances() {
        let mut b = Bytes::from(vec![9, 8, 7, 6]);
        let head = b.split_to(2);
        assert_eq!(&head[..], &[9, 8]);
        assert_eq!(&b[..], &[7, 6]);
    }

    #[test]
    fn equality_and_hash_by_content() {
        let a = Bytes::from(vec![1, 2, 3]);
        let b = Bytes::from(vec![0, 1, 2, 3]).slice(1..);
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic]
    fn out_of_bounds_slice_panics() {
        Bytes::from(vec![1]).slice(..5);
    }

    #[test]
    fn from_static_aliases_without_copying() {
        static DATA: &[u8] = b"STORED\r\n";
        let b = Bytes::from_static(DATA);
        // Zero-copy means pointer identity with the static itself.
        assert!(std::ptr::eq(b.as_slice().as_ptr(), DATA.as_ptr()));
        let tail = b.slice(6..);
        assert!(std::ptr::eq(tail.as_slice().as_ptr(), DATA[6..].as_ptr()));
        assert_eq!(&tail[..], b"\r\n");
    }

    #[test]
    fn bytes_mut_stages_and_freezes_in_place() {
        let mut m = BytesMut::with_capacity(16);
        m.extend_from_slice(b"hello ");
        m.put_slice(b"world");
        m.put_u8(b'!');
        assert_eq!(&m[..], b"hello world!");
        let region_ptr = m.as_ref().as_ptr();
        let frozen = m.freeze();
        // freeze is a window over the same region, not a copy.
        assert!(std::ptr::eq(frozen.as_slice().as_ptr(), region_ptr));
        let mut rest = frozen.clone();
        let head = rest.split_to(6);
        assert_eq!(&head[..], b"hello ");
        assert_eq!(&rest[..], b"world!");
    }

    #[test]
    fn bytes_mut_split_to_keeps_both_halves() {
        let mut m = BytesMut::new();
        m.extend_from_slice(b"abcdef");
        let mut head = m.split_to(2);
        head.extend_from_slice(b"!");
        assert_eq!(&head[..], b"ab!");
        assert_eq!(&m[..], b"cdef");
    }

    #[test]
    #[should_panic]
    fn bytes_mut_split_to_out_of_bounds_panics() {
        BytesMut::new().split_to(1);
    }

    #[test]
    fn pool_recycles_when_last_window_drops() {
        let pool = BufferPool::new(64, 8);
        let mut m = pool.acquire();
        assert_eq!(pool.slabs_carved(), 1);
        m.extend_from_slice(b"abcdefgh");
        let frozen = m.freeze();
        let window = frozen.slice(2..5);
        drop(frozen);
        // A window still aliases the region: not recycled yet.
        assert_eq!(pool.free_slabs(), 0);
        assert_eq!(&window[..], b"cde");
        drop(window);
        assert_eq!(pool.free_slabs(), 1);
        assert_eq!(pool.slabs_recycled(), 1);
        // The next acquire is a hit, not a carve.
        let m2 = pool.acquire();
        assert_eq!(pool.slabs_carved(), 1);
        assert_eq!(pool.free_slabs(), 0);
        assert!(m2.is_empty());
        assert!(m2.capacity() >= 64);
    }

    #[test]
    fn pool_caps_retained_regions() {
        let pool = BufferPool::new(16, 1);
        let a = pool.acquire().freeze();
        let b = pool.acquire().freeze();
        assert_eq!(pool.slabs_carved(), 2);
        drop(a);
        drop(b);
        // Only one region is retained; the other went to the allocator.
        assert_eq!(pool.free_slabs(), 1);
    }

    #[test]
    fn unpooled_freeze_still_shares_one_region() {
        let mut m = BytesMut::new();
        m.extend_from_slice(b"xyz");
        let f = m.freeze();
        let c = f.clone();
        assert!(std::ptr::eq(f.as_slice().as_ptr(), c.as_slice().as_ptr()));
    }

    #[test]
    fn counters_track_copies_and_allocations() {
        // Deltas only (other tests in this binary run concurrently).
        let copied0 = bytes_copied_total();
        let alloc0 = buffers_allocated_total();
        let mut m = BytesMut::with_capacity(32);
        m.extend_from_slice(&[7u8; 20]);
        let _ = Bytes::copy_from_slice(&[1, 2, 3]);
        assert!(bytes_copied_total() >= copied0 + 23);
        assert!(buffers_allocated_total() >= alloc0 + 2);
        // Static aliasing and freezing add nothing.
        let copied1 = bytes_copied_total();
        let s = Bytes::from_static(b"END\r\n");
        let f = m.freeze();
        assert_eq!(s.len() + f.len(), 25);
        assert_eq!(bytes_copied_total(), copied1);
    }

    #[test]
    fn put_repeat_fills_and_counts() {
        let copied0 = bytes_copied_total();
        let mut m = BytesMut::with_capacity(16);
        m.put_repeat(b'a', 10);
        assert_eq!(&m[..], b"aaaaaaaaaa");
        assert!(bytes_copied_total() >= copied0 + 10);
    }

    #[test]
    fn compact_releases_pooled_slab() {
        let pool = BufferPool::new(64, 8);
        let mut m = pool.acquire();
        m.extend_from_slice(b"header VALUE payload");
        let frozen = m.freeze();
        let window = frozen.slice(13..20);
        let compacted = window.compact();
        assert_eq!(&compacted[..], b"payload");
        drop(frozen);
        drop(window);
        // The compacted copy must not pin the slab.
        assert_eq!(pool.free_slabs(), 1);
        assert_eq!(&compacted[..], b"payload");
    }

    #[test]
    fn compact_of_static_and_private_is_free() {
        let copied0 = bytes_copied_total();
        let s = Bytes::from_static(b"END\r\n");
        let c = s.compact();
        assert!(std::ptr::eq(c.as_slice().as_ptr(), s.as_slice().as_ptr()));
        let v = Bytes::from(vec![1, 2, 3]);
        let cv = v.compact();
        assert!(std::ptr::eq(cv.as_slice().as_ptr(), v.as_slice().as_ptr()));
        assert_eq!(bytes_copied_total(), copied0);
        // A partial window of a private region still copies out.
        let part = v.slice(1..);
        let cp = part.compact();
        assert_eq!(&cp[..], &[2, 3]);
        assert!(bytes_copied_total() > copied0);
    }

    #[test]
    fn explicit_recycle_returns_region() {
        let pool = BufferPool::new(32, 4);
        let m = pool.acquire();
        assert_eq!(pool.free_slabs(), 0);
        m.recycle();
        assert_eq!(pool.free_slabs(), 1);
    }

    #[test]
    fn write_macro_formats_into_bytes_mut() {
        use std::fmt::Write as _;
        let mut m = BytesMut::new();
        write!(m, "VALUE k{:06} {} {}\r\n", 7, 0, 100).unwrap();
        assert_eq!(&m[..], b"VALUE k000007 0 100\r\n");
    }
}
