//! A minimal, offline-vendored subset of the `parking_lot` crate.
//!
//! The build environment has no network access to crates.io, so this
//! workspace ships thin wrappers over `std::sync` primitives exposing the
//! `parking_lot` API shape it uses: guards returned directly (no poison
//! `Result`s), `Condvar::wait(&mut guard)`, and `try_read`/`try_write`
//! returning `Option`. A panic while holding a lock clears the poison
//! instead of propagating it, matching `parking_lot`'s non-poisoning
//! semantics closely enough for this codebase.

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync::{self, PoisonError};
use std::time::Duration;

/// A non-poisoning mutual-exclusion lock.
#[derive(Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

/// RAII guard for [`Mutex`].
pub struct MutexGuard<'a, T: ?Sized> {
    // `Option` so `Condvar::wait` can temporarily take the std guard.
    inner: Option<sync::MutexGuard<'a, T>>,
}

impl<T> Mutex<T> {
    /// Creates an unlocked mutex.
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking the calling OS thread.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            inner: Some(self.inner.lock().unwrap_or_else(PoisonError::into_inner)),
        }
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard { inner: Some(g) }),
            Err(sync::TryLockError::Poisoned(p)) => Some(MutexGuard {
                inner: Some(p.into_inner()),
            }),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires `&mut self`).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard present")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard present")
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_struct("Mutex").field("data", &&*g).finish(),
            None => f.write_str("Mutex(<locked>)"),
        }
    }
}

/// Outcome of a [`Condvar`] wait with a timeout.
#[derive(Debug, Clone, Copy)]
pub struct WaitTimeoutResult {
    timed_out: bool,
}

impl WaitTimeoutResult {
    /// True if the wait ended because the timeout elapsed.
    pub fn timed_out(&self) -> bool {
        self.timed_out
    }
}

/// A condition variable for [`Mutex`] guards.
#[derive(Default)]
pub struct Condvar {
    inner: sync::Condvar,
}

impl Condvar {
    /// Creates a condition variable.
    pub const fn new() -> Self {
        Condvar {
            inner: sync::Condvar::new(),
        }
    }

    /// Atomically releases the guard's lock and blocks until notified.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let g = guard.inner.take().expect("guard present");
        let g = self.inner.wait(g).unwrap_or_else(PoisonError::into_inner);
        guard.inner = Some(g);
    }

    /// Like [`Condvar::wait`], with an upper bound on the blocking time.
    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        let g = guard.inner.take().expect("guard present");
        let (g, res) = self
            .inner
            .wait_timeout(g, timeout)
            .unwrap_or_else(PoisonError::into_inner);
        guard.inner = Some(g);
        WaitTimeoutResult {
            timed_out: res.timed_out(),
        }
    }

    /// Wakes one waiter.
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    /// Wakes all waiters.
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

impl fmt::Debug for Condvar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Condvar")
    }
}

/// A non-poisoning reader–writer lock.
#[derive(Default)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

/// Shared-access RAII guard for [`RwLock`].
pub struct RwLockReadGuard<'a, T: ?Sized> {
    inner: sync::RwLockReadGuard<'a, T>,
}

/// Exclusive-access RAII guard for [`RwLock`].
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    inner: sync::RwLockWriteGuard<'a, T>,
}

impl<T> RwLock<T> {
    /// Creates an unlocked lock.
    pub const fn new(value: T) -> Self {
        RwLock {
            inner: sync::RwLock::new(value),
        }
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared access, blocking the calling OS thread.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard {
            inner: self.inner.read().unwrap_or_else(PoisonError::into_inner),
        }
    }

    /// Acquires exclusive access, blocking the calling OS thread.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard {
            inner: self.inner.write().unwrap_or_else(PoisonError::into_inner),
        }
    }

    /// Attempts shared access without blocking.
    pub fn try_read(&self) -> Option<RwLockReadGuard<'_, T>> {
        match self.inner.try_read() {
            Ok(g) => Some(RwLockReadGuard { inner: g }),
            Err(sync::TryLockError::Poisoned(p)) => Some(RwLockReadGuard {
                inner: p.into_inner(),
            }),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Attempts exclusive access without blocking.
    pub fn try_write(&self) -> Option<RwLockWriteGuard<'_, T>> {
        match self.inner.try_write() {
            Ok(g) => Some(RwLockWriteGuard { inner: g }),
            Err(sync::TryLockError::Poisoned(p)) => Some(RwLockWriteGuard {
                inner: p.into_inner(),
            }),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires `&mut self`).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_read() {
            Some(g) => f.debug_struct("RwLock").field("data", &&*g).finish(),
            None => f.write_str("RwLock(<locked>)"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
    }

    #[test]
    fn condvar_wakes_waiter() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = Arc::clone(&pair);
        let t = std::thread::spawn(move || {
            let mut done = p2.0.lock();
            while !*done {
                p2.1.wait(&mut done);
            }
        });
        std::thread::sleep(Duration::from_millis(10));
        *pair.0.lock() = true;
        pair.1.notify_all();
        t.join().unwrap();
    }

    #[test]
    fn wait_for_times_out() {
        let m = Mutex::new(());
        let cv = Condvar::new();
        let mut g = m.lock();
        let res = cv.wait_for(&mut g, Duration::from_millis(5));
        assert!(res.timed_out());
    }

    #[test]
    fn rwlock_try_paths() {
        let l = RwLock::new(5);
        let r = l.read();
        assert!(l.try_read().is_some());
        assert!(l.try_write().is_none());
        drop(r);
        assert_eq!(*l.try_write().unwrap(), 5);
    }

    #[test]
    fn locks_do_not_poison() {
        let m = Arc::new(Mutex::new(0));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison attempt");
        })
        .join();
        assert_eq!(*m.lock(), 0, "lock must remain usable after a panic");
    }
}
