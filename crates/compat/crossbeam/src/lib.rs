//! A minimal, offline-vendored subset of the `crossbeam` crate.
//!
//! The build environment has no network access to crates.io, so this
//! workspace ships simple lock-based stand-ins for the two crossbeam
//! facilities it uses: the MPMC [`channel`] and the work-stealing
//! [`deque`]. The implementations favor correctness and API fidelity over
//! the real crate's lock-freedom; the scheduler built on top behaves
//! identically, just with a coarser fast path.

pub mod channel {
    //! Multi-producer multi-consumer FIFO channels.

    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::{Arc, Condvar, Mutex, PoisonError};
    use std::time::{Duration, Instant};

    struct Shared<T> {
        queue: Mutex<VecDeque<T>>,
        cv: Condvar,
    }

    /// The sending half of an unbounded channel.
    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    /// The receiving half of an unbounded channel; cloneable (MPMC).
    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    /// Error returned by [`Sender::send`] (never produced here: the queue
    /// is unbounded and never "disconnects" while a `Sender` exists).
    #[derive(Debug, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    /// Error returned by [`Receiver::recv_timeout`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// No message arrived within the timeout.
        Timeout,
        /// All senders disconnected (not modelled; kept for API parity).
        Disconnected,
    }

    /// Creates an unbounded MPMC channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            queue: Mutex::new(VecDeque::new()),
            cv: Condvar::new(),
        });
        (
            Sender {
                shared: Arc::clone(&shared),
            },
            Receiver { shared },
        )
    }

    impl<T> Sender<T> {
        /// Enqueues a message and wakes one receiver.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            self.shared
                .queue
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .push_back(value);
            self.shared.cv.notify_one();
            Ok(())
        }

        /// Number of queued messages.
        pub fn len(&self) -> usize {
            self.shared
                .queue
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .len()
        }

        /// True when no messages are queued.
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }
    }

    impl<T> Receiver<T> {
        /// Dequeues a message, blocking up to `timeout`.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            let deadline = Instant::now() + timeout;
            let mut q = self
                .shared
                .queue
                .lock()
                .unwrap_or_else(PoisonError::into_inner);
            loop {
                if let Some(v) = q.pop_front() {
                    return Ok(v);
                }
                let now = Instant::now();
                if now >= deadline {
                    return Err(RecvTimeoutError::Timeout);
                }
                let (guard, _res) = self
                    .shared
                    .cv
                    .wait_timeout(q, deadline - now)
                    .unwrap_or_else(PoisonError::into_inner);
                q = guard;
            }
        }

        /// Dequeues without blocking.
        pub fn try_recv(&self) -> Option<T> {
            self.shared
                .queue
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .pop_front()
        }

        /// Number of queued messages.
        pub fn len(&self) -> usize {
            self.shared
                .queue
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .len()
        }

        /// True when no messages are queued.
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            Receiver {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> fmt::Debug for Sender<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "Sender(len={})", self.len())
        }
    }

    impl<T> fmt::Debug for Receiver<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "Receiver(len={})", self.len())
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn mpmc_roundtrip() {
            let (tx, rx) = unbounded();
            let rx2 = rx.clone();
            tx.send(1).unwrap();
            tx.send(2).unwrap();
            assert_eq!(rx.recv_timeout(Duration::from_millis(10)), Ok(1));
            assert_eq!(rx2.recv_timeout(Duration::from_millis(10)), Ok(2));
            assert_eq!(
                rx.recv_timeout(Duration::from_millis(5)),
                Err(RecvTimeoutError::Timeout)
            );
        }

        #[test]
        fn cross_thread_wakeup() {
            let (tx, rx) = unbounded();
            let t = std::thread::spawn(move || rx.recv_timeout(Duration::from_secs(5)));
            std::thread::sleep(Duration::from_millis(10));
            tx.send(42u32).unwrap();
            assert_eq!(t.join().unwrap(), Ok(42));
        }
    }
}

pub mod deque {
    //! Work-stealing deques: per-worker queues plus a global injector.

    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::{Arc, Mutex, PoisonError};

    /// Result of a steal attempt.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum Steal<T> {
        /// Nothing to steal.
        Empty,
        /// One stolen item.
        Success(T),
        /// Lost a race; caller may retry.
        Retry,
    }

    impl<T> Steal<T> {
        /// Converts to `Option`, discarding `Empty`/`Retry`.
        pub fn success(self) -> Option<T> {
            match self {
                Steal::Success(v) => Some(v),
                _ => None,
            }
        }
    }

    /// A worker-owned FIFO deque; cheap pushes and pops at the front for
    /// the owner, stealable from the back by [`Stealer`]s.
    pub struct Worker<T> {
        queue: Arc<Mutex<VecDeque<T>>>,
    }

    /// A handle stealing from some [`Worker`]'s deque.
    pub struct Stealer<T> {
        queue: Arc<Mutex<VecDeque<T>>>,
    }

    /// A global FIFO injection queue shared by all workers.
    pub struct Injector<T> {
        queue: Mutex<VecDeque<T>>,
    }

    impl<T> Worker<T> {
        /// Creates a FIFO worker deque.
        pub fn new_fifo() -> Self {
            Worker {
                queue: Arc::new(Mutex::new(VecDeque::new())),
            }
        }

        /// Enqueues onto the owner's end.
        pub fn push(&self, value: T) {
            self.queue
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .push_back(value);
        }

        /// Dequeues from the owner's end (FIFO order).
        pub fn pop(&self) -> Option<T> {
            self.queue
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .pop_front()
        }

        /// A steal handle onto this deque.
        pub fn stealer(&self) -> Stealer<T> {
            Stealer {
                queue: Arc::clone(&self.queue),
            }
        }

        /// Number of queued items.
        pub fn len(&self) -> usize {
            self.queue
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .len()
        }

        /// True when empty.
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }
    }

    impl<T> Stealer<T> {
        /// Steals one item.
        pub fn steal(&self) -> Steal<T> {
            match self
                .queue
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .pop_front()
            {
                Some(v) => Steal::Success(v),
                None => Steal::Empty,
            }
        }
    }

    impl<T> Clone for Stealer<T> {
        fn clone(&self) -> Self {
            Stealer {
                queue: Arc::clone(&self.queue),
            }
        }
    }

    impl<T> Injector<T> {
        /// Creates an empty injector.
        pub fn new() -> Self {
            Injector {
                queue: Mutex::new(VecDeque::new()),
            }
        }

        /// Enqueues an item.
        pub fn push(&self, value: T) {
            self.queue
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .push_back(value);
        }

        /// Steals one item.
        pub fn steal(&self) -> Steal<T> {
            match self
                .queue
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .pop_front()
            {
                Some(v) => Steal::Success(v),
                None => Steal::Empty,
            }
        }

        /// Steals a batch into `worker`'s deque and pops one item for the
        /// caller.
        pub fn steal_batch_and_pop(&self, worker: &Worker<T>) -> Steal<T> {
            let mut q = self.queue.lock().unwrap_or_else(PoisonError::into_inner);
            let first = match q.pop_front() {
                Some(v) => v,
                None => return Steal::Empty,
            };
            // Move up to half of the remainder over to the worker.
            let batch = q.len().div_ceil(2).min(32);
            if batch > 0 {
                let mut w = worker.queue.lock().unwrap_or_else(PoisonError::into_inner);
                for _ in 0..batch {
                    match q.pop_front() {
                        Some(v) => w.push_back(v),
                        None => break,
                    }
                }
            }
            Steal::Success(first)
        }

        /// Number of queued items.
        pub fn len(&self) -> usize {
            self.queue
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .len()
        }

        /// True when empty.
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }
    }

    impl<T> Default for Injector<T> {
        fn default() -> Self {
            Injector::new()
        }
    }

    impl<T> fmt::Debug for Worker<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "Worker(len={})", self.len())
        }
    }

    impl<T> fmt::Debug for Stealer<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("Stealer")
        }
    }

    impl<T> fmt::Debug for Injector<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "Injector(len={})", self.len())
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn worker_fifo_and_steal() {
            let w = Worker::new_fifo();
            let s = w.stealer();
            w.push(1);
            w.push(2);
            assert_eq!(s.steal().success(), Some(1));
            assert_eq!(w.pop(), Some(2));
            assert_eq!(s.steal().success(), None);
        }

        #[test]
        fn injector_batches_into_worker() {
            let inj = Injector::new();
            for i in 0..10 {
                inj.push(i);
            }
            let w = Worker::new_fifo();
            assert_eq!(inj.steal_batch_and_pop(&w).success(), Some(0));
            assert!(!w.is_empty(), "batch moved items to the worker");
            let mut seen = vec![];
            while let Some(v) = w.pop() {
                seen.push(v);
            }
            while let Some(v) = inj.steal().success() {
                seen.push(v);
            }
            seen.sort_unstable();
            assert_eq!(seen, (1..10).collect::<Vec<_>>());
        }
    }
}
