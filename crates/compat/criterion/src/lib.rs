//! A minimal, offline-vendored subset of the `criterion` crate.
//!
//! The build environment has no network access to crates.io, so this
//! workspace ships a small timing harness exposing the criterion API its
//! benches use: [`Criterion::benchmark_group`], `bench_function`,
//! [`Bencher::iter`], [`Throughput`] and the [`criterion_group!`] /
//! [`criterion_main!`] macros. Measurements are median-of-samples wall
//! clock, printed as `ns/iter` (plus derived element/byte throughput);
//! there is no statistical regression analysis or HTML report.

use std::time::{Duration, Instant};

/// Throughput annotation for a benchmark group.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Top-level harness handle.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup {
        println!("\nbenchmark group: {name}");
        BenchmarkGroup {
            group: name.to_string(),
            throughput: None,
        }
    }
}

/// A named collection of benchmarks sharing a throughput annotation.
#[derive(Debug)]
pub struct BenchmarkGroup {
    group: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup {
    /// Sets the per-iteration throughput used to derive rates.
    pub fn throughput(&mut self, t: Throughput) {
        self.throughput = Some(t);
    }

    /// Reduces sampling effort; accepted for API parity.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Bounds measurement time; accepted for API parity.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Runs one benchmark and prints its result.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher { ns_per_iter: 0.0 };
        f(&mut b);
        let mut line = format!("  {}/{name}: {:.1} ns/iter", self.group, b.ns_per_iter);
        if b.ns_per_iter > 0.0 {
            match self.throughput {
                Some(Throughput::Elements(n)) => {
                    let rate = n as f64 / (b.ns_per_iter / 1e9);
                    line.push_str(&format!(" ({rate:.0} elem/s)"));
                }
                Some(Throughput::Bytes(n)) => {
                    let rate = n as f64 / (b.ns_per_iter / 1e9) / (1024.0 * 1024.0);
                    line.push_str(&format!(" ({rate:.1} MiB/s)"));
                }
                None => {}
            }
        }
        println!("{line}");
        self
    }

    /// Ends the group.
    pub fn finish(&mut self) {}
}

/// Timing driver handed to each benchmark closure.
#[derive(Debug)]
pub struct Bencher {
    ns_per_iter: f64,
}

impl Bencher {
    /// Times `routine`, auto-scaling the iteration count to a sensible
    /// sample length; the median sample is reported.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        // Warm-up + calibration: how many iterations fill ~5 ms?
        let start = Instant::now();
        let mut calib_iters: u64 = 0;
        while start.elapsed() < Duration::from_millis(5) && calib_iters < 1_000_000 {
            std::hint::black_box(routine());
            calib_iters += 1;
        }
        let per_sample = calib_iters.max(1);
        let mut samples = Vec::with_capacity(9);
        for _ in 0..9 {
            let t = Instant::now();
            for _ in 0..per_sample {
                std::hint::black_box(routine());
            }
            samples.push(t.elapsed().as_nanos() as f64 / per_sample as f64);
        }
        samples.sort_by(|a, b| a.total_cmp(b));
        self.ns_per_iter = samples[samples.len() / 2];
    }
}

/// Re-export of the standard black box, like the real crate.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Collects benchmark functions into a runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($fun:path),+ $(,)?) => {
        fn $name() {
            let mut c = $crate::Criterion::default();
            $($fun(&mut c);)+
        }
    };
}

/// Entry point running the named groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_produces_positive_timing() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("smoke");
        g.throughput(Throughput::Elements(1));
        g.bench_function("add", |b| b.iter(|| std::hint::black_box(1 + 1)));
        g.finish();
    }
}
