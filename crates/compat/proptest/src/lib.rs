//! A minimal, offline-vendored subset of the `proptest` crate.
//!
//! The build environment has no network access to crates.io, so this
//! workspace ships the part of the proptest API its test suites use:
//! the [`proptest!`] macro, [`Strategy`](strategy::Strategy) with
//! `prop_map`/`prop_recursive`/`boxed`, range and regex-character-class
//! strategies, tuple strategies, [`collection::vec`], [`option::of`],
//! [`arbitrary::any`], [`prop_oneof!`] and the `prop_assert*` macros.
//!
//! Differences from the real crate, deliberately accepted:
//!
//! * **Greedy value shrinking** — a failing case is minimized by
//!   repeatedly trying strategy-proposed smaller candidates
//!   ([`Strategy::shrink`](strategy::Strategy::shrink), driven by
//!   [`minimize`]) and keeping whichever still fails, within a fixed
//!   candidate budget. Ranges shrink toward their start, collections
//!   toward their minimum length (then element-wise), strings toward
//!   shorter all-minimal-character forms, options toward `None`;
//!   `prop_map`/`prop_oneof!`/recursive strategies do not shrink (no
//!   inverse is available), unlike real proptest's value trees.
//! * Generation is a fixed deterministic stream seeded from the test name
//!   (override with `PROPTEST_SEED=<u64>`), so failures reproduce exactly.
//! * The string strategy supports the character-class pattern subset the
//!   suites use (`[a-z0-9]{1,16}`-style), not full regex.

pub mod test_runner {
    //! Configuration and the deterministic RNG.

    /// Subset of proptest's run configuration: the number of cases.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Cases generated per property.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` cases per property.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }

    /// Deterministic xorshift64* generator.
    #[derive(Debug, Clone)]
    pub struct TestRng(u64);

    impl TestRng {
        /// Seeds from the property name (stable across runs), or from
        /// `PROPTEST_SEED` when set.
        pub fn from_name(name: &str) -> Self {
            if let Ok(seed) = std::env::var("PROPTEST_SEED") {
                if let Ok(seed) = seed.parse::<u64>() {
                    return TestRng(seed | 1);
                }
            }
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
            TestRng(h | 1)
        }

        /// Next raw 64-bit value.
        pub fn next_u64(&mut self) -> u64 {
            let mut x = self.0;
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            self.0 = x;
            x.wrapping_mul(0x2545_F491_4F6C_DD1D)
        }

        /// Uniform value in `[0, bound)`; `bound` must be nonzero.
        pub fn below(&mut self, bound: u128) -> u128 {
            debug_assert!(bound > 0);
            let wide = ((self.next_u64() as u128) << 64) | self.next_u64() as u128;
            wide % bound
        }

        /// Uniform `f64` in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
        }
    }
}

pub mod strategy {
    //! Value-generation strategies.

    use std::ops::Range;
    use std::sync::Arc;

    use crate::test_runner::TestRng;

    /// Something that can generate values of a given type.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Generates one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Proposes strictly "smaller" candidates derived from `value`,
        /// each still satisfying this strategy's constraints (range
        /// bounds, length bounds, character classes). The failure
        /// minimizer ([`minimize`](crate::minimize)) greedily walks these;
        /// strategies with no meaningful notion of smaller (mapped,
        /// one-of, recursive) return nothing, which is the default.
        fn shrink(&self, _value: &Self::Value) -> Vec<Self::Value> {
            Vec::new()
        }

        /// Maps generated values through `f`.
        fn prop_map<U, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> U,
        {
            Map { base: self, f }
        }

        /// Builds a recursive strategy: `self` generates leaves, and
        /// `recurse` wraps an inner strategy into one more level. The
        /// `desired_size`/`expected_branch_size` hints are accepted for
        /// API parity but unused.
        fn prop_recursive<S2, F>(
            self,
            depth: u32,
            _desired_size: u32,
            _expected_branch_size: u32,
            recurse: F,
        ) -> Recursive<Self::Value>
        where
            Self: Sized + Send + Sync + 'static,
            S2: Strategy<Value = Self::Value> + Send + Sync + 'static,
            F: Fn(BoxedStrategy<Self::Value>) -> S2 + Send + Sync + 'static,
        {
            Recursive {
                base: self.boxed(),
                grow: Arc::new(move |inner| recurse(inner).boxed()),
                depth,
            }
        }

        /// Type-erases the strategy.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + Send + Sync + 'static,
        {
            BoxedStrategy {
                inner: Arc::new(self),
            }
        }
    }

    /// A type-erased, cheaply cloneable strategy.
    pub struct BoxedStrategy<T> {
        inner: Arc<dyn Strategy<Value = T> + Send + Sync>,
    }

    impl<T> Clone for BoxedStrategy<T> {
        fn clone(&self) -> Self {
            BoxedStrategy {
                inner: Arc::clone(&self.inner),
            }
        }
    }

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            self.inner.generate(rng)
        }
        fn shrink(&self, value: &T) -> Vec<T> {
            self.inner.shrink(value)
        }
    }

    /// Always generates a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// See [`Strategy::prop_map`].
    #[derive(Clone)]
    pub struct Map<S, F> {
        base: S,
        f: F,
    }

    impl<S, F, U> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> U,
    {
        type Value = U;
        fn generate(&self, rng: &mut TestRng) -> U {
            (self.f)(self.base.generate(rng))
        }
    }

    /// Uniform choice between boxed alternatives ([`prop_oneof!`]).
    ///
    /// [`prop_oneof!`]: crate::prop_oneof
    pub struct Union<T> {
        alternatives: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        /// A union over `alternatives` (must be non-empty).
        pub fn new(alternatives: Vec<BoxedStrategy<T>>) -> Self {
            assert!(
                !alternatives.is_empty(),
                "prop_oneof! needs at least one arm"
            );
            Union { alternatives }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let i = rng.below(self.alternatives.len() as u128) as usize;
            self.alternatives[i].generate(rng)
        }
    }

    impl<T> Clone for Union<T> {
        fn clone(&self) -> Self {
            Union {
                alternatives: self.alternatives.clone(),
            }
        }
    }

    /// See [`Strategy::prop_recursive`].
    pub struct Recursive<T> {
        pub(crate) base: BoxedStrategy<T>,
        pub(crate) grow: Arc<dyn Fn(BoxedStrategy<T>) -> BoxedStrategy<T> + Send + Sync>,
        pub(crate) depth: u32,
    }

    impl<T> Strategy for Recursive<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let levels = rng.below(self.depth as u128 + 1) as u32;
            let mut s = self.base.clone();
            for _ in 0..levels {
                s = (self.grow)(s);
            }
            s.generate(rng)
        }
    }

    impl<T> Clone for Recursive<T> {
        fn clone(&self) -> Self {
            Recursive {
                base: self.base.clone(),
                grow: Arc::clone(&self.grow),
                depth: self.depth,
            }
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let width = (self.end as i128 - self.start as i128) as u128;
                    (self.start as i128 + rng.below(width) as i128) as $t
                }
                fn shrink(&self, v: &$t) -> Vec<$t> {
                    // Toward the range start: the start itself, the
                    // midpoint, and one step down — the classic bisecting
                    // ladder, deduplicated.
                    let mut out = Vec::new();
                    if *v != self.start {
                        let mid = (self.start as i128
                            + (*v as i128 - self.start as i128) / 2) as $t;
                        let dec = *v - 1;
                        for c in [self.start, mid, dec] {
                            if c != *v && !out.contains(&c) {
                                out.push(c);
                            }
                        }
                    }
                    out
                }
            }
        )*};
    }

    int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            self.start + rng.unit_f64() * (self.end - self.start)
        }
    }

    /// Character-class string patterns: `"[a-z0-9]{1,16}"` generates 1–16
    /// chars drawn from the class; without a repetition suffix, exactly one.
    impl Strategy for &'static str {
        type Value = String;
        fn generate(&self, rng: &mut TestRng) -> String {
            let (alphabet, lo, hi) = parse_class_pattern(self)
                .unwrap_or_else(|| panic!("unsupported string strategy pattern: {self:?}"));
            let len = lo + rng.below((hi - lo + 1) as u128) as usize;
            (0..len)
                .map(|_| alphabet[rng.below(alphabet.len() as u128) as usize])
                .collect()
        }
        fn shrink(&self, v: &String) -> Vec<String> {
            let Some((alphabet, lo, _hi)) = parse_class_pattern(self) else {
                return Vec::new();
            };
            let chars: Vec<char> = v.chars().collect();
            let mut out = Vec::new();
            // Shorter first (down to the pattern minimum)...
            if chars.len() > lo {
                out.push(chars[..lo].iter().collect());
                let half = chars.len() / 2;
                if half > lo {
                    out.push(chars[..half].iter().collect());
                }
                out.push(chars[..chars.len() - 1].iter().collect());
            }
            // ...then each non-minimal character lowered to the class
            // minimum, one position at a time.
            let min = alphabet[0];
            for (i, &c) in chars.iter().enumerate() {
                if c != min {
                    let mut lowered = chars.clone();
                    lowered[i] = min;
                    out.push(lowered.into_iter().collect());
                }
            }
            out.retain(|c: &String| c != v);
            out.dedup();
            out
        }
    }

    /// Parses `[class]` or `[class]{m,n}`; returns (alphabet, min, max).
    fn parse_class_pattern(pat: &str) -> Option<(Vec<char>, usize, usize)> {
        let rest = pat.strip_prefix('[')?;
        let close = rest.find(']')?;
        let class: Vec<char> = rest[..close].chars().collect();
        let mut alphabet = Vec::new();
        let mut i = 0;
        while i < class.len() {
            if i + 2 < class.len() && class[i + 1] == '-' {
                let (a, b) = (class[i] as u32, class[i + 2] as u32);
                if a > b {
                    return None;
                }
                alphabet.extend((a..=b).filter_map(char::from_u32));
                i += 3;
            } else {
                alphabet.push(class[i]);
                i += 1;
            }
        }
        if alphabet.is_empty() {
            return None;
        }
        let suffix = &rest[close + 1..];
        if suffix.is_empty() {
            return Some((alphabet, 1, 1));
        }
        let reps = suffix.strip_prefix('{')?.strip_suffix('}')?;
        let (lo, hi) = match reps.split_once(',') {
            Some((lo, hi)) => (lo.trim().parse().ok()?, hi.trim().parse().ok()?),
            None => {
                let n = reps.trim().parse().ok()?;
                (n, n)
            }
        };
        (lo <= hi).then_some((alphabet, lo, hi))
    }

    macro_rules! tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+)
            where
                $($name::Value: Clone,)+
            {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
                #[allow(non_snake_case)]
                fn shrink(&self, value: &Self::Value) -> Vec<Self::Value> {
                    // One component at a time, the others held fixed.
                    let mut out = Vec::new();
                    tuple_shrink_slots!(self value out ($($name)+));
                    out
                }
            }
        };
    }

    /// Expands, per tuple slot, "for each candidate of that slot's
    /// strategy, emit the tuple with only that slot replaced".
    macro_rules! tuple_shrink_slots {
        ($self:ident $value:ident $out:ident ($($name:ident)+)) => {
            tuple_shrink_slots!(@walk $self $value $out () ($($name)+));
        };
        (@walk $self:ident $value:ident $out:ident ($($before:ident)*) ($cur:ident $($after:ident)*)) => {
            {
                let __cands = {
                    #[allow(unused_variables, non_snake_case)]
                    let ($($before,)* __slot_strategy, $($after,)*) = $self;
                    #[allow(unused_variables, non_snake_case)]
                    let ($($before,)* __slot_value, $($after,)*) = &*$value;
                    __slot_strategy.shrink(__slot_value)
                };
                #[allow(unused_variables, non_snake_case)]
                let ($($before,)* __slot_value, $($after,)*) = &*$value;
                for __cand in __cands {
                    $out.push((
                        $(::std::clone::Clone::clone($before),)*
                        __cand,
                        $(::std::clone::Clone::clone($after),)*
                    ));
                }
            }
            tuple_shrink_slots!(@walk $self $value $out ($($before)* $cur) ($($after)*));
        };
        (@walk $self:ident $value:ident $out:ident ($($before:ident)*) ()) => {};
    }

    tuple_strategy!(A);
    tuple_strategy!(A, B);
    tuple_strategy!(A, B, C);
    tuple_strategy!(A, B, C, D);
    tuple_strategy!(A, B, C, D, E);
    tuple_strategy!(A, B, C, D, E, F);
}

pub mod collection {
    //! Collection strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// Inclusive-exclusive length range for [`vec`](fn@vec).
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // exclusive
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    /// Strategy producing `Vec`s of values from `element`.
    #[derive(Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Generates vectors whose length is drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S>
    where
        S::Value: Clone,
    {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.size.lo + rng.below((self.size.hi - self.size.lo) as u128) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
        fn shrink(&self, v: &Vec<S::Value>) -> Vec<Vec<S::Value>> {
            let lo = self.size.lo;
            let mut out: Vec<Vec<S::Value>> = Vec::new();
            // Length first: minimum, half, one-shorter...
            if v.len() > lo {
                out.push(v[..lo].to_vec());
                let half = v.len() / 2;
                if half > lo {
                    out.push(v[..half].to_vec());
                }
                out.push(v[..v.len() - 1].to_vec());
                out.dedup_by_key(|c| c.len());
            }
            // ...then element-wise: every candidate of every position
            // (the minimizer's budget bounds the walk).
            for (i, elem) in v.iter().enumerate() {
                for cand in self.element.shrink(elem) {
                    let mut next = v.clone();
                    next[i] = cand;
                    out.push(next);
                }
            }
            out
        }
    }
}

pub mod option {
    //! `Option` strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy producing `Option`s of values from an inner strategy.
    #[derive(Clone)]
    pub struct OptionStrategy<S> {
        inner: S,
    }

    /// Generates `Some` values from `inner` about three times in four,
    /// `None` otherwise.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.below(4) == 0 {
                None
            } else {
                Some(self.inner.generate(rng))
            }
        }
        fn shrink(&self, v: &Option<S::Value>) -> Vec<Option<S::Value>> {
            match v {
                None => Vec::new(),
                Some(inner) => std::iter::once(None)
                    .chain(self.inner.shrink(inner).into_iter().map(Some))
                    .collect(),
            }
        }
    }
}

pub mod arbitrary {
    //! `any::<T>()` for primitive types.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;

    /// Types with a canonical full-domain strategy.
    pub trait Arbitrary: Sized {
        /// Generates an unconstrained value.
        fn arbitrary(rng: &mut TestRng) -> Self;

        /// Proposes smaller values (for failure minimization); default
        /// none.
        fn shrink_value(&self) -> Vec<Self> {
            Vec::new()
        }
    }

    macro_rules! int_arbitrary {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
                fn shrink_value(&self) -> Vec<$t> {
                    let mut out = Vec::new();
                    if *self != 0 {
                        // One step toward zero (overflow-safe at MIN for
                        // the signed types).
                        #[allow(unused_comparisons)]
                        let step = if *self > 0 { *self - 1 } else { *self + 1 };
                        for c in [0 as $t, *self / 2, step] {
                            if c != *self && !out.contains(&c) {
                                out.push(c);
                            }
                        }
                    }
                    out
                }
            }
        )*};
    }

    int_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
        fn shrink_value(&self) -> Vec<bool> {
            if *self {
                vec![false]
            } else {
                Vec::new()
            }
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> f64 {
            rng.unit_f64()
        }
    }

    /// The strategy returned by [`any`].
    #[derive(Debug, Clone)]
    pub struct Any<T>(PhantomData<fn() -> T>);

    /// Full-domain strategy for `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
        fn shrink(&self, value: &T) -> Vec<T> {
            value.shrink_value()
        }
    }
}

pub mod prelude {
    //! The glob-import surface: `use proptest::prelude::*;`.

    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Pins an un-annotated closure's parameter to `S::Value` (macro
/// plumbing: the `proptest!` expansion cannot name the tuple type its
/// strategies generate, so it routes closures through this identity
/// function to fix their argument type).
#[doc(hidden)]
pub fn with_value_fn<S, R, F>(_strategy: &S, f: F) -> F
where
    S: strategy::Strategy,
    F: Fn(&S::Value) -> R,
{
    f
}

/// Greedily minimizes a failing input: repeatedly asks `strategy` for
/// smaller candidates ([`Strategy::shrink`](strategy::Strategy::shrink))
/// and keeps the first one on which `fails` still returns `true`, until no
/// candidate fails or the evaluation budget (512 candidate runs) is
/// spent. The result is a local minimum — every one-step-smaller variant
/// of it passes.
pub fn minimize<S, F>(strategy: &S, mut current: S::Value, fails: F) -> S::Value
where
    S: strategy::Strategy + ?Sized,
    F: Fn(&S::Value) -> bool,
{
    let mut budget: usize = 512;
    loop {
        let mut improved = false;
        for candidate in strategy.shrink(&current) {
            if budget == 0 {
                return current;
            }
            budget -= 1;
            if fails(&candidate) {
                current = candidate;
                improved = true;
                break;
            }
        }
        if !improved {
            return current;
        }
    }
}

/// Defines property tests: each `fn name(arg in strategy, …) { body }`
/// becomes a `#[test]` running `body` over generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! {
            ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

#[macro_export]
#[doc(hidden)]
macro_rules! __proptest_items {
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::test_runner::ProptestConfig = $cfg;
            let __strategies = ($($strat,)+);
            let mut __rng = $crate::test_runner::TestRng::from_name(stringify!($name));
            // Runs the property on (a clone of) a candidate tuple; true =
            // the body panicked. Used both for detection and, silently,
            // by the shrinking loop.
            let __fails = $crate::with_value_fn(&__strategies, |__vals| -> bool {
                let ($($arg,)+) = ::std::clone::Clone::clone(__vals);
                ::std::panic::catch_unwind(
                    ::std::panic::AssertUnwindSafe(move || { $body }),
                )
                .is_err()
            });
            let __show = $crate::with_value_fn(&__strategies, |__vals| {
                let ($(ref $arg,)+) = *__vals;
                format!(
                    concat!($("\n  ", stringify!($arg), " = {:?}",)+),
                    $($arg),+
                )
            });
            for __case in 0..__config.cases {
                let __vals =
                    $crate::strategy::Strategy::generate(&__strategies, &mut __rng);
                if __fails(&__vals) {
                    let __original = __show(&__vals);
                    // Minimize with panic output suppressed (each shrink
                    // candidate that still fails would otherwise print a
                    // full panic report).
                    let __hook = ::std::panic::take_hook();
                    ::std::panic::set_hook(::std::boxed::Box::new(|_| {}));
                    let __min = $crate::minimize(&__strategies, __vals, &__fails);
                    ::std::panic::set_hook(__hook);
                    eprintln!(
                        "proptest property `{}` failed at case {}/{} with inputs:{}\n\
                         minimized to:{}",
                        stringify!($name),
                        __case + 1,
                        __config.cases,
                        __original,
                        __show(&__min),
                    );
                    // Re-run the minimized case outside catch_unwind so
                    // the test fails with its (smallest) panic.
                    let ($($arg,)+) = __min;
                    { $body }
                    ::std::panic!("minimized case no longer fails (flaky property)");
                }
            }
        }
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    (($cfg:expr)) => {};
}

/// Uniform choice between strategy arms (all arms must generate the same
/// type).
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($arm)),+
        ])
    };
}

/// Asserts a condition inside a property body.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Asserts equality inside a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Asserts inequality inside a property body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::from_name("ranges");
        for _ in 0..1000 {
            let v = (5u64..17).generate(&mut rng);
            assert!((5..17).contains(&v));
            let f = (0.25f64..0.5).generate(&mut rng);
            assert!((0.25..0.5).contains(&f));
            let i = (-5i64..5).generate(&mut rng);
            assert!((-5..5).contains(&i));
        }
    }

    #[test]
    fn class_patterns_generate_members() {
        let mut rng = TestRng::from_name("classes");
        for _ in 0..200 {
            let s = "[a-c0-1]{2,4}".generate(&mut rng);
            assert!((2..=4).contains(&s.len()));
            assert!(s.chars().all(|c| "abc01".contains(c)));
            let one = "[x-z]".generate(&mut rng);
            assert_eq!(one.len(), 1);
        }
    }

    #[test]
    fn vec_and_option_and_oneof_compose() {
        let mut rng = TestRng::from_name("compose");
        let strat = crate::collection::vec(
            (prop_oneof![Just(1u8), Just(2)], crate::option::of(0u32..9)),
            1..5,
        );
        for _ in 0..200 {
            let v = strat.generate(&mut rng);
            assert!((1..5).contains(&v.len()));
            for (a, b) in v {
                assert!(a == 1 || a == 2);
                if let Some(b) = b {
                    assert!(b < 9);
                }
            }
        }
    }

    #[test]
    fn recursion_terminates() {
        // Clone: tuple strategies require clonable values (the shrinker
        // rebuilds tuples component-wise).
        #[derive(Debug, Clone)]
        #[allow(dead_code)] // Leaf payload exists to exercise prop_map
        enum Tree {
            Leaf(i64),
            Node(Box<Tree>, Box<Tree>),
        }
        fn depth(t: &Tree) -> u32 {
            match t {
                Tree::Leaf(_) => 0,
                Tree::Node(a, b) => 1 + depth(a).max(depth(b)),
            }
        }
        let strat = any::<i64>()
            .prop_map(Tree::Leaf)
            .prop_recursive(4, 16, 2, |inner| {
                (inner.clone(), inner).prop_map(|(a, b)| Tree::Node(Box::new(a), Box::new(b)))
            });
        let mut rng = TestRng::from_name("trees");
        for _ in 0..100 {
            assert!(depth(&strat.generate(&mut rng)) <= 4);
        }
    }

    #[test]
    fn int_range_shrinks_toward_start() {
        // Property: "fails" whenever v >= 37. The minimum failing value in
        // 5..100 is exactly 37, and the greedy minimizer must find it.
        let strat = 5u64..100;
        let min = crate::minimize(&strat, 93, |v| *v >= 37);
        assert_eq!(min, 37);
        // Candidates never leave the range and never repeat the value.
        for v in [6u64, 50, 99] {
            for c in strat.shrink(&v) {
                assert!((5..100).contains(&c) && c != v, "bad candidate {c}");
            }
        }
        assert!(strat.shrink(&5).is_empty(), "the start cannot shrink");
    }

    #[test]
    fn vec_shrinks_length_then_elements() {
        // Property: fails while some element is >= 50. Minimal failing
        // input under our shrinks: exactly one element, exactly 50.
        let strat = crate::collection::vec(0u32..100, 0..20);
        let start = vec![73u32, 12, 88, 3, 51];
        let min = crate::minimize(&strat, start, |v| v.iter().any(|&x| x >= 50));
        assert_eq!(min, vec![50]);
    }

    #[test]
    fn string_shrinks_to_minimal_failing_form() {
        // Property: fails while the string has >= 3 chars. Minimal form:
        // three minimum-class characters.
        let strat = "[a-z]{1,8}";
        let min = crate::minimize(&strat, "qwxyzt".to_string(), |s| s.len() >= 3);
        assert_eq!(min, "aaa");
        // Shrinking respects the pattern's minimum length.
        let strat1 = "[a-e]{2,4}";
        for c in crate::strategy::Strategy::shrink(&strat1, &"dcb".to_string()) {
            assert!(c.len() >= 2, "candidate {c:?} under the pattern minimum");
            assert!(c.chars().all(|ch| ('a'..='e').contains(&ch)));
        }
    }

    #[test]
    fn tuples_and_options_shrink_componentwise() {
        let strat = (0u32..100, crate::option::of(0u32..100));
        // Fails while the sum of present numbers is >= 10. Slot order
        // drives the greedy walk: the first component bottoms out at 0,
        // then the option carries the remaining minimum — a local minimum
        // with sum exactly 10.
        let min = crate::minimize(&strat, (60, Some(40)), |(a, b)| a + b.unwrap_or(0) >= 10);
        assert_eq!(min, (0, Some(10)));
        let bools = crate::arbitrary::any::<bool>();
        assert_eq!(
            crate::strategy::Strategy::shrink(&bools, &true),
            vec![false]
        );
        assert!(crate::strategy::Strategy::shrink(&bools, &false).is_empty());
    }

    #[test]
    fn minimize_is_a_noop_without_failing_candidates() {
        // A predicate only the original satisfies: nothing shrinks.
        let strat = 0u64..100;
        assert_eq!(crate::minimize(&strat, 77, |v| *v == 77), 77);
        // And unshrinkable strategies (prop_map) stay untouched.
        let mapped = crate::strategy::Strategy::prop_map(0u32..10, |v| v * 2);
        assert!(crate::strategy::Strategy::shrink(&mapped, &6).is_empty());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// The macro itself: bindings, trailing comma, attributes.
        #[test]
        fn macro_smoke(a in 0u32..10, b in "[a-b]{1,3}",) {
            prop_assert!(a < 10);
            prop_assert!(!b.is_empty());
            prop_assert_eq!(b.len(), b.chars().count());
        }
    }
}
