//! A minimal, offline-vendored subset of the `proptest` crate.
//!
//! The build environment has no network access to crates.io, so this
//! workspace ships the part of the proptest API its test suites use:
//! the [`proptest!`] macro, [`Strategy`](strategy::Strategy) with
//! `prop_map`/`prop_recursive`/`boxed`, range and regex-character-class
//! strategies, tuple strategies, [`collection::vec`], [`option::of`],
//! [`arbitrary::any`], [`prop_oneof!`] and the `prop_assert*` macros.
//!
//! Differences from the real crate, deliberately accepted:
//!
//! * **No shrinking** — a failing case reports its inputs and panics; it
//!   is not minimized.
//! * Generation is a fixed deterministic stream seeded from the test name
//!   (override with `PROPTEST_SEED=<u64>`), so failures reproduce exactly.
//! * The string strategy supports the character-class pattern subset the
//!   suites use (`[a-z0-9]{1,16}`-style), not full regex.

pub mod test_runner {
    //! Configuration and the deterministic RNG.

    /// Subset of proptest's run configuration: the number of cases.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Cases generated per property.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` cases per property.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }

    /// Deterministic xorshift64* generator.
    #[derive(Debug, Clone)]
    pub struct TestRng(u64);

    impl TestRng {
        /// Seeds from the property name (stable across runs), or from
        /// `PROPTEST_SEED` when set.
        pub fn from_name(name: &str) -> Self {
            if let Ok(seed) = std::env::var("PROPTEST_SEED") {
                if let Ok(seed) = seed.parse::<u64>() {
                    return TestRng(seed | 1);
                }
            }
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
            TestRng(h | 1)
        }

        /// Next raw 64-bit value.
        pub fn next_u64(&mut self) -> u64 {
            let mut x = self.0;
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            self.0 = x;
            x.wrapping_mul(0x2545_F491_4F6C_DD1D)
        }

        /// Uniform value in `[0, bound)`; `bound` must be nonzero.
        pub fn below(&mut self, bound: u128) -> u128 {
            debug_assert!(bound > 0);
            let wide = ((self.next_u64() as u128) << 64) | self.next_u64() as u128;
            wide % bound
        }

        /// Uniform `f64` in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
        }
    }
}

pub mod strategy {
    //! Value-generation strategies.

    use std::ops::Range;
    use std::sync::Arc;

    use crate::test_runner::TestRng;

    /// Something that can generate values of a given type.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Generates one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<U, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> U,
        {
            Map { base: self, f }
        }

        /// Builds a recursive strategy: `self` generates leaves, and
        /// `recurse` wraps an inner strategy into one more level. The
        /// `desired_size`/`expected_branch_size` hints are accepted for
        /// API parity but unused.
        fn prop_recursive<S2, F>(
            self,
            depth: u32,
            _desired_size: u32,
            _expected_branch_size: u32,
            recurse: F,
        ) -> Recursive<Self::Value>
        where
            Self: Sized + Send + Sync + 'static,
            S2: Strategy<Value = Self::Value> + Send + Sync + 'static,
            F: Fn(BoxedStrategy<Self::Value>) -> S2 + Send + Sync + 'static,
        {
            Recursive {
                base: self.boxed(),
                grow: Arc::new(move |inner| recurse(inner).boxed()),
                depth,
            }
        }

        /// Type-erases the strategy.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + Send + Sync + 'static,
        {
            BoxedStrategy {
                inner: Arc::new(self),
            }
        }
    }

    /// A type-erased, cheaply cloneable strategy.
    pub struct BoxedStrategy<T> {
        inner: Arc<dyn Strategy<Value = T> + Send + Sync>,
    }

    impl<T> Clone for BoxedStrategy<T> {
        fn clone(&self) -> Self {
            BoxedStrategy {
                inner: Arc::clone(&self.inner),
            }
        }
    }

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            self.inner.generate(rng)
        }
    }

    /// Always generates a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// See [`Strategy::prop_map`].
    #[derive(Clone)]
    pub struct Map<S, F> {
        base: S,
        f: F,
    }

    impl<S, F, U> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> U,
    {
        type Value = U;
        fn generate(&self, rng: &mut TestRng) -> U {
            (self.f)(self.base.generate(rng))
        }
    }

    /// Uniform choice between boxed alternatives ([`prop_oneof!`]).
    ///
    /// [`prop_oneof!`]: crate::prop_oneof
    pub struct Union<T> {
        alternatives: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        /// A union over `alternatives` (must be non-empty).
        pub fn new(alternatives: Vec<BoxedStrategy<T>>) -> Self {
            assert!(
                !alternatives.is_empty(),
                "prop_oneof! needs at least one arm"
            );
            Union { alternatives }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let i = rng.below(self.alternatives.len() as u128) as usize;
            self.alternatives[i].generate(rng)
        }
    }

    impl<T> Clone for Union<T> {
        fn clone(&self) -> Self {
            Union {
                alternatives: self.alternatives.clone(),
            }
        }
    }

    /// See [`Strategy::prop_recursive`].
    pub struct Recursive<T> {
        pub(crate) base: BoxedStrategy<T>,
        pub(crate) grow: Arc<dyn Fn(BoxedStrategy<T>) -> BoxedStrategy<T> + Send + Sync>,
        pub(crate) depth: u32,
    }

    impl<T> Strategy for Recursive<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let levels = rng.below(self.depth as u128 + 1) as u32;
            let mut s = self.base.clone();
            for _ in 0..levels {
                s = (self.grow)(s);
            }
            s.generate(rng)
        }
    }

    impl<T> Clone for Recursive<T> {
        fn clone(&self) -> Self {
            Recursive {
                base: self.base.clone(),
                grow: Arc::clone(&self.grow),
                depth: self.depth,
            }
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let width = (self.end as i128 - self.start as i128) as u128;
                    (self.start as i128 + rng.below(width) as i128) as $t
                }
            }
        )*};
    }

    int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            self.start + rng.unit_f64() * (self.end - self.start)
        }
    }

    /// Character-class string patterns: `"[a-z0-9]{1,16}"` generates 1–16
    /// chars drawn from the class; without a repetition suffix, exactly one.
    impl Strategy for &'static str {
        type Value = String;
        fn generate(&self, rng: &mut TestRng) -> String {
            let (alphabet, lo, hi) = parse_class_pattern(self)
                .unwrap_or_else(|| panic!("unsupported string strategy pattern: {self:?}"));
            let len = lo + rng.below((hi - lo + 1) as u128) as usize;
            (0..len)
                .map(|_| alphabet[rng.below(alphabet.len() as u128) as usize])
                .collect()
        }
    }

    /// Parses `[class]` or `[class]{m,n}`; returns (alphabet, min, max).
    fn parse_class_pattern(pat: &str) -> Option<(Vec<char>, usize, usize)> {
        let rest = pat.strip_prefix('[')?;
        let close = rest.find(']')?;
        let class: Vec<char> = rest[..close].chars().collect();
        let mut alphabet = Vec::new();
        let mut i = 0;
        while i < class.len() {
            if i + 2 < class.len() && class[i + 1] == '-' {
                let (a, b) = (class[i] as u32, class[i + 2] as u32);
                if a > b {
                    return None;
                }
                alphabet.extend((a..=b).filter_map(char::from_u32));
                i += 3;
            } else {
                alphabet.push(class[i]);
                i += 1;
            }
        }
        if alphabet.is_empty() {
            return None;
        }
        let suffix = &rest[close + 1..];
        if suffix.is_empty() {
            return Some((alphabet, 1, 1));
        }
        let reps = suffix.strip_prefix('{')?.strip_suffix('}')?;
        let (lo, hi) = match reps.split_once(',') {
            Some((lo, hi)) => (lo.trim().parse().ok()?, hi.trim().parse().ok()?),
            None => {
                let n = reps.trim().parse().ok()?;
                (n, n)
            }
        };
        (lo <= hi).then_some((alphabet, lo, hi))
    }

    macro_rules! tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        };
    }

    tuple_strategy!(A);
    tuple_strategy!(A, B);
    tuple_strategy!(A, B, C);
    tuple_strategy!(A, B, C, D);
    tuple_strategy!(A, B, C, D, E);
    tuple_strategy!(A, B, C, D, E, F);
}

pub mod collection {
    //! Collection strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// Inclusive-exclusive length range for [`vec`].
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // exclusive
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    /// Strategy producing `Vec`s of values from `element`.
    #[derive(Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Generates vectors whose length is drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.size.lo + rng.below((self.size.hi - self.size.lo) as u128) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod option {
    //! `Option` strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy producing `Option`s of values from an inner strategy.
    #[derive(Clone)]
    pub struct OptionStrategy<S> {
        inner: S,
    }

    /// Generates `Some` values from `inner` about three times in four,
    /// `None` otherwise.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.below(4) == 0 {
                None
            } else {
                Some(self.inner.generate(rng))
            }
        }
    }
}

pub mod arbitrary {
    //! `any::<T>()` for primitive types.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;

    /// Types with a canonical full-domain strategy.
    pub trait Arbitrary: Sized {
        /// Generates an unconstrained value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! int_arbitrary {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    int_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> f64 {
            rng.unit_f64()
        }
    }

    /// The strategy returned by [`any`].
    #[derive(Debug, Clone)]
    pub struct Any<T>(PhantomData<fn() -> T>);

    /// Full-domain strategy for `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }
}

pub mod prelude {
    //! The glob-import surface: `use proptest::prelude::*;`.

    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Defines property tests: each `fn name(arg in strategy, …) { body }`
/// becomes a `#[test]` running `body` over generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! {
            ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

#[macro_export]
#[doc(hidden)]
macro_rules! __proptest_items {
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::test_runner::ProptestConfig = $cfg;
            let __strategies = ($($strat,)+);
            let mut __rng = $crate::test_runner::TestRng::from_name(stringify!($name));
            for __case in 0..__config.cases {
                let ($($arg,)+) =
                    $crate::strategy::Strategy::generate(&__strategies, &mut __rng);
                let __inputs = format!(
                    concat!($("\n  ", stringify!($arg), " = {:?}",)+),
                    $(&$arg),+
                );
                let __outcome = ::std::panic::catch_unwind(
                    ::std::panic::AssertUnwindSafe(move || { $body }),
                );
                if let Err(panic) = __outcome {
                    eprintln!(
                        "proptest property `{}` failed at case {}/{} with inputs:{}",
                        stringify!($name),
                        __case + 1,
                        __config.cases,
                        __inputs
                    );
                    ::std::panic::resume_unwind(panic);
                }
            }
        }
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    (($cfg:expr)) => {};
}

/// Uniform choice between strategy arms (all arms must generate the same
/// type).
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($arm)),+
        ])
    };
}

/// Asserts a condition inside a property body.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Asserts equality inside a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Asserts inequality inside a property body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::from_name("ranges");
        for _ in 0..1000 {
            let v = (5u64..17).generate(&mut rng);
            assert!((5..17).contains(&v));
            let f = (0.25f64..0.5).generate(&mut rng);
            assert!((0.25..0.5).contains(&f));
            let i = (-5i64..5).generate(&mut rng);
            assert!((-5..5).contains(&i));
        }
    }

    #[test]
    fn class_patterns_generate_members() {
        let mut rng = TestRng::from_name("classes");
        for _ in 0..200 {
            let s = "[a-c0-1]{2,4}".generate(&mut rng);
            assert!((2..=4).contains(&s.len()));
            assert!(s.chars().all(|c| "abc01".contains(c)));
            let one = "[x-z]".generate(&mut rng);
            assert_eq!(one.len(), 1);
        }
    }

    #[test]
    fn vec_and_option_and_oneof_compose() {
        let mut rng = TestRng::from_name("compose");
        let strat = crate::collection::vec(
            (prop_oneof![Just(1u8), Just(2)], crate::option::of(0u32..9)),
            1..5,
        );
        for _ in 0..200 {
            let v = strat.generate(&mut rng);
            assert!((1..5).contains(&v.len()));
            for (a, b) in v {
                assert!(a == 1 || a == 2);
                if let Some(b) = b {
                    assert!(b < 9);
                }
            }
        }
    }

    #[test]
    fn recursion_terminates() {
        #[derive(Debug)]
        #[allow(dead_code)] // Leaf payload exists to exercise prop_map
        enum Tree {
            Leaf(i64),
            Node(Box<Tree>, Box<Tree>),
        }
        fn depth(t: &Tree) -> u32 {
            match t {
                Tree::Leaf(_) => 0,
                Tree::Node(a, b) => 1 + depth(a).max(depth(b)),
            }
        }
        let strat = any::<i64>()
            .prop_map(Tree::Leaf)
            .prop_recursive(4, 16, 2, |inner| {
                (inner.clone(), inner).prop_map(|(a, b)| Tree::Node(Box::new(a), Box::new(b)))
            });
        let mut rng = TestRng::from_name("trees");
        for _ in 0..100 {
            assert!(depth(&strat.generate(&mut rng)) <= 4);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// The macro itself: bindings, trailing comma, attributes.
        #[test]
        fn macro_smoke(a in 0u32..10, b in "[a-b]{1,3}",) {
            prop_assert!(a < 10);
            prop_assert!(!b.is_empty());
            prop_assert_eq!(b.len(), b.chars().count());
        }
    }
}
