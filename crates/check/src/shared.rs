//! A declared shared cell: a mutable value whose reads and writes are
//! reported to the attached probe for happens-before race checking.
//!
//! The cell itself is internally synchronized (a `parking_lot` lock), so
//! it is never a *memory* race — what the checker flags is the absence of
//! a happens-before edge between accesses, i.e. an *ordering* race: two
//! threads touching shared state without any synchronization protocol
//! between them, which under a different schedule reorders.

use std::fmt;
use std::sync::Arc;

use eveth_core::check;

struct SharedInner<T> {
    cell: parking_lot::Mutex<T>,
    id: u64,
    name: String,
}

/// A probe-tracked shared mutable cell for use inside `sys_nbio` steps.
pub struct Shared<T> {
    inner: Arc<SharedInner<T>>,
}

impl<T> Clone for Shared<T> {
    fn clone(&self) -> Self {
        Shared {
            inner: Arc::clone(&self.inner),
        }
    }
}

impl<T: Send + 'static> Shared<T> {
    /// A new tracked cell; `name` appears in race reports.
    pub fn new(name: &str, value: T) -> Self {
        Shared {
            inner: Arc::new(SharedInner {
                cell: parking_lot::Mutex::new(value),
                id: check::new_cell_id(),
                name: name.to_string(),
            }),
        }
    }

    /// Replaces the value (a tracked write).
    pub fn set(&self, value: T) {
        check::access(self.inner.id, &self.inner.name, true);
        *self.inner.cell.lock() = value;
    }

    /// Mutates in place (a tracked write).
    pub fn update<R>(&self, f: impl FnOnce(&mut T) -> R) -> R {
        check::access(self.inner.id, &self.inner.name, true);
        f(&mut self.inner.cell.lock())
    }

    /// Observes without mutating (a tracked read).
    pub fn with<R>(&self, f: impl FnOnce(&T) -> R) -> R {
        check::access(self.inner.id, &self.inner.name, false);
        f(&self.inner.cell.lock())
    }
}

impl<T: Clone + Send + 'static> Shared<T> {
    /// Clones the value out (a tracked read).
    pub fn get(&self) -> T {
        self.with(|v| v.clone())
    }
}

impl<T> fmt::Debug for Shared<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Shared({})", self.inner.name)
    }
}
