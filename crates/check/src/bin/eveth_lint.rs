//! Workspace lint driver: walks the given roots (default: `crates`,
//! `src`, `tests`, `examples`, `benches`), scans every `.rs` file with
//! [`eveth_check::lint::scan_source`], prints `file:line: [rule] message`
//! diagnostics, and exits non-zero if anything fired.

use std::path::{Path, PathBuf};
use std::process::ExitCode;

use eveth_check::lint::scan_source;

fn collect_rs(root: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = std::fs::read_dir(root) else {
        return;
    };
    let mut entries: Vec<_> = entries.flatten().map(|e| e.path()).collect();
    entries.sort();
    for path in entries {
        if path.is_dir() {
            let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
            if name == "target" || name.starts_with('.') {
                continue;
            }
            collect_rs(&path, out);
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let roots: Vec<PathBuf> = if args.is_empty() {
        ["crates", "src", "tests", "examples", "benches"]
            .iter()
            .map(PathBuf::from)
            .filter(|p| p.exists())
            .collect()
    } else {
        args.iter().map(PathBuf::from).collect()
    };

    let mut files = Vec::new();
    for root in &roots {
        if root.is_file() {
            files.push(root.clone());
        } else {
            collect_rs(root, &mut files);
        }
    }

    let mut findings = 0usize;
    let mut scanned = 0usize;
    for file in &files {
        let Ok(src) = std::fs::read_to_string(file) else {
            continue;
        };
        scanned += 1;
        for d in scan_source(&file.display().to_string(), &src) {
            eprintln!("{d}");
            findings += 1;
        }
    }
    eprintln!("eveth_lint: {scanned} files scanned, {findings} finding(s)");
    if findings > 0 {
        ExitCode::from(1)
    } else {
        ExitCode::SUCCESS
    }
}
