//! # eveth-check — correctness tooling over the deterministic sim
//!
//! The paper's pitch is that application-level, monadic concurrency makes
//! scheduling explicit enough to *reason about*. This crate weaponizes
//! that: the deterministic simulator ([`eveth_simos::desrt`]) already
//! replays any schedule byte-for-byte, so correctness checking becomes
//! (1) *explore* many schedules, (2) *check* each one against a
//! happens-before model, (3) *replay* any failure exactly from its
//! `(seed, config)`.
//!
//! * [`explore::Explorer`] — reruns a closed sim program under `n`
//!   interleavings: schedule 0 is the golden Fifo schedule, the rest are
//!   PCT-style random-priority schedules
//!   ([`eveth_simos::desrt::SchedulePolicy::Pct`]) from a deterministic
//!   seed family.
//! * [`hb::HbProbe`] — vector clocks threaded through `sys_fork`,
//!   park/unpark, channel/MVar transfers, mutex release→acquire and STM
//!   commit order; reports unjustified wakeups, lost wakeups, waits-for
//!   deadlock cycles (with telemetry span names) and happens-before races
//!   on [`shared::Shared`] cells, plus an end-of-run
//!   [`hb::LeakReport`].
//! * [`lint`] — a source lint for monadic anti-patterns (blocking calls
//!   inside `sys_nbio`, lock guards held across `sync` points), run in CI
//!   via the `eveth_lint` binary.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod explore;
pub mod hb;
pub mod lint;
pub mod shared;

pub use explore::{schedule_count, Exploration, Explorer, RunRecord};
pub use hb::{CheckReport, DeadlockNode, HbProbe, LeakReport, Violation};
pub use shared::Shared;
