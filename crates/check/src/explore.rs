//! Schedule exploration: rerun a closed sim program under many
//! distinct-but-replayable interleavings.
//!
//! Schedule 0 is always [`SchedulePolicy::Fifo`] — the golden schedule
//! every existing test runs — and schedules `1..n` are PCT-style
//! random-priority schedules with seeds derived deterministically from
//! the explorer's base seed. A failure therefore reproduces exactly from
//! its `(seed, config)`: build the same [`SchedulePolicy`], rerun, and
//! the schedule fingerprint, violations and `SimReport` are
//! byte-identical ([`Explorer::run_one`] is the replay recipe).

use std::fmt::Write as _;
use std::sync::Arc;

use eveth_simos::des::SimClock;
use eveth_simos::desrt::{splitmix64, SchedulePolicy, SimConfig, SimRuntime};

use crate::hb::{CheckReport, HbProbe};

/// Outcome of one explored schedule.
#[derive(Debug, Clone)]
pub struct RunRecord {
    /// Position in the exploration (0 = the Fifo golden schedule).
    pub index: usize,
    /// The policy that produced this schedule — together with the
    /// explorer's `config`, everything needed to replay it.
    pub policy: SchedulePolicy,
    /// The checker's findings for this schedule.
    pub report: CheckReport,
    /// Error the program itself reported (e.g. a deadlocked `block_on`),
    /// if any.
    pub program_error: Option<String>,
    /// `Debug` rendering of the final `SimReport` — part of the replay
    /// digest, so virtual time must reproduce too.
    pub sim_debug: String,
}

impl RunRecord {
    /// True if the checker or the program itself failed on this schedule.
    pub fn failed(&self) -> bool {
        !self.report.passed() || self.program_error.is_some()
    }

    /// Full replay digest: schedule fingerprint + findings + final sim
    /// state. Two runs of the same `(seed, config)` must match exactly.
    pub fn digest(&self) -> String {
        format!(
            "{} | {:?} | {}",
            self.report.digest(),
            self.program_error,
            self.sim_debug
        )
    }
}

/// The whole exploration.
#[derive(Debug, Clone)]
pub struct Exploration {
    /// One record per schedule, in exploration order.
    pub runs: Vec<RunRecord>,
}

impl Exploration {
    /// Records that failed (checker findings or program error).
    pub fn failures(&self) -> Vec<&RunRecord> {
        self.runs.iter().filter(|r| r.failed()).collect()
    }

    /// Number of distinct schedule fingerprints observed.
    pub fn distinct_schedules(&self) -> usize {
        let mut fps: Vec<u64> = self.runs.iter().map(|r| r.report.fingerprint).collect();
        fps.sort_unstable();
        fps.dedup();
        fps.len()
    }

    /// True when every schedule was clean.
    pub fn passed(&self) -> bool {
        self.runs.iter().all(|r| !r.failed())
    }

    /// A `(seed, config)` failure artifact as JSON, or `None` if every
    /// schedule passed. Hand-rolled (no serde in this environment), shape:
    /// `{"seed":…,"config":{…},"failures":[{"index":…,"policy":{…},…}]}`.
    pub fn failure_json(&self, seed: u64, config: &SimConfig) -> Option<String> {
        let failures = self.failures();
        if failures.is_empty() {
            return None;
        }
        let mut out = String::new();
        let _ = write!(
            out,
            "{{\"seed\":{seed},\"config\":{{\"slice\":{},\"cpus\":{}}},\"failures\":[",
            config.slice, config.cpus
        );
        for (i, r) in failures.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let policy = match r.policy {
                SchedulePolicy::Fifo => "{\"kind\":\"fifo\"}".to_string(),
                SchedulePolicy::Pct {
                    seed,
                    change_points,
                } => format!(
                    "{{\"kind\":\"pct\",\"seed\":{seed},\"change_points\":{change_points}}}"
                ),
            };
            let _ = write!(
                out,
                "{{\"index\":{},\"policy\":{},\"fingerprint\":\"{:016x}\",\"schedule_len\":{},\"violations\":[",
                r.index, policy, r.report.fingerprint, r.report.schedule_len
            );
            for (j, v) in r.report.violations.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                out.push_str(&json_string(&v.to_string()));
            }
            out.push(']');
            if let Some(e) = &r.program_error {
                let _ = write!(out, ",\"program_error\":{}", json_string(e));
            }
            out.push('}');
        }
        out.push_str("]}");
        Some(out)
    }
}

fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Reruns a closed sim program under `schedules` interleavings.
#[derive(Debug, Clone)]
pub struct Explorer {
    /// How many schedules to run (schedule 0 is Fifo).
    pub schedules: usize,
    /// Base seed for the PCT seed family.
    pub seed: u64,
    /// Priority change points per PCT schedule.
    pub change_points: u32,
    /// Base sim configuration; the policy field is overridden per
    /// schedule. Use a small `slice` (e.g. 1) to maximize interleaving
    /// opportunities.
    pub config: SimConfig,
}

impl Explorer {
    /// An explorer with `slice = 1` (every step is a scheduling decision)
    /// and otherwise default config.
    pub fn new(schedules: usize, seed: u64) -> Self {
        Explorer {
            schedules,
            seed,
            change_points: 2,
            config: SimConfig {
                slice: 1,
                ..SimConfig::default()
            },
        }
    }

    /// The policy for schedule `index` of this explorer's seed family.
    pub fn policy_for(&self, index: usize) -> SchedulePolicy {
        if index == 0 {
            SchedulePolicy::Fifo
        } else {
            let mut state = self.seed ^ (index as u64).wrapping_mul(0xa076_1d64_78bd_642f);
            SchedulePolicy::Pct {
                seed: splitmix64(&mut state),
                change_points: self.change_points,
            }
        }
    }

    /// Runs `program` once under `policy` with a fresh runtime and probe.
    /// This is the replay entry point: the returned record's
    /// [`RunRecord::digest`] is a pure function of `(policy, config)`.
    pub fn run_one<F>(&self, index: usize, policy: SchedulePolicy, program: &F) -> RunRecord
    where
        F: Fn(&SimRuntime) -> Result<(), String>,
    {
        let config = SimConfig {
            policy: policy.clone(),
            ..self.config.clone()
        };
        let sim = SimRuntime::new(SimClock::new(), config);
        let probe = HbProbe::new();
        sim.set_check_probe(probe.clone() as Arc<dyn eveth_core::check::Probe>);
        let program_error = program(&sim).err();
        let sim_report = sim.run();
        let report = probe.finish(sim.armed_timers());
        RunRecord {
            index,
            policy,
            report,
            program_error,
            sim_debug: format!("{sim_report:?}"),
        }
    }

    /// Runs the full exploration: schedule 0 under Fifo, then
    /// `schedules - 1` PCT schedules from this explorer's seed family.
    pub fn explore<F>(&self, program: F) -> Exploration
    where
        F: Fn(&SimRuntime) -> Result<(), String>,
    {
        let runs = (0..self.schedules.max(1))
            .map(|i| self.run_one(i, self.policy_for(i), &program))
            .collect();
        Exploration { runs }
    }
}

/// Schedule count for tier-1 runs: `EVETH_CHECK_SCHEDULES` if set, else
/// `deep` under `EVETH_FULL=1`, else `quick`.
pub fn schedule_count(quick: usize, deep: usize) -> usize {
    if let Ok(v) = std::env::var("EVETH_CHECK_SCHEDULES") {
        if let Ok(n) = v.parse::<usize>() {
            return n.max(1);
        }
    }
    if std::env::var("EVETH_FULL")
        .map(|v| v == "1")
        .unwrap_or(false)
    {
        deep
    } else {
        quick
    }
}
