//! The happens-before checker: a [`Probe`] that threads vector clocks
//! through every causality edge the runtime exposes — `sys_fork`,
//! park/unpark, channel/MVar transfers, mutex release→acquire, STM commit
//! order — and derives four classes of finding:
//!
//! * **unjustified wakeups** — a thread was woken through a resource by a
//!   waker whose clock had not seen the sleeper's registration;
//! * **lost wakeups** — at quiescence, a thread is still parked on a
//!   resource whose availability *grew* after the registration (the wake
//!   it was owed went somewhere else — e.g. consumed by a cancelled
//!   `choose` loser that did not pass the baton);
//! * **deadlocks** — a cycle in the waits-for graph over parked threads
//!   and mutex holders, reported with thread spans and resource names;
//! * **data races** — two accesses to a declared shared cell (see
//!   [`crate::shared::Shared`]) unordered by the happens-before relation.
//!
//! The checker is *monitor-based*: every instrumented resource carries a
//! monitor clock that operations join and publish, so any two operations
//! on the same resource are ordered — matching the mutual exclusion the
//! primitives' internal locks actually provide. Registration ops
//! (`BlockTake`/`BlockPut`) publish **without ticking** the registering
//! thread's component: all registrations of one multi-way `choose` park
//! share a single epoch, so a waker that saw *any* of them is justified.

use std::collections::BTreeMap;
use std::fmt;
use std::sync::Arc;

use eveth_core::check::{OpKind, Probe, ResKind};
use eveth_core::engine::WaitKind;
use parking_lot::Mutex;

/// A vector clock: monadic thread id → event count.
pub type VClock = BTreeMap<u64, u64>;

fn join(into: &mut VClock, other: &VClock) {
    for (&t, &c) in other {
        let e = into.entry(t).or_insert(0);
        if c > *e {
            *e = c;
        }
    }
}

/// One registration a parked thread holds on an instrumented resource.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WaitOn {
    /// Resource id.
    pub rid: u64,
    /// Resource kind.
    pub res: ResKind,
    /// Which side the thread waits on: `0` = taker, `1` = putter.
    pub side: usize,
    /// Availability snapshot the registration observed.
    pub reg_avail: [u64; 2],
}

/// A correctness finding. `Debug` output is deterministic for a
/// deterministic schedule, so replay digests can compare violations
/// byte-for-byte.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Violation {
    /// A wake attributed to `rid` whose waker had not observed the
    /// target's registration epoch.
    UnjustifiedWake {
        /// The woken thread.
        target: u64,
        /// Telemetry span of the woken thread, if annotated.
        target_span: Option<String>,
        /// The waking thread.
        waker: u64,
        /// Telemetry span of the waker, if annotated.
        waker_span: Option<String>,
        /// Resource (first-seen index) the wake was attributed to.
        res: String,
    },
    /// A thread still parked at quiescence although the resource it
    /// registered on became available after its registration.
    LostWakeup {
        /// The starved thread.
        tid: u64,
        /// Telemetry span of the starved thread, if annotated.
        span: Option<String>,
        /// Resource (first-seen index) it is parked on.
        res: String,
        /// Side it waits on: `0` = taker, `1` = putter.
        side: usize,
        /// Availability its registration saw.
        reg_avail: u64,
        /// Availability at quiescence — strictly greater.
        final_avail: u64,
    },
    /// A cycle in the waits-for graph.
    Deadlock {
        /// The cycle, in order: each thread waits on the resource named
        /// in its entry, held by the next thread in the list.
        cycle: Vec<DeadlockNode>,
    },
    /// Two accesses to a declared shared cell unordered by happens-before.
    Race {
        /// Cell name as declared.
        cell: String,
        /// Earlier access: `(tid, span, was_write)`.
        first: (u64, Option<String>, bool),
        /// Later (racing) access: `(tid, span, was_write)`.
        second: (u64, Option<String>, bool),
    },
}

/// One hop of a deadlock cycle.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeadlockNode {
    /// The parked thread.
    pub tid: u64,
    /// Its telemetry span, if annotated.
    pub span: Option<String>,
    /// The resource (first-seen index) it is parked on.
    pub res: String,
    /// The thread holding that resource.
    pub holder: u64,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fn who(tid: u64, span: &Option<String>) -> String {
            match span {
                Some(s) => format!("t{tid}[{s}]"),
                None => format!("t{tid}"),
            }
        }
        match self {
            Violation::UnjustifiedWake {
                target,
                target_span,
                waker,
                waker_span,
                res,
            } => write!(
                f,
                "unjustified wakeup: {} woke {} via {} without having observed its registration",
                who(*waker, waker_span),
                who(*target, target_span),
                res
            ),
            Violation::LostWakeup {
                tid,
                span,
                res,
                side,
                reg_avail,
                final_avail,
            } => write!(
                f,
                "lost wakeup: {} parked as {} on {} (availability {} at registration, {} at quiescence)",
                who(*tid, span),
                if *side == 0 { "taker" } else { "putter" },
                res,
                reg_avail,
                final_avail
            ),
            Violation::Deadlock { cycle } => {
                write!(f, "deadlock:")?;
                for n in cycle {
                    write!(f, " {} waits on {} held by t{};", who(n.tid, &n.span), n.res, n.holder)?;
                }
                Ok(())
            }
            Violation::Race { cell, first, second } => write!(
                f,
                "data race on {cell}: {} {} unordered with {} {}",
                who(first.0, &first.1),
                if first.2 { "write" } else { "read" },
                who(second.0, &second.1),
                if second.2 { "write" } else { "read" },
            ),
        }
    }
}

/// End-of-run residue audit (the runtime-level version of the ad-hoc
/// assertions in `tests/scale.rs`).
#[derive(Debug, Clone, Default)]
pub struct LeakReport {
    /// Threads still alive at quiescence: `(tid, span, parked)`.
    pub live_threads: Vec<(u64, Option<String>, Option<WaitKind>)>,
    /// Wait-queue registrations still held by parked threads.
    pub registrations: usize,
    /// Armed (uncancelled, unfired) virtual timers.
    pub armed_timers: usize,
}

impl LeakReport {
    /// True when nothing outlived the run.
    pub fn is_clean(&self) -> bool {
        self.live_threads.is_empty() && self.registrations == 0 && self.armed_timers == 0
    }
}

/// Everything one checked run produced.
#[derive(Debug, Clone)]
pub struct CheckReport {
    /// All findings, in detection order.
    pub violations: Vec<Violation>,
    /// Residue audit at quiescence.
    pub leak: LeakReport,
    /// Hash chain over the sequence of scheduled thread ids — two runs
    /// with equal fingerprints executed the same schedule.
    pub fingerprint: u64,
    /// Number of scheduler turns the run took.
    pub schedule_len: u64,
}

impl CheckReport {
    /// True when the run produced no findings.
    pub fn passed(&self) -> bool {
        self.violations.is_empty()
    }

    /// A stable digest of the run: fingerprint, schedule length and all
    /// findings. Two replays of the same `(seed, config)` must produce
    /// byte-identical digests.
    pub fn digest(&self) -> String {
        format!(
            "{:016x}/{} {:?}",
            self.fingerprint, self.schedule_len, self.violations
        )
    }
}

struct ThreadSt {
    clock: VClock,
    span: Option<String>,
    parked: Option<(WaitKind, Vec<WaitOn>)>,
    alive: bool,
}

struct ResSt {
    kind: ResKind,
    monitor: VClock,
    holder: Option<u64>,
    last_avail: [u64; 2],
    index: usize,
}

struct CellAccess {
    tid: u64,
    epoch: u64,
    span: Option<String>,
    write: bool,
}

struct CellSt {
    last_write: Option<CellAccess>,
    reads: Vec<CellAccess>,
    reported: bool,
}

#[derive(Default)]
struct HbState {
    threads: BTreeMap<u64, ThreadSt>,
    res: BTreeMap<u64, ResSt>,
    cells: BTreeMap<u64, CellSt>,
    violations: Vec<Violation>,
    fingerprint: u64,
    schedule_len: u64,
}

impl HbState {
    fn thread(&mut self, tid: u64) -> &mut ThreadSt {
        self.threads.entry(tid).or_insert_with(|| {
            let mut clock = VClock::new();
            clock.insert(tid, 1);
            ThreadSt {
                clock,
                span: None,
                parked: None,
                alive: true,
            }
        })
    }

    fn res(&mut self, rid: u64, kind: ResKind) -> &mut ResSt {
        let index = self.res.len();
        self.res.entry(rid).or_insert_with(|| ResSt {
            kind,
            monitor: VClock::new(),
            holder: None,
            last_avail: [0, 0],
            index,
        })
    }

    fn res_name(&self, rid: u64) -> String {
        match self.res.get(&rid) {
            Some(r) => format!("{}#{}", r.kind.name(), r.index),
            None => format!("res#{rid}"),
        }
    }

    fn span_of(&self, tid: u64) -> Option<String> {
        self.threads.get(&tid).and_then(|t| t.span.clone())
    }
}

/// The happens-before probe. Attach one per run via
/// `SimRuntime::set_check_probe`, drive the program, then call
/// [`HbProbe::finish`].
pub struct HbProbe {
    st: Mutex<HbState>,
}

impl fmt::Debug for HbProbe {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let st = self.st.lock();
        write!(
            f,
            "HbProbe(threads={}, resources={}, violations={})",
            st.threads.len(),
            st.res.len(),
            st.violations.len()
        )
    }
}

impl HbProbe {
    /// A fresh probe with empty state.
    pub fn new() -> Arc<Self> {
        Arc::new(HbProbe {
            st: Mutex::new(HbState::default()),
        })
    }

    /// Closes the run: applies the quiescence-only checks (lost wakeups,
    /// deadlock cycles) and assembles the report. `armed_timers` comes
    /// from the runtime (`SimRuntime::armed_timers`).
    pub fn finish(&self, armed_timers: usize) -> CheckReport {
        let mut st = self.st.lock();

        // Lost wakeups: a parked registration whose side of the resource
        // is *more* available now than when it registered was owed a wake
        // that never arrived.
        let mut lost = Vec::new();
        for (&tid, t) in &st.threads {
            let Some((_, regs)) = &t.parked else { continue };
            for reg in regs {
                let Some(r) = st.res.get(&reg.rid) else {
                    continue;
                };
                if r.last_avail[reg.side] > reg.reg_avail[reg.side] {
                    lost.push(Violation::LostWakeup {
                        tid,
                        span: t.span.clone(),
                        res: format!("{}#{}", r.kind.name(), r.index),
                        side: reg.side,
                        reg_avail: reg.reg_avail[reg.side],
                        final_avail: r.last_avail[reg.side],
                    });
                }
            }
        }
        st.violations.extend(lost);

        // Waits-for graph: each parked thread blocked on exactly one
        // mutex with a known live holder contributes one edge. Every node
        // has at most one outgoing edge, so cycle detection is pointer
        // chasing.
        let mut edges: BTreeMap<u64, (u64, u64)> = BTreeMap::new(); // tid -> (holder, rid)
        for (&tid, t) in &st.threads {
            let Some((_, regs)) = &t.parked else { continue };
            let [reg] = regs.as_slice() else { continue };
            let Some(r) = st.res.get(&reg.rid) else {
                continue;
            };
            if r.kind == ResKind::Mutex {
                if let Some(h) = r.holder {
                    if h != tid {
                        edges.insert(tid, (h, reg.rid));
                    }
                }
            }
        }
        let mut in_cycle: Vec<u64> = Vec::new();
        let mut cycles: Vec<Vec<u64>> = Vec::new();
        for &start in edges.keys() {
            if in_cycle.contains(&start) {
                continue;
            }
            let mut path = vec![start];
            let mut cur = start;
            while let Some(&(next, _)) = edges.get(&cur) {
                if let Some(pos) = path.iter().position(|&p| p == next) {
                    let cycle: Vec<u64> = path[pos..].to_vec();
                    if !cycles.iter().any(|c| c.contains(&cycle[0])) {
                        in_cycle.extend(cycle.iter().copied());
                        cycles.push(cycle);
                    }
                    break;
                }
                path.push(next);
                cur = next;
            }
        }
        let deadlocks: Vec<Violation> = cycles
            .into_iter()
            .map(|cycle| Violation::Deadlock {
                cycle: cycle
                    .iter()
                    .map(|&tid| {
                        let (holder, rid) = edges[&tid];
                        DeadlockNode {
                            tid,
                            span: st.span_of(tid),
                            res: st.res_name(rid),
                            holder,
                        }
                    })
                    .collect(),
            })
            .collect();
        st.violations.extend(deadlocks);

        let live_threads: Vec<(u64, Option<String>, Option<WaitKind>)> = st
            .threads
            .iter()
            .filter(|(_, t)| t.alive)
            .map(|(&tid, t)| (tid, t.span.clone(), t.parked.as_ref().map(|(k, _)| *k)))
            .collect();
        let registrations = st
            .threads
            .values()
            .filter_map(|t| t.parked.as_ref())
            .map(|(_, regs)| regs.len())
            .sum();

        CheckReport {
            violations: st.violations.clone(),
            leak: LeakReport {
                live_threads,
                registrations,
                armed_timers,
            },
            fingerprint: st.fingerprint,
            schedule_len: st.schedule_len,
        }
    }
}

impl Probe for HbProbe {
    fn on_scheduled(&self, tid: u64) {
        let mut st = self.st.lock();
        // splitmix64-style chain, keyed by turn order and tid.
        let mut x = st.fingerprint ^ tid.wrapping_mul(0x9e37_79b9_7f4a_7c15);
        x = eveth_simos::desrt::splitmix64(&mut x);
        st.fingerprint = x;
        st.schedule_len += 1;
        st.thread(tid);
    }

    fn on_spawn(&self, tid: u64, parent: Option<u64>) {
        let mut st = self.st.lock();
        let parent_clock = parent.and_then(|p| st.threads.get(&p).map(|t| t.clock.clone()));
        let child = st.thread(tid);
        if let Some(pc) = parent_clock {
            join(&mut child.clock, &pc);
            *child.clock.entry(tid).or_insert(0) += 1;
        }
    }

    fn on_exit(&self, tid: u64) {
        let mut st = self.st.lock();
        let t = st.thread(tid);
        t.alive = false;
        t.parked = None;
    }

    fn on_park(&self, tid: u64, kind: WaitKind) {
        let mut st = self.st.lock();
        st.thread(tid).parked = Some((kind, Vec::new()));
    }

    fn on_wake(&self, target: u64, waker: Option<u64>, rid: Option<u64>) {
        let mut st = self.st.lock();
        st.thread(target);

        // Justification: a wake attributed to a resource must come from a
        // waker that has observed the target's registration epoch (the
        // registration published the target's clock to the resource
        // monitor; any op the waker did on that resource joined it).
        if let (Some(w), Some(r)) = (waker, rid) {
            if w != target {
                let target_epoch = st
                    .threads
                    .get(&target)
                    .and_then(|t| t.clock.get(&target).copied())
                    .unwrap_or(0);
                let waker_knows = st
                    .threads
                    .get(&w)
                    .and_then(|t| t.clock.get(&target).copied())
                    .unwrap_or(0);
                if waker_knows < target_epoch {
                    let v = Violation::UnjustifiedWake {
                        target,
                        target_span: st.span_of(target),
                        waker: w,
                        waker_span: st.span_of(w),
                        res: st.res_name(r),
                    };
                    st.violations.push(v);
                }
            }
        }

        let waker_clock = waker.and_then(|w| st.threads.get(&w).map(|t| t.clock.clone()));
        let t = st.thread(target);
        if let Some(wc) = waker_clock {
            join(&mut t.clock, &wc);
        }
        *t.clock.entry(target).or_insert(0) += 1;
        t.parked = None;
    }

    fn on_annotate(&self, tid: u64, name: &str) {
        let mut st = self.st.lock();
        st.thread(tid).span = Some(name.to_string());
    }

    fn on_op(&self, tid: Option<u64>, rid: u64, res: ResKind, op: OpKind, avail: [u64; 2]) {
        let mut st = self.st.lock();
        {
            let r = st.res(rid, res);
            r.last_avail = avail;
        }
        let Some(tid) = tid else {
            // Op outside any monadic turn (host-thread setup): track
            // availability and holders, but there is no clock to thread.
            if op == OpKind::Release {
                st.res(rid, res).holder = None;
            }
            return;
        };
        match op {
            OpKind::Acquire => st.res(rid, res).holder = Some(tid),
            OpKind::Release => st.res(rid, res).holder = None,
            _ => {}
        }

        st.thread(tid);
        let monitor = st
            .res
            .get(&rid)
            .map(|r| r.monitor.clone())
            .unwrap_or_default();
        let registering = matches!(op, OpKind::BlockTake | OpKind::BlockPut);
        let clock = {
            let t = st.thread(tid);
            join(&mut t.clock, &monitor);
            if !registering {
                // Registrations share the park's epoch: do not tick, so a
                // waker that saw *any* registration of this park (through
                // any of the choose branches' resources) is justified.
                *t.clock.entry(tid).or_insert(0) += 1;
            }
            t.clock.clone()
        };
        {
            let r = st.res(rid, res);
            join(&mut r.monitor, &clock);
        }
        if registering {
            let side = if op == OpKind::BlockTake { 0 } else { 1 };
            let t = st.thread(tid);
            if let Some((_, regs)) = &mut t.parked {
                regs.push(WaitOn {
                    rid,
                    res,
                    side,
                    reg_avail: avail,
                });
            }
        }
    }

    fn on_access(&self, tid: u64, cell: u64, name: &str, write: bool) {
        let mut st = self.st.lock();
        st.thread(tid);
        let clock = st.thread(tid).clock.clone();
        let span = st.span_of(tid);
        let epoch = clock.get(&tid).copied().unwrap_or(0);
        let cell_st = st.cells.entry(cell).or_insert_with(|| CellSt {
            last_write: None,
            reads: Vec::new(),
            reported: false,
        });

        let mut race: Option<Violation> = None;
        let mut check_prior = |prior: &CellAccess, reported: &mut bool| {
            if prior.tid != tid
                && clock.get(&prior.tid).copied().unwrap_or(0) < prior.epoch
                && !*reported
            {
                *reported = true;
                race = Some(Violation::Race {
                    cell: name.to_string(),
                    first: (prior.tid, prior.span.clone(), prior.write),
                    second: (tid, span.clone(), write),
                });
            }
        };
        let mut reported = cell_st.reported;
        if let Some(w) = &cell_st.last_write {
            check_prior(w, &mut reported);
        }
        if write {
            for r in &cell_st.reads {
                check_prior(r, &mut reported);
            }
        }
        cell_st.reported = reported;

        if write {
            cell_st.last_write = Some(CellAccess {
                tid,
                epoch,
                span: span.clone(),
                write: true,
            });
            cell_st.reads.clear();
        } else {
            match cell_st.reads.iter_mut().find(|r| r.tid == tid) {
                Some(r) => r.epoch = epoch,
                None => cell_st.reads.push(CellAccess {
                    tid,
                    epoch,
                    span: span.clone(),
                    write: false,
                }),
            }
        }
        if let Some(v) = race {
            st.violations.push(v);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fork_edge_orders_parent_before_child() {
        let p = HbProbe::new();
        p.on_scheduled(1);
        p.on_access(1, 10, "cell", true);
        p.on_spawn(2, Some(1));
        p.on_scheduled(2);
        p.on_access(2, 10, "cell", true);
        let report = p.finish(0);
        assert!(report.passed(), "fork edge must order accesses: {report:?}");
    }

    #[test]
    fn unordered_writes_race() {
        let p = HbProbe::new();
        p.on_spawn(1, None);
        p.on_spawn(2, None);
        p.on_scheduled(1);
        p.on_access(1, 10, "cell", true);
        p.on_scheduled(2);
        p.on_access(2, 10, "cell", true);
        let report = p.finish(0);
        assert_eq!(report.violations.len(), 1);
        assert!(matches!(report.violations[0], Violation::Race { .. }));
    }

    #[test]
    fn monitor_orders_cross_thread_ops() {
        // t1 publishes through a channel op; t2 consumes through the same
        // channel: t2's write is ordered after t1's.
        let p = HbProbe::new();
        p.on_scheduled(1);
        p.on_access(1, 10, "cell", true);
        p.on_op(Some(1), 77, ResKind::Chan, OpKind::Publish, [1, 0]);
        p.on_scheduled(2);
        p.on_op(Some(2), 77, ResKind::Chan, OpKind::Consume, [0, 0]);
        p.on_access(2, 10, "cell", true);
        assert!(p.finish(0).passed());
    }

    #[test]
    fn abba_cycle_is_detected() {
        let p = HbProbe::new();
        // t1 holds mutex A (rid 1), t2 holds mutex B (rid 2); both park on
        // the other.
        p.on_scheduled(1);
        p.on_op(Some(1), 1, ResKind::Mutex, OpKind::Acquire, [0, 0]);
        p.on_scheduled(2);
        p.on_op(Some(2), 2, ResKind::Mutex, OpKind::Acquire, [0, 0]);
        p.on_park(1, WaitKind::Lock);
        p.on_op(Some(1), 2, ResKind::Mutex, OpKind::BlockTake, [0, 0]);
        p.on_park(2, WaitKind::Lock);
        p.on_op(Some(2), 1, ResKind::Mutex, OpKind::BlockTake, [0, 0]);
        let report = p.finish(0);
        assert_eq!(report.violations.len(), 1, "{report:?}");
        assert!(matches!(&report.violations[0], Violation::Deadlock { cycle } if cycle.len() == 2));
    }

    #[test]
    fn parked_taker_with_grown_avail_is_lost_wakeup() {
        let p = HbProbe::new();
        p.on_scheduled(1);
        p.on_park(1, WaitKind::Lock);
        p.on_op(Some(1), 5, ResKind::Chan, OpKind::BlockTake, [0, 0]);
        p.on_scheduled(2);
        p.on_op(Some(2), 5, ResKind::Chan, OpKind::Publish, [1, 0]);
        // Nobody woke t1 although an item arrived.
        let report = p.finish(0);
        assert!(matches!(
            &report.violations[..],
            [Violation::LostWakeup { tid: 1, .. }]
        ));
    }

    #[test]
    fn justified_wake_passes_unjustified_fails() {
        let p = HbProbe::new();
        p.on_scheduled(1);
        p.on_park(1, WaitKind::Lock);
        p.on_op(Some(1), 5, ResKind::Chan, OpKind::BlockTake, [0, 0]);
        // t2 publishes (joins the monitor, so it has seen t1's
        // registration) then wakes t1: justified.
        p.on_scheduled(2);
        p.on_op(Some(2), 5, ResKind::Chan, OpKind::Publish, [1, 0]);
        p.on_wake(1, Some(2), Some(5));
        assert!(p.finish(0).passed());

        let p = HbProbe::new();
        p.on_scheduled(1);
        p.on_park(1, WaitKind::Lock);
        p.on_op(Some(1), 5, ResKind::Chan, OpKind::BlockTake, [0, 0]);
        // t3 wakes t1 via the channel without any op on it: unjustified.
        p.on_scheduled(3);
        p.on_wake(1, Some(3), Some(5));
        let report = p.finish(0);
        assert!(matches!(
            &report.violations[..],
            [Violation::UnjustifiedWake { .. }]
        ));
    }
}
