//! A source-level lint for monadic anti-patterns.
//!
//! No parser framework is available in this build environment, so the
//! lint works on a *masked* copy of each source file — comments and
//! string/char literals blanked out, byte positions and line numbers
//! preserved — with hand-rolled paren/brace matching. Two rules:
//!
//! * **`nbio-blocking`** — a blocking construct (`sync(..)`,
//!   `block_on(..)`, `sys_park`/`sys_sleep`/`sys_epoll_wait`,
//!   `atomically(..)`) inside a `sys_nbio(..)` / `with_nbio(..)` closure.
//!   An nbio step is promised to be non-blocking; building or driving a
//!   blocking computation inside one either deadlocks the worker or
//!   silently discards the blocking part.
//! * **`guard-across-sync`** — a `let g = ….lock();` guard still live
//!   (not dropped, block not closed) when one of the same blocking
//!   constructs runs. Parking the monadic thread while holding a host
//!   lock is a classic lost-wakeup/deadlock source.
//!
//! Findings can be waived with an allowlist comment on the same line or
//! the line above: `// lint: allow(nbio-blocking)` or
//! `// lint: allow(guard-across-sync)`.

use std::fmt;

/// Which rule fired.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Rule {
    /// Blocking construct inside a `sys_nbio`/`with_nbio` closure.
    NbioBlocking,
    /// Lock guard held across a blocking construct.
    GuardAcrossSync,
}

impl Rule {
    /// The rule's allowlist name.
    pub fn name(self) -> &'static str {
        match self {
            Rule::NbioBlocking => "nbio-blocking",
            Rule::GuardAcrossSync => "guard-across-sync",
        }
    }
}

/// One finding.
#[derive(Debug, Clone)]
pub struct Diagnostic {
    /// File the finding is in (as passed to [`scan_source`]).
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    /// Which rule fired.
    pub rule: Rule,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file,
            self.line,
            self.rule.name(),
            self.message
        )
    }
}

/// Calls that park, sleep or otherwise drive the scheduler — never legal
/// inside an nbio step, dangerous under a held guard.
const BLOCKING: &[&str] = &[
    "sync",
    "block_on",
    "block_on_result",
    "sys_park",
    "sys_sleep",
    "sys_epoll_wait",
    "atomically",
];

/// Replaces comment bodies and string/char literal contents with spaces,
/// preserving length and newlines, so position-based scanning sees only
/// code. Returns the masked text.
fn mask(src: &str) -> String {
    let b = src.as_bytes();
    let mut out = Vec::with_capacity(b.len());
    let mut i = 0;
    while i < b.len() {
        match b[i] {
            b'/' if i + 1 < b.len() && b[i + 1] == b'/' => {
                while i < b.len() && b[i] != b'\n' {
                    out.push(b' ');
                    i += 1;
                }
            }
            b'/' if i + 1 < b.len() && b[i + 1] == b'*' => {
                let mut depth = 1;
                out.push(b' ');
                out.push(b' ');
                i += 2;
                while i < b.len() && depth > 0 {
                    if b[i] == b'/' && i + 1 < b.len() && b[i + 1] == b'*' {
                        depth += 1;
                        out.push(b' ');
                        out.push(b' ');
                        i += 2;
                    } else if b[i] == b'*' && i + 1 < b.len() && b[i + 1] == b'/' {
                        depth -= 1;
                        out.push(b' ');
                        out.push(b' ');
                        i += 2;
                    } else {
                        out.push(if b[i] == b'\n' { b'\n' } else { b' ' });
                        i += 1;
                    }
                }
            }
            b'r' if i + 1 < b.len() && (b[i + 1] == b'"' || b[i + 1] == b'#') => {
                // Raw string r"…" / r#"…"# (also br…, caught via the b
                // arm falling through to here is unnecessary: br is rare
                // in this tree).
                let start = i;
                let mut j = i + 1;
                let mut hashes = 0;
                while j < b.len() && b[j] == b'#' {
                    hashes += 1;
                    j += 1;
                }
                if j < b.len() && b[j] == b'"' {
                    j += 1;
                    // find closing quote followed by `hashes` hashes
                    'raw: while j < b.len() {
                        if b[j] == b'"' {
                            let mut k = j + 1;
                            let mut h = 0;
                            while k < b.len() && h < hashes && b[k] == b'#' {
                                h += 1;
                                k += 1;
                            }
                            if h == hashes {
                                j = k;
                                break 'raw;
                            }
                        }
                        j += 1;
                    }
                    for &c in &b[start..j.min(b.len())] {
                        out.push(if c == b'\n' { b'\n' } else { b' ' });
                    }
                    i = j;
                } else {
                    out.push(b[i]);
                    i += 1;
                }
            }
            b'"' => {
                out.push(b' ');
                i += 1;
                while i < b.len() {
                    if b[i] == b'\\' && i + 1 < b.len() {
                        out.push(b' ');
                        out.push(b' ');
                        i += 2;
                    } else if b[i] == b'"' {
                        out.push(b' ');
                        i += 1;
                        break;
                    } else {
                        out.push(if b[i] == b'\n' { b'\n' } else { b' ' });
                        i += 1;
                    }
                }
            }
            b'\'' => {
                // Char literal or lifetime. A lifetime ('a, 'static) has
                // no closing quote within a few chars of ident; detect a
                // char literal as 'x' or '\x…'.
                let is_char = if i + 2 < b.len() && b[i + 1] == b'\\' {
                    true
                } else {
                    i + 2 < b.len() && b[i + 2] == b'\''
                };
                if is_char {
                    out.push(b' ');
                    i += 1;
                    while i < b.len() {
                        if b[i] == b'\\' && i + 1 < b.len() {
                            out.push(b' ');
                            out.push(b' ');
                            i += 2;
                        } else if b[i] == b'\'' {
                            out.push(b' ');
                            i += 1;
                            break;
                        } else {
                            out.push(b' ');
                            i += 1;
                        }
                    }
                } else {
                    out.push(b[i]);
                    i += 1;
                }
            }
            c => {
                out.push(c);
                i += 1;
            }
        }
    }
    String::from_utf8(out).expect("mask preserves ascii structure")
}

fn is_ident(c: u8) -> bool {
    c.is_ascii_alphanumeric() || c == b'_'
}

/// Byte offset of each line start, for position → line translation.
fn line_starts(src: &str) -> Vec<usize> {
    let mut starts = vec![0];
    for (i, b) in src.bytes().enumerate() {
        if b == b'\n' {
            starts.push(i + 1);
        }
    }
    starts
}

fn line_of(starts: &[usize], pos: usize) -> usize {
    starts.partition_point(|&s| s <= pos)
}

/// True if `line` (1-based) or the line above carries
/// `lint: allow(<rule>)` in the *original* (unmasked) source.
fn allowed(src_lines: &[&str], rule: Rule, line: usize) -> bool {
    let needle = format!("lint: allow({})", rule.name());
    [line.saturating_sub(1), line]
        .iter()
        .filter(|&&l| l >= 1 && l <= src_lines.len())
        .any(|&l| src_lines[l - 1].contains(&needle))
}

/// Finds whole-word occurrences of `word` in `hay[range]`, returning
/// byte positions. A match must not be preceded by an identifier char or
/// `.`, and must be followed by optional whitespace then `(`.
fn call_sites(hay: &str, from: usize, to: usize, word: &str) -> Vec<usize> {
    let b = hay.as_bytes();
    let mut found = Vec::new();
    let mut i = from;
    while let Some(off) = hay[i..to.min(hay.len())].find(word) {
        let pos = i + off;
        i = pos + word.len();
        if pos > 0 && (is_ident(b[pos - 1]) || b[pos - 1] == b'.') {
            continue;
        }
        let mut j = pos + word.len();
        if j < b.len() && is_ident(b[j]) {
            continue;
        }
        while j < b.len() && (b[j] == b' ' || b[j] == b'\n' || b[j] == b'\t') {
            j += 1;
        }
        if j < b.len() && b[j] == b'(' {
            found.push(pos);
        }
        if i >= to {
            break;
        }
    }
    found
}

/// Position of the `)` / `}` matching the opener at `open` (which must
/// point at `(` or `{`), or end of text.
fn matching_close(masked: &str, open: usize) -> usize {
    let b = masked.as_bytes();
    let (inc, dec) = match b[open] {
        b'(' => (b'(', b')'),
        _ => (b'{', b'}'),
    };
    let mut depth = 0usize;
    let mut i = open;
    while i < b.len() {
        // Only track the one bracket family: the masked text guarantees
        // no bracket chars hide in strings or comments.
        if b[i] == inc {
            depth += 1;
        } else if b[i] == dec {
            depth -= 1;
            if depth == 0 {
                return i;
            }
        }
        i += 1;
    }
    masked.len()
}

/// Scans one source file; `file` is the label used in diagnostics.
pub fn scan_source(file: &str, src: &str) -> Vec<Diagnostic> {
    let masked = mask(src);
    let starts = line_starts(src);
    let src_lines: Vec<&str> = src.lines().collect();
    let mut out = Vec::new();

    // Rule 1: blocking constructs inside sys_nbio / with_nbio closures.
    for entry in ["sys_nbio", "with_nbio"] {
        for pos in call_sites(&masked, 0, masked.len(), entry) {
            let Some(open_rel) = masked[pos..].find('(') else {
                continue;
            };
            let open = pos + open_rel;
            let close = matching_close(&masked, open);
            for marker in BLOCKING {
                for hit in call_sites(&masked, open + 1, close, marker) {
                    let line = line_of(&starts, hit);
                    if allowed(&src_lines, Rule::NbioBlocking, line)
                        || allowed(&src_lines, Rule::NbioBlocking, line_of(&starts, pos))
                    {
                        continue;
                    }
                    out.push(Diagnostic {
                        file: file.to_string(),
                        line,
                        rule: Rule::NbioBlocking,
                        message: format!(
                            "`{marker}(..)` inside a `{entry}` closure: nbio steps must not block"
                        ),
                    });
                }
            }
        }
    }

    // Rule 2: lock guard live across a blocking construct. Find
    // `let [mut] NAME = ….lock();` and scan until `drop(NAME)`, a
    // rebinding, or the end of the enclosing block.
    let mb = masked.as_bytes();
    let mut i = 0;
    while let Some(off) = masked[i..].find(".lock()") {
        let lock_pos = i + off;
        i = lock_pos + 7;
        // Walk back to the statement start and check it is a `let`.
        let stmt_start = masked[..lock_pos]
            .rfind([';', '{', '}'])
            .map(|p| p + 1)
            .unwrap_or(0);
        let stmt = &masked[stmt_start..lock_pos];
        let trimmed = stmt.trim_start();
        if !trimmed.starts_with("let ") {
            continue;
        }
        // `.lock()` must end the initializer: `= <expr>.lock();`.
        let after = lock_pos + 7;
        if after >= mb.len() || mb[after] != b';' {
            continue;
        }
        let mut name = trimmed[4..].trim_start();
        if let Some(rest) = name.strip_prefix("mut ") {
            name = rest;
        }
        let name_end = name
            .find(|c: char| !(c.is_ascii_alphanumeric() || c == '_'))
            .unwrap_or(name.len());
        let name = &name[..name_end];
        if name.is_empty() || name == "_" {
            continue;
        }
        // Scope end: the `}` closing the block this statement lives in.
        let mut depth = 0i64;
        let mut scope_end = masked.len();
        let mut k = after;
        while k < mb.len() {
            match mb[k] {
                b'{' => depth += 1,
                b'}' => {
                    depth -= 1;
                    if depth < 0 {
                        scope_end = k;
                        break;
                    }
                }
                _ => {}
            }
            k += 1;
        }
        // Early release via drop(NAME).
        let drop_call = format!("drop({name})");
        let live_end = masked[after..scope_end]
            .find(&drop_call)
            .map(|p| after + p)
            .unwrap_or(scope_end);
        let guard_line = line_of(&starts, lock_pos);
        for marker in BLOCKING {
            for hit in call_sites(&masked, after, live_end, marker) {
                let line = line_of(&starts, hit);
                if allowed(&src_lines, Rule::GuardAcrossSync, line)
                    || allowed(&src_lines, Rule::GuardAcrossSync, guard_line)
                {
                    continue;
                }
                out.push(Diagnostic {
                    file: file.to_string(),
                    line,
                    rule: Rule::GuardAcrossSync,
                    message: format!(
                        "`{marker}(..)` while guard `{name}` (taken on line {guard_line}) is still held"
                    ),
                });
            }
        }
    }

    out.sort_by_key(|d| d.line);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flags_sync_inside_nbio() {
        let src = r#"
fn bad() {
    sys_nbio(move || {
        let v = sync(ch.read_evt());
        v
    });
}
"#;
        let d = scan_source("x.rs", src);
        assert_eq!(d.len(), 1, "{d:?}");
        assert_eq!(d[0].rule, Rule::NbioBlocking);
        assert_eq!(d[0].line, 4);
    }

    #[test]
    fn clean_nbio_passes() {
        let src = r#"
fn good() {
    sys_nbio(move || counter.fetch_add(1, Ordering::SeqCst));
    sync(ch.read_evt());
}
"#;
        assert!(scan_source("x.rs", src).is_empty());
    }

    #[test]
    fn allowlist_comment_waives() {
        let src = r#"
fn waived() {
    sys_nbio(move || {
        // lint: allow(nbio-blocking)
        block_on(program());
    });
}
"#;
        assert!(scan_source("x.rs", src).is_empty());
    }

    #[test]
    fn flags_guard_across_sync() {
        let src = r#"
fn bad() {
    let st = state.lock();
    let v = sync(ch.read_evt());
    drop(st);
}
"#;
        let d = scan_source("x.rs", src);
        assert_eq!(d.len(), 1, "{d:?}");
        assert_eq!(d[0].rule, Rule::GuardAcrossSync);
    }

    #[test]
    fn dropped_guard_passes() {
        let src = r#"
fn good() {
    let st = state.lock();
    let n = st.len();
    drop(st);
    sync(ch.read_evt());
}
"#;
        assert!(scan_source("x.rs", src).is_empty());
    }

    #[test]
    fn guard_scope_ends_at_block() {
        let src = r#"
fn good() {
    {
        let st = state.lock();
        st.push(1);
    }
    block_on(program());
}
"#;
        assert!(scan_source("x.rs", src).is_empty());
    }

    #[test]
    fn markers_in_strings_and_comments_ignored() {
        let src = r#"
fn good() {
    sys_nbio(move || {
        // calling sync(..) here would be bad
        let s = "sync(evt)";
        s.len()
    });
}
"#;
        assert!(scan_source("x.rs", src).is_empty());
    }

    #[test]
    fn path_qualified_sync_is_flagged() {
        let src = r#"
fn bad() {
    sys_nbio(move || event::sync(ch.read_evt()));
}
"#;
        let d = scan_source("x.rs", src);
        assert_eq!(d.len(), 1, "{d:?}");
    }

    #[test]
    fn sync_module_path_not_flagged() {
        let src = r#"
use crate::sync::Mutex;
fn good() {
    sys_nbio(move || sync::helper_value());
}
"#;
        // `sync::helper_value()` — `sync` is a module segment here, not a
        // call (next char after the word is `:`), so nothing fires.
        assert!(scan_source("x.rs", src).is_empty());
    }
}
