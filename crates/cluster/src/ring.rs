//! The consistent-hash ring: deterministic key → node placement with
//! virtual nodes, the classic Karger-style construction.
//!
//! Each backend endpoint is hashed onto the ring at `vnodes` points
//! (labelled `host:port#v`); a key belongs to the first point clockwise
//! from its own hash. Virtual nodes smooth the per-node share toward
//! `1/N`, and — the property the cluster's rebalance scenario leans on —
//! removing one of `N` nodes remaps only the keys that mapped to it,
//! about `1/N` of the space, instead of reshuffling everything the way
//! `hash(key) % N` would.
//!
//! Hashing is [`FnvHasher`] (seed-free FNV-1a), so placement is
//! deterministic across processes and runs: the same membership always
//! yields byte-identical routing, which the cluster bench's
//! reproducibility gate depends on.

use std::hash::Hasher as _;

use eveth_core::hash::FnvHasher;
use eveth_core::net::Endpoint;

/// A consistent-hash ring over a set of backend endpoints.
///
/// Immutable once built: membership changes construct a new ring (cheap —
/// `N × vnodes` points) and swap it in, so routing threads snapshot an
/// `Arc<HashRing>` and never observe a half-updated ring.
#[derive(Debug, Clone)]
pub struct HashRing {
    nodes: Vec<Endpoint>,
    /// `(point hash, node index)`, sorted by hash; ties broken by node
    /// index so construction order cannot leak into placement.
    points: Vec<(u64, u32)>,
    vnodes: usize,
}

/// Bit finalizer (splitmix64's) over the FNV output: raw FNV-1a of
/// short, similar strings clusters badly in the high bits, which is
/// exactly where ring placement looks. The finalizer is a fixed
/// bijection, so determinism is untouched.
fn mix(mut x: u64) -> u64 {
    x ^= x >> 30;
    x = x.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^= x >> 31;
    x
}

/// Hashes one key with the ring's seed-free hasher.
fn hash_key(key: &[u8]) -> u64 {
    let mut h = FnvHasher::default();
    h.write(key);
    mix(h.finish())
}

/// Hashes the `v`-th virtual point of a node.
fn hash_point(ep: Endpoint, v: usize) -> u64 {
    let mut h = FnvHasher::default();
    let label = format!("{}:{}#{v}", ep.host.0, ep.port);
    h.write(label.as_bytes());
    mix(h.finish())
}

impl HashRing {
    /// Builds a ring over `nodes` with `vnodes` points per node.
    ///
    /// # Panics
    ///
    /// If `nodes` is empty or `vnodes` is zero — an empty ring has no
    /// meaningful placement and a router must not be built over one.
    pub fn new(nodes: Vec<Endpoint>, vnodes: usize) -> HashRing {
        assert!(!nodes.is_empty(), "a hash ring needs at least one node");
        assert!(vnodes > 0, "a hash ring needs at least one virtual node");
        let mut points = Vec::with_capacity(nodes.len() * vnodes);
        for (i, &ep) in nodes.iter().enumerate() {
            for v in 0..vnodes {
                points.push((hash_point(ep, v), i as u32));
            }
        }
        points.sort_unstable();
        HashRing {
            nodes,
            points,
            vnodes,
        }
    }

    /// The member endpoints, in construction order.
    pub fn nodes(&self) -> &[Endpoint] {
        &self.nodes
    }

    /// Virtual nodes per member.
    pub fn vnodes(&self) -> usize {
        self.vnodes
    }

    /// Index into [`HashRing::nodes`] of the point owning `hash`.
    fn owner_at(&self, hash: u64) -> usize {
        let i = self.points.partition_point(|&(h, _)| h < hash);
        let (_, node) = self.points[if i == self.points.len() { 0 } else { i }];
        node as usize
    }

    /// The primary node for a key: the first ring point clockwise from
    /// the key's hash.
    pub fn primary(&self, key: &[u8]) -> Endpoint {
        self.nodes[self.owner_at(hash_key(key))]
    }

    /// The first `r` *distinct* nodes clockwise from the key's hash —
    /// `replicas(key, r)[0]` is the primary, the rest are the successor
    /// nodes a replicated write fans out to. Returns fewer than `r` when
    /// the ring has fewer members.
    pub fn replicas(&self, key: &[u8], r: usize) -> Vec<Endpoint> {
        let want = r.min(self.nodes.len()).max(1);
        let mut out = Vec::with_capacity(want);
        let start = {
            let h = hash_key(key);
            let i = self.points.partition_point(|&(p, _)| p < h);
            if i == self.points.len() {
                0
            } else {
                i
            }
        };
        for step in 0..self.points.len() {
            let (_, node) = self.points[(start + step) % self.points.len()];
            let ep = self.nodes[node as usize];
            if !out.contains(&ep) {
                out.push(ep);
                if out.len() == want {
                    break;
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eveth_core::net::HostId;
    use proptest::prelude::*;

    fn ep(h: u32) -> Endpoint {
        Endpoint::new(HostId(h), 11211)
    }

    fn ring(n: u32) -> HashRing {
        HashRing::new((1..=n).map(ep).collect(), 64)
    }

    #[test]
    fn placement_is_pinned_across_processes() {
        // Golden placements: FNV-1a is seed-free, so these must never
        // change on any machine or run. A drift here would silently
        // re-shard every cluster bench.
        let r = ring(4);
        let got: Vec<u32> = ["k000000", "k000001", "k000007", "hot:a", "hot:b"]
            .iter()
            .map(|k| r.primary(k.as_bytes()).host.0)
            .collect();
        assert_eq!(got, vec![1, 1, 2, 1, 4]);
    }

    #[test]
    fn replicas_are_distinct_and_led_by_the_primary() {
        let r = ring(4);
        for k in 0..200u32 {
            let key = format!("key{k}");
            let reps = r.replicas(key.as_bytes(), 2);
            assert_eq!(reps.len(), 2);
            assert_eq!(reps[0], r.primary(key.as_bytes()));
            assert_ne!(reps[0], reps[1]);
        }
    }

    #[test]
    fn single_node_ring_owns_everything() {
        let r = ring(1);
        for k in 0..50u32 {
            let key = format!("key{k}");
            assert_eq!(r.primary(key.as_bytes()), ep(1));
            assert_eq!(r.replicas(key.as_bytes(), 3), vec![ep(1)]);
        }
    }

    #[test]
    fn shares_are_roughly_balanced() {
        let r = ring(4);
        let mut counts = [0u32; 5];
        for k in 0..4000u32 {
            counts[r.primary(format!("key{k}").as_bytes()).host.0 as usize] += 1;
        }
        for (host, &count) in counts.iter().enumerate().skip(1) {
            let share = count as f64 / 4000.0;
            assert!(
                (0.10..0.45).contains(&share),
                "host{host} owns {share:.3} of the space"
            );
        }
    }

    proptest! {
        /// Placement is a pure function of (membership, key): two rings
        /// built independently agree on every key.
        #[test]
        fn placement_is_deterministic(keys in proptest::collection::vec("[a-z0-9]{1,16}", 1..50)) {
            let a = ring(5);
            let b = ring(5);
            for k in &keys {
                prop_assert_eq!(a.primary(k.as_bytes()), b.primary(k.as_bytes()));
                prop_assert_eq!(a.replicas(k.as_bytes(), 2), b.replicas(k.as_bytes(), 2));
            }
        }

        /// Removing one of N nodes remaps only the keys the removed node
        /// owned (plus nothing else): the consistent-hashing contract.
        /// With vnode smoothing the moved share stays well under ~2/N.
        #[test]
        fn removal_remaps_at_most_a_small_fraction(victim in 0usize..4, seed in 0u64..1000) {
            let n = 4;
            let full: Vec<Endpoint> = (1..=n).map(ep).collect();
            let rest: Vec<Endpoint> = full
                .iter()
                .copied()
                .enumerate()
                .filter(|&(i, _)| i != victim)
                .map(|(_, e)| e)
                .collect();
            let before = HashRing::new(full.clone(), 64);
            let after = HashRing::new(rest, 64);
            let total = 2000u64;
            let mut moved = 0u64;
            for k in 0..total {
                let key = format!("key{}", k.wrapping_mul(seed.wrapping_add(1)));
                let was = before.primary(key.as_bytes());
                let now = after.primary(key.as_bytes());
                if was != now {
                    // Only keys owned by the victim may move…
                    prop_assert_eq!(was, full[victim]);
                    moved += 1;
                }
            }
            // …and the victim's share is about 1/N; allow 2/N of slack
            // for vnode imbalance on small samples.
            prop_assert!(
                (moved as f64 / total as f64) < 2.0 / n as f64,
                "moved {moved}/{total}"
            );
        }
    }
}
