//! Multi-host KV cluster layer: consistent-hash routing, hot-key
//! replication and failover, written as monadic threads over the hybrid
//! runtime.
//!
//! The thesis of this crate is that a *cluster router* — the component
//! that usually earns a hand-rolled epoll state machine — is just
//! another service on the paper's hybrid runtime:
//!
//! - [`ring`] — the deterministic consistent-hash ring ([`HashRing`]):
//!   virtual nodes, seed-free FNV placement, minimal remapping on
//!   membership change.
//! - [`router`] — the [`Router`]: a [`Service`](eveth_core::service::Service)
//!   implementation that parses client batches, fans commands out to the
//!   owning backends over pooled connections, fans replies back in with
//!   one CML `choose` over backend readiness plus a timeout, replicates
//!   hot-key writes to R ring successors, and fails replicated reads
//!   over (with read-repair) when a replica crashes or misses.
//!
//! Because everything rides the [`NetStack`](eveth_core::net::NetStack)
//! abstraction, the same router binary-identically serves simulated
//! kernel sockets and the application-level TCP stack, and the simnet
//! fault controls (link down, host crash, membership change) drive the
//! failover scenarios deterministically.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod ring;
pub mod router;

pub use ring::HashRing;
pub use router::{Router, RouterConfig, RouterService, RouterStats};
