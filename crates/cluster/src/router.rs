//! The cluster router: a [`Service`] that fronts N backend KV nodes.
//!
//! The router is deliberately *just another service* on the same hybrid
//! runtime — per-client code is a straight-line monadic thread, fan-out /
//! fan-in across backends is a CML [`choose`] over backend socket
//! readiness and a per-round timeout, and the socket layer is the usual
//! [`NetStack`] injection (so the router runs unchanged over simulated
//! kernel sockets or the application-level TCP stack, with faults
//! injected by `eveth_simos::hub`).
//!
//! Per batch of pipelined client commands:
//!
//! 1. every complete command is parsed ([`CommandParser`]) and routed by
//!    key hash on the current [`HashRing`] snapshot; a multi-key
//!    `get`/`gets` is split per key so each key is answered by its own
//!    shard, and the parts are stitched back into one response (VALUE
//!    runs in key order under a single `END`) before the client sees it;
//! 2. commands are re-encoded ([`Command::encode_into`]) into one wire
//!    buffer per backend and shipped with one send each (pipelining is
//!    preserved end-to-end);
//! 3. replies are fanned back in: one [`choose`] over every pending
//!    backend's readiness plus a timeout branch; response bytes are
//!    framed per command by [`ReplyFramer`] and forwarded to the client
//!    *verbatim* — the router never re-encodes a backend reply;
//! 4. the client gets one coalesced vectored send, replies in command
//!    order.
//!
//! ## Hot-key replication
//!
//! Keys matching [`RouterConfig::hot_prefix`] (all keys when `None`)
//! are replicated when `replication > 1`: a write fans out to the key's
//! R ring successors and is acknowledged to the client only when *every*
//! replica has answered — so an acked write survives the crash of any
//! R−1 replicas. A read goes to the primary and fails over (crash,
//! timeout) or falls back (miss) to the next replica; a hit found on a
//! fallback replica is written back to the replicas that missed
//! (read-repair, a `noreply` set bounded by
//! [`RouterConfig::repair_ttl`]) so the hot key converges.
//!
//! Only *state-independent* writes fan out: `set`, `delete` and `touch`
//! mean the same thing on every replica. Conditional writes — `cas`
//! (version stamps are per-node sequence numbers), `add`/`replace`
//! (presence), `append`/`prepend` and `incr`/`decr` (current value) —
//! go to the key's primary only: fanning them out could store on the
//! primary while a secondary answers `EXISTS`/`NOT_STORED`, silently
//! diverging the replicas behind an acked reply. The trade-off is that
//! a conditional write is not crash-durable until a later replicated
//! `set` or read-repair copies it; replication's zero-loss guarantee
//! covers the fanned-out commands.
//!
//! ## Failure semantics
//!
//! A backend that refuses connections, resets, times out or sends
//! garbage is dropped from the session's connection pool for the batch;
//! commands that have no live replica left answer `SERVER_ERROR backend
//! unavailable`. Replication only masks failures for replicated keys —
//! a non-replicated key's shard being down is an error the client sees,
//! exactly like memcached behind a routing proxy.

use std::collections::VecDeque;
use std::fmt;
use std::sync::Arc;

use bytes::Bytes;
use eveth_core::event::{choose, readiness_evt, sync, timeout_evt, Signal};
use eveth_core::net::{
    send_all, send_all_vectored, send_all_within_vectored, Conn, Endpoint, NetStack, SendInput,
};
use eveth_core::reactor::Interest;
use eveth_core::service::{Server, ServerConfig, ServerStats as FrameworkStats, Service, Step};
use eveth_core::syscall::{sys_fork, sys_time};
use eveth_core::telemetry::metrics::Counter;
use eveth_core::telemetry::Telemetry;
use eveth_core::time::Nanos;
use eveth_core::{loop_m, map_m, Loop, ThreadM};
use eveth_kv::client::{Framed, ReplyFramer};
use eveth_kv::protocol::{wire, Command, CommandParser, ProtoError, Reply};
use parking_lot::Mutex;

use crate::ring::HashRing;

/// Router tunables.
#[derive(Debug, Clone)]
pub struct RouterConfig {
    /// Listening port.
    pub port: u16,
    /// Initial ring membership (backend KV endpoints).
    pub backends: Vec<Endpoint>,
    /// Virtual nodes per backend on the ring.
    pub vnodes: usize,
    /// Replica count R for hot keys; `1` disables replication.
    pub replication: usize,
    /// Keys with this prefix are hot (replicated); `None` replicates
    /// every key when `replication > 1`.
    pub hot_prefix: Option<Vec<u8>>,
    /// Expiry (seconds, memcached `exptime` semantics) stamped on
    /// read-repair `set`s. The wire `get` that discovered the hit does
    /// not carry the entry's remaining TTL, so a repaired copy cannot
    /// inherit it; a fixed TTL keeps the repaired copy of an *expiring*
    /// hot key from living forever on the replicas — once it lapses, the
    /// next read falls back to a live replica and re-repairs if the key
    /// is still hot. `0` makes repaired copies immortal.
    pub repair_ttl: u64,
    /// Per-round backend inactivity deadline (virtual nanoseconds): a
    /// fan-in wait that stays silent this long declares every pending
    /// backend dead. `0` waits forever (crash faults still fail fast —
    /// a reset/refused connection does not need the timer).
    pub backend_timeout: Nanos,
    /// After a backend fails (refused dial, transport error, timeout),
    /// skip it for this long instead of re-dialing on every batch — a
    /// time-based circuit breaker. Without it, a partitioned backend
    /// re-stalls each batch for the transport's full connect timeout
    /// (TCP SYN backoff); with it only one probe per cooldown pays that
    /// price and everything else fails over immediately. `0` disables
    /// (every batch re-dials). A ring swap clears the breaker.
    pub backend_cooldown: Nanos,
    /// Socket receive granularity (client and backend side).
    pub recv_chunk: usize,
    /// Reap a silent client connection after this long; `0` disables.
    pub idle_timeout: Nanos,
    /// Abandon a client reply send after this long; `0` disables.
    pub send_timeout: Nanos,
}

impl Default for RouterConfig {
    fn default() -> Self {
        RouterConfig {
            port: 11311,
            backends: Vec::new(),
            vnodes: 64,
            replication: 1,
            hot_prefix: None,
            repair_ttl: 60,
            backend_timeout: 0,
            backend_cooldown: 0,
            recv_chunk: 16 * 1024,
            idle_timeout: 0,
            send_timeout: 0,
        }
    }
}

/// Router counters (telemetry metrics cells, so they can be registered
/// into a [`Registry`](eveth_core::telemetry::metrics::Registry)).
#[derive(Debug, Default)]
pub struct RouterStats {
    /// Commands routed.
    pub commands: Counter,
    /// Client batches forwarded.
    pub batches: Counter,
    /// Writes fanned out to more than one replica.
    pub replicated_writes: Counter,
    /// Replicated reads retried on another replica (failover or miss
    /// fallback).
    pub read_retries: Counter,
    /// Read-repair sets shipped to replicas that missed.
    pub read_repairs: Counter,
    /// Backends dropped mid-batch (connect failure, transport error,
    /// timeout, protocol garbage).
    pub backend_errors: Counter,
    /// `SERVER_ERROR` replies synthesized because no live replica could
    /// answer.
    pub server_errors: Counter,
    /// Malformed client commands.
    pub protocol_errors: Counter,
}

/// Lifecycle pieces handed down by the framework once, kept for the
/// client reply path (bounded sends racing the shutdown broadcast).
struct Lifecycle {
    shutdown: Signal,
    send_timeout: Nanos,
    framework: Arc<FrameworkStats>,
}

/// State shared by every router session.
struct RouterShared {
    stack: Arc<dyn NetStack>,
    cfg: RouterConfig,
    ring: Mutex<Arc<HashRing>>,
    stats: Arc<RouterStats>,
    /// Circuit breaker: backends written off until the stored virtual
    /// time (a small linear list, like the pool — N is the ring size).
    down: Mutex<Vec<(Endpoint, Nanos)>>,
    lifecycle: std::sync::OnceLock<Lifecycle>,
}

impl RouterShared {
    fn ring(&self) -> Arc<HashRing> {
        Arc::clone(&self.ring.lock())
    }

    /// Is `ep` inside its failure cooldown at virtual time `now`?
    fn backend_down(&self, ep: Endpoint, now: Nanos) -> bool {
        self.cfg.backend_cooldown > 0
            && self
                .down
                .lock()
                .iter()
                .any(|&(e, until)| e == ep && now < until)
    }

    /// Starts (or refreshes) `ep`'s failure cooldown.
    fn mark_backend_down(&self, ep: Endpoint, now: Nanos) {
        if self.cfg.backend_cooldown == 0 {
            return;
        }
        let until = now.saturating_add(self.cfg.backend_cooldown);
        let mut down = self.down.lock();
        match down.iter_mut().find(|(e, _)| *e == ep) {
            Some(entry) => entry.1 = until,
            None => down.push((ep, until)),
        }
    }

    /// Is this key hot (replicated)?
    fn replicated(&self, key: &[u8]) -> bool {
        self.cfg.replication > 1
            && self
                .cfg
                .hot_prefix
                .as_ref()
                .is_none_or(|p| key.starts_with(p))
    }

    /// Sends the assembled client reply, bounded by the configured send
    /// timeout when one is set (mirrors the KV server's reply path).
    fn send_client(
        &self,
        conn: &Arc<dyn Conn>,
        bufs: Vec<Bytes>,
    ) -> ThreadM<Result<(), eveth_core::net::NetError>> {
        match self.lifecycle.get() {
            Some(lc) if lc.send_timeout > 0 => {
                let framework = Arc::clone(&lc.framework);
                send_all_within_vectored(conn, bufs, lc.send_timeout, &lc.shutdown).map(
                    move |out| match out {
                        SendInput::Done(r) => r,
                        SendInput::Timeout => {
                            framework.send_timeouts.incr();
                            Err(eveth_core::net::NetError::Timeout)
                        }
                        SendInput::Shutdown => Err(eveth_core::net::NetError::Closed),
                    },
                )
            }
            _ => send_all_vectored(conn, bufs),
        }
    }
}

/// Per-session pool of backend connections, lazily established and
/// dropped on failure. A `Vec` keyed by endpoint: N is small and linear
/// scans keep iteration order deterministic.
type Pool = Vec<(Endpoint, Arc<dyn Conn>)>;

fn pool_get(pool: &Mutex<Pool>, ep: Endpoint) -> Option<Arc<dyn Conn>> {
    pool.lock()
        .iter()
        .find(|(e, _)| *e == ep)
        .map(|(_, c)| Arc::clone(c))
}

fn pool_remove(pool: &Mutex<Pool>, ep: Endpoint) {
    pool.lock().retain(|(e, _)| *e != ep);
}

/// Per-client-session state: the incremental command parser plus the
/// backend connection pool.
pub struct RouterSession {
    parser: CommandParser,
    pool: Arc<Mutex<Pool>>,
}

impl fmt::Debug for RouterSession {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "RouterSession(backends={})", self.pool.lock().len())
    }
}

/// What each client command is waiting for.
enum SlotState {
    /// Reply bytes ready to forward.
    Ready(Vec<Bytes>),
    /// A plain forward: the next framed reply from its backend queue.
    AwaitOne,
    /// A replicated write: acked to the client only when every replica
    /// answered; the primary's reply bytes are the ones forwarded.
    AwaitWrite {
        pending: usize,
        failed: bool,
        bytes: Option<Vec<Bytes>>,
    },
    /// A replicated read working down its replica list.
    AwaitRead {
        /// The command's canonical wire bytes (re-sent on each retry).
        wire: Bytes,
        /// Replica endpoints, primary first.
        tries: Vec<Endpoint>,
        /// Next replica to consult.
        next: usize,
        /// Live replicas that answered a miss — read-repair targets if a
        /// later replica hits.
        missed_live: Vec<Endpoint>,
    },
    /// Head of a split multi-key `get`/`gets`: the next `parts` slots
    /// are its per-key sub-reads, stitched into one response (VALUE runs
    /// concatenated in key order, one final `END`) at reply time.
    MultiHead {
        /// How many sub-read slots follow this one.
        parts: usize,
    },
}

/// Mutable state of one batch while its rounds run.
struct BatchState {
    slots: Vec<SlotState>,
    /// Scheduled read-repairs: `noreply` sets shipped after the reads
    /// settle.
    repairs: Vec<(Endpoint, Command)>,
}

/// What a backend owes us for one queued job.
#[derive(Clone, Copy)]
enum Role {
    /// Reply forwarded verbatim to the client.
    Deliver,
    /// Replicated-write primary: ack + keep the bytes.
    AckPrimary,
    /// Replicated-write secondary: ack only.
    Ack,
    /// One try of a replicated read.
    Read,
}

/// One fan-out round: per-backend wire bytes plus the in-order queue of
/// jobs whose replies come back on that connection.
struct Round {
    eps: Vec<Endpoint>,
    wires: Vec<Vec<u8>>,
    queues: Vec<VecDeque<(usize, Role)>>,
}

impl Round {
    fn new() -> Round {
        Round {
            eps: Vec::new(),
            wires: Vec::new(),
            queues: Vec::new(),
        }
    }

    fn is_empty(&self) -> bool {
        self.eps.is_empty()
    }

    /// Index of `ep`'s lane, adding one on first use (first-use order is
    /// the deterministic send order).
    fn lane(&mut self, ep: Endpoint) -> usize {
        if let Some(i) = self.eps.iter().position(|&e| e == ep) {
            return i;
        }
        self.eps.push(ep);
        self.wires.push(Vec::new());
        self.queues.push(VecDeque::new());
        self.eps.len() - 1
    }
}

/// The `SERVER_ERROR` reply synthesized when no live replica can answer.
fn server_error_bytes() -> Vec<Bytes> {
    let mut out = Vec::new();
    Reply::ServerError("backend unavailable").encode_into(&mut out);
    vec![Bytes::from(out)]
}

/// Removes the trailing `END\r\n` from a sub-get's reply run without
/// copying the payload: the suffix may straddle segment boundaries, so
/// walk bytes from the back, then pop/trim whole segments. Returns
/// `None` when the run does not end in END (the sub-get failed).
fn strip_end(mut segs: Vec<Bytes>) -> Option<Vec<Bytes>> {
    const END: &[u8] = wire::END;
    let mut tail = [0u8; 5];
    let mut got = 0;
    'fill: for seg in segs.iter().rev() {
        for &b in seg.iter().rev() {
            got += 1;
            tail[END.len() - got] = b;
            if got == END.len() {
                break 'fill;
            }
        }
    }
    if got < END.len() || tail != END {
        return None;
    }
    let mut drop = END.len();
    while drop > 0 {
        let last = segs.last_mut().expect("suffix verified");
        if last.len() <= drop {
            drop -= last.len();
            segs.pop();
        } else {
            let keep = last.len() - drop;
            *last = last.slice(..keep);
            drop = 0;
        }
    }
    Some(segs)
}

fn closing_is_error(r: &Reply) -> bool {
    matches!(
        r,
        Reply::Error | Reply::ClientError(_) | Reply::ServerError(_)
    )
}

/// Folds one ack (or failure) into a replicated-write slot; finalizes it
/// once every replica has been heard from (or written off).
fn write_ack(
    slots: &mut [SlotState],
    stats: &RouterStats,
    slot: usize,
    ok_bytes: Option<Vec<Bytes>>,
    errored: bool,
) {
    if let SlotState::AwaitWrite {
        pending,
        failed,
        bytes,
    } = &mut slots[slot]
    {
        *pending -= 1;
        *failed |= errored;
        if ok_bytes.is_some() {
            *bytes = ok_bytes;
        }
        if *pending == 0 {
            let done = if *failed || bytes.is_none() {
                stats.server_errors.incr();
                server_error_bytes()
            } else {
                bytes.take().expect("primary bytes present")
            };
            slots[slot] = SlotState::Ready(done);
        }
    }
}

/// Folds one replicated-read attempt: `framed` is the backend's framed
/// response, or `None` if the backend failed. A hit (or any non-`END`
/// closing) is forwarded and schedules read-repair for the live replicas
/// that missed; a miss advances to the next replica; running out of
/// replicas forwards the final miss or synthesizes `SERVER_ERROR`.
fn read_result(
    slots: &mut [SlotState],
    repairs: &mut Vec<(Endpoint, Command)>,
    shared: &RouterShared,
    slot: usize,
    ep: Endpoint,
    framed: Option<Framed>,
) {
    if let SlotState::AwaitRead {
        tries,
        next,
        missed_live,
        ..
    } = &mut slots[slot]
    {
        match framed {
            Some(f) if f.values > 0 || !matches!(f.closing, Reply::End) => {
                if f.values > 0 {
                    if let Some(
                        Reply::Value { key, flags, data }
                        | Reply::ValueCas {
                            key, flags, data, ..
                        },
                    ) = f.first_value
                    {
                        for target in missed_live.drain(..) {
                            shared.stats.read_repairs.incr();
                            repairs.push((
                                target,
                                Command::Set {
                                    key: key.clone(),
                                    flags,
                                    exptime: shared.cfg.repair_ttl,
                                    value: data.clone(),
                                    noreply: true,
                                },
                            ));
                        }
                    }
                }
                slots[slot] = SlotState::Ready(f.bytes);
            }
            Some(f) => {
                missed_live.push(ep);
                *next += 1;
                if *next >= tries.len() {
                    slots[slot] = SlotState::Ready(f.bytes);
                }
            }
            None => {
                *next += 1;
                if *next >= tries.len() {
                    shared.stats.server_errors.incr();
                    slots[slot] = SlotState::Ready(server_error_bytes());
                }
            }
        }
    }
}

/// Resolves one job with its backend's framed response.
fn resolve_ok(st: &mut BatchState, shared: &RouterShared, slot: usize, role: Role, f: Framed) {
    let BatchState { slots, .. } = st;
    match role {
        Role::Deliver => slots[slot] = SlotState::Ready(f.bytes),
        Role::AckPrimary => {
            let errored = closing_is_error(&f.closing);
            write_ack(slots, &shared.stats, slot, Some(f.bytes), errored);
        }
        Role::Ack => {
            let errored = closing_is_error(&f.closing);
            write_ack(slots, &shared.stats, slot, None, errored);
        }
        Role::Read => {
            // `ep` only matters for miss bookkeeping; resolve_ok callers
            // pass it through read_result directly.
            unreachable!("Read jobs resolve through read_result")
        }
    }
}

/// Resolves one job whose backend failed.
fn resolve_fail(st: &mut BatchState, shared: &RouterShared, slot: usize, role: Role, ep: Endpoint) {
    let BatchState { slots, repairs } = st;
    match role {
        Role::Deliver => {
            shared.stats.server_errors.incr();
            slots[slot] = SlotState::Ready(server_error_bytes());
        }
        Role::AckPrimary | Role::Ack => write_ack(slots, &shared.stats, slot, None, true),
        Role::Read => read_result(slots, repairs, shared, slot, ep, None),
    }
}

/// Built once per batch from the parsed commands and a ring snapshot.
struct Plan {
    state: BatchState,
    first: Round,
    quit: bool,
}

/// Writes safe to fan out to every replica: their outcome does not
/// depend on per-backend state that legitimately differs across
/// replicas. Conditional writes — `cas` (stamps are per-node sequence
/// numbers), `add`/`replace` (presence), `append`/`prepend` and
/// `incr`/`decr` (current value) — must not fan out: they could store
/// on the primary while a secondary answers `EXISTS`/`NOT_STORED`,
/// acking the client over silently diverged replicas. They route to the
/// primary only instead.
fn replica_fanout(cmd: &Command) -> bool {
    matches!(
        cmd,
        Command::Set { .. } | Command::Delete { .. } | Command::Touch { .. }
    )
}

/// Routes one single-key read (a whole `get`/`gets`, or one key split
/// out of a multi-key one): a replicated key starts a failover-capable
/// replica walk, anything else forwards to the key's shard.
fn route_read(
    shared: &RouterShared,
    ring: &HashRing,
    round: &mut Round,
    slots: &mut Vec<SlotState>,
    cmd: &Command,
) {
    let key = cmd.key().expect("reads carry a key");
    if shared.replicated(key) {
        let tries = ring.replicas(key, shared.cfg.replication);
        let mut wire = Vec::new();
        cmd.encode_into(&mut wire);
        let lane = round.lane(tries[0]);
        round.wires[lane].extend_from_slice(&wire);
        round.queues[lane].push_back((slots.len(), Role::Read));
        slots.push(SlotState::AwaitRead {
            wire: Bytes::from(wire),
            tries,
            next: 0,
            missed_live: Vec::new(),
        });
    } else {
        let ep = ring.primary(key);
        let lane = round.lane(ep);
        cmd.encode_into(&mut round.wires[lane]);
        round.queues[lane].push_back((slots.len(), Role::Deliver));
        slots.push(SlotState::AwaitOne);
    }
}

/// Routes a batch of commands: one slot per reply the client expects (in
/// command order), grouped into per-backend lanes for round 0.
fn build_plan(shared: &RouterShared, ring: &HashRing, cmds: Vec<Command>) -> Plan {
    let mut slots = Vec::new();
    let mut round = Round::new();
    let mut quit = false;
    for cmd in cmds {
        shared.stats.commands.incr();
        if cmd == Command::Quit {
            // Honour quit without forwarding it: backends stay pooled for
            // other sessions; the framework closes the client side.
            quit = true;
            break;
        }
        // A multi-key get/gets is split per key so every key is answered
        // by the shard that owns it — routing the whole command by its
        // first key would turn other shards' keys into spurious misses.
        // The parts are stitched back into one response at reply time.
        if let Command::Get { keys } | Command::Gets { keys } = &cmd {
            if keys.len() > 1 {
                slots.push(SlotState::MultiHead { parts: keys.len() });
                for key in keys {
                    let sub = match &cmd {
                        Command::Get { .. } => Command::Get {
                            keys: vec![key.clone()],
                        },
                        _ => Command::Gets {
                            keys: vec![key.clone()],
                        },
                    };
                    route_read(shared, ring, &mut round, &mut slots, &sub);
                }
                continue;
            }
        }
        let noreply = cmd.noreply();
        match cmd.key() {
            None => {
                // Keyless commands (stats, version) go to the first ring
                // member: per-node introspection through the router.
                let lane = round.lane(ring.nodes()[0]);
                cmd.encode_into(&mut round.wires[lane]);
                round.queues[lane].push_back((slots.len(), Role::Deliver));
                slots.push(SlotState::AwaitOne);
            }
            Some(key) if shared.replicated(key) && cmd.is_write() && replica_fanout(&cmd) => {
                let eps = ring.replicas(key, shared.cfg.replication);
                if eps.len() > 1 {
                    shared.stats.replicated_writes.incr();
                }
                for (i, &ep) in eps.iter().enumerate() {
                    let lane = round.lane(ep);
                    cmd.encode_into(&mut round.wires[lane]);
                    if !noreply {
                        let role = if i == 0 { Role::AckPrimary } else { Role::Ack };
                        round.queues[lane].push_back((slots.len(), role));
                    }
                }
                if noreply {
                    slots.push(SlotState::Ready(Vec::new()));
                } else {
                    slots.push(SlotState::AwaitWrite {
                        pending: eps.len(),
                        failed: false,
                        bytes: None,
                    });
                }
            }
            Some(key) if shared.replicated(key) && !cmd.is_write() => {
                route_read(shared, ring, &mut round, &mut slots, &cmd);
            }
            Some(key) => {
                // Non-replicated keys, plus conditional writes on
                // replicated ones (see `replica_fanout`): the key's
                // primary — `ring.primary` is `replicas(key, r)[0]`.
                let ep = ring.primary(key);
                let lane = round.lane(ep);
                cmd.encode_into(&mut round.wires[lane]);
                if noreply {
                    slots.push(SlotState::Ready(Vec::new()));
                } else {
                    round.queues[lane].push_back((slots.len(), Role::Deliver));
                    slots.push(SlotState::AwaitOne);
                }
            }
        }
    }
    Plan {
        state: BatchState {
            slots,
            repairs: Vec::new(),
        },
        first: round,
        quit,
    }
}

/// Ensures a pooled connection to `ep`, dialing on first use. A backend
/// inside its failure cooldown is not dialed at all — the lane fails
/// immediately and replicated reads fall straight over.
fn ensure_conn(
    shared: &Arc<RouterShared>,
    pool: &Arc<Mutex<Pool>>,
    ep: Endpoint,
    now: Nanos,
) -> ThreadM<Option<Arc<dyn Conn>>> {
    if let Some(conn) = pool_get(pool, ep) {
        return ThreadM::pure(Some(conn));
    }
    if shared.backend_down(ep, now) {
        return ThreadM::pure(None);
    }
    let shared = Arc::clone(shared);
    let pool = Arc::clone(pool);
    shared.stack.connect(ep).map(move |dialed| match dialed {
        Ok(conn) => {
            pool.lock().push((ep, Arc::clone(&conn)));
            Some(conn)
        }
        Err(_) => {
            shared.stats.backend_errors.incr();
            shared.mark_backend_down(ep, now);
            None
        }
    })
}

/// What woke the fan-in `choose`.
enum Wake {
    Ready(usize),
    /// A readiness-less lane 0's pumped receive completed with this
    /// result (the helper already performed the `recv`).
    Pumped(Result<Bytes, eveth_core::net::NetError>),
    Timeout,
}

/// One pending backend during fan-in.
struct PendingEp {
    ep: Endpoint,
    conn: Arc<dyn Conn>,
    framer: ReplyFramer,
    jobs: VecDeque<(usize, Role)>,
}

/// Fails everything a dead backend still owes and evicts it from the
/// pool.
fn fail_pending(
    shared: &RouterShared,
    pool: &Mutex<Pool>,
    st: &Mutex<BatchState>,
    p: &mut PendingEp,
    now: Nanos,
) {
    shared.stats.backend_errors.incr();
    shared.mark_backend_down(p.ep, now);
    pool_remove(pool, p.ep);
    let mut guard = st.lock();
    while let Some((slot, role)) = p.jobs.pop_front() {
        resolve_fail(&mut guard, shared, slot, role, p.ep);
    }
}

/// Applies every framed response already buffered for `p`; returns false
/// if the backend sent garbage (protocol error → treated as dead).
fn drain_framed(
    shared: &RouterShared,
    st: &Mutex<BatchState>,
    p: &mut PendingEp,
    chunk: Bytes,
) -> bool {
    if p.framer.feed(chunk).is_err() {
        return false;
    }
    let mut guard = st.lock();
    while p.framer.ready() > 0 {
        let Some((slot, role)) = p.jobs.pop_front() else {
            // More replies than questions: protocol violation.
            return false;
        };
        let framed = p.framer.pop().expect("ready > 0");
        match role {
            Role::Read => {
                let BatchState { slots, repairs } = &mut *guard;
                read_result(slots, repairs, shared, slot, p.ep, Some(framed));
            }
            other => resolve_ok(&mut guard, shared, slot, other, framed),
        }
    }
    true
}

/// Folds one lane's receive result into the batch: drains framed
/// replies on success, writes the backend off on EOF/error/garbage.
fn settle_lane(
    shared: Arc<RouterShared>,
    pool: Arc<Mutex<Pool>>,
    st: Arc<Mutex<BatchState>>,
    mut pending: Vec<PendingEp>,
    i: usize,
    got: Result<Bytes, eveth_core::net::NetError>,
    now: Nanos,
) -> ThreadM<Loop<Vec<PendingEp>, ()>> {
    let healthy = match got {
        Ok(chunk) if !chunk.is_empty() => drain_framed(&shared, &st, &mut pending[i], chunk),
        _ => false,
    };
    if healthy {
        ThreadM::pure(Loop::Continue(pending))
    } else {
        fail_pending(&shared, &pool, &st, &mut pending[i], now);
        let dead = pending.swap_remove(i);
        // swap_remove perturbs lane order only among still-pending
        // lanes of one batch — acceptable, and it keeps removal O(1).
        dead.conn.close().map(move |()| Loop::Continue(pending))
    }
}

/// The fan-in wait: one `choose` over every pending backend's readiness
/// plus the inactivity timeout, until every job is resolved.
fn fan_in(
    shared: Arc<RouterShared>,
    pool: Arc<Mutex<Pool>>,
    st: Arc<Mutex<BatchState>>,
    pending: Vec<PendingEp>,
    now: Nanos,
) -> ThreadM<()> {
    loop_m(pending, move |mut pending| {
        pending.retain(|p| !p.jobs.is_empty());
        if pending.is_empty() {
            return ThreadM::pure(Loop::Break(()));
        }
        let shared = Arc::clone(&shared);
        let pool = Arc::clone(&pool);
        let st = Arc::clone(&st);
        // Compose the wait: declaration order is the deterministic
        // tie-break, so lane order (first-use order) decides races.
        let mut evts = Vec::with_capacity(pending.len() + 1);
        let mut all_fds = true;
        for (i, p) in pending.iter().enumerate() {
            match p.conn.readiness_fd() {
                Some(fd) => {
                    evts.push(readiness_evt(&fd, Interest::Read).wrap(move |()| Wake::Ready(i)))
                }
                None => {
                    all_fds = false;
                    break;
                }
            }
        }
        let wake = if all_fds {
            if shared.cfg.backend_timeout > 0 {
                evts.push(timeout_evt(shared.cfg.backend_timeout).wrap(|()| Wake::Timeout));
            }
            sync(choose(evts))
        } else if shared.cfg.backend_timeout > 0 {
            // Readiness-less transport with a deadline: the receive
            // itself cannot join the choose, so pump lane 0's blocking
            // recv through a one-shot helper thread and race its
            // completion signal against the timer (the free-function
            // pattern of `session_input`). If the timer wins, the
            // timeout branch below closes the conns, which completes
            // the stranded recv — the helper then stores into a slot
            // nobody reads and exits; nothing blocks forever.
            let slot: Arc<Mutex<Option<Result<Bytes, eveth_core::net::NetError>>>> =
                Arc::new(Mutex::new(None));
            let done = Signal::new();
            let conn = Arc::clone(&pending[0].conn);
            let chunk_max = shared.cfg.recv_chunk;
            let tx_slot = Arc::clone(&slot);
            let tx_done = done.clone();
            sys_fork(conn.recv(chunk_max).map(move |got| {
                *tx_slot.lock() = Some(got);
                tx_done.fire();
            }))
            .bind({
                let timeout = shared.cfg.backend_timeout;
                move |()| {
                    sync(choose(vec![
                        done.wait_evt().wrap(move |()| {
                            Wake::Pumped(slot.lock().take().expect("pump fired after storing"))
                        }),
                        timeout_evt(timeout).wrap(|()| Wake::Timeout),
                    ]))
                }
            })
        } else {
            // Readiness-less with no deadline: degrade to serving lane 0
            // with a plain blocking recv (mirrors `session_input`'s
            // documented fd-less fallback).
            ThreadM::pure(Wake::Ready(0))
        };
        wake.bind(move |wake| match wake {
            Wake::Timeout => {
                // Every still-pending backend is written off at once; the
                // deadline is per-wait inactivity, not per-byte pacing.
                let mut conns = Vec::with_capacity(pending.len());
                for p in &mut pending {
                    fail_pending(&shared, &pool, &st, p, now);
                    conns.push(Arc::clone(&p.conn));
                }
                map_m(conns.len(), move |i| conns[i].close()).map(|_| Loop::Break(()))
            }
            Wake::Ready(i) => {
                let conn = Arc::clone(&pending[i].conn);
                let chunk_max = shared.cfg.recv_chunk;
                conn.recv(chunk_max)
                    .bind(move |got| settle_lane(shared, pool, st, pending, i, got, now))
            }
            Wake::Pumped(got) => settle_lane(shared, pool, st, pending, 0, got, now),
        })
    })
}

/// Runs one round: connect + send per lane (sequential, lane order),
/// then fan replies back in.
fn run_round(
    shared: Arc<RouterShared>,
    pool: Arc<Mutex<Pool>>,
    st: Arc<Mutex<BatchState>>,
    round: Round,
) -> ThreadM<()> {
    let Round { eps, wires, queues } = round;
    let wires: Vec<Bytes> = wires.into_iter().map(Bytes::from).collect();
    let lanes = Arc::new(Mutex::new(
        eps.iter()
            .copied()
            .zip(wires)
            .zip(queues)
            .map(|((ep, wire), jobs)| Some((ep, wire, jobs)))
            .collect::<Vec<_>>(),
    ));
    let n = lanes.lock().len();
    let sh = Arc::clone(&shared);
    let pl = Arc::clone(&pool);
    let stt = Arc::clone(&st);
    let dial_lanes = Arc::clone(&lanes);
    // One timestamp for the whole round: every cooldown decision in it
    // (skip-or-dial, mark-on-failure) keys off the round's start, which
    // is deterministic and costs a single clock read.
    sys_time().bind(move |now| {
        map_m(n, move |i| {
            let (ep, wire, jobs) = dial_lanes.lock()[i].take().expect("lane visited once");
            let shared = Arc::clone(&sh);
            let pool = Arc::clone(&pl);
            let st = Arc::clone(&stt);
            ensure_conn(&shared, &pool, ep, now).bind(move |conn| {
                let fail_all = move |shared: Arc<RouterShared>,
                                     st: Arc<Mutex<BatchState>>,
                                     jobs: VecDeque<(usize, Role)>| {
                    let mut guard = st.lock();
                    for (slot, role) in jobs {
                        resolve_fail(&mut guard, &shared, slot, role, ep);
                    }
                };
                match conn {
                    None => {
                        fail_all(shared, st, jobs);
                        ThreadM::pure(None)
                    }
                    Some(conn) => send_all(&conn, wire).bind(move |sent| match sent {
                        Ok(()) => ThreadM::pure(Some(PendingEp {
                            ep,
                            conn,
                            framer: ReplyFramer::new(),
                            jobs,
                        })),
                        Err(_) => {
                            shared.stats.backend_errors.incr();
                            shared.mark_backend_down(ep, now);
                            pool_remove(&pool, ep);
                            fail_all(shared, st, jobs);
                            conn.close().map(|()| None)
                        }
                    }),
                }
            })
        })
        .bind(move |pending: Vec<Option<PendingEp>>| {
            fan_in(
                shared,
                pool,
                st,
                pending.into_iter().flatten().collect(),
                now,
            )
        })
    })
}

/// The next round owed after `run_round`: retry lanes for replicated
/// reads still working down their replica lists, then one final
/// fire-and-forget lane set for scheduled read-repairs.
fn build_next_round(shared: &RouterShared, st: &Mutex<BatchState>) -> Option<Round> {
    let mut guard = st.lock();
    let mut round = Round::new();
    for (i, slot) in guard.slots.iter().enumerate() {
        if let SlotState::AwaitRead {
            wire, tries, next, ..
        } = slot
        {
            shared.stats.read_retries.incr();
            let lane = round.lane(tries[*next]);
            round.wires[lane].extend_from_slice(wire);
            round.queues[lane].push_back((i, Role::Read));
        }
    }
    if round.is_empty() {
        // Reads settled: ship the read-repairs (noreply — no jobs, the
        // fan-in has nothing to wait for).
        for (ep, cmd) in guard.repairs.drain(..) {
            let lane = round.lane(ep);
            cmd.encode_into(&mut round.wires[lane]);
        }
    }
    (!round.is_empty()).then_some(round)
}

/// Runs rounds until every slot is ready and all repairs are shipped.
fn execute_batch(
    shared: Arc<RouterShared>,
    pool: Arc<Mutex<Pool>>,
    st: Arc<Mutex<BatchState>>,
    first: Round,
) -> ThreadM<()> {
    loop_m(Some(first), move |round| {
        let Some(round) = round else {
            return ThreadM::pure(Loop::Break(()));
        };
        let shared = Arc::clone(&shared);
        let pool = Arc::clone(&pool);
        let st = Arc::clone(&st);
        let shared2 = Arc::clone(&shared);
        let st2 = Arc::clone(&st);
        run_round(shared, pool, st, round)
            .map(move |()| Loop::Continue(build_next_round(&shared2, &st2)))
    })
}

/// The routing [`Service`]: thin glue between the framework's session
/// lifecycle and the batch machinery above.
pub struct RouterService {
    shared: Arc<RouterShared>,
}

impl Service for RouterService {
    type Session = RouterSession;

    fn open(&self, _conn: &Arc<dyn Conn>) -> RouterSession {
        RouterSession {
            parser: CommandParser::new(),
            pool: Arc::new(Mutex::new(Vec::new())),
        }
    }

    fn on_chunk(
        &self,
        conn: Arc<dyn Conn>,
        session: RouterSession,
        chunk: Bytes,
    ) -> ThreadM<Step<RouterSession>> {
        let RouterSession { mut parser, pool } = session;
        let shared = Arc::clone(&self.shared);
        // Parse everything buffered (pure — routing needs no store access).
        let mut cmds = Vec::new();
        let mut trailing: Option<Reply> = None;
        let mut next = parser.feed_bytes(chunk);
        loop {
            match next {
                Err(e) => {
                    shared.stats.protocol_errors.incr();
                    trailing = Some(if matches!(e, ProtoError::Malformed("unknown command")) {
                        Reply::Error
                    } else {
                        Reply::ClientError(e.reason())
                    });
                    break;
                }
                Ok(None) => break,
                Ok(Some(cmd)) => {
                    cmds.push(cmd);
                    next = parser.try_next();
                }
            }
        }
        if !cmds.is_empty() {
            shared.stats.batches.incr();
        }
        let ring = shared.ring();
        let Plan { state, first, quit } = build_plan(&shared, &ring, cmds);
        let st = Arc::new(Mutex::new(state));
        let close_after = quit || trailing.is_some();
        let shared2 = Arc::clone(&shared);
        let st2 = Arc::clone(&st);
        let pool2 = Arc::clone(&pool);
        execute_batch(shared, Arc::clone(&pool), st, first).bind(move |()| {
            let mut segs: Vec<Bytes> = Vec::new();
            let drained: Vec<SlotState> = st2.lock().slots.drain(..).collect();
            let mut slots = drained.into_iter();
            while let Some(slot) = slots.next() {
                match slot {
                    SlotState::Ready(bytes) => segs.extend(bytes),
                    // A split multi-key get: the next `parts` slots each
                    // hold one sub-get's full reply. Stitch them back
                    // into one response by stripping each part's
                    // terminating END and emitting a single final END —
                    // sub-slots were pushed in key order, and a single
                    // node answers VALUEs in key order too, so the
                    // stitched bytes match the unsplit reply. Any part
                    // that did not end in END (e.g. SERVER_ERROR from an
                    // exhausted shard) fails the whole command: a routed
                    // miss must never masquerade as a store miss.
                    SlotState::MultiHead { parts } => {
                        let mut body: Vec<Bytes> = Vec::new();
                        let mut dead = false;
                        for _ in 0..parts {
                            match slots.next() {
                                Some(SlotState::Ready(bytes)) => match strip_end(bytes) {
                                    Some(run) => body.extend(run),
                                    None => dead = true,
                                },
                                _ => dead = true,
                            }
                        }
                        if dead {
                            segs.extend(server_error_bytes());
                        } else {
                            segs.extend(body);
                            segs.push(Bytes::from_static(wire::END));
                        }
                    }
                    // Unresolvable states were finalized by the rounds;
                    // anything else is a routing bug — answer SERVER_ERROR
                    // rather than desynchronize the client.
                    _ => segs.extend(server_error_bytes()),
                }
            }
            if let Some(reply) = trailing {
                let mut out = Vec::new();
                reply.encode_into(&mut out);
                segs.push(Bytes::from(out));
            }
            let sent = if segs.is_empty() {
                ThreadM::pure(Ok(()))
            } else {
                shared2.send_client(&conn, segs)
            };
            sent.bind(move |sent| {
                if sent.is_err() || close_after {
                    close_pool(pool2).map(|()| Step::Close)
                } else {
                    ThreadM::pure(Step::Continue(RouterSession {
                        parser,
                        pool: pool2,
                    }))
                }
            })
        })
    }

    fn attach_lifecycle(&self, shutdown: &Signal, cfg: &ServerConfig, stats: &Arc<FrameworkStats>) {
        let _ = self.shared.lifecycle.set(Lifecycle {
            shutdown: shutdown.clone(),
            send_timeout: cfg.send_timeout,
            framework: Arc::clone(stats),
        });
    }
}

impl fmt::Debug for RouterService {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "RouterService(nodes={}, r={})",
            self.shared.ring().nodes().len(),
            self.shared.cfg.replication
        )
    }
}

/// Closes every pooled backend connection (clean client quit / error
/// paths; framework-initiated session ends drop the pool, whose
/// connections the backends reap by their own idle/shutdown policies).
fn close_pool(pool: Arc<Mutex<Pool>>) -> ThreadM<()> {
    let conns: Vec<Arc<dyn Conn>> = pool.lock().drain(..).map(|(_, c)| c).collect();
    map_m(conns.len(), move |i| conns[i].close()).map(|_| ())
}

/// The cluster router server: [`RouterService`] hosted on the generic
/// event-native [`Server`].
pub struct Router {
    server: Arc<Server<RouterService>>,
    shared: Arc<RouterShared>,
}

impl Router {
    /// Builds a router over `stack`, dialing backends through the same
    /// stack.
    ///
    /// # Panics
    ///
    /// If `cfg.backends` is empty (the ring would be meaningless).
    pub fn new(stack: Arc<dyn NetStack>, cfg: RouterConfig) -> Arc<Router> {
        let ring = HashRing::new(cfg.backends.clone(), cfg.vnodes);
        let shared = Arc::new(RouterShared {
            stack: Arc::clone(&stack),
            ring: Mutex::new(Arc::new(ring)),
            stats: Arc::new(RouterStats::default()),
            down: Mutex::new(Vec::new()),
            lifecycle: std::sync::OnceLock::new(),
            cfg: cfg.clone(),
        });
        let server = Server::new(
            stack,
            RouterService {
                shared: Arc::clone(&shared),
            },
            ServerConfig {
                port: cfg.port,
                recv_chunk: cfg.recv_chunk,
                idle_timeout: cfg.idle_timeout,
                send_timeout: cfg.send_timeout,
            },
        );
        Arc::new(Router { server, shared })
    }

    /// Swaps ring membership mid-run (rebalance): sessions pick up the
    /// new ring at their next batch; pooled connections to departed
    /// backends are simply never used again. Clears the failure
    /// cooldowns — new membership is the operator's word that the
    /// survivors are worth dialing again.
    pub fn set_ring(&self, backends: Vec<Endpoint>) {
        let ring = HashRing::new(backends, self.shared.cfg.vnodes);
        *self.shared.ring.lock() = Arc::new(ring);
        self.shared.down.lock().clear();
    }

    /// The current ring snapshot.
    pub fn ring(&self) -> Arc<HashRing> {
        self.shared.ring()
    }

    /// Router counters.
    pub fn stats(&self) -> &Arc<RouterStats> {
        &self.shared.stats
    }

    /// The generic server hosting the service (lifecycle counters,
    /// active-session count).
    pub fn server(&self) -> &Arc<Server<RouterService>> {
        &self.server
    }

    /// Registers the router's counters and the framework's lifecycle
    /// counters into an attached telemetry hub. Call before spawning
    /// [`Router::run`].
    pub fn attach_telemetry(&self, telemetry: &Arc<Telemetry>) {
        self.server.attach_telemetry(telemetry, "router");
        let reg = telemetry.registry();
        let s = &self.shared.stats;
        reg.register_counter("eveth_router_commands_total", &[], &s.commands);
        reg.register_counter("eveth_router_batches_total", &[], &s.batches);
        reg.register_counter(
            "eveth_router_replicated_writes_total",
            &[],
            &s.replicated_writes,
        );
        reg.register_counter("eveth_router_read_retries_total", &[], &s.read_retries);
        reg.register_counter("eveth_router_read_repairs_total", &[], &s.read_repairs);
        reg.register_counter("eveth_router_backend_errors_total", &[], &s.backend_errors);
        reg.register_counter("eveth_router_server_errors_total", &[], &s.server_errors);
        reg.register_counter(
            "eveth_router_protocol_errors_total",
            &[],
            &s.protocol_errors,
        );
    }

    /// Initiates graceful shutdown (see [`Server::shutdown`]).
    pub fn shutdown(&self) {
        self.server.shutdown();
    }

    /// The shutdown broadcast.
    pub fn shutdown_signal(&self) -> &Signal {
        self.server.shutdown_signal()
    }

    /// Fires once shutdown was requested and the last session ended.
    pub fn drained_signal(&self) -> &Signal {
        self.server.drained_signal()
    }

    /// The main router thread; spawn it on a runtime.
    pub fn run(self: &Arc<Self>) -> ThreadM<()> {
        self.server.run()
    }
}

impl fmt::Debug for Router {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Router(port={}, nodes={}, r={})",
            self.shared.cfg.port,
            self.shared.ring().nodes().len(),
            self.shared.cfg.replication
        )
    }
}
