//! Cost models: the virtual CPU time each scheduler action consumes.
//!
//! The paper's I/O benchmarks ran on a single-processor 1.2 GHz Celeron
//! (footnote 2). The two presets here calibrate, for that class of machine,
//! (a) the application-level monadic runtime — cheap queue operations, one
//! `epoll_ctl`-class syscall per registration — and (b) Linux NPTL kernel
//! threads — the *same* per-client program, but every blocking point costs a
//! pair of kernel context switches, thread creation costs microseconds, and
//! each thread reserves a 32 KB stack out of a 32-bit address space (which is
//! what capped NPTL at ≈16k threads in the paper's tests, §5).

use eveth_core::engine::CostKind;
use eveth_core::time::Nanos;

/// Virtual CPU nanoseconds charged per scheduler action.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CostModel {
    /// Human-readable name, printed by bench harnesses.
    pub name: &'static str,
    /// One interpreted non-blocking step.
    pub step_ns: Nanos,
    /// Creating a thread.
    pub fork_ns: Nanos,
    /// Switching between runnable threads.
    pub ctx_switch_ns: Nanos,
    /// Registering interest in a readiness event (and blocking on it, for a
    /// kernel-thread model).
    pub epoll_register_ns: Nanos,
    /// Resuming a blocked thread.
    pub wake_ns: Nanos,
    /// Submitting an asynchronous (or, for kernel threads, synchronous)
    /// disk request.
    pub aio_submit_ns: Nanos,
    /// Dispatching to the blocking-I/O pool.
    pub blio_ns: Nanos,
    /// Parking on a synchronization wait queue.
    pub park_ns: Nanos,
    /// Arming a timer.
    pub sleep_arm_ns: Nanos,
    /// Bytes of address space reserved per thread (stack). Drives the
    /// thread-count cap and the memory columns of the benchmarks.
    pub stack_bytes: u64,
    /// Maximum threads the model can host (`None` = unbounded). NPTL with
    /// 32 KB stacks on 32-bit Linux capped out around 16k in the paper.
    pub max_threads: Option<usize>,
}

impl CostModel {
    /// The application-level monadic runtime (this paper's system).
    ///
    /// Steps are trace-node interpretations; blocking points are queue
    /// pushes; the notable syscall costs are `epoll_ctl` registration and
    /// `io_submit`.
    pub fn monadic() -> Self {
        CostModel {
            name: "eveth (monadic)",
            step_ns: 90,
            fork_ns: 400,
            ctx_switch_ns: 180,
            epoll_register_ns: 900,
            wake_ns: 250,
            aio_submit_ns: 1_800,
            blio_ns: 1_200,
            park_ns: 150,
            sleep_arm_ns: 400,
            stack_bytes: 64, // measured live bytes per monadic thread (E1)
            max_threads: None,
        }
    }

    /// Linux NPTL kernel threads, 32 KB stacks, 32-bit address space — the
    /// paper's C baseline.
    ///
    /// Every blocking point (readiness wait, synchronous disk read, pipe
    /// full/empty) schedules the thread out and back in: two kernel context
    /// switches at roughly 1.8 µs each on the Celeron-class testbed.
    pub fn nptl() -> Self {
        CostModel {
            name: "C (NPTL)",
            step_ns: 90,
            fork_ns: 18_000,
            ctx_switch_ns: 1_800,
            epoll_register_ns: 1_800, // block in the kernel: switch out
            wake_ns: 1_800,           // switch back in
            aio_submit_ns: 1_800,     // synchronous read(): switch out
            blio_ns: 0,               // kernel threads just block
            park_ns: 1_800,
            sleep_arm_ns: 1_200,
            stack_bytes: 32 * 1024,
            max_threads: Some(16 * 1024),
        }
    }

    /// An Apache-2-style worker: NPTL costs plus extra per-step overhead for
    /// the larger per-request code path of a general-purpose server.
    pub fn apache() -> Self {
        CostModel {
            step_ns: 140,
            name: "Apache (model)",
            ..Self::nptl()
        }
    }

    /// A zero-cost model: pure semantics, no timing. Useful in unit tests
    /// where only ordering matters.
    pub fn free() -> Self {
        CostModel {
            name: "free",
            step_ns: 0,
            fork_ns: 0,
            ctx_switch_ns: 0,
            epoll_register_ns: 0,
            wake_ns: 0,
            aio_submit_ns: 0,
            blio_ns: 0,
            park_ns: 0,
            sleep_arm_ns: 0,
            stack_bytes: 0,
            max_threads: None,
        }
    }

    /// CPU nanoseconds for one action of `kind`.
    pub fn of(&self, kind: CostKind) -> Nanos {
        match kind {
            CostKind::Step => self.step_ns,
            CostKind::Fork => self.fork_ns,
            CostKind::CtxSwitch => self.ctx_switch_ns,
            CostKind::EpollRegister => self.epoll_register_ns,
            CostKind::Wake => self.wake_ns,
            CostKind::AioSubmit => self.aio_submit_ns,
            CostKind::Blio => self.blio_ns,
            CostKind::Park => self.park_ns,
            CostKind::Sleep => self.sleep_arm_ns,
            CostKind::Custom(ns) => ns,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nptl_blocking_dwarfs_monadic() {
        let m = CostModel::monadic();
        let n = CostModel::nptl();
        let m_block = m.of(CostKind::EpollRegister) + m.of(CostKind::Wake);
        let n_block = n.of(CostKind::EpollRegister) + n.of(CostKind::Wake);
        assert!(
            n_block > 2 * m_block,
            "kernel blocking ({n_block}ns) must cost well over the monadic path ({m_block}ns)"
        );
    }

    #[test]
    fn custom_costs_pass_through() {
        assert_eq!(CostModel::free().of(CostKind::Custom(123)), 123);
    }

    #[test]
    fn nptl_has_thread_cap_monadic_does_not() {
        assert!(CostModel::nptl().max_threads.is_some());
        assert!(CostModel::monadic().max_threads.is_none());
    }
}
