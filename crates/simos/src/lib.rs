//! # eveth-simos — the simulated operating substrate
//!
//! Everything the paper's evaluation ran on that we cannot (or should not)
//! require of a test machine, rebuilt as deterministic, seeded simulation:
//!
//! * [`des`] — the virtual clock and event heap all devices share;
//! * [`cost`] — CPU cost models: the application-level monadic runtime vs.
//!   Linux NPTL kernel threads vs. an Apache-style worker (how the paired
//!   lines of Figures 17–19 are produced);
//! * [`desrt`] — [`SimRuntime`], the core scheduler
//!   engine driven by virtual time;
//! * [`disk`] — a seek-accurate disk with a C-LOOK elevator (Figure 17's
//!   mechanism) modelled on the paper's 7200 RPM 80 GB EIDE drive;
//! * [`fs`] — a file system over that disk with deterministic contents;
//! * [`net`] — a packet network with latency, bandwidth, loss and
//!   per-link FIFO ordering (the substrate under `eveth-tcp`);
//! * [`sockets`] — a kernel-TCP model implementing
//!   [`NetStack`](eveth_core::net::NetStack), the "standard socket library"
//!   side of the paper's one-line switch;
//! * [`hub`] — deterministic fault injection (link down/up, host
//!   crash/restart) fanned out across the layers above, for the cluster
//!   failure scenarios.
//!
//! The same monadic programs run unchanged on
//! [`Runtime`](eveth_core::runtime::Runtime) (wall clock) and
//! [`SimRuntime`] (virtual time): the bench harnesses in
//! `eveth-bench` exploit this to rerun one workload under several cost
//! models.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod cost;
pub mod des;
pub mod desrt;
pub mod disk;
pub mod fs;
pub mod hub;
pub mod net;
pub mod sockets;

pub use cost::CostModel;
pub use des::SimClock;
pub use desrt::{SimConfig, SimReport, SimRuntime};
