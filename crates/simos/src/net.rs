//! A simulated packet network: hosts, links with latency / bandwidth /
//! loss, and type-erased datagram delivery.
//!
//! This is the substrate under the application-level TCP stack: the paper
//! reads raw packets through an iptables queue; here segments travel
//! through seeded, deterministic links that can drop, delay and reorder —
//! which is what lets the TCP tests exercise retransmission and congestion
//! control reproducibly.

use std::any::Any;
use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Weak};

use eveth_core::hash::DetHashSet;
use eveth_core::net::HostId;
use eveth_core::time::{Nanos, SECS};
use parking_lot::Mutex;

use crate::des::SimClock;

/// Transmission characteristics of a directed link.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkParams {
    /// One-way propagation delay.
    pub latency: Nanos,
    /// Serialization rate in bits per second.
    pub bandwidth_bps: u64,
    /// Probability in [0, 1) that a packet is silently dropped.
    pub loss: f64,
}

impl LinkParams {
    /// The paper's client↔server link: 100 Mbps Ethernet, ~0.1 ms one-way.
    pub fn ethernet_100mbps() -> Self {
        LinkParams {
            latency: 100_000,
            bandwidth_bps: 100_000_000,
            loss: 0.0,
        }
    }

    /// A fast, lossless loopback-style link.
    pub fn loopback() -> Self {
        LinkParams {
            latency: 10_000,
            bandwidth_bps: 10_000_000_000,
            loss: 0.0,
        }
    }

    /// Same link with the given loss probability.
    pub fn with_loss(mut self, loss: f64) -> Self {
        assert!((0.0..1.0).contains(&loss), "loss must be in [0,1)");
        self.loss = loss;
        self
    }

    /// Same link with the given one-way latency.
    pub fn with_latency(mut self, latency: Nanos) -> Self {
        self.latency = latency;
        self
    }

    /// Nanoseconds to serialize `bytes` onto the wire.
    pub fn tx_time(&self, bytes: usize) -> Nanos {
        (bytes as u64).saturating_mul(8).saturating_mul(SECS) / self.bandwidth_bps
    }
}

/// Called on the destination host for each delivered packet: source host
/// plus the type-erased payload.
pub type PacketHandler = Arc<dyn Fn(HostId, Box<dyn Any + Send>) + Send + Sync>;

/// Delivery counters.
#[derive(Debug, Default)]
pub struct NetStats {
    /// Packets handed to [`SimNet::send`].
    pub sent: AtomicU64,
    /// Packets delivered to a handler.
    pub delivered: AtomicU64,
    /// Packets dropped by loss, downed links, or crashed hosts.
    pub dropped: AtomicU64,
    /// Packets addressed to unregistered hosts.
    pub unroutable: AtomicU64,
    /// Wire bytes sent.
    pub bytes: AtomicU64,
}

struct NetState {
    hosts: HashMap<HostId, PacketHandler>,
    default_link: LinkParams,
    links: HashMap<(HostId, HostId), LinkParams>,
    busy_until: HashMap<(HostId, HostId), Nanos>,
    /// Directed links administratively down ([`SimNet::set_link_down`]);
    /// every packet queued on one is dropped with `stats.dropped`
    /// accounting. Deterministic layout: fault scenarios interleave
    /// insert/remove, and a `RandomState` set would perturb allocation
    /// counts across processes.
    downed: DetHashSet<(HostId, HostId)>,
    /// Hosts that are crashed ([`SimNet::set_host_down`]); packets to or
    /// from one are dropped at the sender.
    crashed: DetHashSet<HostId>,
    rng: u64,
}

/// The simulated network.
///
/// # Examples
///
/// ```
/// use eveth_core::net::HostId;
/// use eveth_simos::{des::SimClock, net::{LinkParams, SimNet}};
/// use std::sync::{Arc, Mutex};
///
/// let clock = SimClock::new();
/// let net = SimNet::new(clock.clone(), LinkParams::loopback(), 1);
/// let inbox = Arc::new(Mutex::new(Vec::new()));
/// let sink = inbox.clone();
/// net.register_host(HostId(2), Arc::new(move |src, pkt| {
///     let msg = *pkt.downcast::<&str>().unwrap();
///     sink.lock().unwrap().push((src, msg));
/// }));
/// net.send(HostId(1), HostId(2), 100, Box::new("ping"));
/// while clock.fire_next() {}
/// assert_eq!(*inbox.lock().unwrap(), vec![(HostId(1), "ping")]);
/// ```
pub struct SimNet {
    clock: SimClock,
    state: Mutex<NetState>,
    stats: NetStats,
    self_weak: Weak<SimNet>,
}

impl SimNet {
    /// Creates a network where every host pair uses `default_link` unless
    /// overridden. `seed` drives the deterministic loss sequence.
    pub fn new(clock: SimClock, default_link: LinkParams, seed: u64) -> Arc<Self> {
        Arc::new_cyclic(|weak| SimNet {
            clock,
            state: Mutex::new(NetState {
                hosts: HashMap::new(),
                default_link,
                links: HashMap::new(),
                busy_until: HashMap::new(),
                downed: DetHashSet::default(),
                crashed: DetHashSet::default(),
                rng: seed | 1,
            }),
            stats: NetStats::default(),
            self_weak: weak.clone(),
        })
    }

    /// Attaches a host; packets addressed to `id` invoke `handler` at their
    /// arrival time.
    pub fn register_host(&self, id: HostId, handler: PacketHandler) {
        self.state.lock().hosts.insert(id, handler);
    }

    /// Overrides the link parameters for the directed pair `src → dst`.
    pub fn set_link(&self, src: HostId, dst: HostId, params: LinkParams) {
        self.state.lock().links.insert((src, dst), params);
    }

    /// Takes the directed link `src → dst` down: every packet queued on
    /// it is dropped (and counted in [`NetStats::dropped`]) until
    /// [`SimNet::set_link_up`]. Packets already in flight still arrive —
    /// like pulling a cable, not rewriting history. Down one direction
    /// for an asymmetric fault; down both for a full partition.
    pub fn set_link_down(&self, src: HostId, dst: HostId) {
        self.state.lock().downed.insert((src, dst));
    }

    /// Restores a downed directed link. A no-op if the link was up.
    pub fn set_link_up(&self, src: HostId, dst: HostId) {
        self.state.lock().downed.remove(&(src, dst));
    }

    /// Marks `host` crashed: packets to *or* from it are dropped at the
    /// sender (counted in [`NetStats::dropped`]) until
    /// [`SimNet::set_host_up`]. The handler registration survives, so a
    /// restart is just `set_host_up`. [`crate::hub::Hub::crash_host`]
    /// drives this together with the socket-fabric side.
    pub fn set_host_down(&self, host: HostId) {
        self.state.lock().crashed.insert(host);
    }

    /// Clears the crashed mark set by [`SimNet::set_host_down`].
    pub fn set_host_up(&self, host: HostId) {
        self.state.lock().crashed.remove(&host);
    }

    /// Delivery counters.
    pub fn stats(&self) -> &NetStats {
        &self.stats
    }

    /// Sends a packet of `wire_bytes` from `src` to `dst`. The payload is
    /// delivered (or dropped) according to the link's parameters; FIFO
    /// ordering holds per directed link.
    pub fn send(&self, src: HostId, dst: HostId, wire_bytes: usize, payload: Box<dyn Any + Send>) {
        self.stats.sent.fetch_add(1, Ordering::Relaxed);
        self.stats
            .bytes
            .fetch_add(wire_bytes as u64, Ordering::Relaxed);

        let arrive = {
            let mut st = self.state.lock();
            // Fault checks precede the loss lottery so downed-link drops
            // never consume RNG draws: downing a link mid-run leaves the
            // loss sequence seen by every other link untouched.
            if st.downed.contains(&(src, dst))
                || st.crashed.contains(&src)
                || st.crashed.contains(&dst)
            {
                self.stats.dropped.fetch_add(1, Ordering::Relaxed);
                return;
            }
            let params = *st.links.get(&(src, dst)).unwrap_or(&st.default_link);
            // xorshift64 loss lottery.
            st.rng ^= st.rng << 13;
            st.rng ^= st.rng >> 7;
            st.rng ^= st.rng << 17;
            let roll = (st.rng >> 11) as f64 / (1u64 << 53) as f64;
            if roll < params.loss {
                self.stats.dropped.fetch_add(1, Ordering::Relaxed);
                return;
            }
            let now = self.clock.now();
            let busy = st.busy_until.entry((src, dst)).or_insert(0);
            let depart = (*busy).max(now) + params.tx_time(wire_bytes);
            *busy = depart;
            depart + params.latency
        };

        let weak = self.self_weak.clone();
        self.clock.schedule_at(arrive, move || {
            let Some(net) = weak.upgrade() else { return };
            let handler = net.state.lock().hosts.get(&dst).cloned();
            match handler {
                Some(h) => {
                    net.stats.delivered.fetch_add(1, Ordering::Relaxed);
                    h(src, payload);
                }
                None => {
                    net.stats.unroutable.fetch_add(1, Ordering::Relaxed);
                }
            }
        });
    }
}

impl fmt::Debug for SimNet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "SimNet(hosts={}, sent={}, dropped={})",
            self.state.lock().hosts.len(),
            self.stats.sent.load(Ordering::Relaxed),
            self.stats.dropped.load(Ordering::Relaxed)
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn collect_net(params: LinkParams, seed: u64) -> (SimClock, Arc<SimNet>, Arc<Mutex<Vec<u32>>>) {
        let clock = SimClock::new();
        let net = SimNet::new(clock.clone(), params, seed);
        let inbox = Arc::new(Mutex::new(Vec::new()));
        let sink = inbox.clone();
        net.register_host(
            HostId(9),
            Arc::new(move |_src, pkt| {
                sink.lock().push(*pkt.downcast::<u32>().unwrap());
            }),
        );
        (clock, net, inbox)
    }

    #[test]
    fn per_link_fifo_ordering() {
        let (clock, net, inbox) = collect_net(LinkParams::ethernet_100mbps(), 5);
        for i in 0..50u32 {
            net.send(HostId(1), HostId(9), 1500, Box::new(i));
        }
        while clock.fire_next() {}
        assert_eq!(*inbox.lock(), (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn bandwidth_serializes_packets() {
        let (clock, net, inbox) = collect_net(LinkParams::ethernet_100mbps(), 5);
        // 100 packets × 1500 B at 100 Mbps = 120 µs each of serialization.
        for i in 0..100u32 {
            net.send(HostId(1), HostId(9), 1500, Box::new(i));
        }
        while clock.fire_next() {}
        assert_eq!(inbox.lock().len(), 100);
        let expected = LinkParams::ethernet_100mbps().tx_time(1500) * 100
            + LinkParams::ethernet_100mbps().latency;
        assert_eq!(clock.now(), expected);
    }

    #[test]
    fn loss_drops_deterministically() {
        let (clock, net, inbox) = collect_net(LinkParams::loopback().with_loss(0.5), 1234);
        for i in 0..1000u32 {
            net.send(HostId(1), HostId(9), 100, Box::new(i));
        }
        while clock.fire_next() {}
        let delivered = inbox.lock().len();
        assert!(
            (350..650).contains(&delivered),
            "≈half should arrive, got {delivered}"
        );
        // Deterministic: same seed, same survivors.
        let (clock2, net2, inbox2) = collect_net(LinkParams::loopback().with_loss(0.5), 1234);
        for i in 0..1000u32 {
            net2.send(HostId(1), HostId(9), 100, Box::new(i));
        }
        while clock2.fire_next() {}
        assert_eq!(*inbox.lock(), *inbox2.lock());
    }

    #[test]
    fn unroutable_packets_are_counted() {
        let (clock, net, _inbox) = collect_net(LinkParams::loopback(), 5);
        net.send(HostId(1), HostId(77), 100, Box::new(0u32));
        while clock.fire_next() {}
        assert_eq!(net.stats().unroutable.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn downed_link_drops_everything_and_time_still_advances() {
        let (clock, net, inbox) = collect_net(LinkParams::ethernet_100mbps(), 5);
        net.set_link_down(HostId(1), HostId(9));
        for i in 0..20u32 {
            net.send(HostId(1), HostId(9), 1500, Box::new(i));
        }
        // An unrelated timer: the world keeps turning while the link is down.
        let fired = Arc::new(Mutex::new(false));
        let fired2 = fired.clone();
        clock.schedule_at(1_000_000, move || *fired2.lock() = true);
        while clock.fire_next() {}
        assert!(inbox.lock().is_empty(), "downed link must drop everything");
        assert_eq!(net.stats().dropped.load(Ordering::Relaxed), 20);
        assert!(*fired.lock(), "virtual time must still advance");
        assert_eq!(clock.now(), 1_000_000);

        // Back up: traffic flows again, and the drop counter stays put.
        net.set_link_up(HostId(1), HostId(9));
        net.send(HostId(1), HostId(9), 1500, Box::new(99u32));
        while clock.fire_next() {}
        assert_eq!(*inbox.lock(), vec![99]);
        assert_eq!(net.stats().dropped.load(Ordering::Relaxed), 20);
    }

    #[test]
    fn crashed_host_drops_both_directions() {
        let (clock, net, inbox) = collect_net(LinkParams::loopback(), 5);
        net.set_host_down(HostId(9));
        net.send(HostId(1), HostId(9), 100, Box::new(1u32));
        net.send(HostId(9), HostId(1), 100, Box::new(2u32));
        while clock.fire_next() {}
        assert!(inbox.lock().is_empty());
        assert_eq!(net.stats().dropped.load(Ordering::Relaxed), 2);
        net.set_host_up(HostId(9));
        net.send(HostId(1), HostId(9), 100, Box::new(3u32));
        while clock.fire_next() {}
        assert_eq!(*inbox.lock(), vec![3]);
    }

    #[test]
    fn downed_link_does_not_perturb_loss_sequence() {
        // Survivors on a lossy link a→b must be identical whether or not
        // an unrelated link was downed and used in between.
        let run = |down_other: bool| {
            let (clock, net, inbox) = collect_net(LinkParams::loopback().with_loss(0.5), 77);
            if down_other {
                net.set_link_down(HostId(3), HostId(4));
            }
            for i in 0..200u32 {
                net.send(HostId(1), HostId(9), 100, Box::new(i));
                if down_other {
                    net.send(HostId(3), HostId(4), 100, Box::new(i));
                }
            }
            while clock.fire_next() {}
            let got = inbox.lock().clone();
            drop(net);
            got
        };
        assert_eq!(run(false), run(true));
    }

    #[test]
    fn link_override_changes_latency() {
        let (clock, net, inbox) = collect_net(LinkParams::loopback(), 5);
        net.set_link(
            HostId(1),
            HostId(9),
            LinkParams::loopback().with_latency(5_000_000),
        );
        net.send(HostId(1), HostId(9), 10, Box::new(1u32));
        while clock.fire_next() {}
        assert_eq!(inbox.lock().len(), 1);
        assert!(clock.now() >= 5_000_000);
    }
}
