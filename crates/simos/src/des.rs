//! The discrete-event simulation core: a virtual clock and an event heap.
//!
//! Devices (disk, network, timers) schedule closures at absolute virtual
//! times; the simulated runtime alternates between draining its ready queue
//! (charging virtual CPU time per scheduler action) and advancing the clock
//! to the next device event. Everything is deterministic and seeded, which
//! is what lets the benchmark harnesses reproduce the paper's figures
//! exactly on every run.

use std::collections::BinaryHeap;
use std::fmt;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use eveth_core::time::Nanos;
use parking_lot::Mutex;

type EventFn = Box<dyn FnOnce() + Send>;

struct EventEntry {
    at: Nanos,
    seq: u64,
    run: EventFn,
    /// Set when the scheduler of this event withdrew it (a losing
    /// `timeout_evt` branch). Cancelled entries are dropped by the pop
    /// paths without firing and — crucially — without dragging the clock
    /// forward to their deadline, so an abandoned timeout cannot extend a
    /// run's virtual makespan.
    cancelled: Option<Arc<AtomicBool>>,
}

impl EventEntry {
    fn is_cancelled(&self) -> bool {
        self.cancelled
            .as_ref()
            .is_some_and(|c| c.load(Ordering::SeqCst))
    }
}

/// Cancelled entries tolerated in the heap before a cancellation triggers
/// compaction (and then only once they also outnumber live entries). Keeps
/// the heap's physical size at O(live + 64) under arm-and-cancel churn
/// instead of O(armed-ever).
const COMPACT_MIN: usize = 64;

/// Cancellation handle for [`SimClock::schedule_cancellable`].
#[derive(Clone)]
pub struct SimTimer {
    flag: Arc<AtomicBool>,
    state: std::sync::Weak<Mutex<ClockState>>,
}

impl SimTimer {
    /// Withdraws the event: it will never fire (idempotent; a no-op if it
    /// already fired). The entry is dropped eagerly: pop paths discard it,
    /// and once cancelled entries outnumber live ones the heap is
    /// compacted, so a churn storm's abandoned timeouts cannot accumulate.
    pub fn cancel(&self) {
        let Some(state) = self.state.upgrade() else {
            self.flag.store(true, Ordering::SeqCst);
            return;
        };
        let mut st = state.lock();
        if self.flag.swap(true, Ordering::SeqCst) {
            return; // already cancelled, or already fired
        }
        st.cancelled += 1;
        if st.cancelled > COMPACT_MIN && st.cancelled * 2 > st.heap.len() {
            st.heap.retain(|e| !e.is_cancelled());
            st.cancelled = 0;
        }
    }

    /// True once the timer is disarmed — cancelled, or already fired.
    pub fn is_cancelled(&self) -> bool {
        self.flag.load(Ordering::SeqCst)
    }
}

impl fmt::Debug for SimTimer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SimTimer(cancelled={})", self.is_cancelled())
    }
}

impl PartialEq for EventEntry {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl Eq for EventEntry {}
impl PartialOrd for EventEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for EventEntry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Reversed for a min-heap on (time, sequence).
        other.at.cmp(&self.at).then(other.seq.cmp(&self.seq))
    }
}

struct ClockState {
    now: Nanos,
    seq: u64,
    heap: BinaryHeap<EventEntry>,
    /// Cancelled entries still resident in `heap`, kept exact under the
    /// state lock so cancellation knows when compaction is worthwhile.
    cancelled: usize,
}

/// A shared virtual clock with an event queue.
///
/// # Examples
///
/// ```
/// use eveth_simos::des::SimClock;
/// use std::sync::atomic::{AtomicU64, Ordering};
/// use std::sync::Arc;
///
/// let clock = SimClock::new();
/// let hits = Arc::new(AtomicU64::new(0));
/// let h = hits.clone();
/// clock.schedule(1_000, move || { h.fetch_add(1, Ordering::SeqCst); });
/// assert!(clock.fire_next());
/// assert_eq!(clock.now(), 1_000);
/// assert_eq!(hits.load(Ordering::SeqCst), 1);
/// ```
#[derive(Clone)]
pub struct SimClock {
    state: Arc<Mutex<ClockState>>,
}

impl SimClock {
    /// Creates a clock at time zero with no pending events.
    pub fn new() -> Self {
        SimClock {
            state: Arc::new(Mutex::new(ClockState {
                now: 0,
                seq: 0,
                heap: BinaryHeap::new(),
                cancelled: 0,
            })),
        }
    }

    /// The current virtual time.
    pub fn now(&self) -> Nanos {
        self.state.lock().now
    }

    /// Advances the clock by `dur` without firing events — used to model
    /// CPU time consumed by the scheduler.
    pub fn advance(&self, dur: Nanos) {
        self.state.lock().now += dur;
    }

    /// Sets the clock to an absolute time. The multi-CPU simulated runtime
    /// uses this to switch the clock between per-CPU time contexts before
    /// and after each scheduling turn; moving backwards is deliberate and
    /// sound (a lagging CPU executing concurrently with a further-ahead
    /// one), because pending events still fire strictly in timestamp
    /// order.
    pub fn set_now(&self, t: Nanos) {
        self.state.lock().now = t;
    }

    /// Schedules `f` to run `delay` nanoseconds from now.
    pub fn schedule(&self, delay: Nanos, f: impl FnOnce() + Send + 'static) {
        let mut st = self.state.lock();
        let at = st.now.saturating_add(delay);
        Self::push(&mut st, at, Box::new(f), None);
    }

    /// Schedules `f` at an absolute virtual time (clamped to `now` if it is
    /// already in the past).
    pub fn schedule_at(&self, at: Nanos, f: impl FnOnce() + Send + 'static) {
        let mut st = self.state.lock();
        let at = at.max(st.now);
        Self::push(&mut st, at, Box::new(f), None);
    }

    /// Schedules `f` to run `delay` nanoseconds from now, returning a
    /// handle that can withdraw the event before it fires — the timer form
    /// `timeout_evt` needs: a losing timeout branch is cancelled *eagerly*
    /// so its deadline neither fires nor keeps the simulation running.
    pub fn schedule_cancellable(
        &self,
        delay: Nanos,
        f: impl FnOnce() + Send + 'static,
    ) -> SimTimer {
        let flag = Arc::new(AtomicBool::new(false));
        let mut st = self.state.lock();
        let at = st.now.saturating_add(delay);
        Self::push(&mut st, at, Box::new(f), Some(Arc::clone(&flag)));
        SimTimer {
            flag,
            state: Arc::downgrade(&self.state),
        }
    }

    fn push(st: &mut ClockState, at: Nanos, run: EventFn, cancelled: Option<Arc<AtomicBool>>) {
        let seq = st.seq;
        st.seq += 1;
        st.heap.push(EventEntry {
            at,
            seq,
            run,
            cancelled,
        });
    }

    /// Drops cancelled entries sitting at the head of the heap so `peek`
    /// describes the next event that will actually fire.
    fn prune_cancelled(st: &mut ClockState) {
        while st.heap.peek().is_some_and(|e| e.is_cancelled()) {
            st.heap.pop();
            st.cancelled = st.cancelled.saturating_sub(1);
        }
    }

    /// Pops and runs the next live event, advancing the clock to (at
    /// least) its timestamp; cancelled entries are discarded without
    /// firing or advancing time. Returns `false` if no live event is
    /// pending.
    pub fn fire_next(&self) -> bool {
        let ev = {
            let mut st = self.state.lock();
            Self::prune_cancelled(&mut st);
            match st.heap.pop() {
                Some(ev) => {
                    // A busy CPU may already be past the event's time; the
                    // event is then processed late, never early.
                    st.now = st.now.max(ev.at);
                    // Mark the firing entry's flag spent (under the lock),
                    // so a late cancel from a losing branch is not counted
                    // against the heap's cancelled-residue budget.
                    if let Some(flag) = &ev.cancelled {
                        flag.store(true, Ordering::SeqCst);
                    }
                    ev
                }
                None => return false,
            }
        };
        (ev.run)();
        true
    }

    /// Timestamp of the earliest pending live event.
    pub fn next_deadline(&self) -> Option<Nanos> {
        let mut st = self.state.lock();
        Self::prune_cancelled(&mut st);
        st.heap.peek().map(|e| e.at)
    }

    /// Number of pending live events.
    pub fn pending(&self) -> usize {
        self.state
            .lock()
            .heap
            .iter()
            .filter(|e| !e.is_cancelled())
            .count()
    }

    /// Total heap entries including cancelled residue awaiting compaction.
    /// Bounded at roughly `max(64, live)` by the threshold-triggered
    /// compaction in [`SimTimer::cancel`] — the regression guard for the
    /// old behavior, where every armed-then-cancelled deadline stayed
    /// resident until the clock reached it.
    pub fn physical_pending(&self) -> usize {
        self.state.lock().heap.len()
    }
}

impl Default for SimClock {
    fn default() -> Self {
        Self::new()
    }
}

impl fmt::Debug for SimClock {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let st = self.state.lock();
        write!(f, "SimClock(now={}, pending={})", st.now, st.heap.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    #[test]
    fn events_fire_in_time_order() {
        let clock = SimClock::new();
        let log = Arc::new(Mutex::new(Vec::new()));
        for (delay, tag) in [(300u64, 'c'), (100, 'a'), (200, 'b')] {
            let log = log.clone();
            clock.schedule(delay, move || log.lock().push(tag));
        }
        while clock.fire_next() {}
        assert_eq!(*log.lock(), vec!['a', 'b', 'c']);
        assert_eq!(clock.now(), 300);
    }

    #[test]
    fn ties_break_by_schedule_order() {
        let clock = SimClock::new();
        let log = Arc::new(Mutex::new(Vec::new()));
        for tag in 0..5u32 {
            let log = log.clone();
            clock.schedule(50, move || log.lock().push(tag));
        }
        while clock.fire_next() {}
        assert_eq!(*log.lock(), vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn busy_cpu_delays_event_processing_not_time() {
        let clock = SimClock::new();
        let seen_at = Arc::new(AtomicU64::new(0));
        let s = seen_at.clone();
        let c2 = clock.clone();
        clock.schedule(100, move || s.store(c2.now(), Ordering::SeqCst));
        clock.advance(500); // CPU busy until t=500
        assert!(clock.fire_next());
        assert_eq!(seen_at.load(Ordering::SeqCst), 500, "event processed late");
    }

    #[test]
    fn events_can_schedule_events() {
        let clock = SimClock::new();
        let done = Arc::new(AtomicU64::new(0));
        let d = done.clone();
        let c2 = clock.clone();
        clock.schedule(10, move || {
            let d = d.clone();
            c2.schedule(10, move || {
                d.store(1, Ordering::SeqCst);
            });
        });
        while clock.fire_next() {}
        assert_eq!(done.load(Ordering::SeqCst), 1);
        assert_eq!(clock.now(), 20);
    }

    #[test]
    fn cancelled_events_neither_fire_nor_advance_time() {
        let clock = SimClock::new();
        let fired = Arc::new(AtomicU64::new(0));
        let f = fired.clone();
        let t = clock.schedule_cancellable(5_000, move || {
            f.fetch_add(1, Ordering::SeqCst);
        });
        let f2 = fired.clone();
        clock.schedule(100, move || {
            f2.fetch_add(10, Ordering::SeqCst);
        });
        t.cancel();
        // The live event at t=100 is now the next deadline; the cancelled
        // one at t=5000 is invisible.
        assert_eq!(clock.pending(), 1);
        assert!(clock.fire_next());
        assert_eq!(clock.now(), 100);
        assert_eq!(fired.load(Ordering::SeqCst), 10);
        // Nothing left: the cancelled entry is dropped, not fired, and the
        // clock never reaches 5000.
        assert!(!clock.fire_next());
        assert_eq!(clock.next_deadline(), None);
        assert_eq!(clock.now(), 100);
    }

    #[test]
    fn cancel_after_fire_is_a_noop() {
        let clock = SimClock::new();
        let fired = Arc::new(AtomicU64::new(0));
        let f = fired.clone();
        let t = clock.schedule_cancellable(10, move || {
            f.fetch_add(1, Ordering::SeqCst);
        });
        assert!(clock.fire_next());
        assert_eq!(fired.load(Ordering::SeqCst), 1);
        t.cancel(); // already fired: harmless
        assert!(t.is_cancelled());
    }

    #[test]
    fn mass_cancellation_compacts_the_heap() {
        let clock = SimClock::new();
        let timers: Vec<_> = (0..100_000u64)
            .map(|i| clock.schedule_cancellable(1_000_000 + i, || {}))
            .collect();
        assert_eq!(clock.physical_pending(), 100_000);
        for t in timers {
            t.cancel();
        }
        assert!(
            clock.physical_pending() <= 2 * 64,
            "cancelled residue must be compacted away, found {}",
            clock.physical_pending()
        );
        assert_eq!(clock.pending(), 0);
        assert!(!clock.fire_next());
        assert_eq!(clock.now(), 0, "cancelled deadlines never advance time");
    }

    #[test]
    fn schedule_at_clamps_to_now() {
        let clock = SimClock::new();
        clock.advance(1000);
        let fired_at = Arc::new(AtomicU64::new(0));
        let f = fired_at.clone();
        let c2 = clock.clone();
        clock.schedule_at(500, move || f.store(c2.now(), Ordering::SeqCst));
        clock.fire_next();
        assert_eq!(fired_at.load(Ordering::SeqCst), 1000);
    }
}
