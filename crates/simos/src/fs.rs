//! A simulated file system over [`SimDisk`]: paths map to contiguous
//! extents, reads carry real (synthesized, deterministic) bytes, and all
//! timing comes from the disk model.
//!
//! Files implement [`AioFile`], so monadic threads use ordinary
//! [`sys_aio_read`](eveth_core::syscall::sys_aio_read) against them and the
//! benchmark harnesses can swap this store for the RAM-backed one without
//! touching server code.

use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

use bytes::Bytes;
use eveth_core::aio::{AioCompletion, AioFile, FileStore, IoError};
use eveth_core::io::ramdisk::SynthFile;
use parking_lot::RwLock;

use crate::disk::SimDisk;

#[derive(Debug, Clone, Copy)]
struct Extent {
    base: u64,
    len: u64,
    seed: u64,
}

struct FsState {
    files: HashMap<String, Extent>,
    next_base: u64,
}

/// The simulated file system.
///
/// # Examples
///
/// ```
/// use eveth_simos::{des::SimClock, disk::*, fs::SimFs};
/// use eveth_core::aio::FileStore;
///
/// let clock = SimClock::new();
/// let disk = SimDisk::new(clock, DiskGeometry::eide_7200_80gb(), DiskSched::CLook, 1);
/// let fs = SimFs::new(disk);
/// fs.add_file("/data/blob", 1 << 20);
/// assert_eq!(fs.lookup("/data/blob").unwrap().len(), 1 << 20);
/// ```
pub struct SimFs {
    disk: Arc<SimDisk>,
    state: RwLock<FsState>,
}

impl SimFs {
    /// Creates an empty file system on `disk`.
    pub fn new(disk: Arc<SimDisk>) -> Arc<Self> {
        Arc::new(SimFs {
            disk,
            state: RwLock::new(FsState {
                files: HashMap::new(),
                next_base: 0,
            }),
        })
    }

    /// The backing disk.
    pub fn disk(&self) -> &Arc<SimDisk> {
        &self.disk
    }

    /// Creates a file of `len` bytes laid out contiguously after all
    /// previously created files. Content is deterministic in the path.
    ///
    /// # Panics
    ///
    /// Panics if the disk is full.
    pub fn add_file(&self, path: impl Into<String>, len: u64) {
        let path = path.into();
        let mut st = self.state.write();
        let base = st.next_base;
        assert!(
            base + len <= self.disk.geometry().capacity,
            "simulated disk full"
        );
        st.next_base += len.max(4096); // at least one block per file
        let seed = path_seed(&path);
        st.files.insert(path, Extent { base, len, seed });
    }

    /// Number of files.
    pub fn file_count(&self) -> usize {
        self.state.read().files.len()
    }

    /// Total bytes allocated.
    pub fn allocated(&self) -> u64 {
        self.state.read().next_base
    }
}

fn path_seed(path: &str) -> u64 {
    // FNV-1a, so content is a pure function of the path.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in path.as_bytes() {
        h ^= *b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

impl FileStore for SimFs {
    fn lookup(&self, path: &str) -> Option<Arc<dyn AioFile>> {
        let extent = *self.state.read().files.get(path)?;
        Some(Arc::new(SimFsFile {
            disk: Arc::clone(&self.disk),
            extent,
        }) as Arc<dyn AioFile>)
    }
}

impl fmt::Debug for SimFs {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "SimFs(files={}, allocated={})",
            self.file_count(),
            self.allocated()
        )
    }
}

struct SimFsFile {
    disk: Arc<SimDisk>,
    extent: Extent,
}

impl AioFile for SimFsFile {
    fn len(&self) -> u64 {
        self.extent.len
    }

    fn submit_read(&self, offset: u64, len: usize, done: AioCompletion) {
        if offset >= self.extent.len {
            done.complete(Ok(Bytes::new()));
            return;
        }
        let n = len.min((self.extent.len - offset) as usize);
        let seed = self.extent.seed;
        self.disk.submit(self.extent.base + offset, n, move || {
            done.complete(Ok(SynthFile::bytes_at(seed, offset, n)));
        });
    }

    fn submit_write(&self, offset: u64, data: Bytes, done: AioCompletion) {
        if offset + data.len() as u64 > self.extent.len {
            done.complete(Err(IoError::OutOfRange));
            return;
        }
        // Timing-accurate write; contents are not persisted (the store
        // synthesizes reads), which the disk benchmarks never observe.
        self.disk
            .submit(self.extent.base + offset, data.len(), move || {
                done.complete(Ok(Bytes::new()));
            });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::CostModel;
    use crate::des::SimClock;
    use crate::desrt::{SimConfig, SimRuntime};
    use crate::disk::{DiskGeometry, DiskSched};
    use eveth_core::syscall::sys_aio_read;

    fn fixture() -> (SimRuntime, Arc<SimFs>) {
        let sim = SimRuntime::new(
            SimClock::new(),
            SimConfig {
                cost: CostModel::monadic(),
                slice: 256,
                cpus: 1,
                ..SimConfig::default()
            },
        );
        let disk = SimDisk::new(
            sim.clock(),
            DiskGeometry::eide_7200_80gb(),
            DiskSched::CLook,
            11,
        );
        let fs = SimFs::new(disk);
        (sim, fs)
    }

    #[test]
    fn read_returns_deterministic_content() {
        let (sim, fs) = fixture();
        fs.add_file("/a", 64 * 1024);
        let file = fs.lookup("/a").unwrap();
        let first = sim
            .block_on(sys_aio_read(&file, 4096, 512))
            .unwrap()
            .unwrap();
        let again = sim
            .block_on(sys_aio_read(&file, 4096, 512))
            .unwrap()
            .unwrap();
        assert_eq!(first, again);
        assert_eq!(first.len(), 512);
    }

    #[test]
    fn different_paths_have_different_content() {
        let (sim, fs) = fixture();
        fs.add_file("/a", 4096);
        fs.add_file("/b", 4096);
        let fa = fs.lookup("/a").unwrap();
        let fb = fs.lookup("/b").unwrap();
        let a = sim.block_on(sys_aio_read(&fa, 0, 256)).unwrap().unwrap();
        let b = sim.block_on(sys_aio_read(&fb, 0, 256)).unwrap().unwrap();
        assert_ne!(a, b);
    }

    #[test]
    fn reads_take_disk_time() {
        let (sim, fs) = fixture();
        fs.add_file("/far", 1 << 20);
        let file = fs.lookup("/far").unwrap();
        let t0 = sim.now();
        sim.block_on(sys_aio_read(&file, 512 * 1024, 4096))
            .unwrap()
            .unwrap();
        assert!(
            sim.now() - t0 >= eveth_core::time::MILLIS,
            "a random read must cost mechanical time"
        );
    }

    #[test]
    fn short_read_at_eof() {
        let (sim, fs) = fixture();
        fs.add_file("/tiny", 100);
        let file = fs.lookup("/tiny").unwrap();
        let data = sim.block_on(sys_aio_read(&file, 96, 64)).unwrap().unwrap();
        assert_eq!(data.len(), 4);
        let empty = sim.block_on(sys_aio_read(&file, 100, 64)).unwrap().unwrap();
        assert!(empty.is_empty());
    }

    #[test]
    fn missing_file_is_none() {
        let (_sim, fs) = fixture();
        assert!(fs.lookup("/nope").is_none());
    }

    #[test]
    fn files_are_laid_out_contiguously() {
        let (_sim, fs) = fixture();
        fs.add_file("/a", 16 * 1024);
        fs.add_file("/b", 16 * 1024);
        assert_eq!(fs.allocated(), 32 * 1024);
        assert_eq!(fs.file_count(), 2);
    }
}
