//! Cluster-level fault injection: one switchboard over every simulated
//! network layer.
//!
//! The simulator models the network twice — [`crate::net::SimNet`]
//! carries raw packets under the application-level TCP stack, while
//! [`crate::sockets::SocketFabric`] models kernel-TCP streams directly —
//! and a scenario usually runs hosts on one or the other. Fault scripts
//! should not care which: a [`Hub`] holds weak references to any number
//! of attached layers and fans each fault out to all of them, so
//! "partition A from B at t=2s, crash node 3 at t=5s" reads the same in
//! every scenario.
//!
//! Faults are deliberately *mechanism-level*:
//!
//! * [`Hub::set_link_down`] / [`Hub::set_link_up`] drop packets on a
//!   directed link ([`Hub::partition`] / [`Hub::heal`] down both
//!   directions) — the transport above sees silence, and TCP's
//!   retransmission machinery owns recovery;
//! * [`Hub::crash_host`] / [`Hub::restart_host`] model a process dying:
//!   streams reset, listeners vanish, connects are refused. Restart
//!   revives the *host*; relistening and reconnecting is the
//!   application's job.
//!
//! Everything stays deterministic: drops are counted in
//! [`crate::net::NetStats`], and downed-link drops never consume loss-RNG
//! draws, so injecting a fault perturbs nothing it does not touch.

use std::fmt;
use std::sync::{Arc, Weak};

use eveth_core::net::HostId;
use parking_lot::Mutex;

use crate::net::SimNet;
use crate::sockets::SocketFabric;

/// A fault-injection switchboard over attached network layers.
///
/// Holds its attachments weakly: a `Hub` in a long-lived scenario driver
/// never keeps a torn-down network alive, and faults on a dropped layer
/// are silently skipped.
#[derive(Default)]
pub struct Hub {
    nets: Mutex<Vec<Weak<SimNet>>>,
    fabrics: Mutex<Vec<Weak<SocketFabric>>>,
}

impl Hub {
    /// An empty hub; attach layers with [`Hub::attach_net`] /
    /// [`Hub::attach_fabric`].
    pub fn new() -> Arc<Hub> {
        Arc::new(Hub::default())
    }

    /// Attaches a packet network; subsequent faults apply to it.
    pub fn attach_net(&self, net: &Arc<SimNet>) {
        self.nets.lock().push(Arc::downgrade(net));
    }

    /// Attaches a socket fabric; subsequent faults apply to it.
    pub fn attach_fabric(&self, fabric: &Arc<SocketFabric>) {
        self.fabrics.lock().push(Arc::downgrade(fabric));
    }

    fn each_net(&self, f: impl Fn(&SimNet)) {
        for net in self.nets.lock().iter().filter_map(Weak::upgrade) {
            f(&net);
        }
    }

    fn each_fabric(&self, f: impl Fn(&SocketFabric)) {
        for fabric in self.fabrics.lock().iter().filter_map(Weak::upgrade) {
            f(&fabric);
        }
    }

    /// Downs the directed link `src → dst` on every attached packet
    /// network (the fabric's streams, which model kernel TCP, are only
    /// affected by host crashes — see the module docs).
    pub fn set_link_down(&self, src: HostId, dst: HostId) {
        self.each_net(|net| net.set_link_down(src, dst));
    }

    /// Restores the directed link `src → dst`.
    pub fn set_link_up(&self, src: HostId, dst: HostId) {
        self.each_net(|net| net.set_link_up(src, dst));
    }

    /// Full bidirectional partition between `a` and `b`.
    pub fn partition(&self, a: HostId, b: HostId) {
        self.set_link_down(a, b);
        self.set_link_down(b, a);
    }

    /// Heals a [`Hub::partition`].
    pub fn heal(&self, a: HostId, b: HostId) {
        self.set_link_up(a, b);
        self.set_link_up(b, a);
    }

    /// Crashes `host` on every attached layer: packet networks drop its
    /// traffic, socket fabrics reset its streams and close its listeners.
    pub fn crash_host(&self, host: HostId) {
        self.each_net(|net| net.set_host_down(host));
        self.each_fabric(|fabric| fabric.crash_host(host));
    }

    /// Revives `host` everywhere; the application must relisten and
    /// reconnect, exactly as after a real reboot.
    pub fn restart_host(&self, host: HostId) {
        self.each_net(|net| net.set_host_up(host));
        self.each_fabric(|fabric| fabric.restart_host(host));
    }
}

impl fmt::Debug for Hub {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Hub(nets={}, fabrics={})",
            self.nets.lock().len(),
            self.fabrics.lock().len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::des::SimClock;
    use crate::net::LinkParams;
    use std::sync::atomic::Ordering;

    #[test]
    fn hub_fans_out_to_attached_net_and_holds_weakly() {
        let clock = SimClock::new();
        let net = SimNet::new(clock.clone(), LinkParams::loopback(), 1);
        net.register_host(HostId(2), Arc::new(|_src, _pkt| {}));
        let hub = Hub::new();
        hub.attach_net(&net);

        hub.partition(HostId(1), HostId(2));
        net.send(HostId(1), HostId(2), 10, Box::new(0u32));
        net.send(HostId(2), HostId(1), 10, Box::new(0u32));
        while clock.fire_next() {}
        assert_eq!(net.stats().dropped.load(Ordering::Relaxed), 2);

        hub.heal(HostId(1), HostId(2));
        net.send(HostId(1), HostId(2), 10, Box::new(1u32));
        while clock.fire_next() {}
        assert_eq!(net.stats().delivered.load(Ordering::Relaxed), 1);

        // Dropping the net must not wedge the hub: faults become no-ops.
        drop(net);
        hub.crash_host(HostId(1));
    }
}
