//! A seek-accurate simulated disk with kernel-style head scheduling.
//!
//! The paper's disk benchmark (Figure 17) measures exactly one mechanism:
//! with many threads keeping many requests outstanding, the kernel's
//! elevator shortens average seeks, so random-read throughput *rises* with
//! concurrency. This module reproduces that mechanism: a single-head disk
//! with a seek + rotation + transfer service model and a C-LOOK elevator
//! over all queued requests (FIFO available as the ablation).
//!
//! Geometry defaults model the paper's testbed drive: a 7200 RPM, 80 GB
//! EIDE disk (§5, footnote 2).

use std::collections::{BTreeMap, VecDeque};
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use eveth_core::time::{Nanos, SECS};
use parking_lot::Mutex;

use crate::des::SimClock;

/// Physical timing model of the simulated drive.
#[derive(Debug, Clone)]
pub struct DiskGeometry {
    /// Usable capacity in bytes.
    pub capacity: u64,
    /// Minimum (settle) seek time for any non-zero head movement.
    pub min_seek_ns: Nanos,
    /// Seek cost coefficient: seek = `min_seek_ns` + `seek_factor_ns` ×
    /// √(distance in bytes). The square-root law approximates
    /// constant-acceleration head travel.
    pub seek_factor_ns: f64,
    /// Spindle speed, for rotational latency (uniform in [0, one
    /// revolution)).
    pub rpm: u32,
    /// Media transfer rate in bytes per second.
    pub transfer_bytes_per_sec: u64,
}

impl DiskGeometry {
    /// The paper's drive: 7200 RPM, 80 GB EIDE. Calibrated so that 4 KB
    /// random reads within a 1 GB file yield ≈0.5 MB/s at queue depth 1 and
    /// ≈0.7 MB/s at large depth, bracketing Figure 17's 0.525–0.675 MB/s.
    pub fn eide_7200_80gb() -> Self {
        DiskGeometry {
            capacity: 80_000_000_000,
            min_seek_ns: 1_400_000, // 1.4 ms settle
            seek_factor_ns: 97.0,   // full stroke ≈ 28 ms
            rpm: 7200,              // avg rotational latency 4.17 ms
            transfer_bytes_per_sec: 40_000_000,
        }
    }

    /// One full revolution in nanoseconds.
    pub fn revolution_ns(&self) -> Nanos {
        60 * SECS / self.rpm as u64
    }

    /// Service time for a request `distance` bytes from the head reading
    /// `len` bytes, with `rot_frac` ∈ [0,1) of a revolution of rotational
    /// latency.
    pub fn service_ns(&self, distance: u64, len: usize, rot_frac: f64) -> Nanos {
        let seek = if distance == 0 {
            0
        } else {
            self.min_seek_ns + (self.seek_factor_ns * (distance as f64).sqrt()) as Nanos
        };
        let rotation = (self.revolution_ns() as f64 * rot_frac) as Nanos;
        let transfer = len as u64 * SECS / self.transfer_bytes_per_sec;
        seek + rotation + transfer
    }
}

/// Head-scheduling discipline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DiskSched {
    /// C-LOOK elevator: service the nearest request at or beyond the head,
    /// wrapping to the lowest address — what Linux's elevator gives both
    /// kernel threads and AIO users (paper §5.1).
    CLook,
    /// First-come first-served — the ablation showing what Figure 17 would
    /// look like without head scheduling.
    Fifo,
}

struct DiskRequest {
    pos: u64,
    len: usize,
    on_done: Box<dyn FnOnce() + Send>,
}

struct DiskState {
    clook: BTreeMap<(u64, u64), DiskRequest>,
    fifo: VecDeque<DiskRequest>,
    head: u64,
    busy: bool,
    seq: u64,
    rng: u64,
}

/// Aggregate counters for a [`SimDisk`].
#[derive(Debug, Default)]
pub struct DiskStats {
    /// Requests completed.
    pub requests: AtomicU64,
    /// Bytes transferred.
    pub bytes: AtomicU64,
    /// Total head travel in bytes.
    pub seek_bytes: AtomicU64,
    /// Total time the head was busy.
    pub busy_ns: AtomicU64,
}

/// The simulated single-head disk.
///
/// # Examples
///
/// ```
/// use eveth_simos::des::SimClock;
/// use eveth_simos::disk::{DiskGeometry, DiskSched, SimDisk};
/// use std::sync::atomic::{AtomicU64, Ordering};
/// use std::sync::Arc;
///
/// let clock = SimClock::new();
/// let disk = SimDisk::new(clock.clone(), DiskGeometry::eide_7200_80gb(), DiskSched::CLook, 42);
/// let done = Arc::new(AtomicU64::new(0));
/// let d = done.clone();
/// disk.submit(4096, 4096, move || { d.fetch_add(1, Ordering::SeqCst); });
/// while clock.fire_next() {}
/// assert_eq!(done.load(Ordering::SeqCst), 1);
/// ```
pub struct SimDisk {
    clock: SimClock,
    geometry: DiskGeometry,
    sched: DiskSched,
    state: Mutex<DiskState>,
    stats: DiskStats,
}

impl SimDisk {
    /// Creates a disk on the given clock. `seed` drives the deterministic
    /// rotational-latency sequence.
    pub fn new(clock: SimClock, geometry: DiskGeometry, sched: DiskSched, seed: u64) -> Arc<Self> {
        Arc::new(SimDisk {
            clock,
            geometry,
            sched,
            state: Mutex::new(DiskState {
                clook: BTreeMap::new(),
                fifo: VecDeque::new(),
                head: 0,
                busy: false,
                seq: 0,
                rng: seed | 1,
            }),
            stats: DiskStats::default(),
        })
    }

    /// The disk's timing model.
    pub fn geometry(&self) -> &DiskGeometry {
        &self.geometry
    }

    /// Counters.
    pub fn stats(&self) -> &DiskStats {
        &self.stats
    }

    /// Requests currently queued (excluding the one in service).
    pub fn queue_depth(&self) -> usize {
        let st = self.state.lock();
        st.clook.len() + st.fifo.len()
    }

    /// Submits a request for `len` bytes at byte address `pos`; `on_done`
    /// runs (at the completion's virtual time) when the transfer finishes.
    ///
    /// # Panics
    ///
    /// Panics if the request extends beyond the disk's capacity.
    pub fn submit(self: &Arc<Self>, pos: u64, len: usize, on_done: impl FnOnce() + Send + 'static) {
        assert!(
            pos + len as u64 <= self.geometry.capacity,
            "request [{pos}, +{len}) beyond disk capacity"
        );
        let req = DiskRequest {
            pos,
            len,
            on_done: Box::new(on_done),
        };
        let mut st = self.state.lock();
        if st.busy {
            let seq = st.seq;
            st.seq += 1;
            match self.sched {
                DiskSched::CLook => {
                    st.clook.insert((pos, seq), req);
                }
                DiskSched::Fifo => st.fifo.push_back(req),
            }
        } else {
            st.busy = true;
            self.start_service(&mut st, req);
        }
    }

    fn next_request(&self, st: &mut DiskState) -> Option<DiskRequest> {
        match self.sched {
            DiskSched::Fifo => st.fifo.pop_front(),
            DiskSched::CLook => {
                // Nearest request at or beyond the head; wrap to the lowest
                // address when the sweep reaches the end (C-LOOK).
                let key = st
                    .clook
                    .range((st.head, 0)..)
                    .next()
                    .map(|(k, _)| *k)
                    .or_else(|| st.clook.keys().next().copied())?;
                st.clook.remove(&key)
            }
        }
    }

    fn start_service(self: &Arc<Self>, st: &mut DiskState, req: DiskRequest) {
        // xorshift64 for the deterministic rotational offset.
        st.rng ^= st.rng << 13;
        st.rng ^= st.rng >> 7;
        st.rng ^= st.rng << 17;
        let rot_frac = (st.rng >> 11) as f64 / (1u64 << 53) as f64;

        let distance = st.head.abs_diff(req.pos);
        let service = self.geometry.service_ns(distance, req.len, rot_frac);
        st.head = req.pos + req.len as u64;

        self.stats.requests.fetch_add(1, Ordering::Relaxed);
        self.stats
            .bytes
            .fetch_add(req.len as u64, Ordering::Relaxed);
        self.stats.seek_bytes.fetch_add(distance, Ordering::Relaxed);
        self.stats.busy_ns.fetch_add(service, Ordering::Relaxed);

        let disk = Arc::clone(self);
        let on_done = req.on_done;
        self.clock.schedule(service, move || {
            on_done();
            let mut st = disk.state.lock();
            match disk.next_request(&mut st) {
                Some(next) => disk.start_service(&mut st, next),
                None => st.busy = false,
            }
        });
    }
}

impl fmt::Debug for SimDisk {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "SimDisk({:?}, depth={}, served={})",
            self.sched,
            self.queue_depth(),
            self.stats.requests.load(Ordering::Relaxed)
        )
    }
}

/// Convenience: mean service latency observed so far.
pub fn mean_service_ns(disk: &SimDisk) -> Nanos {
    disk.stats()
        .busy_ns
        .load(Ordering::Relaxed)
        .checked_div(disk.stats().requests.load(Ordering::Relaxed))
        .unwrap_or(0)
}

/// Convenience: throughput in MB/s given bytes moved over a virtual
/// duration.
pub fn throughput_mb_s(bytes: u64, dur: Nanos) -> f64 {
    if dur == 0 {
        return 0.0;
    }
    bytes as f64 / (1024.0 * 1024.0) / (dur as f64 / SECS as f64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use eveth_core::time::MILLIS;
    use std::sync::atomic::AtomicU64;

    fn run_random_reads(sched: DiskSched, outstanding: usize, total_reads: usize) -> Nanos {
        let clock = SimClock::new();
        let disk = SimDisk::new(clock.clone(), DiskGeometry::eide_7200_80gb(), sched, 7);
        // Uniform random 4 KB reads within a 1 GB span, keeping `outstanding`
        // requests in flight (closed-loop, like one request per thread).
        let remaining = Arc::new(AtomicU64::new(total_reads as u64));
        let mut rng: u64 = 99;
        let next_pos = move || {
            rng ^= rng << 13;
            rng ^= rng >> 7;
            rng ^= rng << 17;
            (rng % (1_000_000_000 / 4096)) * 4096
        };
        // Submission closure: resubmit on completion until exhausted.
        fn pump(
            disk: &Arc<SimDisk>,
            remaining: &Arc<AtomicU64>,
            next_pos: &Arc<Mutex<Box<dyn FnMut() -> u64 + Send>>>,
        ) {
            if remaining.fetch_sub(1, Ordering::SeqCst) == 0 {
                remaining.store(0, Ordering::SeqCst);
                return;
            }
            let pos = (next_pos.lock())();
            let d = Arc::clone(disk);
            let r = Arc::clone(remaining);
            let np = Arc::clone(next_pos);
            disk.submit(pos, 4096, move || pump(&d, &r, &np));
        }
        let next_pos: Arc<Mutex<Box<dyn FnMut() -> u64 + Send>>> =
            Arc::new(Mutex::new(Box::new(next_pos)));
        for _ in 0..outstanding {
            pump(&disk, &remaining, &next_pos);
        }
        while clock.fire_next() {}
        clock.now()
    }

    #[test]
    fn deeper_queues_run_faster_under_clook() {
        let shallow = run_random_reads(DiskSched::CLook, 1, 400);
        let deep = run_random_reads(DiskSched::CLook, 64, 400);
        assert!(
            deep < shallow * 95 / 100,
            "elevator should speed up deep queues: depth1={shallow}ns depth64={deep}ns"
        );
    }

    #[test]
    fn fifo_gains_nothing_from_depth() {
        let shallow = run_random_reads(DiskSched::Fifo, 1, 300);
        let deep = run_random_reads(DiskSched::Fifo, 64, 300);
        // Without head scheduling, depth changes throughput by at most noise.
        let ratio = deep as f64 / shallow as f64;
        assert!(
            (0.9..1.1).contains(&ratio),
            "FIFO depth must not matter, ratio={ratio}"
        );
    }

    #[test]
    fn clook_beats_fifo_at_depth() {
        let clook = run_random_reads(DiskSched::CLook, 64, 400);
        let fifo = run_random_reads(DiskSched::Fifo, 64, 400);
        assert!(
            clook < fifo * 85 / 100,
            "C-LOOK must beat FIFO at depth: clook={clook} fifo={fifo}"
        );
    }

    #[test]
    fn depth1_throughput_matches_paper_scale() {
        // 400 reads of 4 KB at depth 1 — expect roughly 0.4..0.7 MB/s,
        // bracketing Figure 17's left edge (0.525 MB/s).
        let dur = run_random_reads(DiskSched::CLook, 1, 400);
        let mb_s = throughput_mb_s(400 * 4096, dur);
        assert!(
            (0.35..0.75).contains(&mb_s),
            "depth-1 throughput {mb_s} MB/s out of calibration range"
        );
    }

    #[test]
    fn sequential_reads_have_no_seek() {
        let g = DiskGeometry::eide_7200_80gb();
        assert_eq!(g.service_ns(0, 4096, 0.0), 4096 * SECS / 40_000_000);
        assert!(g.service_ns(1_000_000, 4096, 0.0) > g.min_seek_ns);
    }

    #[test]
    fn completions_preserve_every_request() {
        let clock = SimClock::new();
        let disk = SimDisk::new(
            clock.clone(),
            DiskGeometry::eide_7200_80gb(),
            DiskSched::CLook,
            3,
        );
        let done = Arc::new(AtomicU64::new(0));
        for i in 0..100u64 {
            let d = done.clone();
            disk.submit(i * 8192, 4096, move || {
                d.fetch_add(1, Ordering::SeqCst);
            });
        }
        while clock.fire_next() {}
        assert_eq!(done.load(Ordering::SeqCst), 100);
        assert_eq!(disk.stats().requests.load(Ordering::Relaxed), 100);
        assert_eq!(disk.queue_depth(), 0);
    }

    #[test]
    fn rejects_out_of_range() {
        let clock = SimClock::new();
        let disk = SimDisk::new(clock, DiskGeometry::eide_7200_80gb(), DiskSched::CLook, 3);
        let huge = disk.geometry().capacity;
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            disk.submit(huge, 4096, || {});
        }));
        assert!(result.is_err());
    }

    #[test]
    fn mean_service_sane() {
        let clock = SimClock::new();
        let disk = SimDisk::new(
            clock.clone(),
            DiskGeometry::eide_7200_80gb(),
            DiskSched::CLook,
            3,
        );
        disk.submit(500_000_000, 4096, || {});
        while clock.fire_next() {}
        let mean = mean_service_ns(&disk);
        assert!(mean > MILLIS && mean < 40 * MILLIS, "mean={mean}");
    }
}
