//! The "standard socket library": a kernel-TCP model over shaped in-memory
//! streams.
//!
//! This is the *other half* of the paper's one-line switch (§5.2): servers
//! written against [`NetStack`] run either on these kernel-model sockets or
//! on the application-level TCP stack of `eveth-tcp`. The model provides
//! reliable, ordered byte streams with connection handshake latency,
//! per-direction bandwidth shaping, a flow-control window, and orderly
//! close — the observable behaviour of kernel TCP on a healthy LAN — while
//! all loss/retransmission machinery is assumed to live "in the kernel".

use std::collections::{HashMap, VecDeque};
use std::fmt;
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::{Arc, Weak};

use bytes::Bytes;
use eveth_core::hash::DetHashSet;
use eveth_core::net::{queue_accept_evt, Conn, Endpoint, HostId, Listener, NetError, NetStack};
use eveth_core::reactor::{AcceptQueue, Fd, Interest, InterestWaiters, Pollable, Waiter};
use eveth_core::syscall::{sys_epoll_wait, sys_nbio, sys_sleep};
use eveth_core::time::Nanos;
use eveth_core::{loop_m, Loop, ThreadM};
use parking_lot::Mutex;

use crate::des::SimClock;
use crate::net::LinkParams;

/// Network characteristics of the socket fabric.
#[derive(Debug, Clone, Copy)]
pub struct FabricParams {
    /// Link model between any two hosts (latency = one-way delay).
    pub link: LinkParams,
    /// Per-direction flow-control window (bytes buffered + in flight).
    pub window: usize,
}

impl Default for FabricParams {
    fn default() -> Self {
        FabricParams {
            link: LinkParams::ethernet_100mbps(),
            window: 64 * 1024,
        }
    }
}

/// Both directions of one established connection, kept as weak refs so
/// fault injection ([`SocketFabric::crash_host`]) can find and reset the
/// streams touching a host without extending their lifetime.
struct ConnTrack {
    client: HostId,
    server: HostId,
    a2b: Weak<Dir>,
    b2a: Weak<Dir>,
}

struct FabricState {
    listeners: HashMap<Endpoint, Arc<ListenerInner>>,
    /// Every live connection, for crash-time resets. Entries whose
    /// directions have been dropped are swept on each crash.
    conns: Vec<ConnTrack>,
    /// Hosts currently crashed: their listeners are gone, connects to or
    /// from them are refused, and their established streams were reset.
    crashed: DetHashSet<HostId>,
}

/// The shared "internet" connecting every [`SimSocketStack`] built from it.
pub struct SocketFabric {
    clock: SimClock,
    params: FabricParams,
    state: Mutex<FabricState>,
    next_ephemeral: AtomicU32,
}

impl SocketFabric {
    /// Creates a fabric on the given virtual clock.
    pub fn new(clock: SimClock, params: FabricParams) -> Arc<Self> {
        Arc::new(SocketFabric {
            clock,
            params,
            state: Mutex::new(FabricState {
                listeners: HashMap::new(),
                conns: Vec::new(),
                crashed: DetHashSet::default(),
            }),
            next_ephemeral: AtomicU32::new(40_000),
        })
    }

    /// A per-host [`NetStack`] view of this fabric.
    pub fn stack(self: &Arc<Self>, host: HostId) -> Arc<SimSocketStack> {
        Arc::new(SimSocketStack {
            fabric: Arc::clone(self),
            host,
        })
    }

    fn ephemeral_port(&self) -> u16 {
        let p = self.next_ephemeral.fetch_add(1, Ordering::Relaxed);
        40_000 + (p % 25_000) as u16
    }

    /// Crashes `host` abruptly: every established stream touching it is
    /// reset *now* (no FIN flight time — the process is gone), its
    /// listeners' backlogs are closed and the ports released, and until
    /// [`SocketFabric::restart_host`] any connect to or from it is
    /// refused. A server whose listener backlog closes sees an accept
    /// error and winds down; its sessions die on [`NetError::Reset`].
    pub fn crash_host(&self, host: HostId) {
        let (reset_dirs, closed_listeners) = {
            let mut st = self.state.lock();
            st.crashed.insert(host);
            let mut closed = Vec::new();
            st.listeners.retain(|ep, inner| {
                if ep.host == host {
                    closed.push(Arc::clone(inner));
                    false
                } else {
                    true
                }
            });
            let mut reset = Vec::new();
            st.conns.retain(|track| {
                let (a2b, b2a) = (track.a2b.upgrade(), track.b2a.upgrade());
                if a2b.is_none() && b2a.is_none() {
                    return false; // both sides long gone; sweep
                }
                if track.client == host || track.server == host {
                    reset.extend(a2b);
                    reset.extend(b2a);
                    return false;
                }
                true
            });
            (reset, closed)
        };
        // Resets and backlog closes run outside the fabric lock: waking a
        // parked thread re-enters the reactor, not the fabric, but the
        // less held across foreign callbacks the better.
        for dir in reset_dirs {
            dir.reset();
        }
        for inner in closed_listeners {
            inner.queue.close();
        }
    }

    /// Clears the crashed mark: the host may listen and connect again.
    /// Streams reset by the crash stay dead — reconnection is the
    /// application's job, exactly as after a real crash.
    pub fn restart_host(&self, host: HostId) {
        self.state.lock().crashed.remove(&host);
    }
}

impl fmt::Debug for SocketFabric {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "SocketFabric(listeners={})",
            self.state.lock().listeners.len()
        )
    }
}

// ---------------------------------------------------------------------------
// One shaped, reliable direction of a connection.
// ---------------------------------------------------------------------------

struct DirState {
    readable: VecDeque<u8>,
    in_flight: usize,
    closed: bool,      // sender closed; EOF once drained
    reset: bool,       // hard failure
    busy_until: Nanos, // sender-side serialization point
    /// Readiness registrations: `Read` waiters are the receiving side
    /// blocked for data/EOF, `Write` waiters the sending side blocked on
    /// window space.
    waiters: InterestWaiters,
}

struct Dir {
    st: Mutex<DirState>,
    clock: SimClock,
    params: FabricParams,
}

enum TryIo<T> {
    Done(T),
    WouldBlock,
}

impl Dir {
    fn new(clock: SimClock, params: FabricParams) -> Arc<Self> {
        Arc::new(Dir {
            st: Mutex::new(DirState {
                readable: VecDeque::new(),
                in_flight: 0,
                closed: false,
                reset: false,
                busy_until: 0,
                waiters: InterestWaiters::new(),
            }),
            clock,
            params,
        })
    }

    fn try_send(self: &Arc<Self>, data: &Bytes) -> Result<TryIo<usize>, NetError> {
        let mut st = self.st.lock();
        if st.reset {
            return Err(NetError::Reset);
        }
        if st.closed {
            return Err(NetError::Closed);
        }
        let used = st.readable.len() + st.in_flight;
        let avail = self.params.window.saturating_sub(used);
        if avail == 0 {
            return Ok(TryIo::WouldBlock);
        }
        let n = avail.min(data.len());
        st.in_flight += n;
        let chunk = data.slice(..n);
        let now = self.clock.now();
        let depart = st.busy_until.max(now) + self.params.link.tx_time(n);
        st.busy_until = depart;
        let arrive = depart + self.params.link.latency;
        drop(st);

        let dir = Arc::clone(self);
        self.clock.schedule_at(arrive, move || {
            let mut st = dir.st.lock();
            st.in_flight -= chunk.len();
            st.readable.extend(chunk.iter());
            st.waiters.wake(Interest::Read);
        });
        Ok(TryIo::Done(n))
    }

    /// Vectored [`Dir::try_send`]: takes a window-limited prefix across
    /// *all* buffers under one lock, charges one serialized transmission
    /// for the combined length, and schedules a single arrival event —
    /// a pipelined batch of replies costs one pass instead of one per
    /// segment.
    fn try_sendv(self: &Arc<Self>, bufs: &[Bytes]) -> Result<TryIo<usize>, NetError> {
        let mut st = self.st.lock();
        if st.reset {
            return Err(NetError::Reset);
        }
        if st.closed {
            return Err(NetError::Closed);
        }
        let used = st.readable.len() + st.in_flight;
        let mut avail = self.params.window.saturating_sub(used);
        if avail == 0 {
            return Ok(TryIo::WouldBlock);
        }
        let mut taken: Vec<Bytes> = Vec::with_capacity(bufs.len());
        let mut total = 0;
        for b in bufs {
            if avail == 0 {
                break;
            }
            if b.is_empty() {
                continue;
            }
            let n = avail.min(b.len());
            taken.push(b.slice(..n));
            avail -= n;
            total += n;
        }
        if total == 0 {
            return Ok(TryIo::Done(0));
        }
        st.in_flight += total;
        let now = self.clock.now();
        let depart = st.busy_until.max(now) + self.params.link.tx_time(total);
        st.busy_until = depart;
        let arrive = depart + self.params.link.latency;
        drop(st);

        let dir = Arc::clone(self);
        self.clock.schedule_at(arrive, move || {
            let mut st = dir.st.lock();
            st.in_flight -= total;
            for chunk in &taken {
                st.readable.extend(chunk.iter());
            }
            st.waiters.wake(Interest::Read);
        });
        Ok(TryIo::Done(total))
    }

    fn try_recv(&self, max: usize) -> Result<TryIo<Bytes>, NetError> {
        let mut st = self.st.lock();
        if st.reset {
            return Err(NetError::Reset);
        }
        if !st.readable.is_empty() {
            let n = max.min(st.readable.len());
            let out: Bytes = st.readable.drain(..n).collect::<Vec<u8>>().into();
            st.waiters.wake(Interest::Write);
            return Ok(TryIo::Done(out));
        }
        if st.closed && st.in_flight == 0 {
            return Ok(TryIo::Done(Bytes::new())); // EOF
        }
        Ok(TryIo::WouldBlock)
    }

    /// Hard failure, effective immediately: both the reader and any
    /// parked sender wake into [`NetError::Reset`], and buffered bytes
    /// are never delivered. This is crash semantics, so unlike
    /// [`Dir::close`] it takes no flight time.
    fn reset(self: &Arc<Self>) {
        let mut st = self.st.lock();
        st.reset = true;
        st.waiters.wake_all();
    }

    /// Sender closes: EOF surfaces after in-flight data drains plus one
    /// propagation delay (the FIN's flight time).
    fn close(self: &Arc<Self>) {
        let arrive = {
            let st = self.st.lock();
            st.busy_until.max(self.clock.now()) + self.params.link.latency
        };
        let dir = Arc::clone(self);
        self.clock.schedule_at(arrive, move || {
            let mut st = dir.st.lock();
            st.closed = true;
            st.waiters.wake_all();
        });
    }

    /// The readiness condition for `interest` on this direction.
    fn is_ready(st: &DirState, interest: Interest, window: usize) -> bool {
        match interest {
            Interest::Read => {
                !st.readable.is_empty() || (st.closed && st.in_flight == 0) || st.reset
            }
            Interest::Write => st.readable.len() + st.in_flight < window || st.closed || st.reset,
        }
    }

    /// Registers a readiness waiter, waking it immediately if `interest`
    /// already holds (checked and parked under the direction lock, so no
    /// wakeup can be lost).
    fn register(self: &Arc<Self>, interest: Interest, waiter: Waiter) {
        let mut st = self.st.lock();
        if Self::is_ready(&st, interest, self.params.window) {
            drop(st);
            waiter.wake();
        } else {
            st.waiters.push(interest, waiter);
        }
    }
}

/// The pollable device behind a [`SimConn`]'s descriptor: `Read` readiness
/// comes from the inbound direction, `Write` readiness from the outbound
/// one — one epoll-style registration point per connection, as the
/// paper's `sock_recv`/`sock_send` wrappers assume (Figure 10/15).
struct ConnReady {
    tx: Arc<Dir>,
    rx: Arc<Dir>,
}

impl Pollable for ConnReady {
    fn register(&self, interest: Interest, waiter: Waiter) {
        match interest {
            Interest::Read => self.rx.register(interest, waiter),
            Interest::Write => self.tx.register(interest, waiter),
        }
    }
}

// ---------------------------------------------------------------------------
// Connections, listeners, stack.
// ---------------------------------------------------------------------------

struct SimConn {
    local: Endpoint,
    peer: Endpoint,
    tx: Arc<Dir>, // local → peer
    rx: Arc<Dir>, // peer → local
    /// Readiness descriptor over both directions; every blocking socket
    /// operation is a non-blocking attempt + `sys_epoll_wait` on this fd
    /// (the paper's Figure 10 wrapper pattern).
    fd: Fd,
}

impl SimConn {
    fn new(local: Endpoint, peer: Endpoint, tx: Arc<Dir>, rx: Arc<Dir>) -> Arc<Self> {
        let fd = Fd::new(Arc::new(ConnReady {
            tx: Arc::clone(&tx),
            rx: Arc::clone(&rx),
        }));
        Arc::new(SimConn {
            local,
            peer,
            tx,
            rx,
            fd,
        })
    }
}

impl Conn for SimConn {
    fn readiness_fd(&self) -> Option<Fd> {
        Some(self.fd.clone())
    }

    fn recv(&self, max: usize) -> ThreadM<Result<Bytes, NetError>> {
        let rx = Arc::clone(&self.rx);
        let fd = self.fd.clone();
        loop_m((), move |()| {
            let try_rx = Arc::clone(&rx);
            let fd = fd.clone();
            sys_nbio(move || try_rx.try_recv(max)).bind(move |r| match r {
                Ok(TryIo::Done(b)) => ThreadM::pure(Loop::Break(Ok(b))),
                Ok(TryIo::WouldBlock) => {
                    sys_epoll_wait(&fd, Interest::Read).map(|_| Loop::Continue(()))
                }
                Err(e) => ThreadM::pure(Loop::Break(Err(e))),
            })
        })
    }

    fn send(&self, data: Bytes) -> ThreadM<Result<usize, NetError>> {
        let tx = Arc::clone(&self.tx);
        let fd = self.fd.clone();
        if data.is_empty() {
            return ThreadM::pure(Ok(0));
        }
        loop_m(data, move |data| {
            let try_tx = Arc::clone(&tx);
            let fd = fd.clone();
            let attempt = data.clone();
            sys_nbio(move || try_tx.try_send(&attempt)).bind(move |r| match r {
                Ok(TryIo::Done(n)) => ThreadM::pure(Loop::Break(Ok(n))),
                Ok(TryIo::WouldBlock) => {
                    sys_epoll_wait(&fd, Interest::Write).map(move |_| Loop::Continue(data))
                }
                Err(e) => ThreadM::pure(Loop::Break(Err(e))),
            })
        })
    }

    fn sendv(&self, bufs: Vec<Bytes>) -> ThreadM<Result<usize, NetError>> {
        if bufs.iter().all(|b| b.is_empty()) {
            return ThreadM::pure(Ok(0));
        }
        let tx = Arc::clone(&self.tx);
        let fd = self.fd.clone();
        loop_m(bufs, move |bufs| {
            let try_tx = Arc::clone(&tx);
            let fd = fd.clone();
            let attempt = bufs.clone();
            sys_nbio(move || try_tx.try_sendv(&attempt)).bind(move |r| match r {
                Ok(TryIo::Done(n)) => ThreadM::pure(Loop::Break(Ok(n))),
                Ok(TryIo::WouldBlock) => {
                    sys_epoll_wait(&fd, Interest::Write).map(move |_| Loop::Continue(bufs))
                }
                Err(e) => ThreadM::pure(Loop::Break(Err(e))),
            })
        })
    }

    fn close(&self) -> ThreadM<()> {
        let tx = Arc::clone(&self.tx);
        sys_nbio(move || tx.close())
    }

    fn peer(&self) -> Endpoint {
        self.peer
    }

    fn local(&self) -> Endpoint {
        self.local
    }
}

impl fmt::Debug for SimConn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SimConn({} -> {})", self.local, self.peer)
    }
}

struct ListenerInner {
    endpoint: Endpoint,
    queue: Arc<AcceptQueue<Arc<SimConn>>>,
}

struct SimListener {
    inner: Arc<ListenerInner>,
    fabric: Arc<SocketFabric>,
}

/// A listening socket's accept is the composable backlog event
/// ([`queue_accept_evt`]): ready when the backlog holds a connection or
/// the listener was shut down, so an acceptor `choose`s accept against a
/// shutdown broadcast with no supervisor thread. [`AcceptQueue`]
/// synchronizes push/close/register on one lock, so no wakeup is lost to
/// a concurrent connect *or* shutdown; the blocking `accept` is the
/// trait-provided `sync(accept_evt())`.
impl Listener for SimListener {
    fn accept_evt(&self) -> eveth_core::event::Event<Result<Arc<dyn Conn>, NetError>> {
        queue_accept_evt(Arc::clone(&self.inner.queue), |c| c as Arc<dyn Conn>)
    }

    fn local(&self) -> Endpoint {
        self.inner.endpoint
    }

    fn shutdown(&self) {
        self.inner.queue.close();
        self.fabric
            .state
            .lock()
            .listeners
            .remove(&self.inner.endpoint);
    }
}

impl fmt::Debug for SimListener {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SimListener({})", self.inner.endpoint)
    }
}

/// A per-host socket interface to a [`SocketFabric`] — the "standard socket
/// library" side of the paper's one-line switch.
pub struct SimSocketStack {
    fabric: Arc<SocketFabric>,
    host: HostId,
}

impl NetStack for SimSocketStack {
    fn listen(&self, port: u16) -> ThreadM<Result<Arc<dyn Listener>, NetError>> {
        let fabric = Arc::clone(&self.fabric);
        let endpoint = Endpoint::new(self.host, port);
        sys_nbio(move || {
            let mut st = fabric.state.lock();
            if st.crashed.contains(&endpoint.host) {
                return Err(NetError::Unreachable);
            }
            if st.listeners.contains_key(&endpoint) {
                return Err(NetError::AddrInUse);
            }
            let inner = Arc::new(ListenerInner {
                endpoint,
                queue: Arc::new(AcceptQueue::new()),
            });
            st.listeners.insert(endpoint, Arc::clone(&inner));
            Ok(Arc::new(SimListener {
                inner,
                fabric: Arc::clone(&fabric),
            }) as Arc<dyn Listener>)
        })
    }

    fn connect(&self, remote: Endpoint) -> ThreadM<Result<Arc<dyn Conn>, NetError>> {
        let fabric = Arc::clone(&self.fabric);
        let host = self.host;
        // Model the three-way handshake as one round trip before data flows.
        let rtt = 2 * fabric.params.link.latency;
        sys_sleep(rtt).bind(move |_| {
            sys_nbio(move || {
                let st = fabric.state.lock();
                if st.crashed.contains(&host) || st.crashed.contains(&remote.host) {
                    return Err(NetError::ConnectionRefused);
                }
                let Some(listener) = st.listeners.get(&remote).cloned() else {
                    return Err(NetError::ConnectionRefused);
                };
                drop(st);
                let local = Endpoint::new(host, fabric.ephemeral_port());
                let a2b = Dir::new(fabric.clock.clone(), fabric.params);
                let b2a = Dir::new(fabric.clock.clone(), fabric.params);
                let client = SimConn::new(local, remote, Arc::clone(&a2b), Arc::clone(&b2a));
                let server = SimConn::new(remote, local, Arc::clone(&b2a), Arc::clone(&a2b));
                if listener.queue.push(server).is_err() {
                    // Shut down between the lookup and the push.
                    return Err(NetError::ConnectionRefused);
                }
                fabric.state.lock().conns.push(ConnTrack {
                    client: host,
                    server: remote.host,
                    a2b: Arc::downgrade(&a2b),
                    b2a: Arc::downgrade(&b2a),
                });
                Ok(client as Arc<dyn Conn>)
            })
        })
    }

    fn host(&self) -> HostId {
        self.host
    }
}

impl fmt::Debug for SimSocketStack {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SimSocketStack({})", self.host)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::desrt::SimRuntime;
    use eveth_core::net::{recv_exact, send_all};
    use eveth_core::syscall::sys_fork;

    fn fixture() -> (SimRuntime, Arc<SimSocketStack>, Arc<SimSocketStack>) {
        let sim = SimRuntime::new_default();
        let fabric = SocketFabric::new(sim.clock(), FabricParams::default());
        (sim, fabric.stack(HostId(1)), fabric.stack(HostId(2)))
    }

    #[test]
    fn connect_refused_without_listener() {
        let (sim, client, _server) = fixture();
        let err = sim
            .block_on(client.connect(Endpoint::new(HostId(2), 80)))
            .unwrap()
            .err()
            .expect("must be refused");
        assert_eq!(err, NetError::ConnectionRefused);
    }

    #[test]
    fn echo_roundtrip() {
        let (sim, client, server) = fixture();
        let server_prog = eveth_core::do_m! {
            let lst <- server.listen(7);
            let lst = lst.unwrap();
            let conn <- lst.accept();
            let conn = conn.unwrap();
            let data <- recv_exact(&conn, 5);
            let reply <- send_all(&conn, data.unwrap());
            let _ = reply.unwrap();
            conn.close()
        };
        let got = sim
            .block_on(eveth_core::do_m! {
                sys_fork(server_prog);
                let conn <- client.connect(Endpoint::new(HostId(2), 7));
                let conn = conn.unwrap();
                let sent <- send_all(&conn, Bytes::from_static(b"hello"));
                let _ = sent.unwrap();
                let back <- recv_exact(&conn, 5);
                ThreadM::pure(back.unwrap())
            })
            .unwrap();
        assert_eq!(&got[..], b"hello");
    }

    #[test]
    fn transfers_cost_virtual_time() {
        let (sim, client, server) = fixture();
        let payload = Bytes::from(vec![1u8; 1_000_000]); // 1 MB at 100 Mbps ≈ 80 ms
        let expect = payload.len();
        let server_prog = eveth_core::do_m! {
            let lst <- server.listen(8);
            let conn <- lst.unwrap().accept();
            let conn = conn.unwrap();
            let got <- recv_exact(&conn, expect);
            let _ = got.unwrap();
            ThreadM::pure(())
        };
        sim.spawn(server_prog);
        let t = sim
            .block_on(eveth_core::do_m! {
                let conn <- client.connect(Endpoint::new(HostId(2), 8));
                let conn = conn.unwrap();
                let sent <- send_all(&conn, payload);
                let _ = sent.unwrap();
                eveth_core::syscall::sys_time()
            })
            .unwrap();
        // Sending alone finishes once the last chunk is accepted, but at
        // least the serialization of (window-limited) traffic has passed.
        assert!(t >= 50 * eveth_core::time::MILLIS, "t = {t}");
    }

    #[test]
    fn eof_after_close_and_drain() {
        let (sim, client, server) = fixture();
        let server_prog = eveth_core::do_m! {
            let lst <- server.listen(9);
            let conn <- lst.unwrap().accept();
            let conn = conn.unwrap();
            let sent <- send_all(&conn, Bytes::from_static(b"bye"));
            let _ = sent.unwrap();
            conn.close()
        };
        let (data, eof) = sim
            .block_on(eveth_core::do_m! {
                sys_fork(server_prog);
                let conn <- client.connect(Endpoint::new(HostId(2), 9));
                let conn = conn.unwrap();
                let data <- recv_exact(&conn, 3);
                let eof <- conn.recv(16);
                ThreadM::pure((data.unwrap(), eof.unwrap()))
            })
            .unwrap();
        assert_eq!(&data[..], b"bye");
        assert!(eof.is_empty());
    }

    #[test]
    fn addr_in_use_detected() {
        let (sim, _client, server) = fixture();
        let s2 = Arc::clone(&server);
        let err = sim
            .block_on(eveth_core::do_m! {
                let first <- server.listen(10);
                let _keep = first.unwrap();
                let second <- s2.listen(10);
                ThreadM::pure(second.err().unwrap())
            })
            .unwrap();
        assert_eq!(err, NetError::AddrInUse);
    }

    #[test]
    fn crash_resets_streams_and_restart_revives_the_port() {
        let sim = SimRuntime::new_default();
        let fabric = SocketFabric::new(sim.clock(), FabricParams::default());
        let client = fabric.stack(HostId(1));
        let server = fabric.stack(HostId(2));
        let server_prog = eveth_core::do_m! {
            let lst <- server.listen(12);
            let conn <- lst.unwrap().accept();
            let _hold = conn.unwrap();
            eveth_core::syscall::sys_sleep(3_600 * eveth_core::time::SECS)
        };
        sim.spawn(server_prog);
        let crash_at = Arc::clone(&fabric);
        sim.clock()
            .schedule_at(10 * eveth_core::time::MILLIS, move || {
                crash_at.crash_host(HostId(2));
            });
        let client2 = Arc::clone(&client);
        let err = sim
            .block_on(eveth_core::do_m! {
                let conn <- client.connect(Endpoint::new(HostId(2), 12));
                let conn = conn.unwrap();
                // Parked in recv when the crash lands: must wake into Reset.
                let got <- conn.recv(16);
                let refused <- client2.connect(Endpoint::new(HostId(2), 12));
                ThreadM::pure((got.err().unwrap(), refused.err().unwrap()))
            })
            .unwrap();
        assert_eq!(err, (NetError::Reset, NetError::ConnectionRefused));

        // Restart: the port is free again and a fresh server accepts.
        fabric.restart_host(HostId(2));
        let server2 = fabric.stack(HostId(2));
        let revived = eveth_core::do_m! {
            let lst <- server2.listen(12);
            let conn <- lst.unwrap().accept();
            let sent <- send_all(&conn.unwrap(), Bytes::from_static(b"ok"));
            let _ = sent.unwrap();
            ThreadM::pure(())
        };
        sim.spawn(revived);
        let back = sim
            .block_on(eveth_core::do_m! {
                let conn <- client.connect(Endpoint::new(HostId(2), 12));
                let conn = conn.unwrap();
                let back <- recv_exact(&conn, 2);
                ThreadM::pure(back.unwrap())
            })
            .unwrap();
        assert_eq!(&back[..], b"ok");
    }

    #[test]
    fn window_backpressure_blocks_sender() {
        let (sim, client, server) = fixture();
        // Server accepts but never reads; client tries to push 1 MB through
        // a 64 KB window and must park. The sim goes quiescent with the
        // sender still blocked — which block_on reports as deadlock.
        let server_prog = eveth_core::do_m! {
            let lst <- server.listen(11);
            let conn <- lst.unwrap().accept();
            let _hold = conn.unwrap();
            eveth_core::syscall::sys_sleep(3_600 * eveth_core::time::SECS)
        };
        sim.spawn(server_prog);
        let res = sim.block_on(eveth_core::do_m! {
            let conn <- client.connect(Endpoint::new(HostId(2), 11));
            let conn = conn.unwrap();
            send_all(&conn, Bytes::from(vec![0u8; 1_000_000]))
        });
        // The one-hour sleep fires first; after that the sim is quiescent
        // while the sender is still parked on the full window.
        assert!(res.is_err(), "sender must still be blocked on the window");
    }
}
