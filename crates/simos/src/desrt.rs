//! The simulated runtime: the core scheduler engine driven by virtual time.
//!
//! [`SimRuntime`] implements [`RuntimeCtx`] so the *same* monadic programs
//! (and the same devices built on `Pollable`/`AioFile`) run unchanged under
//! simulation. Each scheduler action advances the virtual clock by its
//! [`CostModel`] price; when the ready queue drains, the clock jumps to the
//! next device event. Running one workload under
//! [`CostModel::monadic`] and again under [`CostModel::nptl`] produces the
//! paired lines of the paper's Figures 17–19 — the Lauer–Needham duality in
//! action: identical semantics, different cost structure.
//!
//! # Multi-CPU virtual time
//!
//! [`SimConfig::cpus`] selects how many virtual CPUs execute scheduler
//! turns. Each CPU keeps its own clock *frontier* — the virtual time up to
//! which it has executed — and every turn is charged to the CPU it ran on:
//!
//! * a turn starts at `max(cpu frontier, task ready time)` — a CPU never
//!   runs a task before the event that made it runnable, and a task never
//!   runs before the CPU that picks it up is free;
//! * every [`CostModel`] charge made during the turn advances that CPU's
//!   clock only, so turns on different CPUs overlap in virtual time;
//! * device events fire when the *earliest* CPU frontier reaches their
//!   deadline (the conservative discrete-event rule), and event-loop
//!   dispatch cost is charged to the CPU that harvests the events;
//! * time a thread spends blocked is classified by [`WaitKind`] at the
//!   `task_parked` boundary and split in the report: readiness waits
//!   (`sys_epoll_wait`: sockets, pipes) land in *I/O wait*
//!   ([`SimReport::io_wait_ns`]), synchronization waits (`sys_park`:
//!   mutexes, channels, MVars, STM `retry`) in *lock wait*
//!   ([`SimReport::lock_wait_ns`]), and sleeps in *timer wait* — a hot
//!   lock stretches every waiter's completion time while disjoint work
//!   overlaps, which is what makes sharding visible in virtual
//!   throughput, and the I/O split keeps slow links from masquerading as
//!   contention.
//!
//! The simulation itself stays single-OS-threaded and fully deterministic:
//! CPU selection is lowest-frontier with a stable index tie-break, the
//! ready queue is FIFO, so the same seed and config produce a
//! byte-identical [`SimReport`] for any `cpus`. With `cpus = 1` the model
//! reduces exactly to the original single-CPU schedule.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::Arc;

use eveth_core::engine::{self, CostKind, RuntimeCtx, WaitKind};
use eveth_core::hash::DetHashMap;
use eveth_core::reactor::{EventPort, Unparker};
use eveth_core::runtime::{Stats, StatsSnapshot};
use eveth_core::task::{Task, TaskId, TaskShell};
use eveth_core::time::Nanos;
use eveth_core::trace::BlioJob;
use eveth_core::{Exception, ThreadM};
use parking_lot::Mutex;

use crate::cost::CostModel;
use crate::des::SimClock;

/// How the ready queue chooses the next thread to run — the schedule
/// exploration axis of `eveth-check`.
///
/// Every policy is a pure function of `(policy, workload)`: the same
/// configuration replays the same schedule byte-for-byte, so any failure
/// an explored schedule uncovers reproduces exactly from its
/// `(seed, SimConfig)`.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub enum SchedulePolicy {
    /// The historical earliest-startable FIFO pick. This is the default
    /// and keeps every golden `SimReport` and `BENCH_*.json` byte-
    /// identical: the pick path is exactly the pre-policy code.
    #[default]
    Fifo,
    /// PCT-style randomized priorities (Burckhardt et al.): each thread
    /// gets a random priority on first sight, the highest-priority
    /// startable thread runs, and at `change_points` pseudo-random
    /// scheduling decisions (per 1024-decision window, so perturbation
    /// recurs on long runs) the running thread is demoted below every
    /// initial priority. Seeded: the same `(seed, change_points)`
    /// replays the same schedule.
    Pct {
        /// Seed for priorities and change-point placement.
        seed: u64,
        /// Priority change points per 1024-decision window.
        change_points: u32,
    },
}

/// Configuration of a [`SimRuntime`].
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// The cost model to charge scheduler actions against.
    pub cost: CostModel,
    /// Non-blocking steps per scheduling turn (see the slice ablation).
    pub slice: usize,
    /// Virtual CPUs executing scheduler turns (clamped to at least 1).
    /// `1` reproduces the original fully-serialized schedule; higher
    /// values let independent turns overlap in virtual time, making
    /// contention (hot locks, too few shards) visible in the clock.
    pub cpus: usize,
    /// Ready-queue scheduling policy (default [`SchedulePolicy::Fifo`]).
    pub policy: SchedulePolicy,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            cost: CostModel::monadic(),
            slice: 256,
            cpus: 1,
            policy: SchedulePolicy::Fifo,
        }
    }
}

/// `splitmix64` — the tiny, high-quality seeded generator behind the PCT
/// policy (and the per-schedule seed derivation in `eveth-check`).
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Error returned when a thread cannot be created under the model's limits.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpawnError {
    /// The model's thread cap.
    pub max_threads: usize,
}

impl fmt::Display for SpawnError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "thread limit reached ({} threads: address space exhausted)",
            self.max_threads
        )
    }
}

impl std::error::Error for SpawnError {}

/// A runnable task plus the virtual time it became runnable — a CPU may
/// not start it earlier.
struct ReadyEntry {
    task: Task,
    ready_at: Nanos,
    seq: u64,
}

/// The ready queue: FIFO order (a seq-keyed map) plus a `(ready_at, seq)`
/// index, so both pick cases are cheap:
///
/// * *something is startable* — the FIFO walk stops at the first entry
///   whose `ready_at` has passed (usually the head);
/// * *nothing is startable* — the old code scanned the whole queue for
///   the minimum ready time (the common case in contended sweeps, where
///   the min-frontier CPU lags every entry); the index answers it in
///   O(log n).
///
/// The pick is *exactly* the old linear scan's choice (pinned by the
/// `pick_matches_linear_scan` proptest), so schedules — and the
/// determinism goldens — are unchanged.
struct ReadyQueue {
    fifo: BTreeMap<u64, ReadyEntry>,
    by_ready: BTreeSet<(Nanos, u64)>,
    next_seq: u64,
    /// Randomized-priority state; `None` runs the plain FIFO pick.
    pct: Option<PctState>,
}

/// Priorities are `(band, value)` compared lexicographically, higher
/// wins. Fresh threads draw a random value in band 1; a change-point
/// demotion moves the running thread into band 0 (below every initial
/// priority), later demotions lower than earlier ones.
type Priority = (u8, u64);

/// Mutable state of [`SchedulePolicy::Pct`]. All randomness is consumed
/// in `push` (first sight of a thread) and `take` (decision counting) —
/// `pick` stays a pure read, like the FIFO path.
struct PctState {
    rng: u64,
    prio: DetHashMap<u64, Priority>,
    /// Decision indices (mod [`PCT_WINDOW`]) at which the thread being
    /// scheduled is demoted.
    change_at: Vec<u32>,
    decisions: u64,
    next_demoted: u64,
}

/// Change points recur with this period so long runs keep being
/// perturbed instead of settling into a static priority order.
const PCT_WINDOW: u64 = 1024;

impl PctState {
    fn new(seed: u64, change_points: u32) -> Self {
        let mut rng = seed;
        // Warm the stream so adjacent seeds diverge immediately.
        let _ = splitmix64(&mut rng);
        let mut change_at: Vec<u32> = (0..change_points)
            .map(|_| (splitmix64(&mut rng) % PCT_WINDOW) as u32)
            .collect();
        change_at.sort_unstable();
        change_at.dedup();
        PctState {
            rng,
            prio: DetHashMap::default(),
            change_at,
            decisions: 0,
            next_demoted: u64::MAX,
        }
    }

    fn priority_of(&mut self, tid: u64) -> Priority {
        if let Some(&p) = self.prio.get(&tid) {
            return p;
        }
        let p = (1u8, splitmix64(&mut self.rng));
        self.prio.insert(tid, p);
        p
    }

    /// One scheduling decision happened for `tid`; demote it if this
    /// decision index is a change point.
    fn on_decision(&mut self, tid: u64) {
        let idx = (self.decisions % PCT_WINDOW) as u32;
        self.decisions += 1;
        if self.change_at.binary_search(&idx).is_ok() {
            self.prio.insert(tid, (0u8, self.next_demoted));
            self.next_demoted = self.next_demoted.wrapping_sub(1);
        }
    }
}

impl ReadyQueue {
    fn new(policy: &SchedulePolicy) -> Self {
        ReadyQueue {
            fifo: BTreeMap::new(),
            by_ready: BTreeSet::new(),
            next_seq: 0,
            pct: match policy {
                SchedulePolicy::Fifo => None,
                SchedulePolicy::Pct {
                    seed,
                    change_points,
                } => Some(PctState::new(*seed, *change_points)),
            },
        }
    }

    fn push(&mut self, task: Task, ready_at: Nanos) {
        if let Some(pct) = &mut self.pct {
            // Assign (or look up) the thread's priority on first sight so
            // `pick` can stay a pure read of the queue.
            let _ = pct.priority_of(task.tid().0);
        }
        let seq = self.next_seq;
        self.next_seq += 1;
        self.by_ready.insert((ready_at, seq));
        self.fifo.insert(
            seq,
            ReadyEntry {
                task,
                ready_at,
                seq,
            },
        );
    }

    /// The entry a CPU sitting at `frontier` should run next. Under
    /// [`SchedulePolicy::Fifo`]: the oldest already-startable entry (FIFO
    /// among those), else the one with the smallest `(ready_at, seq)` —
    /// exactly the historical pick, so golden schedules are unchanged.
    /// Under [`SchedulePolicy::Pct`]: the highest-priority startable
    /// entry (stable tie-break: lowest seq); the nothing-startable
    /// fallback is identical to FIFO, so time semantics never change —
    /// only the order among simultaneously-runnable threads does.
    /// Returns `(seq, ready_at)` without removing — the caller may decide
    /// to service a device event first.
    fn pick(&self, frontier: Nanos) -> Option<(u64, Nanos)> {
        let &(min_ready, min_seq) = self.by_ready.first()?;
        if min_ready > frontier {
            // Nothing startable: earliest (ready_at, seq) via the index.
            return Some((min_seq, min_ready));
        }
        if let Some(pct) = &self.pct {
            let mut best: Option<(Priority, u64, Nanos)> = None;
            for e in self.fifo.values() {
                if e.ready_at > frontier {
                    continue;
                }
                let p = pct
                    .prio
                    .get(&e.task.tid().0)
                    .copied()
                    .unwrap_or((1u8, 0u64));
                // Strict `>` keeps the first (lowest-seq) entry on ties.
                if best.is_none_or(|(bp, _, _)| p > bp) {
                    best = Some((p, e.seq, e.ready_at));
                }
            }
            return best.map(|(_, seq, ready_at)| (seq, ready_at));
        }
        self.fifo
            .values()
            .find(|e| e.ready_at <= frontier)
            .map(|e| (e.seq, e.ready_at))
    }

    fn take(&mut self, seq: u64) -> Option<Task> {
        let e = self.fifo.remove(&seq)?;
        self.by_ready.remove(&(e.ready_at, e.seq));
        if let Some(pct) = &mut self.pct {
            pct.on_decision(e.task.tid().0);
        }
        Some(e.task)
    }
}

/// Per-CPU clock frontiers and busy-time accounting.
struct CpuState {
    /// Virtual time up to which each CPU has executed.
    frontier: Vec<Nanos>,
    /// Virtual nanoseconds each CPU spent executing turns (and harvesting
    /// events), as opposed to sitting idle.
    busy: Vec<Nanos>,
    /// Clock value at the end of the last scheduling step; any clock
    /// advance beyond it happened outside a turn (e.g. `spawn` charging
    /// `Fork` from the host) and is absorbed into the next turn's CPU.
    last_synced: Nanos,
}

impl CpuState {
    fn new(cpus: usize) -> Self {
        CpuState {
            frontier: vec![0; cpus],
            busy: vec![0; cpus],
            last_synced: 0,
        }
    }

    /// The CPU with the lowest frontier (stable tie-break: lowest index).
    fn min_cpu(&self) -> usize {
        let mut best = 0;
        for (i, &f) in self.frontier.iter().enumerate() {
            if f < self.frontier[best] {
                best = i;
            }
        }
        best
    }

    fn max_frontier(&self) -> Nanos {
        self.frontier.iter().copied().max().unwrap_or(0)
    }

    fn min_frontier(&self) -> Nanos {
        self.frontier.iter().copied().min().unwrap_or(0)
    }
}

struct SimInner {
    self_weak: std::sync::Weak<SimInner>,
    clock: SimClock,
    ready: Mutex<ReadyQueue>,
    cpus: Mutex<CpuState>,
    /// Per-task floor on resume time: the virtual instant the task's last
    /// turn ended. A wake event raised from a lagging CPU's clock context
    /// (its unlock may carry an *earlier* virtual timestamp than the
    /// waiter's own frontier) must never send the waiter's time backwards:
    /// its next turn starts at `max(wake time, floor)`.
    resume_floor: Mutex<DetHashMap<TaskId, Nanos>>,
    /// Tasks currently blocked → (block time, wait class).
    park_since: Mutex<DetHashMap<TaskId, (Nanos, WaitKind)>>,
    io_wait_ns: AtomicU64,
    io_waits: AtomicU64,
    lock_wait_ns: AtomicU64,
    lock_waits: AtomicU64,
    timer_wait_ns: AtomicU64,
    timer_waits: AtomicU64,
    /// Aggregate of every non-timer blocked episode, accumulated
    /// independently of the per-kind split so the
    /// `io_wait_ns + lock_wait_ns == park_wait_ns` invariant is a real
    /// cross-check (a future wait kind that falls through the match would
    /// break the sum, not silently vanish).
    park_wait_ns: AtomicU64,
    park_waits: AtomicU64,
    next_tid: AtomicU64,
    live: AtomicI64,
    peak_live: AtomicI64,
    stats: Stats,
    cost: CostModel,
    uncaught_log: Mutex<Vec<(TaskId, Exception)>>,
    /// Attached telemetry hub, if any (first attach wins). Every hook
    /// passes it the *same* virtual timestamps the wait accounting above
    /// uses, so span wait sums reconcile exactly with the report; no hook
    /// charges the cost model, so attaching telemetry never changes
    /// virtual time.
    telemetry: std::sync::OnceLock<Arc<eveth_core::telemetry::Telemetry>>,
    /// Attached concurrency-check probe, if any (first attach wins).
    /// Like telemetry: purely observational, charges nothing, and with
    /// the default [`SchedulePolicy::Fifo`] attaching it changes no
    /// schedule — the probe only *watches* the run.
    probe: std::sync::OnceLock<Arc<dyn eveth_core::check::Probe>>,
}

impl SimInner {
    fn bump_live(&self) {
        let live = self.live.fetch_add(1, Ordering::SeqCst) + 1;
        self.peak_live.fetch_max(live, Ordering::SeqCst);
    }

    fn tel(&self) -> Option<&Arc<eveth_core::telemetry::Telemetry>> {
        self.telemetry.get()
    }

    fn pr(&self) -> Option<&Arc<dyn eveth_core::check::Probe>> {
        self.probe.get()
    }
}

/// An [`EventPort`] that models the dispatch cost of the dedicated event
/// loop (`worker_epoll` / `worker_aio`) and then resumes the thread.
struct SimPort {
    clock: SimClock,
    dispatch_ns: Nanos,
}

impl EventPort for SimPort {
    fn notify(&self, unparker: Unparker) {
        self.clock.advance(self.dispatch_ns);
        unparker.unpark();
    }
}

impl RuntimeCtx for SimInner {
    fn push_ready(&self, task: Task) {
        let tid = task.tid();
        // The task cannot run before both the wake that readied it and
        // the end of its own last turn (per-task time is monotone even
        // when the waker's CPU clock lags this task's).
        let floor = self.resume_floor.lock().get(&tid).copied().unwrap_or(0);
        let ready_at = self.clock.now().max(floor);
        if let Some((parked_at, kind)) = self.park_since.lock().remove(&tid) {
            // Measured on the task's own timeline; a wake whose event
            // time predates the park charges zero wait.
            let wait = ready_at.saturating_sub(parked_at);
            let (ns, count) = match kind {
                WaitKind::Io => (&self.io_wait_ns, &self.io_waits),
                WaitKind::Lock => (&self.lock_wait_ns, &self.lock_waits),
                WaitKind::Timer => (&self.timer_wait_ns, &self.timer_waits),
            };
            ns.fetch_add(wait, Ordering::Relaxed);
            count.fetch_add(1, Ordering::Relaxed);
            if kind != WaitKind::Timer {
                self.park_wait_ns.fetch_add(wait, Ordering::Relaxed);
                self.park_waits.fetch_add(1, Ordering::Relaxed);
            }
            // Same `ready_at` as the accounting above, so the span's wait
            // sum matches the report's to the nanosecond.
            if let Some(tel) = self.tel() {
                tel.on_wake(ready_at, tid.0);
            }
            if let Some(p) = self.pr() {
                // Attribute the wake to the monadic thread (and the
                // instrumented resource) performing it, read from the
                // check instrumentation's thread-locals: `None` for
                // clock/device wakes raised outside any turn.
                let (waker, rid) = eveth_core::check::wake_attribution();
                p.on_wake(tid.0, waker, rid);
            }
        }
        self.ready.lock().push(task, ready_at);
    }
    fn next_tid(&self) -> TaskId {
        TaskId(self.next_tid.fetch_add(1, Ordering::Relaxed))
    }
    fn task_spawned(&self, tid: TaskId, parent: Option<TaskId>) {
        self.bump_live();
        self.stats.spawned.fetch_add(1, Ordering::Relaxed);
        if let Some(tel) = self.tel() {
            tel.on_spawn(self.clock.now(), tid.0, parent.map(|p| p.0));
        }
        if let Some(p) = self.pr() {
            p.on_spawn(tid.0, parent.map(|p| p.0));
        }
    }
    fn task_exited(&self, tid: TaskId) {
        self.live.fetch_sub(1, Ordering::SeqCst);
        self.stats.exited.fetch_add(1, Ordering::Relaxed);
        if let Some(tel) = self.tel() {
            tel.on_exit(self.clock.now(), tid.0, false);
        }
        if let Some(p) = self.pr() {
            p.on_exit(tid.0);
        }
    }
    fn uncaught_exception(&self, tid: TaskId, e: Exception) {
        self.live.fetch_sub(1, Ordering::SeqCst);
        self.stats.uncaught.fetch_add(1, Ordering::Relaxed);
        self.uncaught_log.lock().push((tid, e));
        if let Some(tel) = self.tel() {
            tel.on_exit(self.clock.now(), tid.0, true);
        }
        if let Some(p) = self.pr() {
            p.on_exit(tid.0);
        }
    }
    fn now(&self) -> Nanos {
        self.clock.now()
    }
    fn charge(&self, cost: CostKind) {
        self.stats.charge(cost);
        self.clock.advance(self.cost.of(cost));
    }
    fn epoll_port(&self) -> Arc<dyn EventPort> {
        Arc::new(SimPort {
            clock: self.clock.clone(),
            dispatch_ns: self.cost.wake_ns / 2,
        })
    }
    fn aio_port(&self) -> Arc<dyn EventPort> {
        Arc::new(SimPort {
            clock: self.clock.clone(),
            dispatch_ns: self.cost.wake_ns / 2,
        })
    }
    fn sleep(&self, dur: Nanos, task: Task) {
        let weak = self.self_weak.clone();
        self.clock.schedule(dur, move || {
            if let Some(inner) = weak.upgrade() {
                inner.push_ready(task);
            }
        });
    }
    fn submit_blio(&self, job: BlioJob, shell: TaskShell) {
        // The blocking pool runs the job "elsewhere"; model only the
        // dispatch cost and deliver the continuation immediately.
        let next = job();
        self.push_ready(Task::from_parts(shell, next));
    }
    fn task_parked(&self, tid: TaskId, kind: WaitKind) {
        let now = self.clock.now();
        self.park_since.lock().insert(tid, (now, kind));
        if let Some(tel) = self.tel() {
            tel.on_park(now, tid.0, kind);
        }
        if let Some(p) = self.pr() {
            p.on_park(tid.0, kind);
        }
    }
    fn task_wait_reclass(&self, tid: TaskId, kind: WaitKind) {
        // The winning branch of a multi-registration park re-attributes
        // the episode before the wake lands; `push_ready` then accounts
        // it under the final kind (and keeps timer wins out of the
        // io + lock == park invariant, like any sleep).
        if let Some(entry) = self.park_since.lock().get_mut(&tid) {
            entry.1 = kind;
        }
        if let Some(tel) = self.tel() {
            tel.on_reclass(self.clock.now(), tid.0, kind);
        }
    }
    fn task_annotate(&self, tid: TaskId, name: Arc<str>) {
        if let Some(p) = self.pr() {
            p.on_annotate(tid.0, &name);
        }
        if let Some(tel) = self.tel() {
            tel.on_annotate(self.clock.now(), tid.0, name);
        }
    }
    fn check_probe(&self) -> Option<Arc<dyn eveth_core::check::Probe>> {
        self.probe.get().cloned()
    }
    fn timer_wake(&self, dur: Nanos, waiter: eveth_core::reactor::Waiter) -> engine::TimerHandle {
        // Eager cancellation matters here: a lingering losing timeout
        // would keep the event heap non-empty and stretch the virtual
        // makespan to its deadline.
        let timer = self.clock.schedule_cancellable(dur, move || waiter.wake());
        engine::TimerHandle::new(move || timer.cancel())
    }
}

/// Outcome summary of a simulation run.
#[derive(Debug, Clone)]
pub struct SimReport {
    /// Virtual time at which the run stopped (the makespan: the furthest
    /// CPU frontier).
    pub now: Nanos,
    /// Scheduler statistics.
    pub stats: StatsSnapshot,
    /// Peak simultaneously-live threads.
    pub peak_threads: i64,
    /// Peak address space attributed to thread stacks under the cost model.
    pub peak_stack_bytes: u64,
    /// Exceptions that escaped their threads.
    pub uncaught: Vec<(TaskId, Exception)>,
    /// Number of virtual CPUs the run executed on.
    pub cpus: usize,
    /// Virtual nanoseconds each CPU spent executing (turns + event
    /// dispatch); `busy / now` is that CPU's utilization.
    pub cpu_busy_ns: Vec<Nanos>,
    /// Total virtual nanoseconds threads spent blocked on device readiness
    /// (`sys_epoll_wait`: socket reads/writes/accepts/connects, pipes).
    pub io_wait_ns: Nanos,
    /// Number of readiness-wait episodes behind [`SimReport::io_wait_ns`].
    pub io_waits: u64,
    /// Total virtual nanoseconds threads spent parked on synchronization
    /// wait queues (`sys_park`: mutexes, channels, MVars, semaphores, STM
    /// `retry`) — *pure* lock wait, with I/O readiness accounted
    /// separately in [`SimReport::io_wait_ns`].
    pub lock_wait_ns: Nanos,
    /// Number of park→resume wait episodes behind [`SimReport::lock_wait_ns`].
    pub lock_waits: u64,
    /// Total virtual nanoseconds threads spent blocked on timers
    /// (`sys_sleep`).
    pub timer_wait_ns: Nanos,
    /// Number of sleep episodes behind [`SimReport::timer_wait_ns`].
    pub timer_waits: u64,
    /// Total blocked time across *all* park-class waits (I/O + lock,
    /// timers excluded), accumulated independently of the split — the
    /// invariant `io_wait_ns + lock_wait_ns == park_wait_ns` holds by
    /// construction and is pinned by `tests/wait_split.rs`.
    pub park_wait_ns: Nanos,
    /// Number of episodes behind [`SimReport::park_wait_ns`].
    pub park_waits: u64,
}

impl SimReport {
    /// Per-CPU utilization over the whole run (`busy / makespan`), empty
    /// only if the run never started.
    pub fn cpu_utilization(&self) -> Vec<f64> {
        self.cpu_busy_ns
            .iter()
            .map(|&b| {
                if self.now == 0 {
                    0.0
                } else {
                    b as f64 / self.now as f64
                }
            })
            .collect()
    }

    /// Mean utilization across CPUs.
    pub fn avg_utilization(&self) -> f64 {
        if self.cpu_busy_ns.is_empty() {
            return 0.0;
        }
        self.cpu_utilization().iter().sum::<f64>() / self.cpu_busy_ns.len() as f64
    }
}

/// A virtual-time runtime for monadic threads, with `M` simulated CPUs
/// (see the module docs; `cpus = 1` is the paper's single-processor
/// testbed).
///
/// # Examples
///
/// ```
/// use eveth_core::syscall::{sys_sleep, sys_time};
/// use eveth_core::{do_m, ThreadM};
/// use eveth_simos::desrt::SimRuntime;
///
/// let sim = SimRuntime::new_default();
/// let t = sim
///     .block_on(do_m! {
///         sys_sleep(5_000_000);
///         sys_time()
///     })
///     .unwrap();
/// assert!(t >= 5_000_000, "virtual clock advanced by the sleep");
/// ```
pub struct SimRuntime {
    inner: Arc<SimInner>,
    config: SimConfig,
}

impl SimRuntime {
    /// Creates a runtime with the given clock and configuration. Devices
    /// that should share virtual time must be built from the same clock.
    pub fn new(clock: SimClock, config: SimConfig) -> Self {
        let cpus = config.cpus.max(1);
        let inner = Arc::new_cyclic(|weak| SimInner {
            self_weak: weak.clone(),
            clock,
            ready: Mutex::new(ReadyQueue::new(&config.policy)),
            cpus: Mutex::new(CpuState::new(cpus)),
            resume_floor: Mutex::new(DetHashMap::default()),
            park_since: Mutex::new(DetHashMap::default()),
            io_wait_ns: AtomicU64::new(0),
            io_waits: AtomicU64::new(0),
            lock_wait_ns: AtomicU64::new(0),
            lock_waits: AtomicU64::new(0),
            timer_wait_ns: AtomicU64::new(0),
            timer_waits: AtomicU64::new(0),
            park_wait_ns: AtomicU64::new(0),
            park_waits: AtomicU64::new(0),
            next_tid: AtomicU64::new(1),
            live: AtomicI64::new(0),
            peak_live: AtomicI64::new(0),
            stats: Stats::default(),
            cost: config.cost.clone(),
            uncaught_log: Mutex::new(Vec::new()),
            telemetry: std::sync::OnceLock::new(),
            probe: std::sync::OnceLock::new(),
        });
        SimRuntime { inner, config }
    }

    /// A fresh clock + default (monadic, single-CPU) configuration.
    pub fn new_default() -> Self {
        SimRuntime::new(SimClock::new(), SimConfig::default())
    }

    /// The runtime's virtual clock (share it with devices).
    pub fn clock(&self) -> SimClock {
        self.inner.clock.clone()
    }

    /// The [`RuntimeCtx`] handle for drivers needing direct scheduler
    /// access.
    pub fn ctx(&self) -> Arc<dyn RuntimeCtx> {
        Arc::clone(&self.inner) as Arc<dyn RuntimeCtx>
    }

    /// Spawns a monadic thread.
    pub fn spawn(&self, m: ThreadM<()>) -> TaskId {
        let tid = self.inner.next_tid();
        self.inner.task_spawned(tid, None);
        self.inner.charge(CostKind::Fork);
        self.inner.push_ready(Task::from_thread(tid, m));
        tid
    }

    /// Attaches a telemetry hub: every scheduler hook (spawn / annotate /
    /// park / reclass / wake / exit) is forwarded to it from now on,
    /// stamped with *virtual* time — the exact clock values the report's
    /// own wait accounting uses, so per-span wait sums reconcile with
    /// [`SimReport`] to the nanosecond. Telemetry charges nothing, so
    /// attaching it never changes virtual time or the report. First
    /// attach wins; later calls return `false` and change nothing.
    pub fn set_telemetry(&self, telemetry: Arc<eveth_core::telemetry::Telemetry>) -> bool {
        self.inner.telemetry.set(telemetry).is_ok()
    }

    /// The attached telemetry hub, if any.
    pub fn telemetry(&self) -> Option<Arc<eveth_core::telemetry::Telemetry>> {
        self.inner.telemetry.get().cloned()
    }

    /// Attaches a concurrency-check probe (see `eveth_core::check`):
    /// every scheduler event (turn starts, spawns, parks, wakes with
    /// waker/resource attribution, exits, span names) is forwarded to it,
    /// and the trace interpreter installs it as the turn observer so the
    /// synchronization primitives report their protocol ops. Purely
    /// observational — charges nothing, moves no clock, and under the
    /// default [`SchedulePolicy::Fifo`] changes no schedule. First attach
    /// wins; later calls return `false` and change nothing.
    pub fn set_check_probe(&self, probe: Arc<dyn eveth_core::check::Probe>) -> bool {
        self.inner.probe.set(probe).is_ok()
    }

    /// The configuration this runtime was built with.
    pub fn config(&self) -> &SimConfig {
        &self.config
    }

    /// Count of armed (uncancelled, unfired) virtual timers — the
    /// leak-audit view of the event heap at end of run.
    pub fn armed_timers(&self) -> usize {
        self.inner.clock.pending()
    }

    /// Spawns, enforcing the cost model's thread cap — how the harnesses
    /// reproduce "NPTL only scales to 16K threads".
    pub fn spawn_checked(&self, m: ThreadM<()>) -> Result<TaskId, SpawnError> {
        if let Some(cap) = self.config.cost.max_threads {
            if self.live_threads() as usize >= cap {
                return Err(SpawnError { max_threads: cap });
            }
        }
        Ok(self.spawn(m))
    }

    /// Live (spawned, unfinished) threads.
    pub fn live_threads(&self) -> i64 {
        self.inner.live.load(Ordering::SeqCst)
    }

    /// Current virtual time: the furthest CPU frontier (the makespan so
    /// far), or the raw clock if external charges have pushed it past
    /// every frontier.
    pub fn now(&self) -> Nanos {
        self.inner
            .cpus
            .lock()
            .max_frontier()
            .max(self.inner.clock.now())
    }

    /// Runs one scheduling step: picks the CPU with the lowest frontier,
    /// fires device events due by that frontier (dispatch charged to that
    /// CPU — the event loops share the CPUs, as on the paper's testbed),
    /// then either executes one turn on it or jumps every idle CPU to the
    /// next device event. Returns `false` when the simulation is
    /// quiescent: nothing runnable, no pending events.
    fn step(&self) -> bool {
        let inner = &self.inner;
        let mut cpus = inner.cpus.lock();

        // Absorb clock time charged outside any turn (spawn's Fork from
        // the host thread) into the CPU about to run.
        let drift = inner.clock.now().saturating_sub(cpus.last_synced);
        let cpu = cpus.min_cpu();
        cpus.frontier[cpu] += drift;

        // Harvest events due by this CPU's frontier; their handlers may
        // advance the clock (event-loop dispatch) and push tasks ready.
        inner.clock.set_now(cpus.frontier[cpu]);
        while inner
            .clock
            .next_deadline()
            .is_some_and(|d| d <= inner.clock.now())
        {
            inner.clock.fire_next();
        }
        let dispatched = inner.clock.now().saturating_sub(cpus.frontier[cpu]);
        cpus.frontier[cpu] += dispatched;
        cpus.busy[cpu] += dispatched;
        let frontier = cpus.frontier[cpu];

        // Choose the entry that can start earliest on this CPU: the
        // oldest already-startable one (FIFO among those), else the one
        // with the smallest ready time — via the (ready_at, seq) index
        // (see [`ReadyQueue::pick`]). A plain FIFO pop would let a head
        // entry re-queued far in the future warp this CPU's frontier past
        // work that became ready long ago, serializing turns the model
        // says overlap.
        let picked = inner.ready.lock().pick(frontier);
        match picked {
            Some((seq, ready_at)) => {
                // If a device event is due before this turn could even
                // start, service it first: it may ready an earlier task.
                let start = frontier.max(ready_at);
                if let Some(d) = inner.clock.next_deadline() {
                    if d < start {
                        inner.clock.fire_next();
                        let now = inner.clock.now();
                        cpus.frontier[cpu] = now;
                        cpus.busy[cpu] += now.saturating_sub(d); // dispatch, not idle
                        cpus.last_synced = now;
                        return true;
                    }
                }
                let task = inner
                    .ready
                    .lock()
                    .take(seq)
                    .expect("picked seq is in the queue");
                let tid = task.tid();
                let exits_before = inner.stats.exited.load(Ordering::Relaxed)
                    + inner.stats.uncaught.load(Ordering::Relaxed);
                inner.clock.set_now(start);
                drop(cpus);
                let ctx: Arc<dyn RuntimeCtx> = Arc::clone(inner) as Arc<dyn RuntimeCtx>;
                engine::run_task(&ctx, task, self.config.slice);
                let end = inner.clock.now();
                // Only this task can have exited during its own turn;
                // record (or clear) its floor accordingly.
                let exited = inner.stats.exited.load(Ordering::Relaxed)
                    + inner.stats.uncaught.load(Ordering::Relaxed)
                    > exits_before;
                if exited {
                    inner.resume_floor.lock().remove(&tid);
                } else {
                    inner.resume_floor.lock().insert(tid, end);
                }
                let mut cpus = inner.cpus.lock();
                cpus.frontier[cpu] = end;
                cpus.busy[cpu] += end.saturating_sub(start);
                cpus.last_synced = end;
                true
            }
            None => {
                let deadline = inner.clock.next_deadline();
                if !inner.clock.fire_next() {
                    cpus.last_synced = inner.clock.now();
                    return false; // quiescent
                }
                // Nothing was runnable, so every CPU idles forward to the
                // event that just fired. The idle stretch up to the event
                // is not busy time, but the handler's dispatch work past
                // it is — charge it to the harvesting CPU, as the other
                // event paths do.
                let now = inner.clock.now();
                if let Some(d) = deadline {
                    cpus.busy[cpu] += now.saturating_sub(d.max(cpus.frontier[cpu]));
                }
                for f in cpus.frontier.iter_mut() {
                    *f = (*f).max(now);
                }
                cpus.last_synced = now;
                true
            }
        }
    }

    /// Runs until both the ready queue and the event heap are exhausted, or
    /// `deadline` (virtual) passes.
    pub fn run_until(&self, deadline: Option<Nanos>) -> SimReport {
        loop {
            if let Some(d) = deadline {
                let cpus = self.inner.cpus.lock();
                let drift = self.inner.clock.now().saturating_sub(cpus.last_synced);
                if cpus.min_frontier() + drift >= d {
                    break;
                }
            }
            if !self.step() {
                break;
            }
        }
        self.report()
    }

    /// Runs to quiescence.
    pub fn run(&self) -> SimReport {
        self.run_until(None)
    }

    /// Runs `m` to completion (driving the whole simulation as needed) and
    /// returns its value.
    ///
    /// # Errors
    ///
    /// The exception, if `m` throws without catching; or a synthesized
    /// exception if the simulation goes quiescent before `m` finishes
    /// (deadlock).
    pub fn block_on<T: Send + 'static>(&self, m: ThreadM<T>) -> Result<T, Exception> {
        let slot: Arc<Mutex<Option<Result<T, Exception>>>> = Arc::new(Mutex::new(None));
        let out = Arc::clone(&slot);
        self.spawn(eveth_core::syscall::sys_try(m).bind(move |res| {
            eveth_core::syscall::sys_nbio(move || {
                *out.lock() = Some(res);
            })
        }));
        loop {
            if let Some(res) = slot.lock().take() {
                return res;
            }
            if !self.step() {
                return Err(Exception::new(
                    "simulation went quiescent before the blocked computation finished",
                ));
            }
        }
    }

    /// A summary of the run so far.
    pub fn report(&self) -> SimReport {
        let (now, busy) = {
            let cpus = self.inner.cpus.lock();
            (
                cpus.max_frontier().max(self.inner.clock.now()),
                cpus.busy.clone(),
            )
        };
        SimReport {
            now,
            stats: self.inner.stats.snapshot(),
            peak_threads: self.inner.peak_live.load(Ordering::SeqCst),
            peak_stack_bytes: self.inner.peak_live.load(Ordering::SeqCst).max(0) as u64
                * self.config.cost.stack_bytes,
            uncaught: self.inner.uncaught_log.lock().clone(),
            cpus: busy.len(),
            cpu_busy_ns: busy,
            io_wait_ns: self.inner.io_wait_ns.load(Ordering::Relaxed),
            io_waits: self.inner.io_waits.load(Ordering::Relaxed),
            lock_wait_ns: self.inner.lock_wait_ns.load(Ordering::Relaxed),
            lock_waits: self.inner.lock_waits.load(Ordering::Relaxed),
            timer_wait_ns: self.inner.timer_wait_ns.load(Ordering::Relaxed),
            timer_waits: self.inner.timer_waits.load(Ordering::Relaxed),
            park_wait_ns: self.inner.park_wait_ns.load(Ordering::Relaxed),
            park_waits: self.inner.park_waits.load(Ordering::Relaxed),
        }
    }
}

impl fmt::Debug for SimRuntime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "SimRuntime(model={}, cpus={}, now={}, live={})",
            self.config.cost.name,
            self.config.cpus.max(1),
            self.now(),
            self.live_threads()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eveth_core::syscall::*;
    use eveth_core::time::MILLIS;

    fn sim_with_cpus(cpus: usize) -> SimRuntime {
        SimRuntime::new(
            SimClock::new(),
            SimConfig {
                cost: CostModel::monadic(),
                slice: 256,
                cpus,
                ..SimConfig::default()
            },
        )
    }

    #[test]
    fn virtual_sleep_advances_clock_exactly() {
        let sim = SimRuntime::new_default();
        let t = sim
            .block_on(eveth_core::do_m! {
                sys_sleep(7 * MILLIS);
                sys_time()
            })
            .unwrap();
        // Sleep plus small scheduler costs.
        assert!((7 * MILLIS..8 * MILLIS).contains(&t), "t = {t}");
    }

    #[test]
    fn costs_accumulate_per_model() {
        let free = SimRuntime::new(
            SimClock::new(),
            SimConfig {
                cost: CostModel::free(),
                slice: 64,
                cpus: 1,
                ..SimConfig::default()
            },
        );
        free.block_on(eveth_core::for_each_m(0..100u32, |_| sys_yield()))
            .unwrap();
        assert_eq!(free.now(), 0, "free model charges nothing");

        let paid = SimRuntime::new_default();
        paid.block_on(eveth_core::for_each_m(0..100u32, |_| sys_yield()))
            .unwrap();
        assert!(paid.now() > 0, "monadic model charges for switches");
    }

    #[test]
    fn nptl_charges_more_than_monadic_for_blocking() {
        let run = |cost: CostModel| {
            let sim = SimRuntime::new(
                SimClock::new(),
                SimConfig {
                    cost,
                    slice: 256,
                    cpus: 1,
                    ..SimConfig::default()
                },
            );
            sim.block_on(eveth_core::for_each_m(0..1000u32, |_| sys_yield()))
                .unwrap();
            sim.now()
        };
        let monadic = run(CostModel::monadic());
        let nptl = run(CostModel::nptl());
        assert!(
            nptl > 3 * monadic,
            "nptl {nptl}ns should dwarf monadic {monadic}ns"
        );
    }

    #[test]
    fn spawn_checked_enforces_cap() {
        let mut cost = CostModel::nptl();
        cost.max_threads = Some(4);
        let sim = SimRuntime::new(
            SimClock::new(),
            SimConfig {
                cost,
                slice: 16,
                cpus: 1,
                ..SimConfig::default()
            },
        );
        for _ in 0..4 {
            sim.spawn_checked(eveth_core::forever_m(sys_yield))
                .expect("under cap");
        }
        let err = sim
            .spawn_checked(ThreadM::pure(()))
            .expect_err("cap reached");
        assert_eq!(err.max_threads, 4);
    }

    #[test]
    fn deadlock_is_reported_not_hung() {
        let sim = SimRuntime::new_default();
        let err = sim
            .block_on(sys_park::<fn(eveth_core::reactor::Unparker)>(|_u| {
                // park and never unpark
            }))
            .unwrap_err();
        assert!(err.message().contains("quiescent"));
    }

    #[test]
    fn report_tracks_peak_threads_and_stack() {
        let sim = SimRuntime::new(
            SimClock::new(),
            SimConfig {
                cost: CostModel::nptl(),
                slice: 64,
                cpus: 1,
                ..SimConfig::default()
            },
        );
        for _ in 0..10 {
            sim.spawn(sys_sleep(MILLIS));
        }
        let report = sim.run();
        assert_eq!(report.peak_threads, 10);
        assert_eq!(report.peak_stack_bytes, 10 * 32 * 1024);
        assert!(report.uncaught.is_empty());
    }

    #[test]
    fn independent_cpu_work_overlaps_across_cpus() {
        // Four tasks each burning 1 ms of modelled CPU: serialized on one
        // CPU, overlapped on four.
        let run = |cpus: usize| {
            let sim = sim_with_cpus(cpus);
            for _ in 0..4 {
                sim.spawn(sys_cpu(MILLIS));
            }
            sim.run().now
        };
        let one = run(1);
        let four = run(4);
        assert!(one >= 4 * MILLIS, "serialized: {one}");
        assert!(
            four < 2 * MILLIS,
            "4 CPUs must overlap 4 independent tasks: {four} vs {one}"
        );
    }

    #[test]
    fn report_carries_per_cpu_busy_time() {
        let sim = sim_with_cpus(2);
        for _ in 0..2 {
            sim.spawn(sys_cpu(MILLIS));
        }
        let report = sim.run();
        assert_eq!(report.cpus, 2);
        assert_eq!(report.cpu_busy_ns.len(), 2);
        assert!(report.cpu_busy_ns.iter().all(|&b| b >= MILLIS));
        let util = report.avg_utilization();
        assert!(util > 0.5 && util <= 1.0, "utilization {util}");
    }

    #[test]
    fn contended_mutex_wait_is_accounted() {
        use eveth_core::sync::Mutex as MonadicMutex;
        let sim = sim_with_cpus(2);
        let m = MonadicMutex::new();
        // Holder takes the lock, burns CPU, releases; the contender must
        // park and its wait must land in the report.
        let m2 = m.clone();
        sim.spawn(eveth_core::do_m! {
            m2.lock();
            sys_yield();
            sys_cpu(MILLIS);
            m2.unlock()
        });
        let m3 = m.clone();
        sim.spawn(m3.with(ThreadM::pure(())));
        let report = sim.run();
        assert!(report.lock_waits >= 1, "waits: {}", report.lock_waits);
        assert!(
            report.lock_wait_ns >= MILLIS / 2,
            "wait ns: {}",
            report.lock_wait_ns
        );
    }

    /// The old earliest-startable pick, verbatim: first FIFO entry whose
    /// ready time has passed, else the first entry achieving the minimum
    /// ready time. The proptest below pins [`ReadyQueue::pick`] to it.
    fn linear_pick(model: &[(u64, Nanos)], frontier: Nanos) -> Option<u64> {
        let mut best: Option<(usize, Nanos)> = None;
        for (i, &(_, ready_at)) in model.iter().enumerate() {
            if ready_at <= frontier {
                best = Some((i, ready_at));
                break;
            }
            if best.is_none_or(|(_, b)| ready_at < b) {
                best = Some((i, ready_at));
            }
        }
        best.map(|(i, _)| model[i].0)
    }

    fn dummy_task(seq: u64) -> Task {
        Task::from_thunk(TaskId(seq + 1), Box::new(|| eveth_core::Trace::Ret))
    }

    use proptest::prelude::*;
    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// [`ReadyQueue::pick`] (the `(ready_at, seq)` index) chooses the
        /// exact entry the old linear scan chose, across random
        /// interleavings of pushes and picks — the index is a speedup,
        /// never a schedule change.
        #[test]
        fn ready_queue_pick_matches_linear_scan(
            ops in proptest::collection::vec((0u8..3u8, 0u64..400u64), 1..150)
        ) {
            let mut q = ReadyQueue::new(&SchedulePolicy::Fifo);
            // FIFO-ordered mirror of the queue: (seq, ready_at).
            let mut model: Vec<(u64, Nanos)> = Vec::new();
            let mut next = 0u64;
            for (kind, v) in ops {
                if kind == 0 {
                    q.push(dummy_task(next), v);
                    model.push((next, v));
                    next += 1;
                } else {
                    // Two pick kinds so frontiers both above and below
                    // the queued ready times get exercised.
                    let frontier = if kind == 1 { v } else { v / 8 };
                    let got = q.pick(frontier).map(|(seq, _)| seq);
                    prop_assert_eq!(got, linear_pick(&model, frontier));
                    if let Some(seq) = got {
                        prop_assert!(q.take(seq).is_some());
                        model.retain(|&(s, _)| s != seq);
                    }
                }
            }
            // Drain what's left: equivalence must hold to the end.
            while let Some((seq, _)) = q.pick(0) {
                prop_assert_eq!(Some(seq), linear_pick(&model, 0));
                q.take(seq);
                model.retain(|&(s, _)| s != seq);
            }
            prop_assert!(model.is_empty());
        }
    }

    #[test]
    fn same_seedless_workload_is_deterministic_across_runs() {
        let run = || {
            let sim = sim_with_cpus(4);
            for i in 0..8u64 {
                sim.spawn(eveth_core::do_m! {
                    sys_sleep((i % 3) * MILLIS);
                    sys_cpu(100_000 * (i + 1));
                    sys_yield()
                });
            }
            format!("{:?}", sim.run())
        };
        assert_eq!(run(), run());
    }
}
