//! The simulated runtime: the core scheduler engine driven by virtual time.
//!
//! [`SimRuntime`] implements [`RuntimeCtx`] so the *same* monadic programs
//! (and the same devices built on `Pollable`/`AioFile`) run unchanged under
//! simulation. Each scheduler action advances the virtual clock by its
//! [`CostModel`] price; when the ready queue drains, the clock jumps to the
//! next device event. Running one workload under
//! [`CostModel::monadic`] and again under [`CostModel::nptl`] produces the
//! paired lines of the paper's Figures 17–19 — the Lauer–Needham duality in
//! action: identical semantics, different cost structure.

use std::collections::VecDeque;
use std::fmt;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::Arc;

use eveth_core::engine::{self, CostKind, RuntimeCtx};
use eveth_core::reactor::{EventPort, Unparker};
use eveth_core::runtime::{Stats, StatsSnapshot};
use eveth_core::task::{Task, TaskId, TaskShell};
use eveth_core::time::Nanos;
use eveth_core::trace::BlioJob;
use eveth_core::{Exception, ThreadM};
use parking_lot::Mutex;

use crate::cost::CostModel;
use crate::des::SimClock;

/// Configuration of a [`SimRuntime`].
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// The cost model to charge scheduler actions against.
    pub cost: CostModel,
    /// Non-blocking steps per scheduling turn (see the slice ablation).
    pub slice: usize,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            cost: CostModel::monadic(),
            slice: 256,
        }
    }
}

/// Error returned when a thread cannot be created under the model's limits.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpawnError {
    /// The model's thread cap.
    pub max_threads: usize,
}

impl fmt::Display for SpawnError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "thread limit reached ({} threads: address space exhausted)",
            self.max_threads
        )
    }
}

impl std::error::Error for SpawnError {}

struct SimInner {
    self_weak: std::sync::Weak<SimInner>,
    clock: SimClock,
    ready: Mutex<VecDeque<Task>>,
    next_tid: AtomicU64,
    live: AtomicI64,
    peak_live: AtomicI64,
    stats: Stats,
    cost: CostModel,
    uncaught_log: Mutex<Vec<(TaskId, Exception)>>,
}

impl SimInner {
    fn bump_live(&self) {
        let live = self.live.fetch_add(1, Ordering::SeqCst) + 1;
        self.peak_live.fetch_max(live, Ordering::SeqCst);
    }
}

/// An [`EventPort`] that models the dispatch cost of the dedicated event
/// loop (`worker_epoll` / `worker_aio`) and then resumes the thread.
struct SimPort {
    clock: SimClock,
    dispatch_ns: Nanos,
}

impl EventPort for SimPort {
    fn notify(&self, unparker: Unparker) {
        self.clock.advance(self.dispatch_ns);
        unparker.unpark();
    }
}

impl RuntimeCtx for SimInner {
    fn push_ready(&self, task: Task) {
        self.ready.lock().push_back(task);
    }
    fn next_tid(&self) -> TaskId {
        TaskId(self.next_tid.fetch_add(1, Ordering::Relaxed))
    }
    fn task_spawned(&self) {
        self.bump_live();
        self.stats.spawned.fetch_add(1, Ordering::Relaxed);
    }
    fn task_exited(&self, _tid: TaskId) {
        self.live.fetch_sub(1, Ordering::SeqCst);
        self.stats.exited.fetch_add(1, Ordering::Relaxed);
    }
    fn uncaught_exception(&self, tid: TaskId, e: Exception) {
        self.live.fetch_sub(1, Ordering::SeqCst);
        self.stats.uncaught.fetch_add(1, Ordering::Relaxed);
        self.uncaught_log.lock().push((tid, e));
    }
    fn now(&self) -> Nanos {
        self.clock.now()
    }
    fn charge(&self, cost: CostKind) {
        self.stats.charge(cost);
        self.clock.advance(self.cost.of(cost));
    }
    fn epoll_port(&self) -> Arc<dyn EventPort> {
        Arc::new(SimPort {
            clock: self.clock.clone(),
            dispatch_ns: self.cost.wake_ns / 2,
        })
    }
    fn aio_port(&self) -> Arc<dyn EventPort> {
        Arc::new(SimPort {
            clock: self.clock.clone(),
            dispatch_ns: self.cost.wake_ns / 2,
        })
    }
    fn sleep(&self, dur: Nanos, task: Task) {
        let weak = self.self_weak.clone();
        self.clock.schedule(dur, move || {
            if let Some(inner) = weak.upgrade() {
                inner.ready.lock().push_back(task);
            }
        });
    }
    fn submit_blio(&self, job: BlioJob, shell: TaskShell) {
        // The blocking pool runs the job "elsewhere"; model only the
        // dispatch cost and deliver the continuation immediately.
        let next = job();
        self.ready.lock().push_back(Task::from_parts(shell, next));
    }
}

/// Outcome summary of a simulation run.
#[derive(Debug, Clone)]
pub struct SimReport {
    /// Virtual time at which the run stopped.
    pub now: Nanos,
    /// Scheduler statistics.
    pub stats: StatsSnapshot,
    /// Peak simultaneously-live threads.
    pub peak_threads: i64,
    /// Peak address space attributed to thread stacks under the cost model.
    pub peak_stack_bytes: u64,
    /// Exceptions that escaped their threads.
    pub uncaught: Vec<(TaskId, Exception)>,
}

/// A single-CPU, virtual-time runtime for monadic threads.
///
/// # Examples
///
/// ```
/// use eveth_core::syscall::{sys_sleep, sys_time};
/// use eveth_core::{do_m, ThreadM};
/// use eveth_simos::desrt::SimRuntime;
///
/// let sim = SimRuntime::new_default();
/// let t = sim
///     .block_on(do_m! {
///         sys_sleep(5_000_000);
///         sys_time()
///     })
///     .unwrap();
/// assert!(t >= 5_000_000, "virtual clock advanced by the sleep");
/// ```
pub struct SimRuntime {
    inner: Arc<SimInner>,
    config: SimConfig,
}

impl SimRuntime {
    /// Creates a runtime with the given clock and configuration. Devices
    /// that should share virtual time must be built from the same clock.
    pub fn new(clock: SimClock, config: SimConfig) -> Self {
        let inner = Arc::new_cyclic(|weak| SimInner {
            self_weak: weak.clone(),
            clock,
            ready: Mutex::new(VecDeque::new()),
            next_tid: AtomicU64::new(1),
            live: AtomicI64::new(0),
            peak_live: AtomicI64::new(0),
            stats: Stats::default(),
            cost: config.cost.clone(),
            uncaught_log: Mutex::new(Vec::new()),
        });
        SimRuntime { inner, config }
    }

    /// A fresh clock + default (monadic) configuration.
    pub fn new_default() -> Self {
        SimRuntime::new(SimClock::new(), SimConfig::default())
    }

    /// The runtime's virtual clock (share it with devices).
    pub fn clock(&self) -> SimClock {
        self.inner.clock.clone()
    }

    /// The [`RuntimeCtx`] handle for drivers needing direct scheduler
    /// access.
    pub fn ctx(&self) -> Arc<dyn RuntimeCtx> {
        Arc::clone(&self.inner) as Arc<dyn RuntimeCtx>
    }

    /// Spawns a monadic thread.
    pub fn spawn(&self, m: ThreadM<()>) -> TaskId {
        let tid = self.inner.next_tid();
        self.inner.task_spawned();
        self.inner.charge(CostKind::Fork);
        self.inner.ready.lock().push_back(Task::from_thread(tid, m));
        tid
    }

    /// Spawns, enforcing the cost model's thread cap — how the harnesses
    /// reproduce "NPTL only scales to 16K threads".
    pub fn spawn_checked(&self, m: ThreadM<()>) -> Result<TaskId, SpawnError> {
        if let Some(cap) = self.config.cost.max_threads {
            if self.live_threads() as usize >= cap {
                return Err(SpawnError { max_threads: cap });
            }
        }
        Ok(self.spawn(m))
    }

    /// Live (spawned, unfinished) threads.
    pub fn live_threads(&self) -> i64 {
        self.inner.live.load(Ordering::SeqCst)
    }

    /// Current virtual time.
    pub fn now(&self) -> Nanos {
        self.inner.clock.now()
    }

    /// Delivers device events whose time has already been reached by the
    /// (cost-charged) CPU clock. On real hardware the device event loops
    /// run on their own OS threads, so a busy scheduler must not starve
    /// them; this keeps the simulation faithful to that.
    fn fire_due_events(&self) {
        while self
            .inner
            .clock
            .next_deadline()
            .is_some_and(|d| d <= self.inner.clock.now())
        {
            self.inner.clock.fire_next();
        }
    }

    /// Runs until both the ready queue and the event heap are exhausted, or
    /// `deadline` (virtual) passes.
    pub fn run_until(&self, deadline: Option<Nanos>) -> SimReport {
        loop {
            if let Some(d) = deadline {
                if self.inner.clock.now() >= d {
                    break;
                }
            }
            self.fire_due_events();
            let task = self.inner.ready.lock().pop_front();
            match task {
                Some(task) => {
                    let ctx: Arc<dyn RuntimeCtx> = Arc::clone(&self.inner) as Arc<dyn RuntimeCtx>;
                    engine::run_task(&ctx, task, self.config.slice);
                }
                None => {
                    if !self.inner.clock.fire_next() {
                        break; // quiescent: nothing runnable, no events
                    }
                }
            }
        }
        self.report()
    }

    /// Runs to quiescence.
    pub fn run(&self) -> SimReport {
        self.run_until(None)
    }

    /// Runs `m` to completion (driving the whole simulation as needed) and
    /// returns its value.
    ///
    /// # Errors
    ///
    /// The exception, if `m` throws without catching; or a synthesized
    /// exception if the simulation goes quiescent before `m` finishes
    /// (deadlock).
    pub fn block_on<T: Send + 'static>(&self, m: ThreadM<T>) -> Result<T, Exception> {
        let slot: Arc<Mutex<Option<Result<T, Exception>>>> = Arc::new(Mutex::new(None));
        let out = Arc::clone(&slot);
        self.spawn(eveth_core::syscall::sys_try(m).bind(move |res| {
            eveth_core::syscall::sys_nbio(move || {
                *out.lock() = Some(res);
            })
        }));
        loop {
            if let Some(res) = slot.lock().take() {
                return res;
            }
            self.fire_due_events();
            let task = self.inner.ready.lock().pop_front();
            match task {
                Some(task) => {
                    let ctx: Arc<dyn RuntimeCtx> = Arc::clone(&self.inner) as Arc<dyn RuntimeCtx>;
                    engine::run_task(&ctx, task, self.config.slice);
                }
                None => {
                    if !self.inner.clock.fire_next() {
                        return Err(Exception::new(
                            "simulation went quiescent before the blocked computation finished",
                        ));
                    }
                }
            }
        }
    }

    /// A summary of the run so far.
    pub fn report(&self) -> SimReport {
        SimReport {
            now: self.inner.clock.now(),
            stats: self.inner.stats.snapshot(),
            peak_threads: self.inner.peak_live.load(Ordering::SeqCst),
            peak_stack_bytes: self.inner.peak_live.load(Ordering::SeqCst).max(0) as u64
                * self.config.cost.stack_bytes,
            uncaught: self.inner.uncaught_log.lock().clone(),
        }
    }
}

impl fmt::Debug for SimRuntime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "SimRuntime(model={}, now={}, live={})",
            self.config.cost.name,
            self.now(),
            self.live_threads()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eveth_core::syscall::*;
    use eveth_core::time::MILLIS;

    #[test]
    fn virtual_sleep_advances_clock_exactly() {
        let sim = SimRuntime::new_default();
        let t = sim
            .block_on(eveth_core::do_m! {
                sys_sleep(7 * MILLIS);
                sys_time()
            })
            .unwrap();
        // Sleep plus small scheduler costs.
        assert!((7 * MILLIS..8 * MILLIS).contains(&t), "t = {t}");
    }

    #[test]
    fn costs_accumulate_per_model() {
        let free = SimRuntime::new(
            SimClock::new(),
            SimConfig {
                cost: CostModel::free(),
                slice: 64,
            },
        );
        free.block_on(eveth_core::for_each_m(0..100u32, |_| sys_yield()))
            .unwrap();
        assert_eq!(free.now(), 0, "free model charges nothing");

        let paid = SimRuntime::new_default();
        paid.block_on(eveth_core::for_each_m(0..100u32, |_| sys_yield()))
            .unwrap();
        assert!(paid.now() > 0, "monadic model charges for switches");
    }

    #[test]
    fn nptl_charges_more_than_monadic_for_blocking() {
        let run = |cost: CostModel| {
            let sim = SimRuntime::new(SimClock::new(), SimConfig { cost, slice: 256 });
            sim.block_on(eveth_core::for_each_m(0..1000u32, |_| sys_yield()))
                .unwrap();
            sim.now()
        };
        let monadic = run(CostModel::monadic());
        let nptl = run(CostModel::nptl());
        assert!(
            nptl > 3 * monadic,
            "nptl {nptl}ns should dwarf monadic {monadic}ns"
        );
    }

    #[test]
    fn spawn_checked_enforces_cap() {
        let mut cost = CostModel::nptl();
        cost.max_threads = Some(4);
        let sim = SimRuntime::new(SimClock::new(), SimConfig { cost, slice: 16 });
        for _ in 0..4 {
            sim.spawn_checked(eveth_core::forever_m(sys_yield))
                .expect("under cap");
        }
        let err = sim
            .spawn_checked(ThreadM::pure(()))
            .expect_err("cap reached");
        assert_eq!(err.max_threads, 4);
    }

    #[test]
    fn deadlock_is_reported_not_hung() {
        let sim = SimRuntime::new_default();
        let err = sim
            .block_on(sys_park::<fn(eveth_core::reactor::Unparker)>(|_u| {
                // park and never unpark
            }))
            .unwrap_err();
        assert!(err.message().contains("quiescent"));
    }

    #[test]
    fn report_tracks_peak_threads_and_stack() {
        let sim = SimRuntime::new(
            SimClock::new(),
            SimConfig {
                cost: CostModel::nptl(),
                slice: 64,
            },
        );
        for _ in 0..10 {
            sim.spawn(sys_sleep(MILLIS));
        }
        let report = sim.run();
        assert_eq!(report.peak_threads, 10);
        assert_eq!(report.peak_stack_bytes, 10 * 32 * 1024);
        assert!(report.uncaught.is_empty());
    }
}
