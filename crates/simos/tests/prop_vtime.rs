//! Properties of multi-CPU virtual time (`SimConfig::cpus`):
//!
//! 1. virtual time is monotone per task, whatever CPU count it runs on;
//! 2. `cpus = 1` reproduces the pre-change single-CPU schedule exactly
//!    (pinned against golden numbers captured from the scheduler before
//!    the multi-CPU refactor);
//! 3. identical seed + config ⇒ byte-identical `SimReport`, for every
//!    `cpus ∈ {1, 2, 4, 8}`.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use eveth_core::sync::Mutex;
use eveth_core::syscall::{sys_cpu, sys_nbio, sys_sleep, sys_time, sys_yield};
use eveth_core::time::Nanos;
use eveth_core::{do_m, for_each_m, ThreadM};
use eveth_simos::cost::CostModel;
use eveth_simos::{SimClock, SimConfig, SimRuntime};
use parking_lot::Mutex as PlMutex;
use proptest::prelude::*;

fn sim(cost: CostModel, slice: usize, cpus: usize) -> SimRuntime {
    SimRuntime::new(
        SimClock::new(),
        SimConfig {
            cost,
            slice,
            cpus,
            ..SimConfig::default()
        },
    )
}

/// A deterministic mixed workload: `threads` tasks doing yields, sleeps,
/// modelled CPU burns and contended mutex sections, parameterized by
/// `seed`. Returns the run's `SimReport` debug string (the byte-exact
/// fingerprint the determinism properties compare).
fn mixed_workload(seed: u64, threads: u64, cpus: usize) -> String {
    let sim = sim(CostModel::monadic(), 32, cpus);
    let m = Mutex::new();
    let counter = Arc::new(AtomicU64::new(0));
    for t in 0..threads {
        let m = m.clone();
        let counter = Arc::clone(&counter);
        let mut x = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ (t + 1);
        x ^= x << 13;
        x ^= x >> 7;
        let burn = 10_000 + (x % 50_000);
        let naps = 1 + (x % 3);
        sim.spawn(for_each_m(0..4u64, move |round| {
            let m = m.clone();
            let counter = Arc::clone(&counter);
            do_m! {
                sys_cpu(burn);
                sys_yield();
                m.with(do_m! {
                    sys_nbio({ let c = Arc::clone(&counter); move || { c.fetch_add(1, Ordering::SeqCst); } });
                    sys_yield()
                });
                sys_sleep((round + naps) * 100_000)
            }
        }));
    }
    let report = sim.run();
    assert_eq!(counter.load(Ordering::SeqCst), threads * 4);
    format!("{report:?}")
}

/// The exact workload whose virtual outcome was captured on the
/// single-CPU scheduler before the multi-CPU refactor (see the golden
/// constants in `cpus_1_matches_prechange_schedule`).
fn golden_workload(sim: &SimRuntime) -> (Nanos, u64, u64, u64) {
    let m = Mutex::new();
    let counter = Arc::new(AtomicU64::new(0));
    for t in 0..8u64 {
        let m = m.clone();
        let counter = Arc::clone(&counter);
        sim.spawn(for_each_m(0..20u64, move |_| {
            let m = m.clone();
            let counter = Arc::clone(&counter);
            do_m! {
                m.with(do_m! {
                    sys_nbio({ let c = Arc::clone(&counter); move || { c.fetch_add(1, Ordering::SeqCst); } });
                    sys_yield()
                });
                sys_sleep((t + 1) * 100_000)
            }
        }));
    }
    let report = sim.run();
    assert_eq!(counter.load(Ordering::SeqCst), 160);
    (
        report.now,
        report.stats.ctx_switches,
        report.stats.parks,
        report.stats.wakes,
    )
}

#[test]
fn cpus_1_matches_prechange_schedule() {
    // Golden numbers recorded by running `golden_workload` on the
    // single-CPU scheduler at the commit before the multi-CPU refactor.
    // `cpus = 1` must reproduce them to the nanosecond, for both cost
    // models: the new model is a strict generalization, not a new clock.
    let monadic = golden_workload(&sim(CostModel::monadic(), 64, 1));
    assert_eq!(monadic, (16_034_310, 160, 16, 16), "monadic/slice=64");

    let nptl = golden_workload(&sim(CostModel::nptl(), 16, 1));
    assert_eq!(nptl, (16_267_600, 160, 14, 14), "nptl/slice=16");
}

#[test]
fn default_config_is_single_cpu() {
    // SimConfig::default() must stay at cpus = 1 so every existing
    // harness keeps its pre-change timings unless it opts in.
    assert_eq!(SimConfig::default().cpus, 1);
    let explicit = golden_workload(&sim(CostModel::monadic(), 256, 1));
    let sim_default = SimRuntime::new(
        SimClock::new(),
        SimConfig {
            slice: 256,
            ..SimConfig::default()
        },
    );
    assert_eq!(golden_workload(&sim_default), explicit);
}

#[test]
fn parked_task_resumes_no_earlier_than_it_parked() {
    // Cross-CPU skew regression: W burns 10 ms on one CPU and then
    // contends a mutex whose holder ran at microsecond-scale times on the
    // other CPU. The unlock's wake event carries an *earlier* virtual
    // timestamp than W's own frontier — W must still resume at or after
    // the time it parked (per-task monotonicity), and its measured
    // contended wait must not underflow.
    let sim = sim(CostModel::monadic(), 64, 2);
    let m = Mutex::new();
    let m_holder = m.clone();
    sim.spawn(do_m! {
        m_holder.lock();
        sys_yield();
        sys_yield();
        m_holder.unlock()
    });
    let m_w = m.clone();
    let times: Arc<PlMutex<Vec<Nanos>>> = Arc::new(PlMutex::new(Vec::new()));
    let times2 = Arc::clone(&times);
    sim.spawn(do_m! {
        sys_cpu(10_000_000);
        let t0 <- sys_time();
        m_w.with(ThreadM::pure(()));
        let t1 <- sys_time();
        sys_nbio(move || times2.lock().extend([t0, t1]))
    });
    let report = sim.run();
    let observed = times.lock().clone();
    assert_eq!(observed.len(), 2);
    assert!(
        observed[1] >= observed[0],
        "W's clock ran backwards across the park: {} -> {}",
        observed[0],
        observed[1]
    );
    assert!(report.now >= 10_000_000, "makespan covers W's burn");
}

#[test]
fn long_requeued_turn_does_not_starve_earlier_ready_work() {
    // Ready-queue policy regression: a task re-queued with a far-future
    // ready time (the end of a long turn) must not warp a free CPU's
    // frontier past short tasks that became ready much earlier. With the
    // earliest-startable policy, H's 5 ms of chopped bursts overlap W's
    // 10 ms burn on the second CPU (makespan ~10 ms); a plain FIFO pop
    // serializes them (~15 ms, no better than one CPU).
    let run = |cpus: usize| {
        let sim = sim(CostModel::monadic(), 4, cpus);
        sim.spawn(do_m! {
            sys_cpu(10_000_000);
            sys_yield();
            sys_nbio(|| ())
        });
        sim.spawn(for_each_m(0..50u64, |_| {
            do_m! {
                sys_cpu(100_000);
                sys_yield()
            }
        }));
        sim.run().now
    };
    let serial = run(1);
    let dual = run(2);
    assert!(serial >= 15_000_000, "one CPU serializes: {serial}");
    assert!(
        dual < 12_500_000,
        "two CPUs must overlap H's bursts with W's burn: {dual} (serial {serial})"
    );
}

#[test]
fn makespan_never_grows_with_more_cpus_on_independent_work() {
    // Independent (lock-free) tasks: adding CPUs can only overlap work.
    let run = |cpus: usize| {
        let sim = sim(CostModel::monadic(), 64, cpus);
        for i in 0..8u64 {
            sim.spawn(do_m! {
                sys_cpu(500_000 + i * 10_000);
                sys_yield();
                sys_cpu(250_000)
            });
        }
        sim.run().now
    };
    let t1 = run(1);
    let t4 = run(4);
    let t8 = run(8);
    assert!(t4 <= t1, "4 cpus {t4} vs 1 cpu {t1}");
    assert!(t8 <= t4, "8 cpus {t8} vs 4 cpus {t4}");
    assert!(t8 < t1, "8 cpus must actually overlap: {t8} vs {t1}");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Each task's observations of `sys_time` are non-decreasing — per-task
    /// virtual time never runs backwards, on any CPU count, even though
    /// different CPUs sit at different frontiers.
    #[test]
    fn virtual_time_is_monotone_per_task(
        seed in 1u64..u64::MAX,
        cpus in 1usize..9,
        threads in 2u64..9,
    ) {
        let sim = sim(CostModel::monadic(), 16, cpus);
        let logs: Arc<PlMutex<Vec<Vec<Nanos>>>> =
            Arc::new(PlMutex::new(vec![Vec::new(); threads as usize]));
        let gate = Mutex::new();
        for t in 0..threads {
            let logs = Arc::clone(&logs);
            let gate = gate.clone();
            let nap = 50_000 + (seed ^ t) % 200_000;
            sim.spawn(for_each_m(0..5u64, move |_| {
                let logs = Arc::clone(&logs);
                let logs2 = Arc::clone(&logs);
                let gate = gate.clone();
                do_m! {
                    let now <- sys_time();
                    sys_nbio(move || logs.lock()[t as usize].push(now));
                    sys_yield();
                    gate.with(sys_cpu(10_000));
                    sys_sleep(nap);
                    let later <- sys_time();
                    sys_nbio(move || logs2.lock()[t as usize].push(later))
                }
            }));
        }
        sim.run();
        for (t, log) in logs.lock().iter().enumerate() {
            prop_assert_eq!(log.len(), 10, "task {} recorded every round", t);
            for w in log.windows(2) {
                prop_assert!(w[0] <= w[1], "task {} time went backwards: {:?}", t, w);
            }
        }
    }

    /// Identical seed + config ⇒ identical `SimReport`, for every tested
    /// CPU count. The whole simulation is single-OS-threaded with stable
    /// tie-breaks, so this must hold bit-exactly.
    #[test]
    fn identical_seeds_produce_identical_reports(seed in 1u64..u64::MAX, threads in 2u64..8) {
        for cpus in [1usize, 2, 4, 8] {
            let a = mixed_workload(seed, threads, cpus);
            let b = mixed_workload(seed, threads, cpus);
            prop_assert_eq!(a, b, "cpus = {} must be deterministic", cpus);
        }
    }

    /// Different seeds actually change the schedule (the determinism
    /// property is not vacuous).
    #[test]
    fn different_seeds_change_the_schedule(seed in 1u64..(u64::MAX - 7)) {
        let a = mixed_workload(seed, 4, 4);
        let b = mixed_workload(seed + 7, 4, 4);
        prop_assert_ne!(a, b);
    }
}
