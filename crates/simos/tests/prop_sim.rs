//! Property tests for the simulated substrate: event ordering, disk
//! completeness and non-starvation, link FIFO and loss accounting.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use eveth_core::net::HostId;
use eveth_simos::des::SimClock;
use eveth_simos::disk::{DiskGeometry, DiskSched, SimDisk};
use eveth_simos::net::{LinkParams, SimNet};
use parking_lot::Mutex;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Events fire in non-decreasing time order whatever the insertion
    /// order.
    #[test]
    fn clock_fires_in_time_order(delays in proptest::collection::vec(0u64..1_000_000, 1..100)) {
        let clock = SimClock::new();
        let log: Arc<Mutex<Vec<u64>>> = Arc::new(Mutex::new(Vec::new()));
        for d in &delays {
            let log = Arc::clone(&log);
            let c = clock.clone();
            clock.schedule(*d, move || log.lock().push(c.now()));
        }
        while clock.fire_next() {}
        let seen = log.lock().clone();
        prop_assert_eq!(seen.len(), delays.len());
        for w in seen.windows(2) {
            prop_assert!(w[0] <= w[1], "time went backwards: {:?}", w);
        }
    }

    /// Every submitted disk request completes exactly once, under either
    /// scheduling discipline, whatever the position mix — C-LOOK never
    /// starves a request.
    #[test]
    fn disk_completes_every_request_once(
        positions in proptest::collection::vec(0u64..1_000_000, 1..200),
        clook in any::<bool>(),
    ) {
        let clock = SimClock::new();
        let sched = if clook { DiskSched::CLook } else { DiskSched::Fifo };
        let disk = SimDisk::new(clock.clone(), DiskGeometry::eide_7200_80gb(), sched, 5);
        let done = Arc::new(AtomicU64::new(0));
        let n = positions.len() as u64;
        for pos in positions {
            let done = Arc::clone(&done);
            disk.submit(pos * 512, 4096, move || {
                done.fetch_add(1, Ordering::SeqCst);
            });
        }
        while clock.fire_next() {}
        prop_assert_eq!(done.load(Ordering::SeqCst), n);
        prop_assert_eq!(disk.queue_depth(), 0);
    }

    /// Per-link FIFO: packets between one host pair arrive in send order
    /// regardless of sizes; loss only removes, never reorders.
    #[test]
    fn network_is_fifo_per_link(
        sizes in proptest::collection::vec(1usize..9_000, 1..100),
        loss in 0.0f64..0.5,
        seed in 1u64..u64::MAX,
    ) {
        let clock = SimClock::new();
        let net = SimNet::new(clock.clone(), LinkParams::ethernet_100mbps().with_loss(loss), seed);
        let inbox: Arc<Mutex<Vec<u32>>> = Arc::new(Mutex::new(Vec::new()));
        let sink = Arc::clone(&inbox);
        net.register_host(HostId(2), Arc::new(move |_src, pkt| {
            sink.lock().push(*pkt.downcast::<u32>().expect("u32 payload"));
        }));
        for (i, size) in sizes.iter().enumerate() {
            net.send(HostId(1), HostId(2), *size, Box::new(i as u32));
        }
        while clock.fire_next() {}
        let got = inbox.lock().clone();
        // Strictly increasing subsequence of the send order.
        for w in got.windows(2) {
            prop_assert!(w[0] < w[1], "reordered: {:?}", w);
        }
        let delivered = got.len() as u64;
        let dropped = net.stats().dropped.load(Ordering::Relaxed);
        prop_assert_eq!(delivered + dropped, sizes.len() as u64);
    }

    /// Seek times are monotone in distance (the physical law behind the
    /// elevator's win).
    #[test]
    fn seek_time_monotone(d1 in 0u64..40_000_000_000, d2 in 0u64..40_000_000_000) {
        let g = DiskGeometry::eide_7200_80gb();
        let (lo, hi) = if d1 <= d2 { (d1, d2) } else { (d2, d1) };
        prop_assert!(g.service_ns(lo, 4096, 0.0) <= g.service_ns(hi, 4096, 0.0));
    }
}
