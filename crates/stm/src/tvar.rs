//! Transactional variables.
//!
//! A [`TVar`] pairs a value with a version stamp and a transactional lock
//! flag (TL2-style). All access goes through transactions
//! ([`Txn`](crate::txn::Txn)); the waiter list supports `retry`, which
//! parks monadic threads until *any* variable the transaction read is
//! committed to.

use std::any::Any;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use eveth_core::check;
use eveth_core::reactor::Unparker;
use parking_lot::Mutex;

/// The global version clock (TL2).
pub(crate) static GLOBAL_CLOCK: AtomicU64 = AtomicU64::new(0);

static NEXT_TVAR_ID: AtomicU64 = AtomicU64::new(1);

pub(crate) struct Slot<T> {
    pub(crate) value: T,
    pub(crate) version: u64,
    pub(crate) locked: bool,
}

pub(crate) struct TVarInner<T> {
    pub(crate) id: u64,
    pub(crate) slot: Mutex<Slot<T>>,
    pub(crate) waiters: Mutex<Vec<Unparker>>,
    /// Check-probe resource id (`eveth_core::check`).
    pub(crate) rid: u64,
}

impl<T> TVarInner<T> {
    /// Reports a check op with the committed version as the taker-side
    /// availability (a monotone counter: parked retries that saw an older
    /// version than the final one were woken, or the wakeup was lost).
    fn check_op(&self, kind: check::OpKind) {
        let version = self.slot.lock().version;
        check::op(self.rid, check::ResKind::Stm, kind, [version, 0]);
    }
}

/// A mutable cell readable and writable only inside STM transactions.
///
/// # Examples
///
/// ```
/// use eveth_stm::{atomically_blocking, TVar};
///
/// let acct = TVar::new(100i64);
/// atomically_blocking(|txn| {
///     let v = txn.read(&acct)?;
///     txn.write(&acct, v - 30);
///     Ok(())
/// });
/// assert_eq!(acct.read_now(), 70);
/// ```
pub struct TVar<T> {
    pub(crate) inner: Arc<TVarInner<T>>,
}

impl<T> Clone for TVar<T> {
    fn clone(&self) -> Self {
        TVar {
            inner: Arc::clone(&self.inner),
        }
    }
}

impl<T: Clone + Send + 'static> TVar<T> {
    /// Creates a variable holding `value`.
    pub fn new(value: T) -> Self {
        TVar {
            inner: Arc::new(TVarInner {
                id: NEXT_TVAR_ID.fetch_add(1, Ordering::Relaxed),
                slot: Mutex::new(Slot {
                    value,
                    version: 0,
                    locked: false,
                }),
                waiters: Mutex::new(Vec::new()),
                rid: check::new_rid(),
            }),
        }
    }

    /// Reads the current committed value outside any transaction — a
    /// single-variable snapshot, safe because commits replace the value
    /// under the slot lock.
    pub fn read_now(&self) -> T {
        self.inner.slot.lock().value.clone()
    }

    /// The variable's unique id (commit ordering key).
    pub fn id(&self) -> u64 {
        self.inner.id
    }
}

impl<T> fmt::Debug for TVar<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "TVar(id={})", self.inner.id)
    }
}

/// Type-erased transaction log entry: a read observation or a pending
/// write on some `TVar`.
pub(crate) trait StmEntry: Send {
    fn id(&self) -> u64;
    /// Acquires the transactional lock; false if someone else holds it.
    fn try_lock(&self) -> bool;
    fn unlock(&self);
    /// True if the variable is unlocked and unchanged since `rv`.
    fn version_ok(&self, rv: u64) -> bool;
    /// Applies the pending write (write entries only) at version `wv` and
    /// releases the lock.
    fn commit_value(&mut self, wv: u64);
    /// Registers a retry waiter.
    fn add_waiter(&self, u: Unparker);
    /// Wakes retry waiters (after a commit touched this variable).
    fn wake_waiters(&self);
    fn as_any(&self) -> &dyn Any;
}

pub(crate) struct ReadEntry<T> {
    pub(crate) tvar: TVar<T>,
}

impl<T: Clone + Send + 'static> StmEntry for ReadEntry<T> {
    fn id(&self) -> u64 {
        self.tvar.inner.id
    }
    fn try_lock(&self) -> bool {
        let mut slot = self.tvar.inner.slot.lock();
        if slot.locked {
            false
        } else {
            slot.locked = true;
            true
        }
    }
    fn unlock(&self) {
        self.tvar.inner.slot.lock().locked = false;
    }
    fn version_ok(&self, rv: u64) -> bool {
        let slot = self.tvar.inner.slot.lock();
        !slot.locked && slot.version <= rv
    }
    fn commit_value(&mut self, _wv: u64) {}
    fn add_waiter(&self, u: Unparker) {
        self.tvar.inner.check_op(check::OpKind::BlockTake);
        self.tvar.inner.waiters.lock().push(u);
    }
    fn wake_waiters(&self) {
        self.tvar.inner.check_op(check::OpKind::Publish);
        let _scope = check::wake_scope(self.tvar.inner.rid);
        for u in self.tvar.inner.waiters.lock().drain(..) {
            u.unpark();
        }
    }
    fn as_any(&self) -> &dyn Any {
        self
    }
}

pub(crate) struct WriteEntry<T> {
    pub(crate) tvar: TVar<T>,
    pub(crate) pending: Option<T>,
}

impl<T: Clone + Send + 'static> StmEntry for WriteEntry<T> {
    fn id(&self) -> u64 {
        self.tvar.inner.id
    }
    fn try_lock(&self) -> bool {
        let mut slot = self.tvar.inner.slot.lock();
        if slot.locked {
            false
        } else {
            slot.locked = true;
            true
        }
    }
    fn unlock(&self) {
        self.tvar.inner.slot.lock().locked = false;
    }
    fn version_ok(&self, rv: u64) -> bool {
        // We hold the lock ourselves during validation, so only the
        // version matters.
        self.tvar.inner.slot.lock().version <= rv
    }
    fn commit_value(&mut self, wv: u64) {
        let mut slot = self.tvar.inner.slot.lock();
        if let Some(v) = self.pending.take() {
            slot.value = v;
        }
        slot.version = wv;
        slot.locked = false;
    }
    fn add_waiter(&self, u: Unparker) {
        self.tvar.inner.check_op(check::OpKind::BlockTake);
        self.tvar.inner.waiters.lock().push(u);
    }
    fn wake_waiters(&self) {
        self.tvar.inner.check_op(check::OpKind::Publish);
        let _scope = check::wake_scope(self.tvar.inner.rid);
        for u in self.tvar.inner.waiters.lock().drain(..) {
            u.unpark();
        }
    }
    fn as_any(&self) -> &dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_are_unique_and_ordered() {
        let a: TVar<i32> = TVar::new(0);
        let b: TVar<i32> = TVar::new(0);
        assert_ne!(a.id(), b.id());
    }

    #[test]
    fn read_now_sees_initial() {
        let v = TVar::new("x");
        assert_eq!(v.read_now(), "x");
    }

    #[test]
    fn entry_lock_protocol() {
        let v = TVar::new(5u8);
        let e = ReadEntry { tvar: v.clone() };
        assert!(e.try_lock());
        assert!(!e.try_lock(), "second lock must fail");
        assert!(!e.version_ok(100), "locked fails read validation");
        e.unlock();
        assert!(e.version_ok(100));
    }

    #[test]
    fn write_entry_commit_bumps_version() {
        let v = TVar::new(1u32);
        let mut e = WriteEntry {
            tvar: v.clone(),
            pending: Some(9),
        };
        assert!(e.try_lock());
        e.commit_value(42);
        assert_eq!(v.read_now(), 9);
        assert!(!e.version_ok(41), "version 42 > rv 41");
        assert!(e.version_ok(42));
    }
}
