//! Transactions: optimistic read/write logs, TL2 validation and commit,
//! `retry` and `or_else`.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use eveth_core::syscall::{sys_nbio, sys_park, sys_yield};
use eveth_core::{loop_m, Loop, ThreadM};

use crate::tvar::{ReadEntry, StmEntry, TVar, WriteEntry, GLOBAL_CLOCK};

/// Why a transaction attempt did not produce a value.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StmAbort {
    /// The program requested [`Txn::retry`]: block until a read variable
    /// changes, then re-run.
    Retry,
    /// A concurrent commit invalidated this attempt: re-run immediately.
    Conflict,
}

/// Result of one transaction body run.
pub type StmResult<T> = Result<T, StmAbort>;

/// An in-flight transaction: the read set, the write set, and the read
/// version (TL2 snapshot timestamp).
pub struct Txn {
    rv: u64,
    reads: Vec<Box<dyn StmEntry>>,
    writes: BTreeMap<u64, Box<dyn StmEntry>>,
}

impl std::fmt::Debug for Txn {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "Txn(rv={}, reads={}, writes={})",
            self.rv,
            self.reads.len(),
            self.writes.len()
        )
    }
}

impl Txn {
    fn begin() -> Self {
        Txn {
            rv: GLOBAL_CLOCK.load(Ordering::SeqCst),
            reads: Vec::new(),
            writes: BTreeMap::new(),
        }
    }

    /// Reads `tvar` inside the transaction.
    ///
    /// # Errors
    ///
    /// [`StmAbort::Conflict`] if a concurrent commit has already
    /// invalidated this attempt (the runner re-executes the body).
    pub fn read<T: Clone + Send + 'static>(&mut self, tvar: &TVar<T>) -> StmResult<T> {
        // Read-your-own-writes.
        if let Some(entry) = self.writes.get(&tvar.id()) {
            if let Some(w) = entry.as_any().downcast_ref::<WriteEntry<T>>() {
                if let Some(v) = &w.pending {
                    return Ok(v.clone());
                }
            }
        }
        let value = {
            let slot = tvar.inner.slot.lock();
            if slot.locked || slot.version > self.rv {
                return Err(StmAbort::Conflict);
            }
            slot.value.clone()
        };
        self.reads.push(Box::new(ReadEntry { tvar: tvar.clone() }));
        Ok(value)
    }

    /// Queues a write to `tvar`, visible to later reads in this
    /// transaction and applied atomically at commit.
    pub fn write<T: Clone + Send + 'static>(&mut self, tvar: &TVar<T>, value: T) {
        self.writes.insert(
            tvar.id(),
            Box::new(WriteEntry {
                tvar: tvar.clone(),
                pending: Some(value),
            }),
        );
    }

    /// Blocks the transaction until one of the variables it has read
    /// changes (GHC's `retry`).
    ///
    /// # Errors
    ///
    /// Always returns `Err(StmAbort::Retry)` — the runner interprets it.
    pub fn retry<T>(&self) -> StmResult<T> {
        Err(StmAbort::Retry)
    }

    /// Runs `first`; if it retries, rolls its *writes* back and runs
    /// `second` (GHC's `orElse`). Reads from both alternatives stay in the
    /// log, so a `retry` from both waits on the union.
    pub fn or_else<T>(
        &mut self,
        first: impl FnOnce(&mut Txn) -> StmResult<T>,
        second: impl FnOnce(&mut Txn) -> StmResult<T>,
    ) -> StmResult<T> {
        let write_keys: Vec<u64> = self.writes.keys().copied().collect();
        match first(self) {
            Err(StmAbort::Retry) => {
                // Roll back writes added by `first`.
                let added: Vec<u64> = self
                    .writes
                    .keys()
                    .copied()
                    .filter(|k| !write_keys.contains(k))
                    .collect();
                for k in added {
                    self.writes.remove(&k);
                }
                second(self)
            }
            other => other,
        }
    }

    /// Attempts to commit. On success wakes retry-waiters of every written
    /// variable.
    fn commit(mut self) -> Result<(), StmAbort> {
        // Phase 1: lock the write set in id order (BTreeMap iterates
        // sorted, so concurrent committers cannot deadlock).
        let mut locked: Vec<u64> = Vec::with_capacity(self.writes.len());
        for (id, entry) in self.writes.iter() {
            if entry.try_lock() {
                locked.push(*id);
            } else {
                for lid in &locked {
                    self.writes[lid].unlock();
                }
                return Err(StmAbort::Conflict);
            }
        }
        // Phase 2: validate the read set against the snapshot.
        for r in &self.reads {
            let own_lock = self.writes.contains_key(&r.id());
            let ok = if own_lock {
                // We hold this lock; check the version via the write entry.
                self.writes[&r.id()].version_ok(self.rv)
            } else {
                r.version_ok(self.rv)
            };
            if !ok {
                for lid in &locked {
                    self.writes[lid].unlock();
                }
                return Err(StmAbort::Conflict);
            }
        }
        // Phase 3: commit at a fresh version and wake waiters.
        let wv = GLOBAL_CLOCK.fetch_add(1, Ordering::SeqCst) + 1;
        for (_, entry) in self.writes.iter_mut() {
            entry.commit_value(wv);
        }
        for (_, entry) in self.writes.iter() {
            entry.wake_waiters();
        }
        Ok(())
    }
}

/// Runs one optimistic attempt; `Ok(Ok(v))` = committed, `Ok(Err(abort))` =
/// try again (possibly after blocking), keeping the read set for
/// retry-parking.
fn attempt<A, F>(body: &F) -> Result<A, (StmAbort, Vec<Box<dyn StmEntry>>)>
where
    F: Fn(&mut Txn) -> StmResult<A>,
{
    let mut txn = Txn::begin();
    match body(&mut txn) {
        Ok(v) => {
            let reads_backup: Vec<Box<dyn StmEntry>> = Vec::new();
            match txn.commit() {
                Ok(()) => Ok(v),
                Err(abort) => Err((abort, reads_backup)),
            }
        }
        Err(abort) => {
            let reads = std::mem::take(&mut txn.reads);
            Err((abort, reads))
        }
    }
}

/// Contention counters for a family of transactions.
///
/// STM contention never parks a thread on a lock — it shows up as
/// *re-executions* — so it is invisible to lock-wait accounting. Handing
/// the same `TxnStats` to every [`atomically_m_with_stats`] call over a
/// shared datum (as the KV store's STM backend does per store) makes that
/// contention observable: `conflicts + retry_waits` is the number of
/// wasted attempts.
#[derive(Debug, Default)]
pub struct TxnStats {
    /// Attempts invalidated by a concurrent commit (re-run immediately).
    pub conflicts: AtomicU64,
    /// Attempts that blocked on [`Txn::retry`] (re-run after a commit to
    /// the read set).
    pub retry_waits: AtomicU64,
    /// Attempts that committed.
    pub commits: AtomicU64,
}

impl TxnStats {
    /// A fresh zeroed counter set.
    pub fn new() -> Arc<Self> {
        Arc::new(TxnStats::default())
    }

    /// Total re-executed attempts (conflicts + retry blocks) — the STM
    /// analogue of lock contentions.
    pub fn retries(&self) -> u64 {
        self.conflicts.load(Ordering::Relaxed) + self.retry_waits.load(Ordering::Relaxed)
    }

    /// Registers these counters into a telemetry registry as
    /// `eveth_stm_{conflicts,retry_waits,commits,retries}_total{labels}`,
    /// polled at exposition time. This is how STM contention — invisible
    /// to lock-wait accounting because it re-executes instead of parking —
    /// reaches `/metrics` without this type changing shape.
    pub fn register_into(
        self: &Arc<Self>,
        registry: &eveth_core::telemetry::metrics::Registry,
        labels: &[(&str, &str)],
    ) {
        let s = Arc::clone(self);
        registry.register_counter_fn("eveth_stm_conflicts_total", labels, move || {
            s.conflicts.load(Ordering::Relaxed)
        });
        let s = Arc::clone(self);
        registry.register_counter_fn("eveth_stm_retry_waits_total", labels, move || {
            s.retry_waits.load(Ordering::Relaxed)
        });
        let s = Arc::clone(self);
        registry.register_counter_fn("eveth_stm_commits_total", labels, move || {
            s.commits.load(Ordering::Relaxed)
        });
        let s = Arc::clone(self);
        registry.register_counter_fn("eveth_stm_retries_total", labels, move || s.retries());
    }
}

/// Runs `body` transactionally from a *monadic thread*: attempts execute
/// via `sys_nbio` (they never block the scheduler, per the paper's §4.7),
/// `Conflict` re-runs after a yield, and `Retry` parks the thread on every
/// variable in the read set until one of them is committed to.
///
/// # Examples
///
/// ```
/// use eveth_core::runtime::Runtime;
/// use eveth_stm::{atomically_m, TVar};
///
/// let rt = Runtime::builder().workers(2).build();
/// let counter = TVar::new(0u64);
/// let c = counter.clone();
/// rt.block_on(atomically_m(move |txn| {
///     let v = txn.read(&c)?;
///     txn.write(&c, v + 1);
///     Ok(v)
/// }));
/// assert_eq!(counter.read_now(), 1);
/// rt.shutdown();
/// ```
pub fn atomically_m<A, F>(body: F) -> ThreadM<A>
where
    A: Send + 'static,
    F: Fn(&mut Txn) -> StmResult<A> + Send + Sync + 'static,
{
    atomically_impl(body, None)
}

/// [`atomically_m`] with contention accounting: every attempt outcome is
/// counted into `stats`, which callers typically share across all
/// transactions touching one datum (see [`TxnStats`]).
pub fn atomically_m_with_stats<A, F>(body: F, stats: Arc<TxnStats>) -> ThreadM<A>
where
    A: Send + 'static,
    F: Fn(&mut Txn) -> StmResult<A> + Send + Sync + 'static,
{
    atomically_impl(body, Some(stats))
}

fn atomically_impl<A, F>(body: F, stats: Option<Arc<TxnStats>>) -> ThreadM<A>
where
    A: Send + 'static,
    F: Fn(&mut Txn) -> StmResult<A> + Send + Sync + 'static,
{
    let body = Arc::new(body);
    loop_m((), move |()| {
        let b = Arc::clone(&body);
        let stats = stats.clone();
        sys_nbio(move || {
            let res = attempt(b.as_ref());
            if let Some(stats) = &stats {
                match &res {
                    Ok(_) => stats.commits.fetch_add(1, Ordering::Relaxed),
                    Err((StmAbort::Conflict, _)) => stats.conflicts.fetch_add(1, Ordering::Relaxed),
                    Err((StmAbort::Retry, _)) => stats.retry_waits.fetch_add(1, Ordering::Relaxed),
                };
            }
            res
        })
        .bind(move |res| match res {
            Ok(v) => ThreadM::pure(Loop::Break(v)),
            Err((StmAbort::Conflict, _)) => sys_yield().map(|_| Loop::Continue(())),
            Err((StmAbort::Retry, reads)) => {
                // Park on the union of the read set; any commit to any of
                // those variables wakes us (one-shot unparker → exactly one
                // resume even if several fire).
                sys_park(move |u| {
                    if reads.is_empty() {
                        // Retrying with an empty read set would sleep
                        // forever; treat as a spin (matches GHC, which
                        // considers it a programming error).
                        u.unpark();
                        return;
                    }
                    for r in reads.iter() {
                        r.add_waiter(u.clone());
                    }
                })
                .map(|_| Loop::Continue(()))
            }
        })
    })
}

/// Runs `body` transactionally from a plain OS thread, spinning on
/// conflicts and sleeping briefly on `retry`. Intended for tests and
/// non-monadic integration; monadic threads should use [`atomically_m`].
pub fn atomically_blocking<A, F>(body: F) -> A
where
    F: Fn(&mut Txn) -> StmResult<A>,
{
    loop {
        match attempt(&body) {
            Ok(v) => return v,
            Err((StmAbort::Conflict, _)) => std::thread::yield_now(),
            Err((StmAbort::Retry, _)) => std::thread::sleep(std::time::Duration::from_micros(100)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn read_write_roundtrip() {
        let v = TVar::new(10);
        let out = atomically_blocking(|t| {
            let x = t.read(&v)?;
            t.write(&v, x * 2);
            t.read(&v)
        });
        assert_eq!(out, 20, "read-your-own-writes");
        assert_eq!(v.read_now(), 20);
    }

    #[test]
    fn transaction_is_atomic_across_two_vars() {
        let a = TVar::new(100i64);
        let b = TVar::new(0i64);
        atomically_blocking(|t| {
            let x = t.read(&a)?;
            t.write(&a, x - 40);
            let y = t.read(&b)?;
            t.write(&b, y + 40);
            Ok(())
        });
        assert_eq!(a.read_now() + b.read_now(), 100);
        assert_eq!(b.read_now(), 40);
    }

    #[test]
    fn or_else_takes_second_on_retry() {
        let v = TVar::new(0);
        let got = atomically_blocking(|t| {
            t.or_else(
                |t1| {
                    t1.write(&v, 111); // rolled back
                    t1.retry::<i32>()
                },
                |t2| {
                    t2.write(&v, 222);
                    Ok(2)
                },
            )
        });
        assert_eq!(got, 2);
        assert_eq!(v.read_now(), 222, "first alternative's write rolled back");
    }

    #[test]
    fn concurrent_increments_all_land() {
        let v = TVar::new(0u64);
        let mut handles = Vec::new();
        for _ in 0..8 {
            let v = v.clone();
            handles.push(std::thread::spawn(move || {
                for _ in 0..500 {
                    atomically_blocking(|t| {
                        let x = t.read(&v)?;
                        t.write(&v, x + 1);
                        Ok(())
                    });
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(v.read_now(), 8 * 500);
    }

    #[test]
    fn blocking_retry_waits_for_producer() {
        let slot: TVar<Option<u32>> = TVar::new(None);
        let consumer = {
            let slot = slot.clone();
            std::thread::spawn(move || {
                atomically_blocking(|t| match t.read(&slot)? {
                    Some(v) => {
                        t.write(&slot, None);
                        Ok(v)
                    }
                    None => t.retry(),
                })
            })
        };
        std::thread::sleep(std::time::Duration::from_millis(20));
        atomically_blocking(|t| {
            t.write(&slot, Some(77));
            Ok(())
        });
        assert_eq!(consumer.join().unwrap(), 77);
    }

    #[test]
    fn monadic_retry_parks_until_commit() {
        use eveth_core::runtime::Runtime;
        use eveth_core::syscall::{sys_fork, sys_sleep};
        let rt = Runtime::builder().workers(2).build();
        let slot: TVar<Option<&'static str>> = TVar::new(None);
        let producer_var = slot.clone();
        let got = rt.block_on(eveth_core::do_m! {
            sys_fork(eveth_core::do_m! {
                sys_sleep(10 * eveth_core::time::MILLIS);
                atomically_m(move |t| { t.write(&producer_var, Some("msg")); Ok(()) })
            });
            atomically_m(move |t| match t.read(&slot)? {
                Some(v) => Ok(v),
                None => t.retry(),
            })
        });
        assert_eq!(got, "msg");
        rt.shutdown();
    }

    #[test]
    fn txn_stats_count_commits_and_retry_blocks() {
        use eveth_core::runtime::Runtime;
        use eveth_core::syscall::{sys_fork, sys_sleep};
        let rt = Runtime::builder().workers(2).build();
        let stats = TxnStats::new();
        let slot: TVar<Option<u32>> = TVar::new(None);
        let producer_var = slot.clone();
        let consumer_stats = Arc::clone(&stats);
        let got = rt.block_on(eveth_core::do_m! {
            sys_fork(eveth_core::do_m! {
                sys_sleep(10 * eveth_core::time::MILLIS);
                atomically_m(move |t| { t.write(&producer_var, Some(5)); Ok(()) })
            });
            atomically_m_with_stats(
                move |t| match t.read(&slot)? {
                    Some(v) => Ok(v),
                    None => t.retry(),
                },
                consumer_stats,
            )
        });
        assert_eq!(got, 5);
        assert_eq!(stats.commits.load(Ordering::Relaxed), 1);
        assert!(
            stats.retry_waits.load(Ordering::Relaxed) >= 1,
            "the consumer must have blocked at least once"
        );
        assert_eq!(stats.retries(), stats.retry_waits.load(Ordering::Relaxed));
        rt.shutdown();
    }

    #[test]
    fn monadic_bank_transfer_conserves_total_under_smp() {
        use eveth_core::runtime::Runtime;
        let rt = Runtime::builder().workers(4).build();
        let accounts: Vec<TVar<i64>> = (0..8).map(|_| TVar::new(1000)).collect();
        let done = TVar::new(0u32);
        const TRANSFERS: u32 = 64;
        for i in 0..TRANSFERS {
            let from = accounts[(i as usize) % 8].clone();
            let to = accounts[(i as usize * 3 + 1) % 8].clone();
            let done = done.clone();
            rt.spawn(eveth_core::do_m! {
                atomically_m(move |t| {
                    let f = t.read(&from)?;
                    let g = t.read(&to)?;
                    t.write(&from, f - 10);
                    t.write(&to, g + 10);
                    Ok(())
                });
                atomically_m(move |t| {
                    let d = t.read(&done)?;
                    t.write(&done, d + 1);
                    Ok(())
                });
                eveth_core::ThreadM::pure(())
            });
        }
        // Wait for all transfers.
        let done_watch = done.clone();
        rt.block_on(atomically_m(move |t| {
            if t.read(&done_watch)? == TRANSFERS {
                Ok(())
            } else {
                t.retry()
            }
        }));
        let total: i64 = accounts.iter().map(|a| a.read_now()).sum();
        assert_eq!(total, 8000, "money is conserved");
        rt.shutdown();
    }
}
