//! # eveth-stm — software transactional memory for monadic threads
//!
//! The paper uses GHC's STM for non-blocking synchronization: "monadic
//! threads can simply use `sys_nbio` to submit STM computations as IO
//! operations" (§4.7). This crate supplies the equivalent: a TL2-style STM
//! (global version clock, per-[`TVar`] versioned locks, optimistic
//! read/write logs) whose transactions
//!
//! * run from monadic threads via [`atomically_m`] — attempts execute
//!   inside `sys_nbio`, and [`retry`](Txn::retry) parks the *monadic*
//!   thread on the read set, exactly the scheduler-extension recipe of
//!   §4.7;
//! * or from plain OS threads via [`atomically_blocking`] (tests,
//!   integration).
//!
//! [`Txn::or_else`] provides GHC's `orElse` composition.
//!
//! ```
//! use eveth_stm::{atomically_blocking, TVar};
//!
//! let a = TVar::new(50i32);
//! let b = TVar::new(50i32);
//! // Move 10 from a to b, atomically.
//! atomically_blocking(|t| {
//!     let x = t.read(&a)?;
//!     let y = t.read(&b)?;
//!     t.write(&a, x - 10);
//!     t.write(&b, y + 10);
//!     Ok(())
//! });
//! assert_eq!((a.read_now(), b.read_now()), (40, 60));
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod tvar;
mod txn;

pub use tvar::TVar;
pub use txn::{
    atomically_blocking, atomically_m, atomically_m_with_stats, StmAbort, StmResult, Txn, TxnStats,
};
