//! Property tests for STM: serializability-style invariants under random
//! concurrent transfer schedules.

use eveth_stm::{atomically_blocking, TVar};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Concurrent random transfers conserve the total across accounts —
    /// atomicity + isolation observed end to end.
    #[test]
    fn random_transfers_conserve_total(
        accounts in 2usize..8,
        transfers in proptest::collection::vec((any::<u16>(), any::<u16>(), 1i64..50), 1..120),
        threads in 1usize..4,
    ) {
        let vars: Vec<TVar<i64>> = (0..accounts).map(|_| TVar::new(1_000)).collect();
        let expected_total = accounts as i64 * 1_000;

        let chunks: Vec<Vec<(u16, u16, i64)>> = transfers
            .chunks(transfers.len().div_ceil(threads))
            .map(|c| c.to_vec())
            .collect();
        let mut handles = Vec::new();
        for chunk in chunks {
            let vars = vars.clone();
            handles.push(std::thread::spawn(move || {
                for (f, t, amount) in chunk {
                    let from = vars[f as usize % vars.len()].clone();
                    let to = vars[t as usize % vars.len()].clone();
                    if from.id() == to.id() {
                        continue; // self-transfer is a no-op by contract
                    }
                    atomically_blocking(|txn| {
                        let a = txn.read(&from)?;
                        let b = txn.read(&to)?;
                        txn.write(&from, a - amount);
                        txn.write(&to, b + amount);
                        Ok(())
                    });
                }
            }));
        }
        for h in handles {
            h.join().expect("worker");
        }
        let total: i64 = vars.iter().map(|v| v.read_now()).sum();
        prop_assert_eq!(total, expected_total);
    }

    /// A transaction sees a consistent snapshot: reading the same pair of
    /// variables twice inside one transaction yields identical values even
    /// while other threads mutate them.
    #[test]
    fn reads_are_snapshot_consistent(rounds in 1usize..30) {
        let x = TVar::new(0i64);
        let y = TVar::new(0i64);
        let stop = std::sync::Arc::new(std::sync::atomic::AtomicBool::new(false));

        let mutator = {
            let (x, y, stop) = (x.clone(), y.clone(), stop.clone());
            std::thread::spawn(move || {
                let mut i = 0i64;
                while !stop.load(std::sync::atomic::Ordering::SeqCst) {
                    i += 1;
                    atomically_blocking(|t| {
                        t.write(&x, i);
                        t.write(&y, -i);
                        Ok(())
                    });
                }
            })
        };

        for _ in 0..rounds {
            let ok = atomically_blocking(|t| {
                let a1 = t.read(&x)?;
                let b1 = t.read(&y)?;
                let a2 = t.read(&x)?;
                let b2 = t.read(&y)?;
                Ok(a1 == a2 && b1 == b2 && a1 + b1 == 0)
            });
            prop_assert!(ok, "torn read: snapshot isolation violated");
        }
        stop.store(true, std::sync::atomic::Ordering::SeqCst);
        mutator.join().expect("mutator");
    }

    /// `or_else` never leaks writes from a retried first alternative.
    #[test]
    fn or_else_rolls_back_first_branch(initial in any::<i32>(), alt in any::<i32>()) {
        let v = TVar::new(initial);
        let picked = atomically_blocking(|t| {
            t.or_else(
                |t1| {
                    t1.write(&v, initial.wrapping_add(1));
                    t1.retry::<i32>()
                },
                |t2| {
                    t2.write(&v, alt);
                    Ok(alt)
                },
            )
        });
        prop_assert_eq!(picked, alt);
        prop_assert_eq!(v.read_now(), alt);
    }
}
