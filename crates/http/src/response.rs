//! HTTP response construction.

use bytes::Bytes;

/// Builder for an HTTP/1.1 response.
///
/// # Examples
///
/// ```
/// use eveth_http::response::Response;
/// let bytes = Response::ok("hello".into()).into_bytes();
/// let text = String::from_utf8(bytes.to_vec()).unwrap();
/// assert!(text.starts_with("HTTP/1.1 200 OK\r\n"));
/// assert!(text.ends_with("\r\n\r\nhello"));
/// ```
#[derive(Debug, Clone)]
pub struct Response {
    status: u16,
    headers: Vec<(String, String)>,
    body: Bytes,
    keep_alive: bool,
}

impl Response {
    /// A response with the given status and body.
    pub fn new(status: u16, body: Bytes) -> Self {
        Response {
            status,
            headers: Vec::new(),
            body,
            keep_alive: true,
        }
    }

    /// 200 OK.
    pub fn ok(body: Bytes) -> Self {
        Self::new(200, body)
    }

    /// 400 Bad Request.
    pub fn bad_request() -> Self {
        Self::new(400, Bytes::from_static(b"bad request\n")).keep_alive(false)
    }

    /// 404 Not Found.
    pub fn not_found() -> Self {
        Self::new(404, Bytes::from_static(b"not found\n"))
    }

    /// 500 Internal Server Error.
    pub fn internal_error() -> Self {
        Self::new(500, Bytes::from_static(b"internal error\n")).keep_alive(false)
    }

    /// Adds a header.
    pub fn header(mut self, name: impl Into<String>, value: impl Into<String>) -> Self {
        self.headers.push((name.into(), value.into()));
        self
    }

    /// Sets the `Connection` disposition.
    pub fn keep_alive(mut self, ka: bool) -> Self {
        self.keep_alive = ka;
        self
    }

    /// The status code.
    pub fn status(&self) -> u16 {
        self.status
    }

    /// Body length in bytes.
    pub fn body_len(&self) -> usize {
        self.body.len()
    }

    /// Serializes status line, headers (with `Content-Length` and
    /// `Connection`), and body.
    pub fn into_bytes(self) -> Bytes {
        let reason = reason_phrase(self.status);
        let mut head = format!("HTTP/1.1 {} {}\r\n", self.status, reason);
        head.push_str(&format!("Content-Length: {}\r\n", self.body.len()));
        head.push_str(if self.keep_alive {
            "Connection: keep-alive\r\n"
        } else {
            "Connection: close\r\n"
        });
        for (k, v) in &self.headers {
            head.push_str(&format!("{k}: {v}\r\n"));
        }
        head.push_str("\r\n");
        let mut out = Vec::with_capacity(head.len() + self.body.len());
        out.extend_from_slice(head.as_bytes());
        out.extend_from_slice(&self.body);
        out.into()
    }
}

fn reason_phrase(status: u16) -> &'static str {
    match status {
        200 => "OK",
        206 => "Partial Content",
        301 => "Moved Permanently",
        304 => "Not Modified",
        400 => "Bad Request",
        403 => "Forbidden",
        404 => "Not Found",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_response_head;

    #[test]
    fn serialization_parses_back() {
        let bytes = Response::ok(Bytes::from(vec![7u8; 256]))
            .header("Server", "eveth")
            .into_bytes();
        let head = parse_response_head(&bytes).unwrap().unwrap();
        assert_eq!(head.status, 200);
        assert_eq!(head.content_length, 256);
        assert_eq!(bytes.len(), head.head_len + 256);
    }

    #[test]
    fn error_responses_close() {
        let text = String::from_utf8(Response::internal_error().into_bytes().to_vec()).unwrap();
        assert!(text.contains("Connection: close"));
        assert!(text.starts_with("HTTP/1.1 500"));
    }

    #[test]
    fn not_found_is_keep_alive() {
        let text = String::from_utf8(Response::not_found().into_bytes().to_vec()).unwrap();
        assert!(text.contains("Connection: keep-alive"));
    }

    #[test]
    fn unknown_reason_phrase() {
        assert_eq!(reason_phrase(599), "Unknown");
    }
}
