//! The server's own file cache (the paper's server "implements its own
//! caching" to exploit AIO, §5.2): an LRU map with a byte budget.

use std::collections::{BTreeMap, HashMap};
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};

use bytes::Bytes;
use parking_lot::Mutex;

struct CacheInner {
    map: HashMap<String, (Bytes, u64)>,
    lru: BTreeMap<u64, String>,
    bytes: usize,
    stamp: u64,
}

/// Hit/miss counters.
#[derive(Debug, Default)]
pub struct CacheStats {
    /// Lookups that found an entry.
    pub hits: AtomicU64,
    /// Lookups that missed.
    pub misses: AtomicU64,
    /// Entries evicted to stay under budget.
    pub evictions: AtomicU64,
}

/// An LRU cache of file contents bounded by total bytes.
///
/// # Examples
///
/// ```
/// use eveth_http::cache::FileCache;
///
/// let cache = FileCache::new(1024);
/// cache.insert("/a", bytes::Bytes::from(vec![0u8; 600]));
/// cache.insert("/b", bytes::Bytes::from(vec![0u8; 600])); // evicts /a
/// assert!(cache.get("/a").is_none());
/// assert!(cache.get("/b").is_some());
/// ```
pub struct FileCache {
    inner: Mutex<CacheInner>,
    budget: usize,
    stats: CacheStats,
}

impl FileCache {
    /// A cache holding at most `budget` bytes of file data.
    pub fn new(budget: usize) -> Self {
        FileCache {
            inner: Mutex::new(CacheInner {
                map: HashMap::new(),
                lru: BTreeMap::new(),
                bytes: 0,
                stamp: 0,
            }),
            budget,
            stats: CacheStats::default(),
        }
    }

    /// The byte budget.
    pub fn budget(&self) -> usize {
        self.budget
    }

    /// Counters.
    pub fn stats(&self) -> &CacheStats {
        &self.stats
    }

    /// Bytes currently cached.
    pub fn used(&self) -> usize {
        self.inner.lock().bytes
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.inner.lock().map.len()
    }

    /// True if the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Looks up `path`, refreshing its recency.
    pub fn get(&self, path: &str) -> Option<Bytes> {
        let mut inner = self.inner.lock();
        inner.stamp += 1;
        let stamp = inner.stamp;
        match inner.map.get_mut(path) {
            Some((data, last)) => {
                let old = *last;
                *last = stamp;
                let data = data.clone();
                inner.lru.remove(&old);
                inner.lru.insert(stamp, path.to_string());
                self.stats.hits.fetch_add(1, Ordering::Relaxed);
                Some(data)
            }
            None => {
                self.stats.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Inserts (or refreshes) `path`, evicting least-recently-used entries
    /// until the budget holds. Objects larger than the whole budget are not
    /// cached — but any stale entry under the same key is still
    /// invalidated, so readers never see outdated content.
    pub fn insert(&self, path: impl Into<String>, data: Bytes) {
        let path = path.into();
        let mut inner = self.inner.lock();
        inner.stamp += 1;
        let stamp = inner.stamp;
        if let Some((old_data, old_stamp)) = inner.map.remove(&path) {
            inner.bytes -= old_data.len();
            inner.lru.remove(&old_stamp);
        }
        if data.len() > self.budget {
            return;
        }
        inner.bytes += data.len();
        inner.map.insert(path.clone(), (data, stamp));
        inner.lru.insert(stamp, path);
        while inner.bytes > self.budget {
            let (&victim_stamp, _) = inner
                .lru
                .iter()
                .next()
                .expect("over budget implies entries");
            let victim = inner.lru.remove(&victim_stamp).expect("present");
            let (data, _) = inner.map.remove(&victim).expect("map and lru agree");
            inner.bytes -= data.len();
            self.stats.evictions.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Fraction of lookups that hit, so far.
    pub fn hit_ratio(&self) -> f64 {
        let h = self.stats.hits.load(Ordering::Relaxed) as f64;
        let m = self.stats.misses.load(Ordering::Relaxed) as f64;
        if h + m == 0.0 {
            0.0
        } else {
            h / (h + m)
        }
    }
}

impl fmt::Debug for FileCache {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "FileCache(used={}/{}, entries={})",
            self.used(),
            self.budget,
            self.len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn blob(n: usize) -> Bytes {
        Bytes::from(vec![0u8; n])
    }

    #[test]
    fn hit_and_miss_counting() {
        let c = FileCache::new(100);
        c.insert("/x", blob(10));
        assert!(c.get("/x").is_some());
        assert!(c.get("/y").is_none());
        assert_eq!(c.stats().hits.load(Ordering::Relaxed), 1);
        assert_eq!(c.stats().misses.load(Ordering::Relaxed), 1);
        assert!((c.hit_ratio() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn never_exceeds_budget() {
        let c = FileCache::new(1000);
        for i in 0..100 {
            c.insert(format!("/f{i}"), blob(100));
            assert!(c.used() <= 1000, "budget violated at {i}");
        }
        assert_eq!(c.len(), 10);
    }

    #[test]
    fn evicts_least_recently_used() {
        let c = FileCache::new(300);
        c.insert("/a", blob(100));
        c.insert("/b", blob(100));
        c.insert("/c", blob(100));
        // Touch /a so /b is the LRU victim.
        assert!(c.get("/a").is_some());
        c.insert("/d", blob(100));
        assert!(c.get("/b").is_none(), "/b was LRU and must be evicted");
        assert!(c.get("/a").is_some());
        assert!(c.get("/c").is_some());
        assert!(c.get("/d").is_some());
    }

    #[test]
    fn reinsert_replaces_without_leak() {
        let c = FileCache::new(250);
        c.insert("/a", blob(100));
        c.insert("/a", blob(200));
        assert_eq!(c.used(), 200);
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn oversized_objects_skipped() {
        let c = FileCache::new(50);
        c.insert("/big", blob(100));
        assert!(c.is_empty());
        assert!(c.get("/big").is_none());
    }
}
