//! The multithreaded HTTP load generator (paper §5.2): each client is a
//! monadic thread that connects once and then repeatedly requests files
//! chosen at random, counting delivered bytes.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use bytes::Bytes;
use eveth_core::net::{send_all, Conn, Endpoint, NetError, NetStack};
use eveth_core::{do_m, loop_m, Loop, ThreadM};

use crate::parser::parse_response_head;

/// Load-generator parameters.
#[derive(Debug, Clone)]
pub struct LoadConfig {
    /// Server to hammer.
    pub server: Endpoint,
    /// Requests each client issues before closing.
    pub requests_per_conn: usize,
    /// Candidate request paths.
    pub paths: Arc<Vec<String>>,
    /// Seed for path selection.
    pub seed: u64,
}

/// Aggregate client-side counters.
#[derive(Debug, Default)]
pub struct LoadStats {
    /// 200 responses fully received.
    pub ok: AtomicU64,
    /// Non-200 responses.
    pub non_200: AtomicU64,
    /// Transport-level failures.
    pub errors: AtomicU64,
    /// Total bytes received (heads + bodies).
    pub bytes: AtomicU64,
    /// Clients that finished their run.
    pub clients_done: AtomicU64,
}

impl LoadStats {
    /// Total responses observed.
    pub fn responses(&self) -> u64 {
        self.ok.load(Ordering::Relaxed) + self.non_200.load(Ordering::Relaxed)
    }
}

/// Issues one `GET path` on an open connection and reads the complete
/// response; returns status and total response bytes.
pub fn http_get(conn: &Arc<dyn Conn>, path: &str) -> ThreadM<Result<(u16, usize), NetError>> {
    let request = Bytes::from(format!(
        "GET {path} HTTP/1.1\r\nHost: bench\r\nUser-Agent: eveth-loadgen\r\n\r\n"
    ));
    let conn = Arc::clone(conn);
    do_m! {
        let sent <- send_all(&conn, request);
        match sent {
            Err(e) => ThreadM::pure(Err(e)),
            Ok(()) => read_response(conn),
        }
    }
}

fn read_response(conn: Arc<dyn Conn>) -> ThreadM<Result<(u16, usize), NetError>> {
    loop_m(Vec::new(), move |mut acc: Vec<u8>| {
        match parse_response_head(&acc) {
            Err(_) => {
                return ThreadM::pure(Loop::Break(Err(NetError::Protocol(
                    "unparseable response head".into(),
                ))))
            }
            Ok(Some(head)) => {
                let total = head.head_len + head.content_length;
                if acc.len() >= total {
                    return ThreadM::pure(Loop::Break(Ok((head.status, total))));
                }
            }
            Ok(None) => {}
        }
        conn.recv(64 * 1024).map(move |r| match r {
            Err(e) => Loop::Break(Err(e)),
            Ok(chunk) if chunk.is_empty() => Loop::Break(Err(NetError::Closed)),
            Ok(chunk) => {
                acc.extend_from_slice(&chunk);
                Loop::Continue(acc)
            }
        })
    })
}

/// One load-generator client: connect, request random files, close.
pub fn client_thread(
    stack: Arc<dyn NetStack>,
    cfg: Arc<LoadConfig>,
    stats: Arc<LoadStats>,
    id: u64,
) -> ThreadM<()> {
    let done_stats = Arc::clone(&stats);
    let body = do_m! {
        let connected <- stack.connect(cfg.server);
        match connected {
            Err(_) => {
                let stats = Arc::clone(&stats);
                eveth_core::syscall::sys_nbio(move || {
                    stats.errors.fetch_add(1, Ordering::Relaxed);
                })
            }
            Ok(conn) => {
                let rng0 = cfg.seed ^ (id.wrapping_mul(0x9E37_79B9_7F4A_7C15)) | 1;
                loop_m((rng0, 0usize), move |(mut rng, i)| {
                    if i >= cfg.requests_per_conn {
                        return conn.close().map(|_| Loop::Break(()));
                    }
                    rng ^= rng << 13;
                    rng ^= rng >> 7;
                    rng ^= rng << 17;
                    let path = cfg.paths[(rng as usize) % cfg.paths.len()].clone();
                    let stats = Arc::clone(&stats);
                    let conn2 = Arc::clone(&conn);
                    http_get(&conn, &path).bind(move |res| match res {
                        Ok((200, bytes)) => {
                            stats.ok.fetch_add(1, Ordering::Relaxed);
                            stats.bytes.fetch_add(bytes as u64, Ordering::Relaxed);
                            ThreadM::pure(Loop::Continue((rng, i + 1)))
                        }
                        Ok((_, bytes)) => {
                            stats.non_200.fetch_add(1, Ordering::Relaxed);
                            stats.bytes.fetch_add(bytes as u64, Ordering::Relaxed);
                            ThreadM::pure(Loop::Continue((rng, i + 1)))
                        }
                        Err(_) => {
                            stats.errors.fetch_add(1, Ordering::Relaxed);
                            conn2.close().map(|_| Loop::Break(()))
                        }
                    })
                })
            }
        }
    };
    body.bind(move |_| {
        eveth_core::syscall::sys_nbio(move || {
            done_stats.clients_done.fetch_add(1, Ordering::Relaxed);
        })
    })
}

/// Standard benchmark corpus paths: `/fNNNNN.html`.
pub fn corpus_paths(n: usize) -> Vec<String> {
    (0..n).map(|i| format!("/f{i:06}.html")).collect()
}

impl fmt::Display for LoadStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "ok={} non200={} errors={} bytes={}",
            self.ok.load(Ordering::Relaxed),
            self.non_200.load(Ordering::Relaxed),
            self.errors.load(Ordering::Relaxed),
            self.bytes.load(Ordering::Relaxed)
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corpus_paths_are_distinct_and_stable() {
        let a = corpus_paths(100);
        let b = corpus_paths(100);
        assert_eq!(a, b);
        let set: std::collections::HashSet<_> = a.iter().collect();
        assert_eq!(set.len(), 100);
        assert_eq!(a[7], "/f000007.html");
    }

    #[test]
    fn load_stats_aggregate() {
        let s = LoadStats::default();
        s.ok.fetch_add(3, Ordering::Relaxed);
        s.non_200.fetch_add(2, Ordering::Relaxed);
        assert_eq!(s.responses(), 5);
        assert!(s.to_string().contains("ok=3"));
    }
}
