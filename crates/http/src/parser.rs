//! Incremental HTTP/1.x request parsing.
//!
//! The parser accumulates bytes fed from the socket until a full header
//! block (`\r\n\r\n`) is available, then yields a [`Request`] and keeps any
//! excess bytes for the next request on the connection (pipelining /
//! keep-alive). The paper's server reuses HTTP machinery from the Haskell
//! Web Server project; this module is our equivalent.

use std::fmt;

/// HTTP request method.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Method {
    /// GET
    Get,
    /// HEAD
    Head,
    /// POST
    Post,
    /// Anything else (kept verbatim).
    Other(String),
}

impl Method {
    fn parse(s: &str) -> Method {
        match s {
            "GET" => Method::Get,
            "HEAD" => Method::Head,
            "POST" => Method::Post,
            other => Method::Other(other.to_string()),
        }
    }
}

/// HTTP protocol version.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Version {
    /// HTTP/1.0 (keep-alive off by default).
    Http10,
    /// HTTP/1.1 (keep-alive on by default).
    Http11,
}

/// A parsed request head.
#[derive(Debug, Clone)]
pub struct Request {
    /// Request method.
    pub method: Method,
    /// Request target (path), percent-decoding not applied.
    pub target: String,
    /// Protocol version.
    pub version: Version,
    /// Header name/value pairs in arrival order.
    pub headers: Vec<(String, String)>,
}

impl Request {
    /// First header with the given name (case-insensitive).
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(k, _)| k.eq_ignore_ascii_case(name))
            .map(|(_, v)| v.as_str())
    }

    /// Whether the connection should stay open after this exchange.
    pub fn keep_alive(&self) -> bool {
        match self.header("connection") {
            Some(v) if v.eq_ignore_ascii_case("close") => false,
            Some(v) if v.eq_ignore_ascii_case("keep-alive") => true,
            _ => self.version == Version::Http11,
        }
    }
}

/// Why parsing failed; the server answers 400 and closes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseError {
    /// Headers exceeded the configured limit.
    TooLarge,
    /// Anything structurally wrong, with a short reason.
    Malformed(&'static str),
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseError::TooLarge => f.write_str("request head too large"),
            ParseError::Malformed(why) => write!(f, "malformed request: {why}"),
        }
    }
}

impl std::error::Error for ParseError {}

/// Incremental request parser; one per connection.
///
/// # Examples
///
/// ```
/// use eveth_http::parser::{Method, RequestParser};
///
/// let mut p = RequestParser::new();
/// assert!(p.feed(b"GET /index.html HT").unwrap().is_none());
/// let req = p.feed(b"TP/1.1\r\nHost: x\r\n\r\n").unwrap().unwrap();
/// assert_eq!(req.method, Method::Get);
/// assert_eq!(req.target, "/index.html");
/// ```
#[derive(Debug)]
pub struct RequestParser {
    buf: Vec<u8>,
    limit: usize,
}

impl RequestParser {
    /// A parser with an 8 KB header limit.
    pub fn new() -> Self {
        Self::with_limit(8 * 1024)
    }

    /// A parser with an explicit header limit.
    pub fn with_limit(limit: usize) -> Self {
        RequestParser {
            buf: Vec::new(),
            limit,
        }
    }

    /// Bytes buffered but not yet consumed by a complete request.
    pub fn buffered(&self) -> usize {
        self.buf.len()
    }

    /// Feeds bytes; returns a request once its head is complete.
    ///
    /// # Errors
    ///
    /// [`ParseError`] on oversized or malformed heads; the parser should be
    /// discarded afterwards.
    pub fn feed(&mut self, data: &[u8]) -> Result<Option<Request>, ParseError> {
        self.buf.extend_from_slice(data);
        let Some(head_end) = find_head_end(&self.buf) else {
            if self.buf.len() > self.limit {
                return Err(ParseError::TooLarge);
            }
            return Ok(None);
        };
        if head_end > self.limit {
            return Err(ParseError::TooLarge);
        }
        let head: Vec<u8> = self.buf.drain(..head_end + 4).collect();
        let text = std::str::from_utf8(&head[..head_end])
            .map_err(|_| ParseError::Malformed("head is not UTF-8"))?;
        let mut lines = text.split("\r\n");
        let request_line = lines.next().ok_or(ParseError::Malformed("empty head"))?;
        let mut parts = request_line.split(' ');
        let method = Method::parse(parts.next().ok_or(ParseError::Malformed("no method"))?);
        let target = parts
            .next()
            .ok_or(ParseError::Malformed("no target"))?
            .to_string();
        if target.is_empty() || !target.starts_with('/') {
            return Err(ParseError::Malformed("target must be absolute"));
        }
        let version = match parts.next() {
            Some("HTTP/1.1") => Version::Http11,
            Some("HTTP/1.0") => Version::Http10,
            _ => return Err(ParseError::Malformed("unsupported version")),
        };
        let mut headers = Vec::new();
        for line in lines {
            if line.is_empty() {
                continue;
            }
            let (k, v) = line
                .split_once(':')
                .ok_or(ParseError::Malformed("header without colon"))?;
            headers.push((k.trim().to_string(), v.trim().to_string()));
        }
        Ok(Some(Request {
            method,
            target,
            version,
            headers,
        }))
    }
}

impl Default for RequestParser {
    fn default() -> Self {
        Self::new()
    }
}

fn find_head_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n")
}

/// Minimal response-head parser used by the load generator: status code and
/// `Content-Length` from a response head.
#[derive(Debug)]
pub struct ResponseHead {
    /// HTTP status code.
    pub status: u16,
    /// Declared body length.
    pub content_length: usize,
    /// Bytes of the head including the terminating blank line.
    pub head_len: usize,
}

/// Tries to parse a response head from the start of `buf`.
///
/// # Errors
///
/// [`ParseError::Malformed`] for non-HTTP bytes; `Ok(None)` means more
/// input is needed.
pub fn parse_response_head(buf: &[u8]) -> Result<Option<ResponseHead>, ParseError> {
    let Some(end) = find_head_end(buf) else {
        return Ok(None);
    };
    let text =
        std::str::from_utf8(&buf[..end]).map_err(|_| ParseError::Malformed("non-UTF-8 head"))?;
    let mut lines = text.split("\r\n");
    let status_line = lines.next().ok_or(ParseError::Malformed("empty head"))?;
    let mut parts = status_line.split(' ');
    match parts.next() {
        Some(v) if v.starts_with("HTTP/1.") => {}
        _ => return Err(ParseError::Malformed("bad status line")),
    }
    let status: u16 = parts
        .next()
        .and_then(|s| s.parse().ok())
        .ok_or(ParseError::Malformed("bad status code"))?;
    let mut content_length = 0;
    for line in lines {
        if let Some((k, v)) = line.split_once(':') {
            if k.trim().eq_ignore_ascii_case("content-length") {
                content_length = v
                    .trim()
                    .parse()
                    .map_err(|_| ParseError::Malformed("bad content-length"))?;
            }
        }
    }
    Ok(Some(ResponseHead {
        status,
        content_length,
        head_len: end + 4,
    }))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_simple_get() {
        let mut p = RequestParser::new();
        let req = p
            .feed(b"GET /a/b.html HTTP/1.1\r\nHost: example\r\nX-Y: z\r\n\r\n")
            .unwrap()
            .unwrap();
        assert_eq!(req.method, Method::Get);
        assert_eq!(req.target, "/a/b.html");
        assert_eq!(req.version, Version::Http11);
        assert_eq!(req.header("host"), Some("example"));
        assert_eq!(req.header("X-y"), Some("z"));
        assert!(req.keep_alive());
    }

    #[test]
    fn byte_at_a_time_feeding() {
        let raw = b"GET / HTTP/1.0\r\nConnection: keep-alive\r\n\r\n";
        let mut p = RequestParser::new();
        let mut got = None;
        for b in raw.iter() {
            if let Some(r) = p.feed(std::slice::from_ref(b)).unwrap() {
                got = Some(r);
            }
        }
        let req = got.expect("request completes on final byte");
        assert_eq!(req.version, Version::Http10);
        assert!(
            req.keep_alive(),
            "explicit keep-alive overrides 1.0 default"
        );
    }

    #[test]
    fn pipelined_requests_keep_remainder() {
        let mut p = RequestParser::new();
        let two = b"GET /1 HTTP/1.1\r\n\r\nGET /2 HTTP/1.1\r\n\r\n";
        let first = p.feed(two).unwrap().unwrap();
        assert_eq!(first.target, "/1");
        let second = p.feed(b"").unwrap().unwrap();
        assert_eq!(second.target, "/2");
        assert_eq!(p.buffered(), 0);
    }

    #[test]
    fn connection_close_disables_keep_alive() {
        let mut p = RequestParser::new();
        let req = p
            .feed(b"GET / HTTP/1.1\r\nConnection: close\r\n\r\n")
            .unwrap()
            .unwrap();
        assert!(!req.keep_alive());
    }

    #[test]
    fn oversized_head_rejected() {
        let mut p = RequestParser::with_limit(64);
        let mut big = b"GET / HTTP/1.1\r\n".to_vec();
        big.extend(std::iter::repeat_n(b'a', 128));
        assert_eq!(p.feed(&big).unwrap_err(), ParseError::TooLarge);
    }

    #[test]
    fn malformed_heads_rejected() {
        for bad in [
            &b"FETCH\r\n\r\n"[..],
            &b"GET noslash HTTP/1.1\r\n\r\n"[..],
            &b"GET / HTTP/2.0\r\n\r\n"[..],
            &b"GET / HTTP/1.1\r\nbadheader\r\n\r\n"[..],
        ] {
            let mut p = RequestParser::new();
            assert!(
                p.feed(bad).is_err(),
                "should reject {:?}",
                String::from_utf8_lossy(bad)
            );
        }
    }

    #[test]
    fn response_head_roundtrip() {
        let head = b"HTTP/1.1 200 OK\r\nContent-Length: 123\r\nServer: eveth\r\n\r\nBOD";
        let parsed = parse_response_head(head).unwrap().unwrap();
        assert_eq!(parsed.status, 200);
        assert_eq!(parsed.content_length, 123);
        assert_eq!(parsed.head_len, head.len() - 3);
    }

    #[test]
    fn response_head_incomplete() {
        assert!(parse_response_head(b"HTTP/1.1 200 OK\r\n")
            .unwrap()
            .is_none());
    }
}
