//! # eveth-http — the paper's web server case study (§5.2)
//!
//! A static-content web server written with monadic threads over the
//! hybrid runtime: HTTP parsing ([`parser`]), response construction
//! ([`response`]), the server's own AIO-backed LRU file cache ([`cache`]),
//! the server itself ([`server`] — a thin `Service` on the generic
//! event-native `Server<S>` of `eveth_core::service`) and a load generator
//! ([`loadgen`]).
//!
//! The socket layer is injected through
//! [`NetStack`](eveth_core::net::NetStack): pass the kernel-socket model
//! (`eveth_simos::sockets`) or the application-level TCP stack
//! (`eveth_tcp`) — the paper's one-line switch.
//!
//! ```
//! use eveth_core::io::ramdisk::MemStore;
//! use eveth_core::net::{Endpoint, HostId, NetStack};
//! use eveth_http::loadgen::http_get;
//! use eveth_http::server::{ServerConfig, WebServer};
//! use eveth_simos::sockets::{FabricParams, SocketFabric};
//! use eveth_simos::SimRuntime;
//! use std::sync::Arc;
//!
//! let sim = SimRuntime::new_default();
//! let fabric = SocketFabric::new(sim.clock(), FabricParams::default());
//!
//! let files = Arc::new(MemStore::new());
//! files.insert_bytes("/hello.html", b"<h1>hi</h1>".to_vec());
//!
//! let server = WebServer::new(
//!     fabric.stack(HostId(1)),
//!     files,
//!     ServerConfig { port: 80, ..Default::default() },
//! );
//! sim.spawn(server.run());
//!
//! let client = fabric.stack(HostId(2));
//! let (status, _bytes) = sim
//!     .block_on(eveth_core::do_m! {
//!         let conn <- client.connect(Endpoint::new(HostId(1), 80));
//!         let conn = conn.unwrap();
//!         let res <- http_get(&conn, "/hello.html");
//!         eveth_core::ThreadM::pure(res.unwrap())
//!     })
//!     .unwrap();
//! assert_eq!(status, 200);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod cache;
pub mod loadgen;
pub mod parser;
pub mod response;
pub mod server;

pub use cache::FileCache;
pub use parser::{Method, ParseError, Request, RequestParser, Version};
pub use response::Response;
pub use server::{ServerConfig, ServerStats, WebServer};
