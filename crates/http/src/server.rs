//! The static-content web server — the paper's case study (§5.2).
//!
//! Per-client code is an ordinary monadic thread (parse → cache/AIO →
//! respond, in a keep-alive loop); the application as a whole is the
//! event-driven system underneath. I/O failures are handled with
//! `sys_catch`, file opens go through the blocking-I/O pool (`sys_blio`),
//! file reads use AIO, and the server maintains its own LRU byte cache
//! because the paper's server "implements its own caching" to exploit
//! Linux AIO. The socket stack is injected ([`NetStack`]), so switching to
//! the application-level TCP stack is the paper's one-line change.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use bytes::Bytes;
use eveth_core::aio::{AioFile, FileStore};
use eveth_core::event::Signal;
use eveth_core::net::{send_all, session_input, Conn, Listener, NetStack, SessionInput};
use eveth_core::syscall::{sys_aio_read, sys_blio, sys_catch, sys_fork, sys_nbio, sys_throw};
use eveth_core::time::Nanos;
use eveth_core::{do_m, loop_m, Exception, Loop, ThreadM};

use crate::cache::FileCache;
use crate::parser::{Method, Request, RequestParser};
use crate::response::Response;

/// Web server tunables.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Listening port.
    pub port: u16,
    /// Byte budget of the server's own file cache (the paper used 100 MB).
    pub cache_bytes: usize,
    /// AIO read granularity.
    pub read_chunk: usize,
    /// Socket receive granularity.
    pub recv_chunk: usize,
    /// Reap a keep-alive connection that stays silent this long between
    /// requests (virtual nanoseconds); `0` disables idle reaping.
    /// Implemented as a `timeout_evt` branch of the per-session `choose`.
    pub idle_timeout: Nanos,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            port: 80,
            cache_bytes: 100 * 1024 * 1024,
            read_chunk: 64 * 1024,
            recv_chunk: 4 * 1024,
            idle_timeout: 0,
        }
    }
}

/// Aggregate server counters.
#[derive(Debug, Default)]
pub struct ServerStats {
    /// Connections accepted.
    pub connections: AtomicU64,
    /// Requests served (any status).
    pub requests: AtomicU64,
    /// Response bytes written (heads + bodies).
    pub bytes_sent: AtomicU64,
    /// 404 responses.
    pub not_found: AtomicU64,
    /// Sessions terminated by an exception.
    pub errors: AtomicU64,
    /// Keep-alive connections reaped by the per-session idle deadline.
    pub idle_reaped: AtomicU64,
}

/// The web server: all state shared by its monadic threads.
pub struct WebServer {
    stack: Arc<dyn NetStack>,
    files: Arc<dyn FileStore>,
    cache: Arc<FileCache>,
    cfg: ServerConfig,
    stats: Arc<ServerStats>,
    shutdown: Signal,
}

impl WebServer {
    /// Builds a server on a socket stack and a file store.
    pub fn new(
        stack: Arc<dyn NetStack>,
        files: Arc<dyn FileStore>,
        cfg: ServerConfig,
    ) -> Arc<Self> {
        Arc::new(WebServer {
            stack,
            files,
            cache: Arc::new(FileCache::new(cfg.cache_bytes)),
            cfg,
            stats: Arc::new(ServerStats::default()),
            shutdown: Signal::new(),
        })
    }

    /// Initiates graceful shutdown (callable from any context): the
    /// listener stops accepting, and every keep-alive session's `choose`
    /// sees the broadcast on its next wait and closes the connection.
    pub fn shutdown(&self) {
        self.shutdown.fire();
    }

    /// The shutdown broadcast (for composing with other events).
    pub fn shutdown_signal(&self) -> &Signal {
        &self.shutdown
    }

    /// Counters.
    pub fn stats(&self) -> &Arc<ServerStats> {
        &self.stats
    }

    /// The file cache (exposed for the cache-size ablation).
    pub fn cache(&self) -> &Arc<FileCache> {
        &self.cache
    }

    /// The main server thread: listen, accept, fork one monadic thread per
    /// client session.
    ///
    /// Runs until the listener fails; spawn it with `Runtime::spawn` /
    /// `SimRuntime::spawn`.
    pub fn run(self: &Arc<Self>) -> ThreadM<()> {
        let srv = Arc::clone(self);
        do_m! {
            let listener <- srv.stack.listen(srv.cfg.port);
            let listener = match listener {
                Ok(l) => l,
                Err(e) => return sys_throw(Exception::with_payload("listen failed", e)),
            };
            let sig = srv.shutdown.clone();
            let gate = Arc::clone(&listener);
            // Shutdown supervisor: syncs on the broadcast, then closes the
            // listener so the accept loop drains out.
            sys_fork(do_m! {
                sig.wait();
                sys_nbio(move || gate.shutdown())
            });
            accept_loop(srv, listener)
        }
    }
}

impl fmt::Debug for WebServer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "WebServer(port={}, cache={:?})",
            self.cfg.port, self.cache
        )
    }
}

fn accept_loop(srv: Arc<WebServer>, listener: Arc<dyn Listener>) -> ThreadM<()> {
    loop_m((), move |()| {
        let srv = Arc::clone(&srv);
        listener.accept().bind(move |accepted| match accepted {
            Err(_) => ThreadM::pure(Loop::Break(())),
            Ok(conn) => {
                srv.stats.connections.fetch_add(1, Ordering::Relaxed);
                let session = client_session(Arc::clone(&srv), Arc::clone(&conn));
                // Exceptions end the session but never the server: the
                // handler logs, attempts a 500, and closes (paper §5.2:
                // "I/O errors are handled gracefully using exceptions").
                let guarded = sys_catch(session, move |_e| {
                    srv.stats.errors.fetch_add(1, Ordering::Relaxed);
                    do_m! {
                        conn.send(Response::internal_error().into_bytes());
                        conn.close()
                    }
                });
                sys_fork(guarded).map(|_| Loop::Continue(()))
            }
        })
    })
}

/// One keep-alive client session: parse requests, serve them, loop.
///
/// The wait point is [`session_input`] — one `choose` over socket
/// readiness, the idle-connection deadline and the shutdown broadcast.
fn client_session(srv: Arc<WebServer>, conn: Arc<dyn Conn>) -> ThreadM<()> {
    loop_m(RequestParser::new(), move |mut parser| {
        let srv = Arc::clone(&srv);
        let conn = Arc::clone(&conn);
        // A previously received chunk may already hold the next request.
        match parser.feed(&[]) {
            Err(_) => {
                return do_m! {
                    send_all(&conn, Response::bad_request().into_bytes());
                    conn.close();
                    ThreadM::pure(Loop::Break(()))
                }
            }
            Ok(Some(req)) => return serve_one(srv, conn, parser, req),
            Ok(None) => {}
        }
        session_input(
            &conn,
            srv.cfg.recv_chunk,
            srv.cfg.idle_timeout,
            &srv.shutdown,
        )
        .bind(move |input| {
            let chunk = match input {
                SessionInput::Data(Ok(c)) => c,
                SessionInput::Data(Err(_)) => return ThreadM::pure(Loop::Break(())),
                SessionInput::IdleTimeout => {
                    srv.stats.idle_reaped.fetch_add(1, Ordering::Relaxed);
                    return conn.close().map(|_| Loop::Break(()));
                }
                SessionInput::Shutdown => {
                    return conn.close().map(|_| Loop::Break(()));
                }
            };
            if chunk.is_empty() {
                // Client closed.
                return conn.close().map(|_| Loop::Break(()));
            }
            match parser.feed(&chunk) {
                Err(_) => do_m! {
                    send_all(&conn, Response::bad_request().into_bytes());
                    conn.close();
                    ThreadM::pure(Loop::Break(()))
                },
                Ok(None) => ThreadM::pure(Loop::Continue(parser)),
                Ok(Some(req)) => serve_one(srv, conn, parser, req),
            }
        })
    })
}

/// Serves one request and decides whether the session continues.
fn serve_one(
    srv: Arc<WebServer>,
    conn: Arc<dyn Conn>,
    parser: RequestParser,
    req: Request,
) -> ThreadM<Loop<RequestParser, ()>> {
    let keep_alive = req.keep_alive();
    let head_only = req.method == Method::Head;
    let srv2 = Arc::clone(&srv);
    do_m! {
        let mut response <- build_response(Arc::clone(&srv), req);
        let _ = if head_only {
            response = Response::new(response.status(), Bytes::new());
        };
        let response = response.keep_alive(keep_alive);
        let body = response.into_bytes();
        let n = body.len() as u64;
        let sent <- send_all(&conn, body);
        let srv = srv2;
        sys_nbio(move || {
            srv.stats.requests.fetch_add(1, Ordering::Relaxed);
            srv.stats.bytes_sent.fetch_add(n, Ordering::Relaxed);
            sent.is_ok()
        })
        .bind(move |ok| {
            if ok && keep_alive {
                ThreadM::pure(Loop::Continue(parser))
            } else {
                conn.close().map(|_| Loop::Break(()))
            }
        })
    }
}

/// Computes the response for a request: cache, then blocking open, then
/// AIO reads (each failure path is an exception or an error status).
fn build_response(srv: Arc<WebServer>, req: Request) -> ThreadM<Response> {
    if !matches!(req.method, Method::Get | Method::Head) {
        return ThreadM::pure(Response::bad_request());
    }
    let path = req.target;
    if let Some(data) = srv.cache.get(&path) {
        return ThreadM::pure(Response::ok(data));
    }
    let lookup_files = Arc::clone(&srv.files);
    let lookup_path = path.clone();
    do_m! {
        // Opening / stat-ing a file is a blocking OS interface: route it
        // through the blocking-I/O pool exactly as the paper's §4.6.
        let file <- sys_blio(move || lookup_files.lookup(&lookup_path));
        match file {
            None => {
                srv.stats.not_found.fetch_add(1, Ordering::Relaxed);
                ThreadM::pure(Response::not_found())
            }
            Some(file) => do_m! {
                let data <- read_whole_file(file, srv.cfg.read_chunk);
                match data {
                    Ok(data) => {
                        srv.cache.insert(path, data.clone());
                        ThreadM::pure(Response::ok(data))
                    }
                    Err(e) => sys_throw(Exception::with_payload("file read failed", e)),
                }
            },
        }
    }
}

/// Reads an entire file via repeated `sys_aio_read`s.
fn read_whole_file(
    file: Arc<dyn AioFile>,
    chunk: usize,
) -> ThreadM<Result<Bytes, eveth_core::aio::IoError>> {
    let total = file.len();
    loop_m(
        (0u64, Vec::with_capacity(total as usize)),
        move |(offset, mut acc)| {
            if offset >= total {
                return ThreadM::pure(Loop::Break(Ok(Bytes::from(acc))));
            }
            let want = chunk.min((total - offset) as usize);
            sys_aio_read(&file, offset, want).map(move |res| match res {
                Ok(data) if data.is_empty() => Loop::Break(Ok(Bytes::from(acc))),
                Ok(data) => {
                    acc.extend_from_slice(&data);
                    Loop::Continue((offset + data.len() as u64, acc))
                }
                Err(e) => Loop::Break(Err(e)),
            })
        },
    )
}
