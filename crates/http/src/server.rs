//! The static-content web server — the paper's case study (§5.2) — as a
//! thin [`Service`] implementation over the generic event-native
//! [`Server`] of `eveth_core::service`.
//!
//! Per-client code is an ordinary monadic thread (parse → cache/AIO →
//! respond, in a keep-alive loop); the application as a whole is the
//! event-driven system underneath. The framework owns the lifecycle
//! (listening, the accept/shutdown `choose`, the per-session
//! readiness/idle/shutdown `choose`, graceful drain); this module owns
//! the HTTP-specific half: the request parser as per-session state,
//! cache/AIO response assembly, and the 500-on-exception recovery. I/O
//! failures are handled with `sys_catch`, file opens go through the
//! blocking-I/O pool (`sys_blio`), file reads use AIO, and the server
//! maintains its own LRU byte cache because the paper's server
//! "implements its own caching" to exploit Linux AIO. The socket stack is
//! injected ([`NetStack`]), so switching to the application-level TCP
//! stack is the paper's one-line change.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use bytes::Bytes;
use eveth_core::aio::{AioFile, FileStore};
use eveth_core::event::Signal;
use eveth_core::net::{send_all, send_all_within, Conn, NetError, NetStack, SendInput};
use eveth_core::service::{
    Server, ServerConfig as LifecycleConfig, ServerStats as FrameworkStats, Service, SessionEnd,
    Step,
};
use eveth_core::syscall::{sys_aio_read, sys_blio, sys_nbio, sys_throw};
use eveth_core::telemetry::Telemetry;
use eveth_core::time::Nanos;
use eveth_core::{do_m, loop_m, Exception, Loop, ThreadM};

use crate::cache::FileCache;
use crate::parser::{Method, Request, RequestParser};
use crate::response::Response;

/// Web server tunables.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Listening port.
    pub port: u16,
    /// Byte budget of the server's own file cache (the paper used 100 MB).
    pub cache_bytes: usize,
    /// AIO read granularity.
    pub read_chunk: usize,
    /// Socket receive granularity.
    pub recv_chunk: usize,
    /// Reap a keep-alive connection that stays silent this long between
    /// requests (virtual nanoseconds); `0` disables idle reaping.
    /// Implemented as a `timeout_evt` branch of the per-session `choose`.
    pub idle_timeout: Nanos,
    /// Abandon a response send that cannot complete within this long
    /// (virtual nanoseconds); `0` keeps plain unbounded sends. Bounded
    /// sends race the transfer against the deadline and the shutdown
    /// broadcast (`send_all_within`); occurrences are counted in the
    /// framework's `send_timeouts` and the session closes.
    pub send_timeout: Nanos,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            port: 80,
            cache_bytes: 100 * 1024 * 1024,
            read_chunk: 64 * 1024,
            recv_chunk: 4 * 1024,
            idle_timeout: 0,
            send_timeout: 0,
        }
    }
}

/// Lifecycle pieces the framework hands down once via
/// [`Service::attach_lifecycle`], kept for the response send paths.
struct Lifecycle {
    shutdown: Signal,
    send_timeout: Nanos,
    framework: Arc<FrameworkStats>,
}

/// Aggregate server counters.
#[derive(Debug, Default)]
pub struct ServerStats {
    /// Connections accepted.
    pub connections: AtomicU64,
    /// Requests served (any status).
    pub requests: AtomicU64,
    /// Response bytes written (heads + bodies).
    pub bytes_sent: AtomicU64,
    /// 404 responses.
    pub not_found: AtomicU64,
    /// Sessions terminated by an exception.
    pub errors: AtomicU64,
    /// Keep-alive connections reaped by the per-session idle deadline.
    pub idle_reaped: AtomicU64,
}

/// The HTTP-specific state shared by every session thread (file store,
/// cache, counters, configuration), split out of [`WebServer`] so the
/// [`Service`] implementation and the response-assembly free functions
/// can hold it without the server wrapper.
struct WebShared {
    files: Arc<dyn FileStore>,
    cache: Arc<FileCache>,
    cfg: ServerConfig,
    stats: Arc<ServerStats>,
    lifecycle: std::sync::OnceLock<Lifecycle>,
}

impl WebShared {
    /// Sends response bytes, bounded by [`ServerConfig::send_timeout`]
    /// when one is configured: a transfer that cannot complete in time (a
    /// zero-window peer) or that straddles shutdown is abandoned and
    /// surfaced as a transport error so the session closes, instead of
    /// wedging its thread on an unbounded send.
    fn send_response(&self, conn: &Arc<dyn Conn>, data: Bytes) -> ThreadM<Result<(), NetError>> {
        match self.lifecycle.get() {
            Some(lc) if lc.send_timeout > 0 => {
                let framework = Arc::clone(&lc.framework);
                send_all_within(conn, data, lc.send_timeout, &lc.shutdown).map(move |out| match out
                {
                    SendInput::Done(r) => r,
                    SendInput::Timeout => {
                        framework.send_timeouts.incr();
                        Err(NetError::Timeout)
                    }
                    SendInput::Shutdown => Err(NetError::Closed),
                })
            }
            _ => send_all(conn, data),
        }
    }
}

/// The HTTP [`Service`]: per-session state is the incremental
/// [`RequestParser`]; each chunk is fed to it and every complete
/// pipelined request is served (cache → blocking open → AIO reads)
/// before the session waits again. Lifecycle — accepting, idle reaping,
/// shutdown, draining — is the framework's ([`Server`]).
pub struct WebService {
    shared: Arc<WebShared>,
}

impl Service for WebService {
    type Session = RequestParser;

    fn open(&self, _conn: &Arc<dyn Conn>) -> RequestParser {
        self.shared
            .stats
            .connections
            .fetch_add(1, Ordering::Relaxed);
        RequestParser::new()
    }

    fn on_chunk(
        &self,
        conn: Arc<dyn Conn>,
        mut parser: RequestParser,
        chunk: Bytes,
    ) -> ThreadM<Step<RequestParser>> {
        match parser.feed(&chunk) {
            Err(_) => bad_request(Arc::clone(&self.shared), conn),
            Ok(None) => ThreadM::pure(Step::Continue(parser)),
            Ok(Some(req)) => serve_requests(Arc::clone(&self.shared), conn, parser, req),
        }
    }

    fn on_end(&self, end: &SessionEnd) {
        if matches!(end, SessionEnd::Idle) {
            self.shared
                .stats
                .idle_reaped
                .fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Exceptions end the session but never the server: the handler
    /// attempts a 500 and closes (paper §5.2: "I/O errors are handled
    /// gracefully using exceptions").
    fn on_exception(&self, conn: Arc<dyn Conn>, _error: &Exception) -> ThreadM<()> {
        self.shared.stats.errors.fetch_add(1, Ordering::Relaxed);
        do_m! {
            conn.send(Response::internal_error().into_bytes());
            conn.close()
        }
    }

    fn attach_lifecycle(
        &self,
        shutdown: &Signal,
        cfg: &LifecycleConfig,
        stats: &Arc<FrameworkStats>,
    ) {
        let _ = self.shared.lifecycle.set(Lifecycle {
            shutdown: shutdown.clone(),
            send_timeout: cfg.send_timeout,
            framework: Arc::clone(stats),
        });
    }
}

impl fmt::Debug for WebService {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "WebService(cache={:?})", self.shared.cache)
    }
}

/// The web server: [`WebService`] hosted on the generic event-native
/// [`Server`].
pub struct WebServer {
    server: Arc<Server<WebService>>,
    shared: Arc<WebShared>,
}

impl WebServer {
    /// Builds a server on a socket stack and a file store.
    pub fn new(
        stack: Arc<dyn NetStack>,
        files: Arc<dyn FileStore>,
        cfg: ServerConfig,
    ) -> Arc<Self> {
        let shared = Arc::new(WebShared {
            files,
            cache: Arc::new(FileCache::new(cfg.cache_bytes)),
            stats: Arc::new(ServerStats::default()),
            cfg: cfg.clone(),
            lifecycle: std::sync::OnceLock::new(),
        });
        let server = Server::new(
            stack,
            WebService {
                shared: Arc::clone(&shared),
            },
            LifecycleConfig {
                port: cfg.port,
                recv_chunk: cfg.recv_chunk,
                idle_timeout: cfg.idle_timeout,
                send_timeout: cfg.send_timeout,
            },
        );
        Arc::new(WebServer { server, shared })
    }

    /// Attaches a telemetry hub: session threads are annotated with the
    /// span name `"http"` (so their I/O and lock waits roll up into the
    /// framework's `session_*_wait_ns` counters at exit), the framework's
    /// lifecycle counters register as `eveth_server_*{service="http"}`,
    /// and the HTTP protocol counters register as `eveth_http_*`. Call
    /// before spawning [`WebServer::run`].
    pub fn attach_telemetry(&self, telemetry: &Arc<Telemetry>) {
        self.server.attach_telemetry(telemetry, "http");
        let reg = telemetry.registry();
        let s = Arc::clone(&self.shared.stats);
        reg.register_counter_fn("eveth_http_connections_total", &[], move || {
            s.connections.load(Ordering::Relaxed)
        });
        let s = Arc::clone(&self.shared.stats);
        reg.register_counter_fn("eveth_http_requests_total", &[], move || {
            s.requests.load(Ordering::Relaxed)
        });
        let s = Arc::clone(&self.shared.stats);
        reg.register_counter_fn("eveth_http_bytes_sent_total", &[], move || {
            s.bytes_sent.load(Ordering::Relaxed)
        });
        let s = Arc::clone(&self.shared.stats);
        reg.register_counter_fn("eveth_http_not_found_total", &[], move || {
            s.not_found.load(Ordering::Relaxed)
        });
        let s = Arc::clone(&self.shared.stats);
        reg.register_counter_fn("eveth_http_errors_total", &[], move || {
            s.errors.load(Ordering::Relaxed)
        });
        let s = Arc::clone(&self.shared.stats);
        reg.register_counter_fn("eveth_http_idle_reaped_total", &[], move || {
            s.idle_reaped.load(Ordering::Relaxed)
        });
    }

    /// Initiates graceful shutdown (callable from any context): the
    /// acceptor's `choose` closes the listener — no supervisor thread —
    /// and every keep-alive session's `choose` sees the broadcast on its
    /// next wait and closes the connection.
    pub fn shutdown(&self) {
        self.server.shutdown();
    }

    /// The shutdown broadcast (for composing with other events).
    pub fn shutdown_signal(&self) -> &Signal {
        self.server.shutdown_signal()
    }

    /// Fires once shutdown has been requested and the last session ended
    /// (the framework's graceful-drain barrier).
    pub fn drained_signal(&self) -> &Signal {
        self.server.drained_signal()
    }

    /// The generic server hosting this service (lifecycle counters,
    /// active-session count).
    pub fn server(&self) -> &Arc<Server<WebService>> {
        &self.server
    }

    /// Counters.
    pub fn stats(&self) -> &Arc<ServerStats> {
        &self.shared.stats
    }

    /// The file cache (exposed for the cache-size ablation).
    pub fn cache(&self) -> &Arc<FileCache> {
        &self.shared.cache
    }

    /// The main server thread: the framework server (listen + accept
    /// fan-out + session lifecycle).
    ///
    /// Runs until the listener closes; spawn it with `Runtime::spawn` /
    /// `SimRuntime::spawn`.
    pub fn run(self: &Arc<Self>) -> ThreadM<()> {
        self.server.run()
    }
}

impl fmt::Debug for WebServer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "WebServer(port={}, cache={:?})",
            self.shared.cfg.port, self.shared.cache
        )
    }
}

/// Answers a malformed request with 400 and ends the session (the server
/// closes the connection).
fn bad_request(shared: Arc<WebShared>, conn: Arc<dyn Conn>) -> ThreadM<Step<RequestParser>> {
    shared
        .send_response(&conn, Response::bad_request().into_bytes())
        .map(|_| Step::Close)
}

/// Serves `req` and then every further complete request already buffered
/// in `parser` (pipelining), before handing the session back to the
/// framework's wait.
fn serve_requests(
    shared: Arc<WebShared>,
    conn: Arc<dyn Conn>,
    mut parser: RequestParser,
    req: Request,
) -> ThreadM<Step<RequestParser>> {
    let shared2 = Arc::clone(&shared);
    let conn2 = Arc::clone(&conn);
    serve_one(shared, Arc::clone(&conn), req).bind(move |keep_alive| {
        if !keep_alive {
            return ThreadM::pure(Step::Close);
        }
        match parser.feed(&[]) {
            Err(_) => bad_request(shared2, conn2),
            Ok(None) => ThreadM::pure(Step::Continue(parser)),
            Ok(Some(next)) => serve_requests(shared2, conn2, parser, next),
        }
    })
}

/// Serves one request; returns whether the session continues (response
/// sent successfully on a keep-alive connection).
fn serve_one(shared: Arc<WebShared>, conn: Arc<dyn Conn>, req: Request) -> ThreadM<bool> {
    let keep_alive = req.keep_alive();
    let head_only = req.method == Method::Head;
    let shared2 = Arc::clone(&shared);
    let replier = Arc::clone(&shared);
    do_m! {
        let mut response <- build_response(shared, req);
        let _ = if head_only {
            response = Response::new(response.status(), Bytes::new());
        };
        let response = response.keep_alive(keep_alive);
        let body = response.into_bytes();
        let n = body.len() as u64;
        let sent <- replier.send_response(&conn, body);
        sys_nbio(move || {
            shared2.stats.requests.fetch_add(1, Ordering::Relaxed);
            shared2.stats.bytes_sent.fetch_add(n, Ordering::Relaxed);
            sent.is_ok() && keep_alive
        })
    }
}

/// Computes the response for a request: cache, then blocking open, then
/// AIO reads (each failure path is an exception or an error status).
fn build_response(srv: Arc<WebShared>, req: Request) -> ThreadM<Response> {
    if !matches!(req.method, Method::Get | Method::Head) {
        return ThreadM::pure(Response::bad_request());
    }
    let path = req.target;
    if let Some(data) = srv.cache.get(&path) {
        return ThreadM::pure(Response::ok(data));
    }
    let lookup_files = Arc::clone(&srv.files);
    let lookup_path = path.clone();
    do_m! {
        // Opening / stat-ing a file is a blocking OS interface: route it
        // through the blocking-I/O pool exactly as the paper's §4.6.
        let file <- sys_blio(move || lookup_files.lookup(&lookup_path));
        match file {
            None => {
                srv.stats.not_found.fetch_add(1, Ordering::Relaxed);
                ThreadM::pure(Response::not_found())
            }
            Some(file) => do_m! {
                let data <- read_whole_file(file, srv.cfg.read_chunk);
                match data {
                    Ok(data) => {
                        srv.cache.insert(path, data.clone());
                        ThreadM::pure(Response::ok(data))
                    }
                    Err(e) => sys_throw(Exception::with_payload("file read failed", e)),
                }
            },
        }
    }
}

/// Reads an entire file via repeated `sys_aio_read`s.
fn read_whole_file(
    file: Arc<dyn AioFile>,
    chunk: usize,
) -> ThreadM<Result<Bytes, eveth_core::aio::IoError>> {
    let total = file.len();
    loop_m(
        (0u64, Vec::with_capacity(total as usize)),
        move |(offset, mut acc)| {
            if offset >= total {
                return ThreadM::pure(Loop::Break(Ok(Bytes::from(acc))));
            }
            let want = chunk.min((total - offset) as usize);
            sys_aio_read(&file, offset, want).map(move |res| match res {
                Ok(data) if data.is_empty() => Loop::Break(Ok(Bytes::from(acc))),
                Ok(data) => {
                    acc.extend_from_slice(&data);
                    Loop::Continue((offset + data.len() as u64, acc))
                }
                Err(e) => Loop::Break(Err(e)),
            })
        },
    )
}
