//! Property tests for HTTP: parse–serialize round trips survive arbitrary
//! chunking, and the cache never violates its budget or LRU discipline.

use bytes::Bytes;
use eveth_http::cache::FileCache;
use eveth_http::parser::{parse_response_head, Method, RequestParser};
use eveth_http::response::Response;
use proptest::prelude::*;

fn arb_token() -> impl Strategy<Value = String> {
    "[A-Za-z0-9-]{1,12}"
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// A serialized request parses back identically no matter how the
    /// bytes are sliced into recv chunks.
    #[test]
    fn request_roundtrip_any_chunking(
        path_seg in "[a-z0-9]{1,16}",
        headers in proptest::collection::vec((arb_token(), arb_token()), 0..8),
        cuts in proptest::collection::vec(1usize..40, 0..12),
    ) {
        let mut raw = format!("GET /{path_seg} HTTP/1.1\r\n");
        for (k, v) in &headers {
            raw.push_str(&format!("{k}: {v}\r\n"));
        }
        raw.push_str("\r\n");
        let bytes = raw.as_bytes();

        let mut parser = RequestParser::new();
        let mut parsed = None;
        let mut pos = 0;
        let mut cut_iter = cuts.into_iter();
        while pos < bytes.len() {
            let step = cut_iter.next().unwrap_or(bytes.len()).min(bytes.len() - pos);
            if let Some(req) = parser.feed(&bytes[pos..pos + step]).expect("valid request") {
                parsed = Some(req);
            }
            pos += step;
        }
        let req = parsed.expect("request completed");
        prop_assert_eq!(req.method, Method::Get);
        prop_assert_eq!(req.target, format!("/{path_seg}"));
        prop_assert_eq!(req.headers.len(), headers.len());
        for ((k, v), (pk, pv)) in headers.iter().zip(req.headers.iter()) {
            prop_assert_eq!(k, pk);
            prop_assert_eq!(v, pv);
        }
    }

    /// Response serialization always parses back with the right status
    /// and exact content length.
    #[test]
    fn response_roundtrip(status in prop_oneof![Just(200u16), Just(404), Just(500), 201u16..599],
                          body in proptest::collection::vec(any::<u8>(), 0..4096)) {
        let bytes = Response::new(status, Bytes::from(body.clone())).into_bytes();
        let head = parse_response_head(&bytes).expect("parses").expect("complete");
        prop_assert_eq!(head.status, status);
        prop_assert_eq!(head.content_length, body.len());
        prop_assert_eq!(&bytes[head.head_len..], &body[..]);
    }

    /// The cache never exceeds its budget, never loses an entry it could
    /// keep, and get-after-insert is exact.
    #[test]
    fn cache_invariants(
        budget in 64usize..4096,
        ops in proptest::collection::vec(("[a-d]", 1usize..512), 1..64),
    ) {
        let cache = FileCache::new(budget);
        let mut last_inserted: std::collections::HashMap<String, usize> = Default::default();
        for (key, size) in ops {
            cache.insert(key.clone(), Bytes::from(vec![0u8; size]));
            prop_assert!(cache.used() <= budget, "budget violated: {} > {}", cache.used(), budget);
            if size <= budget {
                last_inserted.insert(key.clone(), size);
                // Freshly inserted entries are retrievable with the exact size.
                let got = cache.get(&key).expect("just inserted and fits");
                prop_assert_eq!(got.len(), size);
            } else {
                prop_assert!(cache.get(&key).is_none(), "oversized must not cache");
            }
        }
    }
}
